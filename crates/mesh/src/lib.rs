//! A 2D-mesh on-chip network.
//!
//! This models the GARNET-configured interconnect of the paper's Table 6:
//! a 4x4 mesh with deterministic X-Y routing, 6-cycle switch-to-switch
//! hops, 1-flit control and 5-flit data messages, and three virtual
//! networks (request / forward / response) so responses can never be
//! blocked behind requests — the standard protocol-deadlock-avoidance
//! arrangement for MESI directory protocols.
//!
//! Two properties of the paper's setting are preserved:
//!
//! - **unordered network**: messages on different source/destination pairs
//!   (or different virtual networks) may be arbitrarily reordered —
//!   contention and optional random jitter both cause this;
//! - **point-to-point FIFO** within one (source, destination, virtual
//!   network) flow, as deterministic routing provides.
//!
//! The router model is intentionally lean: per-hop latency plus per-link,
//! per-virtual-network serialization of flits (one flit per cycle per
//! link), which yields congestion effects and exact flit counts for the
//! traffic numbers of Figure 9 without a full five-stage router pipeline.

use std::collections::{HashMap, VecDeque};
use wb_kernel::chaos::ChaosEngine;
use wb_kernel::trace::{Category, CompId, TraceEvent, TraceFilter, Tracer};
use wb_kernel::{Cycle, NodeId, SimRng, Stats};

/// The three virtual networks.
///
/// Keeping the classes on disjoint virtual networks removes
/// message-dependent deadlock between protocol classes: a response can
/// always sink even when requests are congested.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum VNet {
    /// Requests from private caches to the directory (GetS/GetX/Upgrade/Put).
    Request,
    /// Directory-generated traffic towards caches (Inv, Fwd).
    Forward,
    /// Responses (Data, Ack, Nack, Unblock, redirected Acks, hints).
    Response,
}

impl VNet {
    /// All virtual networks.
    pub const ALL: [VNet; 3] = [VNet::Request, VNet::Forward, VNet::Response];

    /// Stable ordinal (0 = request, 1 = forward, 2 = response) — also
    /// the `vnet` field in trace events.
    pub fn index(self) -> usize {
        match self {
            VNet::Request => 0,
            VNet::Forward => 1,
            VNet::Response => 2,
        }
    }
}

/// A message in flight, generic over the protocol payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeshMsg<T> {
    pub src: NodeId,
    pub dst: NodeId,
    pub vnet: VNet,
    /// Message size in flits (1 control, 5 data in the paper).
    pub flits: u32,
    pub payload: T,
}

#[derive(Debug)]
struct Flight<T> {
    msg: MeshMsg<T>,
    /// Remaining hops (count of links still to traverse).
    hops_left: u32,
    /// The flight may take its next action at this cycle.
    ready_at: Cycle,
    /// Per-flow sequence for point-to-point FIFO delivery.
    flow_seq: u64,
    /// Injection cycle, for the end-to-end latency histogram.
    sent_at: Cycle,
}

type FlowKey = (NodeId, NodeId, usize);

/// The mesh network.
///
/// Use [`Mesh::send`] to inject, [`Mesh::tick`] once per cycle, and
/// [`Mesh::drain_arrived`] to collect deliveries at each node.
#[derive(Debug)]
pub struct Mesh<T> {
    width: usize,
    height: usize,
    hop_cycles: u64,
    jitter: u64,
    rng: SimRng,
    in_flight: Vec<Flight<T>>,
    /// (node, vnet) -> cycle until which the node's injection link is busy.
    /// This provides coarse per-link serialization: a node can push one
    /// flit per cycle per virtual network.
    link_busy: HashMap<(NodeId, usize), Cycle>,
    /// Arrived messages held for in-order per-flow release.
    arrived: Vec<VecDeque<Flight<T>>>,
    next_flow_seq: HashMap<FlowKey, u64>,
    next_deliver_seq: HashMap<FlowKey, u64>,
    stats: Stats,
    tracer: Tracer,
    /// Adversarial timing injection (`None` = byte-identical to a
    /// chaos-free mesh). Perturbs `ready_at` at injection only, so
    /// per-flow FIFO delivery is unaffected: every plan stays within
    /// legal unordered-network behaviour (no drops, no duplicates).
    chaos: Option<ChaosEngine>,
}

impl<T> Mesh<T> {
    /// Create a mesh of `width` x `height` routers serving `nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics if the mesh cannot host the node count.
    pub fn new(width: usize, height: usize, nodes: usize, hop_cycles: u64, jitter: u64, seed: u64) -> Self {
        assert!(width * height >= nodes, "mesh {width}x{height} too small for {nodes} nodes");
        Mesh {
            width,
            height,
            hop_cycles,
            jitter,
            rng: SimRng::new(seed ^ 0x4e74_776b),
            in_flight: Vec::new(),
            link_busy: HashMap::new(),
            arrived: (0..nodes).map(|_| VecDeque::new()).collect(),
            next_flow_seq: HashMap::new(),
            next_deliver_seq: HashMap::new(),
            stats: Stats::new(),
            tracer: Tracer::new(CompId::Mesh),
            chaos: None,
        }
    }

    /// Install (or clear) a chaos engine for adversarial timing.
    pub fn set_chaos(&mut self, engine: Option<ChaosEngine>) {
        self.chaos = engine;
    }

    /// True when the installed plan has signal-gated clauses; the system
    /// only computes the lockdown-live signal if so.
    pub fn chaos_wants_signal(&self) -> bool {
        self.chaos.as_ref().is_some_and(ChaosEngine::wants_signal)
    }

    /// Raise/lower the lockdown-live signal for directed chaos clauses.
    pub fn set_chaos_signal(&mut self, live: bool) {
        if let Some(ch) = &mut self.chaos {
            ch.set_signal(live);
        }
    }

    /// (messages touched, total cycles injected) by the chaos engine.
    pub fn chaos_injected(&self) -> (u64, u64) {
        self.chaos.as_ref().map_or((0, 0), |c| (c.touched, c.injected))
    }

    /// Enable/disable event tracing (per-hop events are `Level::Debug`).
    pub fn set_trace(&mut self, filter: TraceFilter) {
        self.tracer.set_filter(filter);
    }

    /// The mesh's event tracer (for merging into a system timeline).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    fn coords(&self, n: NodeId) -> (usize, usize) {
        (n.index() % self.width, n.index() / self.width)
    }

    /// Mesh dimensions `(width, height)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.width, self.height)
    }

    /// Number of X-Y hops between two nodes (Manhattan distance).
    pub fn hops(&self, a: NodeId, b: NodeId) -> u32 {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        (ax.abs_diff(bx) + ay.abs_diff(by)) as u32
    }

    /// Inject a message at cycle `now`. Delivery happens after routing
    /// latency; local (src == dst) messages still take one cycle.
    pub fn send(&mut self, now: Cycle, msg: MeshMsg<T>) {
        let key: FlowKey = (msg.src, msg.dst, msg.vnet.index());
        let seq_ref = self.next_flow_seq.entry(key).or_insert(0);
        let flow_seq = *seq_ref;
        *seq_ref += 1;

        self.stats.inc("mesh_msgs");
        self.stats.add("mesh_flits", msg.flits as u64);
        self.stats.add(
            match msg.vnet {
                VNet::Request => "mesh_flits_request",
                VNet::Forward => "mesh_flits_forward",
                VNet::Response => "mesh_flits_response",
            },
            msg.flits as u64,
        );

        // Injection-link serialization: one flit/cycle per (node, vnet).
        let busy = self.link_busy.entry((msg.src, msg.vnet.index())).or_insert(0);
        let start = now.max(*busy);
        *busy = start + msg.flits as u64;

        let jitter = if self.jitter > 0 { self.rng.below(self.jitter + 1) } else { 0 };
        let hops = self.hops(msg.src, msg.dst);
        let mut ready_at = start + 1 + jitter; // one cycle of local latency
        if let Some(ch) = &mut self.chaos {
            let extra = ch.delay(now, msg.src.0, msg.dst.0, msg.vnet.index() as u8);
            if extra > 0 {
                ready_at += extra;
                self.stats.inc("mesh_chaos_msgs");
                self.stats.add("mesh_chaos_cycles", extra);
            }
        }
        self.in_flight.push(Flight { msg, hops_left: hops, ready_at, flow_seq, sent_at: now });
    }

    /// Advance the network by one cycle: move flights along their route and
    /// park completed ones in the destination's arrival buffer.
    pub fn tick(&mut self, now: Cycle) {
        let hop_cycles = self.hop_cycles;
        let trace_hops = self.tracer.wants(Category::Mesh);
        let mut done: Vec<usize> = Vec::new();
        for (i, f) in self.in_flight.iter_mut().enumerate() {
            if f.ready_at > now {
                continue;
            }
            if f.hops_left == 0 {
                done.push(i);
            } else {
                // Traverse one switch-to-switch link: head latency plus
                // tail serialization.
                f.hops_left -= 1;
                f.ready_at = now + hop_cycles + (f.msg.flits as u64 - 1);
                if trace_hops {
                    self.tracer.record(
                        now,
                        TraceEvent::MeshHop {
                            src: f.msg.src.0,
                            dst: f.msg.dst.0,
                            hops_left: f.hops_left,
                            vnet: f.msg.vnet.index() as u8,
                        },
                    );
                }
            }
        }
        // Remove in reverse index order so indices stay valid.
        for &i in done.iter().rev() {
            let f = self.in_flight.swap_remove(i);
            self.stats.record("mesh_msg_cycles", now.saturating_sub(f.sent_at));
            self.arrived[f.msg.dst.index()].push_back(f);
        }
    }

    /// Collect every message deliverable at `node` this cycle, respecting
    /// per-flow FIFO order.
    pub fn drain_arrived(&mut self, node: NodeId) -> Vec<MeshMsg<T>> {
        let buf = &mut self.arrived[node.index()];
        if buf.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();
        // Repeatedly release the next-in-flow messages until a pass makes
        // no progress (handles out-of-order arrivals within a flow).
        loop {
            let mut progressed = false;
            let mut i = 0;
            while i < buf.len() {
                let key: FlowKey = (buf[i].msg.src, buf[i].msg.dst, buf[i].msg.vnet.index());
                let expected = self.next_deliver_seq.entry(key).or_insert(0);
                if buf[i].flow_seq == *expected {
                    *expected += 1;
                    let f = buf.remove(i).expect("index in range");
                    out.push(f.msg);
                    progressed = true;
                } else {
                    i += 1;
                }
            }
            if !progressed {
                break;
            }
        }
        out
    }

    /// Messages currently traversing the network (excludes arrived-but-
    /// undrained ones).
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// `(src, dst, vnet, in-flight cycles)` for every traversing
    /// message, sorted — for wedge reports.
    pub fn in_flight_summary(&self, now: Cycle) -> Vec<(u16, u16, u8, u64)> {
        let mut v: Vec<(u16, u16, u8, u64)> = self
            .in_flight
            .iter()
            .map(|f| {
                (
                    f.msg.src.0,
                    f.msg.dst.0,
                    f.msg.vnet.index() as u8,
                    now.saturating_sub(f.sent_at),
                )
            })
            .collect();
        v.sort();
        v
    }

    /// True when nothing is in flight and nothing awaits draining.
    pub fn is_idle(&self) -> bool {
        self.in_flight.is_empty() && self.arrived.iter().all(|q| q.is_empty())
    }

    /// Traffic statistics (flit and message counts).
    pub fn stats(&self) -> &Stats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(jitter: u64) -> Mesh<u32> {
        Mesh::new(4, 4, 16, 6, jitter, 1)
    }

    fn run_until_delivered(mesh: &mut Mesh<u32>, dst: NodeId, mut now: Cycle, limit: u64) -> (Vec<MeshMsg<u32>>, Cycle) {
        let mut out = Vec::new();
        for _ in 0..limit {
            mesh.tick(now);
            out.extend(mesh.drain_arrived(dst));
            if !out.is_empty() {
                return (out, now);
            }
            now += 1;
        }
        (out, now)
    }

    #[test]
    fn hops_manhattan() {
        let m = mk(0);
        assert_eq!(m.hops(NodeId(0), NodeId(0)), 0);
        assert_eq!(m.hops(NodeId(0), NodeId(3)), 3);
        assert_eq!(m.hops(NodeId(0), NodeId(15)), 6);
        assert_eq!(m.hops(NodeId(5), NodeId(6)), 1);
    }

    #[test]
    fn delivers_with_expected_latency() {
        let mut m = mk(0);
        m.send(0, MeshMsg { src: NodeId(0), dst: NodeId(1), vnet: VNet::Request, flits: 1, payload: 7 });
        // 1 cycle local + 1 hop of 6 cycles = ready at cycle 7.
        let (msgs, when) = run_until_delivered(&mut m, NodeId(1), 0, 100);
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].payload, 7);
        assert_eq!(when, 7);
    }

    #[test]
    fn local_message_one_cycle() {
        let mut m = mk(0);
        m.send(0, MeshMsg { src: NodeId(2), dst: NodeId(2), vnet: VNet::Response, flits: 1, payload: 1 });
        let (msgs, when) = run_until_delivered(&mut m, NodeId(2), 0, 10);
        assert_eq!(msgs.len(), 1);
        assert_eq!(when, 1);
    }

    #[test]
    fn data_messages_slower_than_control() {
        let mut m = mk(0);
        m.send(0, MeshMsg { src: NodeId(0), dst: NodeId(15), vnet: VNet::Response, flits: 5, payload: 1 });
        let (_, t_data) = run_until_delivered(&mut m, NodeId(15), 0, 1000);
        let mut m2 = mk(0);
        m2.send(0, MeshMsg { src: NodeId(0), dst: NodeId(15), vnet: VNet::Response, flits: 1, payload: 1 });
        let (_, t_ctrl) = run_until_delivered(&mut m2, NodeId(15), 0, 1000);
        assert!(t_data > t_ctrl, "data {t_data} should be slower than control {t_ctrl}");
    }

    #[test]
    fn per_flow_fifo_preserved() {
        let mut m = mk(0);
        for i in 0..10u32 {
            m.send(0, MeshMsg { src: NodeId(0), dst: NodeId(5), vnet: VNet::Request, flits: 1, payload: i });
        }
        let mut got = Vec::new();
        for now in 0..200 {
            m.tick(now);
            got.extend(m.drain_arrived(NodeId(5)).into_iter().map(|mm| mm.payload));
        }
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn per_flow_fifo_preserved_under_jitter() {
        for seed in 0..20u64 {
            let mut m = Mesh::new(4, 4, 16, 6, 25, seed);
            for i in 0..10u32 {
                m.send(0, MeshMsg { src: NodeId(3), dst: NodeId(9), vnet: VNet::Forward, flits: 1, payload: i });
            }
            let mut got = Vec::new();
            for now in 0..500 {
                m.tick(now);
                got.extend(m.drain_arrived(NodeId(9)).into_iter().map(|mm| mm.payload));
            }
            assert_eq!(got, (0..10).collect::<Vec<_>>(), "seed {seed}");
        }
    }

    #[test]
    fn different_flows_can_reorder() {
        // A long route with a big message vs. a short route with a small
        // one injected later: the later one arrives first.
        let mut m = mk(0);
        m.send(0, MeshMsg { src: NodeId(0), dst: NodeId(15), vnet: VNet::Request, flits: 5, payload: 100 });
        m.send(1, MeshMsg { src: NodeId(14), dst: NodeId(15), vnet: VNet::Request, flits: 1, payload: 200 });
        let mut order = Vec::new();
        for now in 0..500 {
            m.tick(now);
            order.extend(m.drain_arrived(NodeId(15)).into_iter().map(|mm| mm.payload));
        }
        assert_eq!(order, vec![200, 100]);
    }

    #[test]
    fn flit_stats_accumulate() {
        let mut m = mk(0);
        m.send(0, MeshMsg { src: NodeId(0), dst: NodeId(1), vnet: VNet::Request, flits: 1, payload: 0 });
        m.send(0, MeshMsg { src: NodeId(0), dst: NodeId(1), vnet: VNet::Response, flits: 5, payload: 0 });
        assert_eq!(m.stats().get("mesh_flits"), 6);
        assert_eq!(m.stats().get("mesh_msgs"), 2);
        assert_eq!(m.stats().get("mesh_flits_response"), 5);
    }

    #[test]
    fn latency_histogram_records_deliveries() {
        let mut m = mk(0);
        m.send(0, MeshMsg { src: NodeId(0), dst: NodeId(1), vnet: VNet::Request, flits: 1, payload: 0 });
        let _ = run_until_delivered(&mut m, NodeId(1), 0, 100);
        let h = m.stats().hist("mesh_msg_cycles").expect("latency hist");
        assert_eq!(h.count(), 1);
        // 1 cycle local + 1 hop of 6 = delivered at cycle 7.
        assert_eq!(h.max(), 7);
    }

    #[test]
    fn hop_tracing_records_each_link() {
        let mut m = mk(0);
        m.set_trace(wb_kernel::TraceFilter::all());
        // Node 0 -> node 15 is 6 hops on the 4x4 mesh.
        m.send(0, MeshMsg { src: NodeId(0), dst: NodeId(15), vnet: VNet::Request, flits: 1, payload: 0 });
        let _ = run_until_delivered(&mut m, NodeId(15), 0, 1000);
        let hops = m.tracer().records().count();
        assert_eq!(hops, 6);
        // Disabled by default: a fresh mesh records nothing.
        let mut quiet = mk(0);
        quiet.send(0, MeshMsg { src: NodeId(0), dst: NodeId(15), vnet: VNet::Request, flits: 1, payload: 0 });
        let _ = run_until_delivered(&mut quiet, NodeId(15), 0, 1000);
        assert!(quiet.tracer().is_empty());
    }

    #[test]
    fn idle_detection() {
        let mut m = mk(0);
        assert!(m.is_idle());
        m.send(0, MeshMsg { src: NodeId(0), dst: NodeId(1), vnet: VNet::Request, flits: 1, payload: 0 });
        assert!(!m.is_idle());
        for now in 0..100 {
            m.tick(now);
            m.drain_arrived(NodeId(1));
        }
        assert!(m.is_idle());
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn too_small_mesh_panics() {
        let _ = Mesh::<u32>::new(2, 2, 16, 6, 0, 0);
    }

    #[test]
    fn injection_serialization_delays_second_message() {
        let mut m = mk(0);
        // Two 5-flit messages back to back on the same vnet from node 0.
        m.send(0, MeshMsg { src: NodeId(0), dst: NodeId(1), vnet: VNet::Response, flits: 5, payload: 1 });
        m.send(0, MeshMsg { src: NodeId(0), dst: NodeId(2), vnet: VNet::Response, flits: 5, payload: 2 });
        let mut t1 = None;
        let mut t2 = None;
        for now in 0..200 {
            m.tick(now);
            if !m.drain_arrived(NodeId(1)).is_empty() {
                t1.get_or_insert(now);
            }
            if !m.drain_arrived(NodeId(2)).is_empty() {
                t2.get_or_insert(now);
            }
        }
        let (t1, t2) = (t1.unwrap(), t2.unwrap());
        // Node 2 is 2 hops from node 0, node 1 is 1 hop; even accounting
        // for the extra hop, the second message is further delayed by
        // serialization of the first's 5 flits.
        assert!(t2 >= t1 + 5, "t1={t1} t2={t2}");
    }

    use wb_kernel::chaos::{ChaosEngine, ChaosPlan};

    #[test]
    fn chaos_delays_but_delivers() {
        let mut m = mk(0);
        m.set_chaos(Some(ChaosEngine::new(ChaosPlan::hotspot(0), 1)));
        m.send(0, MeshMsg { src: NodeId(0), dst: NodeId(1), vnet: VNet::Request, flits: 1, payload: 7 });
        let (msgs, when) = run_until_delivered(&mut m, NodeId(1), 0, 1_000);
        assert_eq!(msgs.len(), 1);
        // Baseline is cycle 7 (1 local + 1 hop of 6); hotspot adds 150.
        assert_eq!(when, 157);
        assert_eq!(m.stats().get("mesh_chaos_msgs"), 1);
        assert_eq!(m.stats().get("mesh_chaos_cycles"), 150);
    }

    #[test]
    fn chaos_preserves_per_flow_fifo() {
        let mut m = mk(0);
        m.set_chaos(Some(ChaosEngine::new(ChaosPlan::reorder_amplify(), 3)));
        for p in 0..20u32 {
            m.send(p as u64, MeshMsg { src: NodeId(0), dst: NodeId(5), vnet: VNet::Request, flits: 1, payload: p });
        }
        let mut got = Vec::new();
        for now in 0..10_000 {
            m.tick(now);
            got.extend(m.drain_arrived(NodeId(5)).into_iter().map(|ms| ms.payload));
            if got.len() == 20 {
                break;
            }
        }
        assert_eq!(got, (0..20).collect::<Vec<_>>(), "same-flow order must survive chaos");
    }

    #[test]
    fn chaos_is_deterministic() {
        let deliveries = |seed: u64| {
            let mut m = Mesh::<u32>::new(4, 4, 16, 6, 0, seed);
            m.set_chaos(Some(ChaosEngine::new(ChaosPlan::wb_entry_squeeze(), seed)));
            let mut log = Vec::new();
            for p in 0..30u32 {
                let vnet = [VNet::Request, VNet::Forward, VNet::Response][(p % 3) as usize];
                m.send(p as u64, MeshMsg { src: NodeId(p as u16 % 16), dst: NodeId((p as u16 * 5) % 16), vnet, flits: 1, payload: p });
            }
            for now in 0..20_000u64 {
                m.tick(now);
                for n in 0..16 {
                    for ms in m.drain_arrived(NodeId(n)) {
                        log.push((now, ms.payload));
                    }
                }
            }
            assert!(m.is_idle(), "all chaos-delayed messages must drain");
            log
        };
        assert_eq!(deliveries(7), deliveries(7), "same seed, same schedule");
    }

    #[test]
    fn chaos_none_is_byte_identical() {
        // Installing no chaos must not perturb the rng-driven schedule.
        let run = |with_none_install: bool| {
            let mut m = Mesh::<u32>::new(4, 4, 16, 6, 20, 9);
            if with_none_install {
                m.set_chaos(None);
            }
            let mut log = Vec::new();
            for p in 0..20u32 {
                m.send(p as u64, MeshMsg { src: NodeId(p as u16 % 16), dst: NodeId(3), vnet: VNet::Request, flits: 1, payload: p });
            }
            for now in 0..2_000u64 {
                m.tick(now);
                for ms in m.drain_arrived(NodeId(3)) {
                    log.push((now, ms.payload));
                }
            }
            log
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn chaos_signal_gates_directed_stall() {
        let mut m = mk(0);
        m.set_chaos(Some(ChaosEngine::new(ChaosPlan::lockdown_vnet_stall(2), 1)));
        assert!(m.chaos_wants_signal());
        // Signal low: normal latency.
        m.send(0, MeshMsg { src: NodeId(0), dst: NodeId(1), vnet: VNet::Response, flits: 1, payload: 1 });
        let (_, when) = run_until_delivered(&mut m, NodeId(1), 0, 1_000);
        assert_eq!(when, 7);
        // Signal high: +300 on the response vnet.
        m.set_chaos_signal(true);
        m.send(100, MeshMsg { src: NodeId(0), dst: NodeId(1), vnet: VNet::Response, flits: 1, payload: 2 });
        let (_, when) = run_until_delivered(&mut m, NodeId(1), 100, 1_000);
        assert_eq!(when, 407);
    }

    #[test]
    fn in_flight_summary_reports_traversing_messages() {
        let mut m = mk(0);
        m.send(0, MeshMsg { src: NodeId(0), dst: NodeId(15), vnet: VNet::Forward, flits: 1, payload: 1 });
        m.tick(0);
        let s = m.in_flight_summary(10);
        assert_eq!(s, vec![(0, 15, 1, 10)]);
    }
}
