//! A 2D-mesh on-chip network.
//!
//! This models the GARNET-configured interconnect of the paper's Table 6:
//! a 4x4 mesh with deterministic X-Y routing, 6-cycle switch-to-switch
//! hops, 1-flit control and 5-flit data messages, and three virtual
//! networks (request / forward / response) so responses can never be
//! blocked behind requests — the standard protocol-deadlock-avoidance
//! arrangement for MESI directory protocols.
//!
//! Two properties of the paper's setting are preserved:
//!
//! - **unordered network**: messages on different source/destination pairs
//!   (or different virtual networks) may be arbitrarily reordered —
//!   contention and optional random jitter both cause this;
//! - **point-to-point FIFO** within one (source, destination, virtual
//!   network) flow, as deterministic routing provides.
//!
//! The router model is intentionally lean: per-hop latency plus per-link,
//! per-virtual-network serialization of flits (one flit per cycle per
//! link), which yields congestion effects and exact flit counts for the
//! traffic numbers of Figure 9 without a full five-stage router pipeline.
//!
//! # Lossy links and reliable delivery
//!
//! By default every injected message arrives (delivery is reliable by
//! construction, as the paper assumes). Two optional adversarial layers
//! stress that assumption:
//!
//! - a [`ChaosEngine`] perturbs *timing* only (injection-time delays,
//!   PR 3);
//! - a [`FaultEngine`](wb_kernel::fault::FaultEngine) makes links
//!   *lossy*: frames may be dropped, duplicated, or corrupted at each
//!   hop, per a seeded [`FaultPlan`](wb_kernel::fault::FaultPlan).
//!
//! Faults require the [reliable sublayer](crate::reliable) (see
//! [`Mesh::enable_reliable`]): selective-repeat ARQ with per-frame
//! checksums, per-flow sequence numbers, cumulative acks piggybacked on
//! reverse traffic (standalone acks when idle), timeout-driven
//! retransmission with capped exponential backoff, a bounded retransmit
//! window with backpressure into [`Mesh::send`], and receiver-side
//! dedup. The protocol layer above still observes exactly-once,
//! per-flow-FIFO delivery — it cannot tell a lossy run from a clean one
//! except through timing. When neither layer is installed the fast path
//! is byte-identical to a mesh built before they existed.

mod reliable;

use std::collections::{HashMap, VecDeque};
use std::hash::Hash;
use wb_kernel::chaos::ChaosEngine;
use wb_kernel::config::LinkConfig;
use wb_kernel::fault::FaultEngine;
use wb_kernel::trace::{Category, CompId, TraceEvent, TraceFilter, Tracer};
use wb_kernel::{CounterHandle, Cycle, NodeId, SimRng, Stats};

use reliable::{frame_check, FlowKey, LinkCtl, Pending, RecvFlow, RecvVerdict, ReliableLink, Unacked};

/// The three virtual networks.
///
/// Keeping the classes on disjoint virtual networks removes
/// message-dependent deadlock between protocol classes: a response can
/// always sink even when requests are congested.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum VNet {
    /// Requests from private caches to the directory (GetS/GetX/Upgrade/Put).
    Request,
    /// Directory-generated traffic towards caches (Inv, Fwd).
    Forward,
    /// Responses (Data, Ack, Nack, Unblock, redirected Acks, hints).
    Response,
}

impl VNet {
    /// All virtual networks.
    pub const ALL: [VNet; 3] = [VNet::Request, VNet::Forward, VNet::Response];

    /// Stable ordinal (0 = request, 1 = forward, 2 = response) — also
    /// the `vnet` field in trace events.
    pub fn index(self) -> usize {
        match self {
            VNet::Request => 0,
            VNet::Forward => 1,
            VNet::Response => 2,
        }
    }
}

impl wb_kernel::Snap for VNet {
    fn snap(&self, w: &mut wb_kernel::SnapWriter) {
        w.u8(self.index() as u8);
    }
    fn unsnap(r: &mut wb_kernel::SnapReader) -> wb_kernel::SnapResult<Self> {
        match r.u8()? {
            0 => Ok(VNet::Request),
            1 => Ok(VNet::Forward),
            2 => Ok(VNet::Response),
            t => Err(wb_kernel::SnapError::new(format!("bad VNet tag {t:#x}"))),
        }
    }
}

/// A message in flight, generic over the protocol payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeshMsg<T> {
    pub src: NodeId,
    pub dst: NodeId,
    pub vnet: VNet,
    /// Message size in flits (1 control, 5 data in the paper).
    pub flits: u32,
    pub payload: T,
}

/// A frame traversing the network: a protocol message, or (with the
/// reliable sublayer active) a retransmission or standalone ack.
#[derive(Debug, Clone)]
struct Flight<T> {
    src: NodeId,
    dst: NodeId,
    vnet: VNet,
    flits: u32,
    /// `None` only for standalone ack frames, which are consumed at the
    /// link layer and never surface through [`Mesh::drain_arrived`].
    payload: Option<T>,
    /// Link-layer header; present iff the reliable sublayer is enabled.
    /// Boxed so the fault-free fast path doesn't pay its footprint in
    /// every in-flight frame.
    link: Option<Box<LinkCtl>>,
    /// Remaining hops (count of links still to traverse).
    hops_left: u32,
    /// The flight may take its next action at this cycle.
    ready_at: Cycle,
    /// Per-flow sequence for point-to-point FIFO delivery.
    flow_seq: u64,
    /// Injection cycle, for the end-to-end latency histogram. A
    /// retransmission inherits the original injection cycle so the
    /// histogram reflects true protocol-visible latency.
    sent_at: Cycle,
}

impl<T: wb_kernel::Snap> wb_kernel::Snap for Flight<T> {
    fn snap(&self, w: &mut wb_kernel::SnapWriter) {
        self.src.snap(w);
        self.dst.snap(w);
        self.vnet.snap(w);
        w.u32(self.flits);
        self.payload.snap(w);
        // The Box is a footprint optimization, not structure: serialize
        // the header as a plain Option.
        match &self.link {
            Some(b) => {
                w.bool(true);
                b.snap(w);
            }
            None => w.bool(false),
        }
        w.u32(self.hops_left);
        w.u64(self.ready_at);
        w.u64(self.flow_seq);
        w.u64(self.sent_at);
    }
    fn unsnap(r: &mut wb_kernel::SnapReader) -> wb_kernel::SnapResult<Self> {
        Ok(Flight {
            src: NodeId::unsnap(r)?,
            dst: NodeId::unsnap(r)?,
            vnet: VNet::unsnap(r)?,
            flits: r.u32()?,
            payload: Option::unsnap(r)?,
            link: if r.bool()? { Some(Box::new(LinkCtl::unsnap(r)?)) } else { None },
            hops_left: r.u32()?,
            ready_at: r.u64()?,
            flow_seq: r.u64()?,
            sent_at: r.u64()?,
        })
    }
}

/// The mesh network.
///
/// Use [`Mesh::send`] to inject, [`Mesh::tick`] once per cycle, and
/// [`Mesh::drain_arrived`] to collect deliveries at each node.
#[derive(Debug)]
pub struct Mesh<T> {
    width: usize,
    height: usize,
    hop_cycles: u64,
    jitter: u64,
    rng: SimRng,
    in_flight: Vec<Flight<T>>,
    /// (node, vnet) -> cycle until which the node's injection link is busy.
    /// This provides coarse per-link serialization: a node can push one
    /// flit per cycle per virtual network.
    link_busy: HashMap<(NodeId, usize), Cycle>,
    /// Arrived messages held for in-order per-flow release.
    arrived: Vec<VecDeque<Flight<T>>>,
    next_flow_seq: HashMap<FlowKey, u64>,
    next_deliver_seq: HashMap<FlowKey, u64>,
    stats: Stats,
    tracer: Tracer,
    /// Adversarial timing injection (`None` = byte-identical to a
    /// chaos-free mesh). Perturbs `ready_at` at injection only, so
    /// per-flow FIFO delivery is unaffected: every plan stays within
    /// legal unordered-network behaviour (no drops, no duplicates).
    chaos: Option<ChaosEngine>,
    /// Reliable-delivery sublayer (`None` = links lossless by
    /// construction, zero overhead).
    reliable: Option<ReliableLink<T>>,
    /// Link fault injection; requires `reliable` (a lossy link without
    /// ARQ would simply violate the protocol's delivery contract).
    fault: Option<FaultEngine>,
    /// Pre-resolved handles for the per-send counters — `send` is the
    /// hottest stats site in the mesh and skips the name probe.
    h_msgs: CounterHandle,
    h_flits: CounterHandle,
    /// Indexed by `VNet::index()`.
    h_flits_vnet: [CounterHandle; 3],
    /// Scratch buffers reused across `tick` calls so the per-cycle hot
    /// path performs no allocation once warm (see scripts/verify.sh's
    /// grep guard).
    scratch_removals: Vec<(usize, bool)>,
    scratch_dups: Vec<Flight<T>>,
    scratch_flow_keys: Vec<FlowKey>,
    scratch_acks_due: Vec<(FlowKey, u64)>,
    /// When enabled (sparse engine), every frame parked into an arrival
    /// buffer also records its destination node here — the wake-on-message
    /// feed the system drains after each `tick` to schedule delivery.
    /// Not serialized: the engine drains it within the same cycle, like
    /// the scratch buffers above (may hold duplicates; the consumer's
    /// wake table dedups).
    log_parks: bool,
    park_log: Vec<u16>,
}

impl<T> Mesh<T> {
    /// Create a mesh of `width` x `height` routers serving `nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics if the mesh cannot host the node count.
    pub fn new(width: usize, height: usize, nodes: usize, hop_cycles: u64, jitter: u64, seed: u64) -> Self {
        assert!(width * height >= nodes, "mesh {width}x{height} too small for {nodes} nodes");
        let mut stats = Stats::new();
        let h_msgs = stats.handle("mesh_msgs");
        let h_flits = stats.handle("mesh_flits");
        let h_flits_vnet = [
            stats.handle("mesh_flits_request"),
            stats.handle("mesh_flits_forward"),
            stats.handle("mesh_flits_response"),
        ];
        Mesh {
            width,
            height,
            hop_cycles,
            jitter,
            rng: SimRng::new(seed ^ 0x4e74_776b),
            in_flight: Vec::new(),
            link_busy: HashMap::new(),
            arrived: (0..nodes).map(|_| VecDeque::new()).collect(),
            next_flow_seq: HashMap::new(),
            next_deliver_seq: HashMap::new(),
            stats,
            tracer: Tracer::new(CompId::Mesh),
            chaos: None,
            reliable: None,
            fault: None,
            h_msgs,
            h_flits,
            h_flits_vnet,
            scratch_removals: Vec::new(),
            scratch_dups: Vec::new(),
            scratch_flow_keys: Vec::new(),
            scratch_acks_due: Vec::new(),
            log_parks: false,
            park_log: Vec::new(),
        }
    }

    /// Enable/disable the arrival park log (see `park_log`). The sparse
    /// engine turns this on; other engines leave it off so the mesh stays
    /// byte-identical in behaviour and cost.
    pub fn set_park_log(&mut self, enabled: bool) {
        self.log_parks = enabled;
        self.park_log.clear();
    }

    /// Destination nodes of frames parked since the last clear (may hold
    /// duplicates).
    pub fn parked_nodes(&self) -> &[u16] {
        &self.park_log
    }

    /// Clear the park log (the engine calls this after scheduling the
    /// wakes it implies).
    pub fn clear_parked_nodes(&mut self) {
        self.park_log.clear();
    }

    /// Park a frame in its destination's arrival buffer, feeding the
    /// wake-on-message log when enabled.
    fn park(&mut self, f: Flight<T>) {
        if self.log_parks {
            self.park_log.push(f.dst.0);
        }
        self.arrived[f.dst.index()].push_back(f);
    }

    /// Install (or clear) a chaos engine for adversarial timing.
    pub fn set_chaos(&mut self, engine: Option<ChaosEngine>) {
        self.chaos = engine;
    }

    /// Enable the reliable-delivery sublayer (selective-repeat ARQ).
    /// Must be called before any traffic is injected: retrofitting
    /// sequence numbers onto frames already in flight is not supported.
    ///
    /// # Panics
    ///
    /// Panics if messages were already sent.
    pub fn enable_reliable(&mut self, cfg: LinkConfig) {
        assert!(
            self.in_flight.is_empty() && self.next_flow_seq.is_empty(),
            "enable_reliable must precede all traffic"
        );
        self.reliable = Some(ReliableLink::new(cfg));
    }

    /// True when the reliable sublayer is active.
    pub fn reliable_enabled(&self) -> bool {
        self.reliable.is_some()
    }

    /// Install (or clear) link fault injection.
    ///
    /// # Panics
    ///
    /// Panics if an engine is installed without the reliable sublayer:
    /// lossy links with no ARQ would silently break the protocol's
    /// delivery contract, which is never what a test means to do.
    pub fn set_fault(&mut self, engine: Option<FaultEngine>) {
        assert!(
            engine.is_none() || self.reliable.is_some(),
            "fault injection requires the reliable link layer (call enable_reliable first)"
        );
        self.fault = engine;
    }

    /// `(dropped, duplicated, corrupted)` frames injected by the fault
    /// engine so far.
    pub fn fault_injected(&self) -> (u64, u64, u64) {
        self.fault.as_ref().map_or((0, 0, 0), FaultEngine::injected)
    }

    /// True when the installed plan has signal-gated clauses; the system
    /// only computes the lockdown-live signal if so.
    pub fn chaos_wants_signal(&self) -> bool {
        self.chaos.as_ref().is_some_and(ChaosEngine::wants_signal)
    }

    /// Raise/lower the lockdown-live signal for directed chaos clauses.
    pub fn set_chaos_signal(&mut self, live: bool) {
        if let Some(ch) = &mut self.chaos {
            ch.set_signal(live);
        }
    }

    /// (messages touched, total cycles injected) by the chaos engine.
    pub fn chaos_injected(&self) -> (u64, u64) {
        self.chaos.as_ref().map_or((0, 0), |c| (c.touched, c.injected))
    }

    /// Enable/disable event tracing (per-hop events are `Level::Debug`).
    pub fn set_trace(&mut self, filter: TraceFilter) {
        self.tracer.set_filter(filter);
    }

    /// The mesh's event tracer (for merging into a system timeline).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    fn coords(&self, n: NodeId) -> (usize, usize) {
        (n.index() % self.width, n.index() / self.width)
    }

    /// Mesh dimensions `(width, height)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.width, self.height)
    }

    /// Number of X-Y hops between two nodes (Manhattan distance).
    pub fn hops(&self, a: NodeId, b: NodeId) -> u32 {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        (ax.abs_diff(bx) + ay.abs_diff(by)) as u32
    }

    /// Collect every message deliverable at `node` this cycle, respecting
    /// per-flow FIFO order.
    pub fn drain_arrived(&mut self, node: NodeId) -> Vec<MeshMsg<T>> {
        let mut out = Vec::new();
        self.drain_arrived_into(node, &mut out);
        out
    }

    /// Allocation-free [`Mesh::drain_arrived`]: append deliverable
    /// messages to `out` (which the caller clears and reuses).
    pub fn drain_arrived_into(&mut self, node: NodeId, out: &mut Vec<MeshMsg<T>>) {
        let buf = &mut self.arrived[node.index()];
        if buf.is_empty() {
            return;
        }
        // Repeatedly release the next-in-flow messages until a pass makes
        // no progress (handles out-of-order arrivals within a flow).
        loop {
            let mut progressed = false;
            let mut i = 0;
            while i < buf.len() {
                let key: FlowKey = (buf[i].src, buf[i].dst, buf[i].vnet.index());
                let expected = self.next_deliver_seq.entry(key).or_insert(0);
                if buf[i].flow_seq == *expected {
                    *expected += 1;
                    progressed = true;
                    if let Some(f) = buf.remove(i) {
                        if let Some(payload) = f.payload {
                            out.push(MeshMsg { src: f.src, dst: f.dst, vnet: f.vnet, flits: f.flits, payload });
                        }
                    }
                } else {
                    i += 1;
                }
            }
            if !progressed {
                break;
            }
        }
    }

    /// Messages currently traversing the network (excludes arrived-but-
    /// undrained ones).
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// `(src, dst, vnet, in-flight cycles)` for every traversing
    /// message, sorted — for wedge reports.
    pub fn in_flight_summary(&self, now: Cycle) -> Vec<(u16, u16, u8, u64)> {
        let mut v: Vec<(u16, u16, u8, u64)> = self
            .in_flight
            .iter()
            .map(|f| (f.src.0, f.dst.0, f.vnet.index() as u8, now.saturating_sub(f.sent_at)))
            .collect();
        v.sort();
        v
    }

    /// Visit every protocol payload the mesh is still responsible for:
    /// traversing flights, arrived-but-undrained messages, and (with the
    /// reliable sublayer) unacked retransmit copies and backpressured
    /// pending sends. Standalone ack frames carry no payload and are
    /// skipped. The online auditor uses this to mark lines with
    /// in-transit traffic as busy (exempt from agreement checks).
    pub fn for_each_payload(&self, mut f: impl FnMut(&T)) {
        for fl in &self.in_flight {
            if let Some(p) = &fl.payload {
                f(p);
            }
        }
        for q in &self.arrived {
            for fl in q {
                if let Some(p) = &fl.payload {
                    f(p);
                }
            }
        }
        if let Some(rl) = &self.reliable {
            for sf in rl.send_flows.values() {
                for u in &sf.unacked {
                    f(&u.payload);
                }
                for p in &sf.pending {
                    f(&p.payload);
                }
            }
        }
    }

    /// Sanity-check the reliable sublayer's bookkeeping: window bounds
    /// respected, per-flow retransmit queues sequence-ordered, the
    /// owed-ack count consistent with per-flow state. Returns one line
    /// per violation (empty = healthy); the online auditor folds these
    /// into its ARQ-window check.
    pub fn audit_reliable(&self) -> Vec<String> {
        let mut out = Vec::new();
        let Some(rl) = &self.reliable else { return out };
        for (key, sf) in &rl.send_flows {
            if sf.unacked.len() > rl.cfg.window {
                out.push(format!(
                    "flow {key:?}: {} unacked frames exceed window {}",
                    sf.unacked.len(),
                    rl.cfg.window
                ));
            }
            if !sf.pending.is_empty() && sf.unacked.len() < rl.cfg.window {
                out.push(format!(
                    "flow {key:?}: {} sends backpressured with window space free",
                    sf.pending.len()
                ));
            }
            let mut prev: Option<u64> = None;
            for u in &sf.unacked {
                if prev.is_some_and(|p| p >= u.seq) {
                    out.push(format!("flow {key:?}: unacked seqs out of order at {}", u.seq));
                    break;
                }
                prev = Some(u.seq);
            }
        }
        for (key, r) in &rl.recv_flows {
            if r.ooo.iter().next().is_some_and(|&s| s <= r.next_expected) {
                out.push(format!(
                    "flow {key:?}: out-of-order set overlaps cumulative frontier {}",
                    r.next_expected
                ));
            }
            if r.ooo.len() > rl.cfg.window {
                out.push(format!(
                    "flow {key:?}: {} out-of-order frames exceed window {}",
                    r.ooo.len(),
                    rl.cfg.window
                ));
            }
        }
        let owed = rl.recv_flows.values().filter(|r| r.owed_since.is_some()).count();
        if owed != rl.owed_count {
            out.push(format!("owed-ack count {} disagrees with per-flow state {owed}", rl.owed_count));
        }
        out
    }

    /// True when nothing is in flight, nothing awaits draining, and
    /// (with the reliable sublayer) no frame awaits an ack and no ack is
    /// owed — a lossy run is only over once retransmission settles.
    pub fn is_idle(&self) -> bool {
        self.in_flight.is_empty()
            && self.arrived.iter().all(|q| q.is_empty())
            && self.reliable.as_ref().map_or(true, ReliableLink::is_idle)
    }

    /// Traffic statistics (flit and message counts).
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// The earliest cycle at which ticking this mesh can change state:
    /// `Some(now)` when something is actionable this cycle (arrivals
    /// waiting to be drained, or a flight whose `ready_at` has passed),
    /// the minimum future deadline otherwise (next flight hop, next ARQ
    /// retransmission timeout, next standalone-ack deadline), or `None`
    /// when the network is fully quiescent. Between `now` and the
    /// returned cycle, `tick` is a provable no-op.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        let mut next: Option<Cycle> = None;
        let mut consider = |c: Cycle| {
            let c = c.max(now);
            next = Some(next.map_or(c, |n| n.min(c)));
        };
        if self.arrived.iter().any(|q| !q.is_empty()) {
            consider(now);
        }
        for f in &self.in_flight {
            consider(f.ready_at);
        }
        if let Some(rl) = &self.reliable {
            for sf in rl.send_flows.values() {
                if let Some(head) = sf.unacked.front() {
                    consider(head.last_sent + head.rto);
                }
            }
            for r in rl.recv_flows.values() {
                if let Some(since) = r.owed_since {
                    consider(since + rl.cfg.ack_idle);
                }
            }
        }
        next
    }

    /// [`Mesh::next_event`] without the arrivals-awaiting-drain term:
    /// the earliest cycle at which `tick` itself can change state.
    ///
    /// `tick` never reads the arrival buffers — draining them is the
    /// *system's* job — so under the sparse engine, where dedicated
    /// per-node drain units are woken by the park log, the mesh unit
    /// sleeps on this hook. Using the full `next_event` there would pin
    /// the mesh (and its whole-machine jump) awake for as long as a
    /// flow-gap blocked arrival sits parked. The skip engine keeps the
    /// full hook: its single global probe has no drain units.
    pub fn next_internal_event(&self, now: Cycle) -> Option<Cycle> {
        let mut next: Option<Cycle> = None;
        let mut consider = |c: Cycle| {
            let c = c.max(now);
            next = Some(next.map_or(c, |n| n.min(c)));
        };
        for f in &self.in_flight {
            consider(f.ready_at);
        }
        if let Some(rl) = &self.reliable {
            for sf in rl.send_flows.values() {
                if let Some(head) = sf.unacked.front() {
                    consider(head.last_sent + head.rto);
                }
            }
            for r in rl.recv_flows.values() {
                if let Some(since) = r.owed_since {
                    consider(since + rl.cfg.ack_idle);
                }
            }
        }
        next
    }

    /// True when any arrival buffer holds parked frames (the term
    /// [`Mesh::next_internal_event`] omits; the sparse engine's restore
    /// path uses it to schedule drain units).
    pub fn has_arrivals(&self) -> bool {
        self.arrived.iter().any(|q| !q.is_empty())
    }

    /// True when node `n`'s arrival buffer holds parked frames.
    pub fn has_arrivals_at(&self, n: NodeId) -> bool {
        !self.arrived[n.index()].is_empty()
    }

    /// Re-seed every random stream in this mesh (routing jitter, chaos,
    /// faults) as if it had been built with `seed` — the warm-start
    /// forking primitive: restore one warmed snapshot, then `reseed`
    /// per derived cell.
    pub fn reseed(&mut self, seed: u64) {
        self.rng = SimRng::new(seed ^ 0x4e74_776b);
        if let Some(ch) = &mut self.chaos {
            ch.reseed(seed);
        }
        if let Some(fe) = &mut self.fault {
            fe.reseed(seed);
        }
    }
}

impl<T: wb_kernel::Snap> Mesh<T> {
    /// Serialize every execution-visible field. Geometry and latency
    /// knobs are configuration; the tracer, counter handles, and scratch
    /// buffers (cleared at each use) carry no execution-visible state.
    pub fn snap(&self, w: &mut wb_kernel::SnapWriter) {
        use wb_kernel::Snap;
        self.rng.state().snap(w);
        self.in_flight.snap(w);
        // HashMaps in sorted key order for determinism.
        let mut busy: Vec<((NodeId, usize), Cycle)> =
            self.link_busy.iter().map(|(&k, &c)| (k, c)).collect();
        busy.sort_unstable();
        busy.snap(w);
        self.arrived.snap(w);
        let mut flows: Vec<(FlowKey, u64)> =
            self.next_flow_seq.iter().map(|(&k, &s)| (k, s)).collect();
        flows.sort_unstable();
        flows.snap(w);
        let mut deliver: Vec<(FlowKey, u64)> =
            self.next_deliver_seq.iter().map(|(&k, &s)| (k, s)).collect();
        deliver.sort_unstable();
        deliver.snap(w);
        self.stats.snap(w);
        // Optional layers: presence must match the restore target (both
        // are installed from config before any traffic).
        match &self.chaos {
            Some(ch) => {
                w.bool(true);
                ch.snap(w);
            }
            None => w.bool(false),
        }
        match &self.reliable {
            Some(rl) => {
                w.bool(true);
                rl.snap(w);
            }
            None => w.bool(false),
        }
        match &self.fault {
            Some(fe) => {
                w.bool(true);
                fe.snap(w);
            }
            None => w.bool(false),
        }
    }

    /// Inverse of [`Mesh::snap`], in place. Fails if the snapshot's
    /// optional layers (chaos / reliable / fault) disagree with how this
    /// mesh was configured.
    pub fn restore(&mut self, r: &mut wb_kernel::SnapReader) -> wb_kernel::SnapResult<()> {
        use wb_kernel::Snap;
        self.rng = SimRng::from_state(<[u64; 4]>::unsnap(r)?);
        self.in_flight = Vec::unsnap(r)?;
        self.link_busy = Vec::<((NodeId, usize), Cycle)>::unsnap(r)?.into_iter().collect();
        self.arrived = Vec::unsnap(r)?;
        self.next_flow_seq = Vec::<(FlowKey, u64)>::unsnap(r)?.into_iter().collect();
        self.next_deliver_seq = Vec::<(FlowKey, u64)>::unsnap(r)?.into_iter().collect();
        let stats = Stats::unsnap(r)?;
        self.stats.load(&stats);
        let mismatch = |layer: &str| {
            wb_kernel::SnapError::new(format!(
                "snapshot and mesh disagree on the {layer} layer"
            ))
        };
        match (r.bool()?, &mut self.chaos) {
            (true, Some(ch)) => ch.restore(r)?,
            (false, None) => {}
            (_, _) => return Err(mismatch("chaos")),
        }
        match (r.bool()?, &mut self.reliable) {
            (true, Some(rl)) => rl.restore(r)?,
            (false, None) => {}
            (_, _) => return Err(mismatch("reliable-link")),
        }
        match (r.bool()?, &mut self.fault) {
            (true, Some(fe)) => fe.restore(r)?,
            (false, None) => {}
            (_, _) => return Err(mismatch("fault")),
        }
        Ok(())
    }
}

impl<T: Clone + Hash> Mesh<T> {
    /// Inject a message at cycle `now`. Delivery happens after routing
    /// latency; local (src == dst) messages still take one cycle. With
    /// the reliable sublayer enabled and the flow's window full, the
    /// message queues (backpressure) and transmits as acks free space.
    pub fn send(&mut self, now: Cycle, msg: MeshMsg<T>) {
        let MeshMsg { src, dst, vnet, flits, payload } = msg;
        let key: FlowKey = (src, dst, vnet.index());
        let seq_ref = self.next_flow_seq.entry(key).or_insert(0);
        let flow_seq = *seq_ref;
        *seq_ref += 1;

        self.stats.inc_h(self.h_msgs);
        self.stats.add_h(self.h_flits, flits as u64);
        self.stats.add_h(self.h_flits_vnet[vnet.index()], flits as u64);

        if let Some(mut rl) = self.reliable.take() {
            let sf = rl.send_flows.entry(key).or_default();
            if sf.unacked.len() >= rl.cfg.window || !sf.pending.is_empty() {
                // Window full (or a queue already formed): backpressure,
                // never loss. Timing effects (link serialization, jitter,
                // chaos) apply at actual transmission, not queueing.
                sf.pending.push_back(Pending { payload, flits, seq: flow_seq, queued_at: now });
                self.stats.inc("link_backpressure_msgs");
            } else {
                self.transmit_data(&mut rl, now, key, payload, flits, flow_seq, now);
            }
            self.reliable = Some(rl);
            return;
        }

        // Fast path: no reliable layer, no link header, no checksum.
        // Injection-link serialization: one flit/cycle per (node, vnet).
        let busy = self.link_busy.entry((src, vnet.index())).or_insert(0);
        let start = now.max(*busy);
        *busy = start + flits as u64;

        let jitter = if self.jitter > 0 { self.rng.below(self.jitter + 1) } else { 0 };
        let hops = self.hops(src, dst);
        let mut ready_at = start + 1 + jitter; // one cycle of local latency
        if let Some(ch) = &mut self.chaos {
            ready_at += ch.delay(now, src.0, dst.0, vnet.index() as u8, &mut self.stats);
        }
        self.in_flight.push(Flight {
            src,
            dst,
            vnet,
            flits,
            payload: Some(payload),
            link: None,
            hops_left: hops,
            ready_at,
            flow_seq,
            sent_at: now,
        });
    }

    /// First transmission of a data frame on flow `key` (either straight
    /// from [`Mesh::send`] or a backpressured message leaving `pending`).
    /// `origin` is the protocol's injection cycle, preserved through
    /// queueing and retransmission for honest latency accounting.
    fn transmit_data(
        &mut self,
        rl: &mut ReliableLink<T>,
        now: Cycle,
        key: FlowKey,
        payload: T,
        flits: u32,
        seq: u64,
        origin: Cycle,
    ) {
        let (src, dst, vi) = key;
        let ack = rl.take_piggyback_ack((dst, src, vi));
        let check = frame_check(src, dst, vi, flits, Some(seq), ack, Some(&payload));
        let rto = rl.cfg.rto_min;
        let sf = rl.send_flows.entry(key).or_default();
        sf.unacked.push_back(Unacked {
            payload: payload.clone(),
            flits,
            seq,
            first_sent: origin,
            last_sent: now,
            rto,
            retx: 0,
        });

        let busy = self.link_busy.entry((src, vi)).or_insert(0);
        let start = now.max(*busy);
        *busy = start + flits as u64;
        let jitter = if self.jitter > 0 { self.rng.below(self.jitter + 1) } else { 0 };
        let mut ready_at = start + 1 + jitter;
        if let Some(ch) = &mut self.chaos {
            ready_at += ch.delay(now, src.0, dst.0, vi as u8, &mut self.stats);
        }
        let hops = self.hops(src, dst);
        self.in_flight.push(Flight {
            src,
            dst,
            vnet: VNet::ALL[vi],
            flits,
            payload: Some(payload),
            link: Some(Box::new(LinkCtl::Data { seq, ack, check })),
            hops_left: hops,
            ready_at,
            flow_seq: seq,
            sent_at: origin,
        });
    }

    /// Advance the network by one cycle: move flights along their route,
    /// apply link faults at hop granularity, park completed frames in the
    /// destination's arrival buffer (through link-layer receive when the
    /// reliable sublayer is active), then run retransmission/ack
    /// maintenance.
    pub fn tick(&mut self, now: Cycle) {
        let hop_cycles = self.hop_cycles;
        let trace_hops = self.tracer.wants(Category::Mesh);
        // (index, was_dropped) in ascending index order. Both buffers
        // are owned scratch space (taken/restored around the borrow of
        // `in_flight`) so steady-state ticking never allocates.
        let mut removals = std::mem::take(&mut self.scratch_removals);
        let mut dups = std::mem::take(&mut self.scratch_dups);
        removals.clear();
        dups.clear();
        for (i, f) in self.in_flight.iter_mut().enumerate() {
            if f.ready_at > now {
                continue;
            }
            if f.hops_left == 0 {
                removals.push((i, false));
                continue;
            }
            // Traverse one switch-to-switch link: head latency plus
            // tail serialization.
            f.hops_left -= 1;
            f.ready_at = now + hop_cycles + (f.flits as u64 - 1);
            if trace_hops {
                self.tracer.record(
                    now,
                    TraceEvent::MeshHop {
                        src: f.src.0,
                        dst: f.dst.0,
                        hops_left: f.hops_left,
                        vnet: f.vnet.index() as u8,
                    },
                );
            }
            if let Some(eng) = &mut self.fault {
                let fate = eng.at_hop(f.src.0, f.dst.0, f.vnet.index() as u8);
                if fate.drop {
                    self.stats.inc("link_drops");
                    self.tracer.record(
                        now,
                        TraceEvent::LinkDrop {
                            src: f.src.0,
                            dst: f.dst.0,
                            vnet: f.vnet.index() as u8,
                            seq: f.link.as_deref().map_or(f.flow_seq, LinkCtl::trace_seq),
                            corrupt: false,
                        },
                    );
                    removals.push((i, true));
                    continue;
                }
                if fate.duplicate {
                    // The clone continues from this hop independently
                    // (and may itself be faulted downstream).
                    self.stats.inc("link_dups");
                    dups.push(f.clone());
                }
                if let Some(mask) = fate.corrupt {
                    if let Some(link) = &mut f.link {
                        link.corrupt(mask);
                        self.stats.inc("link_corrupt_injected");
                    }
                }
            }
        }
        // Remove in reverse index order so indices stay valid; duplicates
        // are appended only afterwards for the same reason.
        if let Some(mut rl) = self.reliable.take() {
            for &(i, was_dropped) in removals.iter().rev() {
                let f = self.in_flight.swap_remove(i);
                if !was_dropped {
                    self.receive_frame(&mut rl, now, f);
                }
            }
            self.in_flight.append(&mut dups);
            self.link_maintenance(&mut rl, now);
            self.reliable = Some(rl);
        } else {
            for &(i, _) in removals.iter().rev() {
                let f = self.in_flight.swap_remove(i);
                self.stats.record("mesh_msg_cycles", now.saturating_sub(f.sent_at));
                self.park(f);
            }
            self.in_flight.append(&mut dups);
        }
        self.scratch_removals = removals;
        self.scratch_dups = dups;
    }

    /// Link-layer receive: checksum verification, ack application, dedup.
    /// Runs at arrival time (not drain time) so acks are consumed even
    /// when the destination node never drains this cycle.
    fn receive_frame(&mut self, rl: &mut ReliableLink<T>, now: Cycle, mut f: Flight<T>) {
        let vi = f.vnet.index();
        let Some(link) = f.link.take() else {
            // Unreachable in practice: the sublayer is enabled before any
            // traffic, so every frame carries a header. Deliver as-is.
            self.stats.record("mesh_msg_cycles", now.saturating_sub(f.sent_at));
            self.park(f);
            return;
        };
        match *link {
            LinkCtl::Ack { ack, check } => {
                if frame_check::<T>(f.src, f.dst, vi, f.flits, None, ack, None) != check {
                    self.discard_corrupt(now, f.src, f.dst, vi, ack);
                    return;
                }
                // The ack acknowledges the reverse flow (dst -> src data).
                self.apply_ack(rl, now, (f.dst, f.src, vi), ack);
            }
            LinkCtl::Data { seq, ack, check } => {
                if frame_check(f.src, f.dst, vi, f.flits, Some(seq), ack, f.payload.as_ref()) != check {
                    // Corrupted in transit: discard; the sender's timeout
                    // will retransmit.
                    self.discard_corrupt(now, f.src, f.dst, vi, seq);
                    return;
                }
                if ack > 0 {
                    self.apply_ack(rl, now, (f.dst, f.src, vi), ack);
                }
                let key: FlowKey = (f.src, f.dst, vi);
                let verdict = rl.recv_flows.entry(key).or_insert_with(RecvFlow::new).on_data(seq);
                // Fresh or duplicate, an ack is owed: a duplicate usually
                // means the sender missed our previous ack.
                rl.mark_owed(key, now);
                match verdict {
                    RecvVerdict::Duplicate => {
                        self.stats.inc("link_dup_squashed");
                        self.tracer.record(
                            now,
                            TraceEvent::LinkDupSquashed { src: f.src.0, dst: f.dst.0, vnet: vi as u8, seq },
                        );
                    }
                    RecvVerdict::Fresh => {
                        self.stats.record("mesh_msg_cycles", now.saturating_sub(f.sent_at));
                        self.park(f);
                    }
                }
            }
        }
    }

    fn discard_corrupt(&mut self, now: Cycle, src: NodeId, dst: NodeId, vi: usize, seq: u64) {
        self.stats.inc("link_corrupt_dropped");
        self.tracer.record(
            now,
            TraceEvent::LinkDrop { src: src.0, dst: dst.0, vnet: vi as u8, seq, corrupt: true },
        );
    }

    /// Apply a cumulative ack and refill the freed window from `pending`.
    fn apply_ack(&mut self, rl: &mut ReliableLink<T>, now: Cycle, key: FlowKey, ack: u64) {
        for retx in rl.apply_ack(key, ack) {
            if retx > 0 {
                self.stats.record("link_retx_count", retx as u64);
            }
        }
        loop {
            let Some(sf) = rl.send_flows.get_mut(&key) else { return };
            if sf.unacked.len() >= rl.cfg.window {
                return;
            }
            let Some(p) = sf.pending.pop_front() else { return };
            self.transmit_data(rl, now, key, p.payload, p.flits, p.seq, p.queued_at);
        }
    }

    /// Once-per-tick ARQ upkeep: retransmit timed-out window heads and
    /// emit standalone acks for flows whose reverse direction went idle.
    fn link_maintenance(&mut self, rl: &mut ReliableLink<T>, now: Cycle) {
        // Retransmission: only the oldest unacked frame per flow (its
        // loss is what blocks the cumulative frontier), with exponential
        // backoff capped at rto_max. Retransmits ride a sideband (no
        // link_busy/jitter/chaos interaction) so a fault-free run's rng
        // stream and schedule stay untouched by the sublayer's existence.
        let rto_max = rl.cfg.rto_max;
        let mut keys = std::mem::take(&mut self.scratch_flow_keys);
        keys.clear();
        keys.extend(rl.send_flows.keys().copied());
        for key in keys.drain(..) {
            let Some(sf) = rl.send_flows.get_mut(&key) else { continue };
            let Some(head) = sf.unacked.front_mut() else { continue };
            if now.saturating_sub(head.last_sent) < head.rto {
                continue;
            }
            head.last_sent = now;
            head.rto = head.rto.saturating_mul(2).min(rto_max);
            head.retx += 1;
            let (payload, flits, seq, first_sent, attempt) =
                (head.payload.clone(), head.flits, head.seq, head.first_sent, head.retx);
            let (src, dst, vi) = key;
            self.stats.inc("link_retx");
            self.stats.record("link_retx_cycles", now.saturating_sub(first_sent));
            self.tracer.record(
                now,
                TraceEvent::LinkRetx { src: src.0, dst: dst.0, vnet: vi as u8, seq, attempt },
            );
            let ack = rl.take_piggyback_ack((dst, src, vi));
            let check = frame_check(src, dst, vi, flits, Some(seq), ack, Some(&payload));
            let hops = self.hops(src, dst);
            self.in_flight.push(Flight {
                src,
                dst,
                vnet: VNet::ALL[vi],
                flits,
                payload: Some(payload),
                link: Some(Box::new(LinkCtl::Data { seq, ack, check })),
                hops_left: hops,
                ready_at: now + 1,
                flow_seq: seq,
                sent_at: first_sent,
            });
        }

        self.scratch_flow_keys = keys;

        // Standalone acks: when the reverse direction has been silent for
        // ack_idle cycles, pay one control flit to unblock the sender.
        if rl.owed_count == 0 {
            return;
        }
        let ack_idle = rl.cfg.ack_idle;
        let mut due = std::mem::take(&mut self.scratch_acks_due);
        due.clear();
        let ReliableLink { recv_flows, owed_count, .. } = rl;
        for (key, r) in recv_flows.iter_mut() {
            if let Some(since) = r.owed_since {
                if now.saturating_sub(since) >= ack_idle {
                    r.owed_since = None;
                    *owed_count -= 1;
                    due.push((*key, r.next_expected));
                }
            }
        }
        for ((src, dst, vi), ack) in due.drain(..) {
            // The ack travels the reverse direction of the data flow.
            self.stats.inc("link_acks");
            let check = frame_check::<T>(dst, src, vi, 1, None, ack, None);
            let hops = self.hops(dst, src);
            self.in_flight.push(Flight {
                src: dst,
                dst: src,
                vnet: VNet::ALL[vi],
                flits: 1,
                payload: None,
                link: Some(Box::new(LinkCtl::Ack { ack, check })),
                hops_left: hops,
                ready_at: now + 1,
                flow_seq: 0,
                sent_at: now,
            });
        }
        self.scratch_acks_due = due;
    }
}
