//! Reliable-delivery sublayer for the mesh: a small transport protocol
//! that sits *under* the coherence protocol and *over* the raw links.
//!
//! When a [`FaultPlan`](wb_kernel::fault::FaultPlan) is active, links may
//! drop, duplicate, or corrupt frames. This module restores the
//! exactly-once, per-flow-FIFO delivery contract the protocol layer was
//! built on, so the coherence machines and the LSQ stay untouched and
//! unaware. The machinery is classic selective-repeat ARQ:
//!
//! - every data frame on a (src, dst, vnet) flow carries a **sequence
//!   number** (the same counter that drives per-flow FIFO release) and a
//!   **checksum** over the whole frame;
//! - receivers return **cumulative acks** (`ack = n` means "every seq
//!   `< n` arrived"), piggybacked on reverse-direction data frames or as
//!   standalone 1-flit ack frames once the reverse direction has been
//!   idle for `ack_idle` cycles;
//! - senders keep a bounded **retransmit buffer** (`window` frames);
//!   the oldest unacked frame is retransmitted when its timeout expires,
//!   with exponential backoff capped at `rto_max`. When the window is
//!   full, new sends queue in `pending` — backpressure, not loss;
//! - receivers **dedup** by sequence number: anything below the
//!   cumulative frontier, or already buffered out-of-order, is squashed.
//!
//! Corruption is modeled as an XOR of a non-zero mask into the carried
//! checksum (the payload is an opaque generic, so "flipping bits in it"
//! and "making the checksum disagree" are observationally identical to a
//! receiver that discards on mismatch and awaits retransmission).

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::hash::{Hash, Hasher};
use wb_kernel::config::LinkConfig;
use wb_kernel::{Cycle, NodeId};

/// Flow identity: (source, destination, vnet ordinal).
pub(crate) type FlowKey = (NodeId, NodeId, usize);

/// Link-layer control header attached to every frame while the reliable
/// sublayer is enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LinkCtl {
    /// A protocol message: `seq` orders it within its flow, `ack`
    /// piggybacks the reverse flow's cumulative frontier, `check`
    /// covers the whole frame.
    Data { seq: u64, ack: u64, check: u64 },
    /// A standalone cumulative ack for the reverse flow (1 flit, no
    /// payload, never surfaced to the protocol layer).
    Ack { ack: u64, check: u64 },
}

impl LinkCtl {
    /// The sequence identity used for trace events (a data frame's seq,
    /// an ack frame's frontier).
    pub(crate) fn trace_seq(&self) -> u64 {
        match *self {
            LinkCtl::Data { seq, .. } => seq,
            LinkCtl::Ack { ack, .. } => ack,
        }
    }

    /// XOR a fault mask into the carried checksum (link corruption).
    pub(crate) fn corrupt(&mut self, mask: u64) {
        match self {
            LinkCtl::Data { check, .. } | LinkCtl::Ack { check, .. } => *check ^= mask,
        }
    }
}

/// Deterministic frame checksum. `DefaultHasher::new()` is SipHash with
/// fixed keys, so the value is stable for a given frame across runs —
/// exactly what a seeded simulator needs.
pub(crate) fn frame_check<T: Hash>(
    src: NodeId,
    dst: NodeId,
    vnet: usize,
    flits: u32,
    seq: Option<u64>,
    ack: u64,
    payload: Option<&T>,
) -> u64 {
    let mut h = DefaultHasher::new();
    (src.0, dst.0, vnet as u8, flits, seq, ack).hash(&mut h);
    if let Some(p) = payload {
        p.hash(&mut h);
    }
    h.finish()
}

/// One frame held in the sender's retransmit buffer.
#[derive(Debug, Clone)]
pub(crate) struct Unacked<T> {
    pub payload: T,
    pub flits: u32,
    pub seq: u64,
    /// Cycle the protocol first injected the message (latency baseline).
    pub first_sent: Cycle,
    /// Cycle of the most recent (re)transmission.
    pub last_sent: Cycle,
    /// Current retransmission timeout (doubles per attempt, capped).
    pub rto: u64,
    /// Retransmission attempts so far.
    pub retx: u32,
}

/// A message waiting for window space (backpressured, never lost).
#[derive(Debug, Clone)]
pub(crate) struct Pending<T> {
    pub payload: T,
    pub flits: u32,
    pub seq: u64,
    pub queued_at: Cycle,
}

/// Sender-side state of one flow. Removed from the map once drained, so
/// per-tick maintenance scans only flows with work outstanding.
#[derive(Debug, Clone)]
pub(crate) struct SendFlow<T> {
    pub unacked: VecDeque<Unacked<T>>,
    pub pending: VecDeque<Pending<T>>,
}

impl<T> Default for SendFlow<T> {
    fn default() -> Self {
        SendFlow { unacked: VecDeque::new(), pending: VecDeque::new() }
    }
}

impl<T> SendFlow<T> {
    pub fn is_drained(&self) -> bool {
        self.unacked.is_empty() && self.pending.is_empty()
    }
}

/// Receiver-side state of one flow. Persists for the run: the cumulative
/// frontier must survive idle periods or a restarted flow would
/// mis-classify fresh frames.
#[derive(Debug, Clone)]
pub(crate) struct RecvFlow {
    /// Every seq `< next_expected` has been received (cumulative ack value).
    pub next_expected: u64,
    /// Out-of-order seqs received beyond the frontier (bounded by the
    /// sender window).
    pub ooo: BTreeSet<u64>,
    /// Cycle an ack became owed (`None` when nothing is owed).
    pub owed_since: Option<Cycle>,
}

impl RecvFlow {
    pub fn new() -> Self {
        RecvFlow { next_expected: 0, ooo: BTreeSet::new(), owed_since: None }
    }

    /// What a data frame with `seq` should do at the link layer.
    /// Advances the frontier on acceptance.
    pub fn on_data(&mut self, seq: u64) -> RecvVerdict {
        if seq < self.next_expected || self.ooo.contains(&seq) {
            return RecvVerdict::Duplicate;
        }
        if seq == self.next_expected {
            self.next_expected += 1;
            while self.ooo.remove(&self.next_expected) {
                self.next_expected += 1;
            }
        } else {
            self.ooo.insert(seq);
        }
        RecvVerdict::Fresh
    }
}

/// Outcome of link-layer receive processing for a data frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RecvVerdict {
    /// First arrival: surface to the protocol layer.
    Fresh,
    /// Already seen: squash (and re-ack, the sender may have missed it).
    Duplicate,
}

/// The reliable sublayer's whole state: per-flow send/recv machines plus
/// the policy knobs.
#[derive(Debug, Clone)]
pub(crate) struct ReliableLink<T> {
    pub cfg: LinkConfig,
    pub send_flows: BTreeMap<FlowKey, SendFlow<T>>,
    pub recv_flows: BTreeMap<FlowKey, RecvFlow>,
    /// Number of recv flows currently owing an ack — lets the per-tick
    /// maintenance skip the recv scan entirely in the common case.
    pub owed_count: usize,
}

impl<T> ReliableLink<T> {
    pub fn new(cfg: LinkConfig) -> Self {
        ReliableLink { cfg, send_flows: BTreeMap::new(), recv_flows: BTreeMap::new(), owed_count: 0 }
    }

    /// The cumulative frontier to piggyback for `key`'s reverse flow,
    /// clearing the owed-ack state (the piggyback *is* the ack).
    pub fn take_piggyback_ack(&mut self, reverse: FlowKey) -> u64 {
        match self.recv_flows.get_mut(&reverse) {
            Some(r) => {
                if r.owed_since.take().is_some() {
                    self.owed_count -= 1;
                }
                r.next_expected
            }
            None => 0,
        }
    }

    /// Mark `key` as owing an ack since `now` (keeps the earliest stamp).
    pub fn mark_owed(&mut self, key: FlowKey, now: Cycle) {
        let r = self.recv_flows.entry(key).or_insert_with(RecvFlow::new);
        if r.owed_since.is_none() {
            r.owed_since = Some(now);
            self.owed_count += 1;
        }
    }

    /// Apply a cumulative ack to the flow's retransmit buffer, returning
    /// the retx attempt count of every newly-acked frame (for the
    /// `link_retx_count` histogram).
    pub fn apply_ack(&mut self, key: FlowKey, ack: u64) -> Vec<u32> {
        let mut acked_retx = Vec::new();
        if let Some(sf) = self.send_flows.get_mut(&key) {
            while sf.unacked.front().is_some_and(|u| u.seq < ack) {
                if let Some(u) = sf.unacked.pop_front() {
                    acked_retx.push(u.retx);
                }
            }
            if sf.is_drained() {
                self.send_flows.remove(&key);
            }
        }
        acked_retx
    }

    /// True when no flow holds unacked/pending frames and no ack is owed.
    pub fn is_idle(&self) -> bool {
        self.send_flows.is_empty() && self.owed_count == 0
    }
}

impl wb_kernel::Snap for LinkCtl {
    fn snap(&self, w: &mut wb_kernel::SnapWriter) {
        match *self {
            LinkCtl::Data { seq, ack, check } => {
                w.u8(0);
                w.u64(seq);
                w.u64(ack);
                w.u64(check);
            }
            LinkCtl::Ack { ack, check } => {
                w.u8(1);
                w.u64(ack);
                w.u64(check);
            }
        }
    }
    fn unsnap(r: &mut wb_kernel::SnapReader) -> wb_kernel::SnapResult<Self> {
        match r.u8()? {
            0 => Ok(LinkCtl::Data { seq: r.u64()?, ack: r.u64()?, check: r.u64()? }),
            1 => Ok(LinkCtl::Ack { ack: r.u64()?, check: r.u64()? }),
            t => Err(wb_kernel::SnapError::new(format!("bad LinkCtl tag {t:#x}"))),
        }
    }
}

impl<T: wb_kernel::Snap> wb_kernel::Snap for Unacked<T> {
    fn snap(&self, w: &mut wb_kernel::SnapWriter) {
        self.payload.snap(w);
        w.u32(self.flits);
        w.u64(self.seq);
        w.u64(self.first_sent);
        w.u64(self.last_sent);
        w.u64(self.rto);
        w.u32(self.retx);
    }
    fn unsnap(r: &mut wb_kernel::SnapReader) -> wb_kernel::SnapResult<Self> {
        Ok(Unacked {
            payload: T::unsnap(r)?,
            flits: r.u32()?,
            seq: r.u64()?,
            first_sent: r.u64()?,
            last_sent: r.u64()?,
            rto: r.u64()?,
            retx: r.u32()?,
        })
    }
}

impl<T: wb_kernel::Snap> wb_kernel::Snap for Pending<T> {
    fn snap(&self, w: &mut wb_kernel::SnapWriter) {
        self.payload.snap(w);
        w.u32(self.flits);
        w.u64(self.seq);
        w.u64(self.queued_at);
    }
    fn unsnap(r: &mut wb_kernel::SnapReader) -> wb_kernel::SnapResult<Self> {
        Ok(Pending { payload: T::unsnap(r)?, flits: r.u32()?, seq: r.u64()?, queued_at: r.u64()? })
    }
}

impl<T: wb_kernel::Snap> wb_kernel::Snap for SendFlow<T> {
    fn snap(&self, w: &mut wb_kernel::SnapWriter) {
        self.unacked.snap(w);
        self.pending.snap(w);
    }
    fn unsnap(r: &mut wb_kernel::SnapReader) -> wb_kernel::SnapResult<Self> {
        Ok(SendFlow { unacked: VecDeque::unsnap(r)?, pending: VecDeque::unsnap(r)? })
    }
}

impl wb_kernel::Snap for RecvFlow {
    fn snap(&self, w: &mut wb_kernel::SnapWriter) {
        w.u64(self.next_expected);
        self.ooo.snap(w);
        self.owed_since.snap(w);
    }
    fn unsnap(r: &mut wb_kernel::SnapReader) -> wb_kernel::SnapResult<Self> {
        Ok(RecvFlow {
            next_expected: r.u64()?,
            ooo: BTreeSet::unsnap(r)?,
            owed_since: Option::unsnap(r)?,
        })
    }
}

impl<T: wb_kernel::Snap> ReliableLink<T> {
    /// Serialize the ARQ state. The policy knobs (`cfg`) are
    /// configuration, not state: restore targets a link built with the
    /// same [`LinkConfig`].
    pub(crate) fn snap(&self, w: &mut wb_kernel::SnapWriter) {
        use wb_kernel::Snap;
        self.send_flows.snap(w);
        self.recv_flows.snap(w);
        w.usize(self.owed_count);
    }

    /// Inverse of [`ReliableLink::snap`], in place.
    pub(crate) fn restore(&mut self, r: &mut wb_kernel::SnapReader) -> wb_kernel::SnapResult<()> {
        use wb_kernel::Snap;
        self.send_flows = BTreeMap::unsnap(r)?;
        self.recv_flows = BTreeMap::unsnap(r)?;
        self.owed_count = r.usize()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_is_deterministic_and_field_sensitive() {
        let c = |seq, ack, p: &u32| {
            frame_check(NodeId(1), NodeId(2), 0, 1, Some(seq), ack, Some(p))
        };
        assert_eq!(c(5, 2, &9), c(5, 2, &9));
        assert_ne!(c(5, 2, &9), c(6, 2, &9), "seq must be covered");
        assert_ne!(c(5, 2, &9), c(5, 3, &9), "ack must be covered");
        assert_ne!(c(5, 2, &9), c(5, 2, &10), "payload must be covered");
        assert_ne!(
            frame_check(NodeId(1), NodeId(2), 0, 1, Some(5), 2, Some(&9u32)),
            frame_check(NodeId(2), NodeId(1), 0, 1, Some(5), 2, Some(&9u32)),
            "endpoints must be covered"
        );
    }

    #[test]
    fn corruption_always_detected() {
        // Any non-zero XOR into the carried checksum must mismatch the
        // recomputed one (XOR by non-zero changes the value).
        let check = frame_check(NodeId(0), NodeId(3), 2, 5, Some(0), 0, Some(&77u64));
        let mut ctl = LinkCtl::Data { seq: 0, ack: 0, check };
        ctl.corrupt(0xdead_beef | 1);
        match ctl {
            LinkCtl::Data { check: carried, .. } => assert_ne!(carried, check),
            LinkCtl::Ack { .. } => unreachable!(),
        }
    }

    #[test]
    fn recv_flow_dedups_and_reorders() {
        let mut r = RecvFlow::new();
        assert_eq!(r.on_data(0), RecvVerdict::Fresh);
        assert_eq!(r.next_expected, 1);
        // Out of order: accepted at link layer, frontier holds.
        assert_eq!(r.on_data(2), RecvVerdict::Fresh);
        assert_eq!(r.next_expected, 1);
        // Duplicates of both kinds squash.
        assert_eq!(r.on_data(0), RecvVerdict::Duplicate);
        assert_eq!(r.on_data(2), RecvVerdict::Duplicate);
        // Gap fill advances past the buffered frame.
        assert_eq!(r.on_data(1), RecvVerdict::Fresh);
        assert_eq!(r.next_expected, 3);
        assert!(r.ooo.is_empty());
    }

    #[test]
    fn cumulative_ack_pops_prefix_only() {
        let mut link: ReliableLink<u32> = ReliableLink::new(LinkConfig::default());
        let key = (NodeId(0), NodeId(1), 0);
        let sf = link.send_flows.entry(key).or_default();
        for seq in 0..4 {
            sf.unacked.push_back(Unacked {
                payload: seq as u32,
                flits: 1,
                seq,
                first_sent: 0,
                last_sent: 0,
                rto: 256,
                retx: if seq == 1 { 2 } else { 0 },
            });
        }
        let acked = link.apply_ack(key, 2);
        assert_eq!(acked, vec![0, 2], "seqs 0 and 1 acked, seq 1 had 2 retx");
        let remaining = link.send_flows.get(&key).map(|s| s.unacked.len());
        assert_eq!(remaining, Some(2));
        // Acking everything drains and removes the flow.
        let _ = link.apply_ack(key, 4);
        assert!(link.send_flows.is_empty());
        assert!(link.is_idle());
    }

    #[test]
    fn owed_bookkeeping_balances() {
        let mut link: ReliableLink<u32> = ReliableLink::new(LinkConfig::default());
        let key = (NodeId(3), NodeId(0), 2);
        link.mark_owed(key, 10);
        link.mark_owed(key, 50); // earliest stamp wins
        assert_eq!(link.owed_count, 1);
        assert_eq!(link.recv_flows.get(&key).and_then(|r| r.owed_since), Some(10));
        // Piggybacking clears the debt exactly once.
        assert_eq!(link.take_piggyback_ack(key), 0);
        assert_eq!(link.owed_count, 0);
        assert_eq!(link.take_piggyback_ack(key), 0);
        assert_eq!(link.owed_count, 0);
    }
}
