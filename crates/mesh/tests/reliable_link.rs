//! Reliable-delivery sublayer under injected link faults: drops are
//! retransmitted, duplicates squashed, corruptions detected, and the
//! protocol-visible contract (exactly-once, per-flow FIFO) holds — at
//! the historical 4x4 and at 8x8 (`common::CONTRACT_TOPOS`).

use wb_kernel::config::LinkConfig;
use wb_kernel::fault::{FaultEffect, FaultEngine, FaultPlan, HopFate};
use wb_kernel::chaos::FlowMatch;
use wb_kernel::{NodeId, TraceEvent};
use wb_mesh::{Mesh, MeshMsg, VNet};

mod common;
use common::{Topo, CONTRACT_TOPOS, X4};

fn reliable_mesh(topo: Topo, seed: u64, plan: FaultPlan) -> Mesh<u32> {
    let mut m = topo.mesh(0, seed);
    m.enable_reliable(LinkConfig::default());
    m.set_fault(Some(FaultEngine::new(plan, seed)));
    m
}

/// Drive until idle (or the cycle limit), draining every node each
/// cycle; returns the delivered payloads per destination in drain order.
fn run_to_idle(m: &mut Mesh<u32>, nodes: usize, limit: u64) -> Vec<Vec<u32>> {
    let mut got: Vec<Vec<u32>> = (0..nodes).map(|_| Vec::new()).collect();
    for now in 0..limit {
        m.tick(now);
        for n in 0..nodes as u16 {
            got[n as usize].extend(m.drain_arrived(NodeId(n)).into_iter().map(|ms| ms.payload));
        }
        if m.is_idle() {
            return got;
        }
    }
    panic!("mesh failed to go idle within {limit} cycles: {} in flight", m.in_flight());
}

#[test]
fn no_fault_reliable_run_delivers_in_order_and_settles() {
    for topo in CONTRACT_TOPOS {
        let far = topo.far_corner();
        let mut m = reliable_mesh(topo, 3, FaultPlan::none());
        for p in 0..25u32 {
            m.send(p as u64, MeshMsg { src: NodeId(1), dst: NodeId(far - 1), vnet: VNet::Request, flits: 1, payload: p });
        }
        let got = run_to_idle(&mut m, topo.nodes(), 50_000);
        assert_eq!(got[(far - 1) as usize], (0..25).collect::<Vec<_>>(), "{topo:?}");
        assert_eq!(m.fault_injected(), (0, 0, 0));
        assert_eq!(m.stats().get("link_retx"), 0, "nothing lost, nothing to retransmit");
        assert!(m.stats().get("link_acks") > 0, "flows must still be acked to settle");
    }
}

#[test]
fn drops_are_retransmitted_exactly_once_fifo() {
    for topo in CONTRACT_TOPOS {
        let far = topo.far_corner();
        let mut m = reliable_mesh(topo, 7, FaultPlan::drop_everywhere(1, 10));
        for p in 0..40u32 {
            m.send(p as u64, MeshMsg { src: NodeId(0), dst: NodeId(far), vnet: VNet::Response, flits: 5, payload: p });
        }
        let got = run_to_idle(&mut m, topo.nodes(), 2_000_000);
        assert_eq!(got[far as usize], (0..40).collect::<Vec<_>>(), "{topo:?}: exactly once, in order");
        let (dropped, _, _) = m.fault_injected();
        assert!(dropped > 0, "{topo:?}: 1/10 drop never fired over 40 long-route messages");
        // Not every drop forces its own retransmission (a dropped standalone
        // ack can be covered by a later cumulative ack), but recovery from
        // data loss always needs at least one.
        assert!(m.stats().get("link_retx") > 0, "lost data frames must be retransmitted");
        let retx_hist = m.stats().hist("link_retx_cycles").expect("retx latency hist");
        assert!(retx_hist.count() > 0);
        let count_hist = m.stats().hist("link_retx_count").expect("retx count hist");
        assert!(count_hist.count() > 0);
    }
}

#[test]
fn duplicates_are_squashed() {
    for topo in CONTRACT_TOPOS {
        let far = topo.far_corner();
        let mut m = reliable_mesh(topo, 11, FaultPlan::duplicate_storm());
        for p in 0..30u32 {
            m.send(p as u64, MeshMsg { src: NodeId(2), dst: NodeId(far - 2), vnet: VNet::Forward, flits: 1, payload: p });
        }
        let got = run_to_idle(&mut m, topo.nodes(), 2_000_000);
        assert_eq!(got[(far - 2) as usize], (0..30).collect::<Vec<_>>(), "{topo:?}: duplicates must not surface");
        let (_, duplicated, _) = m.fault_injected();
        assert!(duplicated > 0, "1/5 duplication never fired");
        assert!(m.stats().get("link_dup_squashed") > 0);
    }
}

#[test]
fn corruption_is_detected_and_recovered() {
    for topo in CONTRACT_TOPOS {
        let far = topo.far_corner();
        let mut m = reliable_mesh(topo, 5, FaultPlan::corrupt_everywhere());
        for p in 0..30u32 {
            m.send(p as u64, MeshMsg { src: NodeId(3), dst: NodeId(far - 3), vnet: VNet::Response, flits: 5, payload: p });
        }
        let got = run_to_idle(&mut m, topo.nodes(), 2_000_000);
        assert_eq!(got[(far - 3) as usize], (0..30).collect::<Vec<_>>(), "{topo:?}");
        let (_, _, corrupted) = m.fault_injected();
        assert!(corrupted > 0, "1/10 corruption never fired");
        // Injection counts per-hop events; a frame corrupted at two hops is
        // discarded once. Every corrupted frame must be caught, never more.
        assert!(m.stats().get("link_corrupt_dropped") > 0, "no corruption was ever caught");
        assert!(
            m.stats().get("link_corrupt_dropped") <= m.stats().get("link_corrupt_injected"),
            "more discards than injected corruptions"
        );
    }
}

#[test]
fn window_backpressure_queues_and_eventually_delivers() {
    let mut m: Mesh<u32> = X4.mesh(0, 9);
    m.enable_reliable(LinkConfig { window: 4, rto_min: 64, rto_max: 1024, ack_idle: 8 });
    m.set_fault(Some(FaultEngine::new(FaultPlan::drop_everywhere(1, 5), 9)));
    // Burst far beyond the 4-frame window in one cycle.
    for p in 0..50u32 {
        m.send(0, MeshMsg { src: NodeId(0), dst: NodeId(15), vnet: VNet::Request, flits: 1, payload: p });
    }
    assert!(m.stats().get("link_backpressure_msgs") >= 46, "window 4 must queue the rest");
    let got = run_to_idle(&mut m, 16, 2_000_000);
    assert_eq!(got[15], (0..50).collect::<Vec<_>>());
}

#[test]
fn mixed_misery_across_all_pairs_stays_exactly_once() {
    for topo in CONTRACT_TOPOS {
        let n = topo.nodes() as u32;
        let mut m = reliable_mesh(topo, 21, FaultPlan::mixed_misery());
        let mut expected: Vec<Vec<u32>> = (0..topo.nodes()).map(|_| Vec::new()).collect();
        for p in 0..120u32 {
            let src = NodeId((p % n) as u16);
            let dst = NodeId((p.wrapping_mul(7) % n) as u16);
            let vnet = VNet::ALL[(p % 3) as usize];
            m.send(p as u64, MeshMsg { src, dst, vnet, flits: 1 + 4 * (p % 2), payload: p });
            expected[dst.index()].push(p);
        }
        let got = run_to_idle(&mut m, topo.nodes(), 4_000_000);
        for node in 0..topo.nodes() {
            let mut g = got[node].clone();
            let mut e = expected[node].clone();
            g.sort_unstable();
            e.sort_unstable();
            assert_eq!(g, e, "{topo:?} node {node}: lost or duplicated messages");
        }
    }
}

#[test]
fn link_trace_events_are_recorded() {
    let mut m = reliable_mesh(X4, 13, FaultPlan::mixed_misery());
    m.set_trace(wb_kernel::TraceFilter::all());
    for p in 0..60u32 {
        m.send(p as u64, MeshMsg { src: NodeId(0), dst: NodeId(15), vnet: VNet::Request, flits: 1, payload: p });
    }
    let _ = run_to_idle(&mut m, 16, 2_000_000);
    let (mut drops, mut retxs, mut squashes) = (0, 0, 0);
    for r in m.tracer().records() {
        match r.event {
            TraceEvent::LinkDrop { .. } => drops += 1,
            TraceEvent::LinkRetx { .. } => retxs += 1,
            TraceEvent::LinkDupSquashed { .. } => squashes += 1,
            _ => {}
        }
    }
    assert!(drops > 0, "LinkDrop events missing");
    assert!(retxs > 0, "LinkRetx events missing");
    assert!(squashes > 0, "LinkDupSquashed events missing");
}

#[test]
fn lossy_single_link_only_hits_that_flow() {
    for topo in CONTRACT_TOPOS {
        let far = topo.far_corner();
        let mut m = reliable_mesh(topo, 17, FaultPlan::lossy_link(0, far));
        for p in 0..20u32 {
            m.send(p as u64, MeshMsg { src: NodeId(0), dst: NodeId(far), vnet: VNet::Request, flits: 1, payload: p });
            m.send(p as u64, MeshMsg { src: NodeId(5), dst: NodeId(6), vnet: VNet::Request, flits: 1, payload: 1000 + p });
        }
        let got = run_to_idle(&mut m, topo.nodes(), 2_000_000);
        assert_eq!(got[far as usize], (0..20).collect::<Vec<_>>(), "{topo:?}");
        assert_eq!(got[6], (1000..1020).collect::<Vec<_>>(), "{topo:?}");
        let (dropped, _, _) = m.fault_injected();
        assert!(dropped > 0, "{topo:?}");
    }
}

#[test]
fn hop_fate_clean_for_unmatched_plan() {
    // FaultPlan matchers are exercised end-to-end above; sanity-check
    // the plan surface the mesh consumes.
    let mut e = FaultEngine::new(
        FaultPlan::one("req-only", FlowMatch { src: None, dst: None, touching: None, vnet: Some(1) }, FaultEffect::Drop { num: 1, den: 1 }),
        1,
    );
    assert_eq!(e.at_hop(0, 1, 0), HopFate::CLEAN);
    assert!(e.at_hop(0, 1, 1).drop);
}

#[test]
#[should_panic(expected = "requires the reliable link layer")]
fn fault_without_reliable_panics() {
    let mut m: Mesh<u32> = X4.mesh(0, 1);
    m.set_fault(Some(FaultEngine::new(FaultPlan::mixed_misery(), 1)));
}

#[test]
#[should_panic(expected = "must precede all traffic")]
fn enable_reliable_after_traffic_panics() {
    let mut m: Mesh<u32> = X4.mesh(0, 1);
    m.send(0, MeshMsg { src: NodeId(0), dst: NodeId(1), vnet: VNet::Request, flits: 1, payload: 1 });
    m.enable_reliable(LinkConfig::default());
}
