//! Baseline mesh behaviour: latency, per-flow FIFO, serialization,
//! stats, tracing, and chaos timing injection. These predate the
//! reliable sublayer and must keep passing unchanged — the fault-free
//! fast path is contractually byte-identical to the original mesh.

use wb_kernel::chaos::{ChaosEngine, ChaosPlan};
use wb_kernel::{Cycle, NodeId};
use wb_mesh::{Mesh, MeshMsg, VNet};

mod common;

/// Latency pins below (cycle 7, 6 hops to node 15, ...) are tuned to
/// the 4x4 topology; they stay there. Topology-independent contracts
/// also get an 8x8 run.
fn mk(jitter: u64) -> Mesh<u32> {
    common::X4.mesh(jitter, 1)
}

fn run_until_delivered(
    mesh: &mut Mesh<u32>,
    dst: NodeId,
    mut now: Cycle,
    limit: u64,
) -> (Vec<MeshMsg<u32>>, Cycle) {
    let mut out = Vec::new();
    for _ in 0..limit {
        mesh.tick(now);
        out.extend(mesh.drain_arrived(dst));
        if !out.is_empty() {
            return (out, now);
        }
        now += 1;
    }
    (out, now)
}

#[test]
fn hops_manhattan() {
    let m = mk(0);
    assert_eq!(m.hops(NodeId(0), NodeId(0)), 0);
    assert_eq!(m.hops(NodeId(0), NodeId(3)), 3);
    assert_eq!(m.hops(NodeId(0), NodeId(15)), 6);
    assert_eq!(m.hops(NodeId(5), NodeId(6)), 1);
}

#[test]
fn hops_manhattan_at_8x8() {
    let m: Mesh<u32> = common::X8.mesh(0, 1);
    assert_eq!(m.hops(NodeId(0), NodeId(7)), 7);
    assert_eq!(m.hops(NodeId(0), NodeId(63)), 14); // full diameter
    assert_eq!(m.hops(NodeId(8), NodeId(16)), 1); // vertical neighbours
}

#[test]
fn delivers_with_expected_latency() {
    let mut m = mk(0);
    m.send(0, MeshMsg { src: NodeId(0), dst: NodeId(1), vnet: VNet::Request, flits: 1, payload: 7 });
    // 1 cycle local + 1 hop of 6 cycles = ready at cycle 7.
    let (msgs, when) = run_until_delivered(&mut m, NodeId(1), 0, 100);
    assert_eq!(msgs.len(), 1);
    assert_eq!(msgs[0].payload, 7);
    assert_eq!(when, 7);
}

#[test]
fn local_message_one_cycle() {
    let mut m = mk(0);
    m.send(0, MeshMsg { src: NodeId(2), dst: NodeId(2), vnet: VNet::Response, flits: 1, payload: 1 });
    let (msgs, when) = run_until_delivered(&mut m, NodeId(2), 0, 10);
    assert_eq!(msgs.len(), 1);
    assert_eq!(when, 1);
}

#[test]
fn data_messages_slower_than_control() {
    let mut m = mk(0);
    m.send(0, MeshMsg { src: NodeId(0), dst: NodeId(15), vnet: VNet::Response, flits: 5, payload: 1 });
    let (_, t_data) = run_until_delivered(&mut m, NodeId(15), 0, 1000);
    let mut m2 = mk(0);
    m2.send(0, MeshMsg { src: NodeId(0), dst: NodeId(15), vnet: VNet::Response, flits: 1, payload: 1 });
    let (_, t_ctrl) = run_until_delivered(&mut m2, NodeId(15), 0, 1000);
    assert!(t_data > t_ctrl, "data {t_data} should be slower than control {t_ctrl}");
}

#[test]
fn per_flow_fifo_preserved() {
    let mut m = mk(0);
    for i in 0..10u32 {
        m.send(0, MeshMsg { src: NodeId(0), dst: NodeId(5), vnet: VNet::Request, flits: 1, payload: i });
    }
    let mut got = Vec::new();
    for now in 0..200 {
        m.tick(now);
        got.extend(m.drain_arrived(NodeId(5)).into_iter().map(|mm| mm.payload));
    }
    assert_eq!(got, (0..10).collect::<Vec<_>>());
}

#[test]
fn per_flow_fifo_preserved_under_jitter() {
    for topo in common::CONTRACT_TOPOS {
        for seed in 0..20u64 {
            let mut m: Mesh<u32> = topo.mesh(25, seed);
            let dst = NodeId(topo.far_corner() - 6);
            for i in 0..10u32 {
                m.send(0, MeshMsg { src: NodeId(3), dst, vnet: VNet::Forward, flits: 1, payload: i });
            }
            let mut got = Vec::new();
            for now in 0..2_000 {
                m.tick(now);
                got.extend(m.drain_arrived(dst).into_iter().map(|mm| mm.payload));
            }
            assert_eq!(got, (0..10).collect::<Vec<_>>(), "{topo:?} seed {seed}");
        }
    }
}

#[test]
fn different_flows_can_reorder() {
    // A long route with a big message vs. a short route with a small
    // one injected later: the later one arrives first.
    let mut m = mk(0);
    m.send(0, MeshMsg { src: NodeId(0), dst: NodeId(15), vnet: VNet::Request, flits: 5, payload: 100 });
    m.send(1, MeshMsg { src: NodeId(14), dst: NodeId(15), vnet: VNet::Request, flits: 1, payload: 200 });
    let mut order = Vec::new();
    for now in 0..500 {
        m.tick(now);
        order.extend(m.drain_arrived(NodeId(15)).into_iter().map(|mm| mm.payload));
    }
    assert_eq!(order, vec![200, 100]);
}

#[test]
fn flit_stats_accumulate() {
    let mut m = mk(0);
    m.send(0, MeshMsg { src: NodeId(0), dst: NodeId(1), vnet: VNet::Request, flits: 1, payload: 0 });
    m.send(0, MeshMsg { src: NodeId(0), dst: NodeId(1), vnet: VNet::Response, flits: 5, payload: 0 });
    assert_eq!(m.stats().get("mesh_flits"), 6);
    assert_eq!(m.stats().get("mesh_msgs"), 2);
    assert_eq!(m.stats().get("mesh_flits_response"), 5);
}

#[test]
fn latency_histogram_records_deliveries() {
    let mut m = mk(0);
    m.send(0, MeshMsg { src: NodeId(0), dst: NodeId(1), vnet: VNet::Request, flits: 1, payload: 0 });
    let _ = run_until_delivered(&mut m, NodeId(1), 0, 100);
    let h = m.stats().hist("mesh_msg_cycles").expect("latency hist");
    assert_eq!(h.count(), 1);
    // 1 cycle local + 1 hop of 6 = delivered at cycle 7.
    assert_eq!(h.max(), 7);
}

#[test]
fn hop_tracing_records_each_link() {
    let mut m = mk(0);
    m.set_trace(wb_kernel::TraceFilter::all());
    // Node 0 -> node 15 is 6 hops on the 4x4 mesh.
    m.send(0, MeshMsg { src: NodeId(0), dst: NodeId(15), vnet: VNet::Request, flits: 1, payload: 0 });
    let _ = run_until_delivered(&mut m, NodeId(15), 0, 1000);
    let hops = m.tracer().records().count();
    assert_eq!(hops, 6);
    // Disabled by default: a fresh mesh records nothing.
    let mut quiet = mk(0);
    quiet.send(0, MeshMsg { src: NodeId(0), dst: NodeId(15), vnet: VNet::Request, flits: 1, payload: 0 });
    let _ = run_until_delivered(&mut quiet, NodeId(15), 0, 1000);
    assert!(quiet.tracer().is_empty());
}

#[test]
fn idle_detection() {
    let mut m = mk(0);
    assert!(m.is_idle());
    m.send(0, MeshMsg { src: NodeId(0), dst: NodeId(1), vnet: VNet::Request, flits: 1, payload: 0 });
    assert!(!m.is_idle());
    for now in 0..100 {
        m.tick(now);
        m.drain_arrived(NodeId(1));
    }
    assert!(m.is_idle());
}

#[test]
#[should_panic(expected = "too small")]
fn too_small_mesh_panics() {
    let _ = Mesh::<u32>::new(2, 2, 16, 6, 0, 0);
}

#[test]
fn injection_serialization_delays_second_message() {
    let mut m = mk(0);
    // Two 5-flit messages back to back on the same vnet from node 0.
    m.send(0, MeshMsg { src: NodeId(0), dst: NodeId(1), vnet: VNet::Response, flits: 5, payload: 1 });
    m.send(0, MeshMsg { src: NodeId(0), dst: NodeId(2), vnet: VNet::Response, flits: 5, payload: 2 });
    let mut t1 = None;
    let mut t2 = None;
    for now in 0..200 {
        m.tick(now);
        if !m.drain_arrived(NodeId(1)).is_empty() {
            t1.get_or_insert(now);
        }
        if !m.drain_arrived(NodeId(2)).is_empty() {
            t2.get_or_insert(now);
        }
    }
    let (t1, t2) = (t1.unwrap(), t2.unwrap());
    // Node 2 is 2 hops from node 0, node 1 is 1 hop; even accounting
    // for the extra hop, the second message is further delayed by
    // serialization of the first's 5 flits.
    assert!(t2 >= t1 + 5, "t1={t1} t2={t2}");
}

#[test]
fn chaos_delays_but_delivers() {
    let mut m = mk(0);
    m.set_chaos(Some(ChaosEngine::new(ChaosPlan::hotspot(0), 1)));
    m.send(0, MeshMsg { src: NodeId(0), dst: NodeId(1), vnet: VNet::Request, flits: 1, payload: 7 });
    let (msgs, when) = run_until_delivered(&mut m, NodeId(1), 0, 1_000);
    assert_eq!(msgs.len(), 1);
    // Baseline is cycle 7 (1 local + 1 hop of 6); hotspot adds 150.
    assert_eq!(when, 157);
    assert_eq!(m.stats().get("mesh_chaos_msgs"), 1);
    assert_eq!(m.stats().get("mesh_chaos_cycles"), 150);
    // Satellite: per-effect attribution is surfaced too.
    assert_eq!(m.stats().get("mesh_chaos_delay_msgs"), 1);
}

#[test]
fn chaos_preserves_per_flow_fifo() {
    let mut m = mk(0);
    m.set_chaos(Some(ChaosEngine::new(ChaosPlan::reorder_amplify(), 3)));
    for p in 0..20u32 {
        m.send(p as u64, MeshMsg { src: NodeId(0), dst: NodeId(5), vnet: VNet::Request, flits: 1, payload: p });
    }
    let mut got = Vec::new();
    for now in 0..10_000 {
        m.tick(now);
        got.extend(m.drain_arrived(NodeId(5)).into_iter().map(|ms| ms.payload));
        if got.len() == 20 {
            break;
        }
    }
    assert_eq!(got, (0..20).collect::<Vec<_>>(), "same-flow order must survive chaos");
}

#[test]
fn chaos_is_deterministic() {
    let deliveries = |seed: u64| {
        let mut m: Mesh<u32> = common::X4.mesh(0, seed);
        m.set_chaos(Some(ChaosEngine::new(ChaosPlan::wb_entry_squeeze(), seed)));
        let mut log = Vec::new();
        for p in 0..30u32 {
            let vnet = [VNet::Request, VNet::Forward, VNet::Response][(p % 3) as usize];
            m.send(p as u64, MeshMsg { src: NodeId(p as u16 % 16), dst: NodeId((p as u16 * 5) % 16), vnet, flits: 1, payload: p });
        }
        for now in 0..20_000u64 {
            m.tick(now);
            for n in 0..16 {
                for ms in m.drain_arrived(NodeId(n)) {
                    log.push((now, ms.payload));
                }
            }
        }
        assert!(m.is_idle(), "all chaos-delayed messages must drain");
        log
    };
    assert_eq!(deliveries(7), deliveries(7), "same seed, same schedule");
}

#[test]
fn chaos_none_is_byte_identical() {
    // Installing no chaos must not perturb the rng-driven schedule.
    let run = |with_none_install: bool| {
        let mut m: Mesh<u32> = common::X4.mesh(20, 9);
        if with_none_install {
            m.set_chaos(None);
        }
        let mut log = Vec::new();
        for p in 0..20u32 {
            m.send(p as u64, MeshMsg { src: NodeId(p as u16 % 16), dst: NodeId(3), vnet: VNet::Request, flits: 1, payload: p });
        }
        for now in 0..2_000u64 {
            m.tick(now);
            for ms in m.drain_arrived(NodeId(3)) {
                log.push((now, ms.payload));
            }
        }
        log
    };
    assert_eq!(run(false), run(true));
}

#[test]
fn chaos_signal_gates_directed_stall() {
    let mut m = mk(0);
    m.set_chaos(Some(ChaosEngine::new(ChaosPlan::lockdown_vnet_stall(2), 1)));
    assert!(m.chaos_wants_signal());
    // Signal low: normal latency.
    m.send(0, MeshMsg { src: NodeId(0), dst: NodeId(1), vnet: VNet::Response, flits: 1, payload: 1 });
    let (_, when) = run_until_delivered(&mut m, NodeId(1), 0, 1_000);
    assert_eq!(when, 7);
    // Signal high: +300 on the response vnet.
    m.set_chaos_signal(true);
    m.send(100, MeshMsg { src: NodeId(0), dst: NodeId(1), vnet: VNet::Response, flits: 1, payload: 2 });
    let (_, when) = run_until_delivered(&mut m, NodeId(1), 100, 1_000);
    assert_eq!(when, 407);
}

#[test]
fn in_flight_summary_reports_traversing_messages() {
    let mut m = mk(0);
    m.send(0, MeshMsg { src: NodeId(0), dst: NodeId(15), vnet: VNet::Forward, flits: 1, payload: 1 });
    m.tick(0);
    let s = m.in_flight_summary(10);
    assert_eq!(s, vec![(0, 15, 1, 10)]);
}
