//! Shared topology handling for the mesh test suites.
//!
//! Every suite used to hardcode `Mesh::new(4, 4, 16, 6, ...)`, which
//! quietly baked the 4x4 machine into tests that are supposed to hold
//! at any size. Suites construct meshes through [`Topo`] instead, and
//! the ARQ/fault contracts run at 8x8 as well as the historical 4x4.

// Each test binary compiles its own copy and uses a different subset.
#![allow(dead_code)]

use wb_mesh::Mesh;

/// Hop latency every suite was tuned against.
pub const HOP_CYCLES: u64 = 6;

/// A square-ish mesh topology under test.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Topo {
    pub width: usize,
    pub height: usize,
}

/// The historical 4x4 (16-node) machine; latency pins assume it.
pub const X4: Topo = Topo { width: 4, height: 4 };
/// 8x8 (64 nodes): first size where `u16`/bitmask shortcuts still fit
/// but small-topology assumptions (corner IDs, `% 16`) break.
pub const X8: Topo = Topo { width: 8, height: 8 };

/// Topologies the reliability/fault contracts must hold on.
pub const CONTRACT_TOPOS: [Topo; 2] = [X4, X8];

impl Topo {
    pub fn nodes(self) -> usize {
        self.width * self.height
    }

    /// Node ID of the corner farthest from node 0 (the worst route).
    pub fn far_corner(self) -> u16 {
        (self.nodes() - 1) as u16
    }

    pub fn mesh<T>(self, jitter: u64, seed: u64) -> Mesh<T> {
        Mesh::new(self.width, self.height, self.nodes(), HOP_CYCLES, jitter, seed)
    }
}
