//! Property tests for the fault model + reliable sublayer (in-tree
//! `wb_proptest!` harness):
//!
//! 1. random fault plans with per-hop probability ≤ 0.2 still deliver
//!    every flow exactly once, in per-flow FIFO order;
//! 2. the checksum catches every injected corruption (corrupted frames
//!    never surface; traffic still completes);
//! 3. a `FaultPlan::none()` run is byte-identical (same delivery
//!    schedule) to a mesh without the sublayer at the same seed.
//!
//! Each case also samples its topology from `common::CONTRACT_TOPOS`,
//! so the contracts are exercised at 8x8 as well as 4x4; generated node
//! indices are reduced modulo the sampled node count.

use wb_kernel::chaos::FlowMatch;
use wb_kernel::check::prelude::*;
use wb_kernel::config::LinkConfig;
use wb_kernel::fault::{FaultClause, FaultEffect, FaultEngine, FaultPlan};
use wb_kernel::NodeId;
use wb_mesh::{Mesh, MeshMsg, VNet};

mod common;
use common::{Topo, CONTRACT_TOPOS};

/// (src, dst, vnet ordinal, big-message flag) of one injected message.
/// Node indices range over the largest contract topology and are taken
/// modulo the actual node count at injection time.
type MsgSpec = (u16, u16, usize, u32);

fn msg_spec() -> Gen<MsgSpec> {
    (0u16..64, 0u16..64, 0usize..3, 0u32..2).into_gen()
}

fn resolve(spec: MsgSpec, topo: Topo) -> (NodeId, NodeId, VNet, u64) {
    let n = topo.nodes() as u16;
    (NodeId(spec.0 % n), NodeId(spec.1 % n), VNet::ALL[spec.2], if spec.3 == 1 { 5 } else { 1 })
}

/// One random clause with probability ≤ 2/10 and a random matcher.
fn fault_clause() -> Gen<FaultClause> {
    let effect = prop_oneof![
        (1u64..3).prop_map(|num| FaultEffect::Drop { num, den: 10 }),
        (1u64..3).prop_map(|num| FaultEffect::Duplicate { num, den: 10 }),
        (1u64..3).prop_map(|num| FaultEffect::CorruptPayload { num, den: 10 }),
    ];
    let flow = prop_oneof![
        just(FlowMatch::ANY),
        (0u8..3).prop_map(|v| FlowMatch { src: None, dst: None, touching: None, vnet: Some(v) }),
        (0u16..16).prop_map(|n| FlowMatch { src: None, dst: None, touching: Some(n), vnet: None }),
        ((0u16..16), (0u16..16))
            .prop_map(|(s, d)| FlowMatch { src: Some(s), dst: Some(d), touching: None, vnet: None }),
    ];
    (flow, effect).prop_map(|(flow, effect)| FaultClause { flow, effect })
}

/// Inject `specs`, run to idle, and return delivered payloads per node.
fn drive(mut m: Mesh<u32>, topo: Topo, specs: &[MsgSpec]) -> Result<Vec<Vec<u32>>, String> {
    // payload = index into specs, so deliveries map back to flows.
    for (i, &spec) in specs.iter().enumerate() {
        let (src, dst, vnet, flits) = resolve(spec, topo);
        m.send(i as u64, MeshMsg { src, dst, vnet, flits: flits as u32, payload: i as u32 });
    }
    let mut got: Vec<Vec<u32>> = (0..topo.nodes()).map(|_| Vec::new()).collect();
    for now in 0..4_000_000u64 {
        m.tick(now);
        for n in 0..topo.nodes() as u16 {
            got[n as usize].extend(m.drain_arrived(NodeId(n)).into_iter().map(|ms| ms.payload));
        }
        if m.is_idle() {
            return Ok(got);
        }
    }
    Err(format!("mesh failed to settle: {} frames still in flight", m.in_flight()))
}

wb_proptest! {
    #![cases = 24]

    /// Tentpole contract: any plan with p ≤ 0.2 per clause still yields
    /// exactly-once, per-flow-FIFO delivery at the protocol boundary.
    #[test]
    fn random_fault_plans_deliver_exactly_once_fifo(
        clauses in vec_of(fault_clause(), 1..4),
        specs in vec_of(msg_spec(), 1..60),
        seed in 0u64..10_000,
        which_topo in 0usize..2,
    ) {
        let topo = CONTRACT_TOPOS[which_topo];
        let plan = FaultPlan { name: "prop_random", clauses };
        let mut m = topo.mesh(0, seed);
        m.enable_reliable(LinkConfig { window: 8, rto_min: 128, rto_max: 2048, ack_idle: 32 });
        m.set_fault(Some(FaultEngine::new(plan, seed)));
        let got = match drive(m, topo, &specs) {
            Ok(g) => g,
            Err(e) => return Err(CaseError::new(e)),
        };
        // Expected per-flow order: spec indices grouped by flow, in
        // injection order (that IS the per-flow FIFO contract).
        let mut expected: std::collections::BTreeMap<(u16, u16, usize), Vec<u32>> =
            std::collections::BTreeMap::new();
        for (i, &spec) in specs.iter().enumerate() {
            let (src, dst, _, _) = resolve(spec, topo);
            expected.entry((src.0, dst.0, spec.2)).or_default().push(i as u32);
        }
        // Delivered order per flow, reconstructed from per-node drains.
        let mut delivered: std::collections::BTreeMap<(u16, u16, usize), Vec<u32>> =
            std::collections::BTreeMap::new();
        for node in 0..topo.nodes() {
            for &p in &got[node] {
                let (src, dst, _, _) = resolve(specs[p as usize], topo);
                prop_assert_eq!(dst.index(), node, "delivered to the wrong node");
                delivered.entry((src.0, dst.0, specs[p as usize].2)).or_default().push(p);
            }
        }
        prop_assert_eq!(delivered, expected, "lost, duplicated, or reordered within a flow");
    }

    /// Corruption-only plans: every corrupted frame is caught by the
    /// checksum (discard + retransmission), never surfaced.
    #[test]
    fn checksum_catches_injected_corruptions(
        num in 1u64..3,
        specs in vec_of(msg_spec(), 1..50),
        seed in 0u64..10_000,
        which_topo in 0usize..2,
    ) {
        let topo = CONTRACT_TOPOS[which_topo];
        let plan = FaultPlan::one(
            "prop_corrupt",
            FlowMatch::ANY,
            FaultEffect::CorruptPayload { num, den: 10 },
        );
        let mut m = topo.mesh(0, seed);
        m.enable_reliable(LinkConfig { window: 8, rto_min: 128, rto_max: 2048, ack_idle: 32 });
        m.set_fault(Some(FaultEngine::new(plan, seed)));
        let got = match drive(m, topo, &specs) {
            Ok(g) => g,
            Err(e) => return Err(CaseError::new(e)),
        };
        let delivered: usize = got.iter().map(Vec::len).sum();
        prop_assert_eq!(delivered, specs.len(), "corruption must never lose or duplicate");
        // (can't read stats here: `drive` consumed the mesh — the
        // exactly-once count above is the property that matters.)
    }

    /// `FaultPlan::none()` under the full sublayer is byte-identical in
    /// delivery schedule to a mesh that never heard of reliability.
    #[test]
    fn fault_none_is_byte_identical_to_bare_mesh(
        specs in vec_of(msg_spec(), 1..60),
        seed in 0u64..10_000,
        jitter in 0u64..30,
        which_topo in 0usize..2,
    ) {
        let topo = CONTRACT_TOPOS[which_topo];
        let log = |reliable: bool| {
            let mut m = topo.mesh(jitter, seed);
            if reliable {
                m.enable_reliable(LinkConfig::default());
                m.set_fault(Some(FaultEngine::new(FaultPlan::none(), seed)));
            }
            for (i, &spec) in specs.iter().enumerate() {
                let (src, dst, vnet, flits) = resolve(spec, topo);
                m.send(i as u64, MeshMsg { src, dst, vnet, flits: flits as u32, payload: i as u32 });
            }
            let mut out: Vec<(u64, u16, u32)> = Vec::new();
            for now in 0..200_000u64 {
                m.tick(now);
                for n in 0..topo.nodes() as u16 {
                    for ms in m.drain_arrived(NodeId(n)) {
                        out.push((now, n, ms.payload));
                    }
                }
                if m.is_idle() {
                    break;
                }
            }
            out
        };
        prop_assert_eq!(log(true), log(false), "fault_none must not perturb the schedule");
    }
}
