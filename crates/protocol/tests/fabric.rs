//! End-to-end protocol tests on a small fabric: private caches + directory
//! banks + mesh, driven by stub cores.
//!
//! These tests exercise the transaction flows of the paper's Figures 3-5:
//! 3-hop reads, invalidation-collecting writes, the WritersBlock Nack path,
//! tear-off reads, Ack redirection, eviction parking and the SoS MSHR
//! bypass.

use std::collections::HashSet;
use wb_kernel::config::{MemoryConfig, ProtocolKind};
use wb_kernel::{Cycle, NodeId};
use wb_mem::{Addr, HomeMap, LineAddr};
use wb_mesh::{Mesh, MeshMsg};
use wb_protocol::messages::Dest;
use wb_protocol::private::LoadAccess;
use wb_protocol::{Completion, CoreSide, Directory, InvalResponse, PrivateCache, ProtoMsg, ReadTag};

/// A scripted stand-in for the core's LSQ.
#[derive(Debug, Default)]
struct StubCore {
    /// Lines for which this core pretends to hold a lockdown: it Nacks
    /// invalidations for them.
    nack_lines: HashSet<LineAddr>,
    /// Invalidations seen.
    invals: Vec<LineAddr>,
    /// Non-silent evictions notified (base protocol squash points).
    evictions: Vec<LineAddr>,
}

impl CoreSide for StubCore {
    fn on_invalidation(&mut self, _now: Cycle, line: LineAddr) -> InvalResponse {
        self.invals.push(line);
        if self.nack_lines.contains(&line) {
            InvalResponse::Nack
        } else {
            InvalResponse::Ack
        }
    }
    fn has_mspec(&self, line: LineAddr) -> bool {
        self.nack_lines.contains(&line)
    }
    fn on_eviction(&mut self, _now: Cycle, line: LineAddr) {
        self.evictions.push(line);
    }
}

struct Fabric {
    now: Cycle,
    mesh: Mesh<(Dest, ProtoMsg)>,
    caches: Vec<PrivateCache>,
    dirs: Vec<Directory>,
    cores: Vec<StubCore>,
    collected: Vec<Vec<Completion>>,
    next_tag: u64,
}

impl Fabric {
    fn new(n: usize, protocol: ProtocolKind, mem: MemoryConfig) -> Fabric {
        let mut w = 1;
        while w * w < n {
            w += 1;
        }
        let h = n.div_ceil(w);
        Fabric {
            now: 0,
            mesh: Mesh::new(w, h, n, 6, 0, 1),
            caches: (0..n).map(|i| PrivateCache::new(NodeId(i as u16), HomeMap::new(n, 1), &mem, protocol)).collect(),
            dirs: (0..n).map(|i| Directory::with_memory_config(NodeId(i as u16), &mem, false)).collect(),
            cores: (0..n).map(|_| StubCore::default()).collect(),
            collected: (0..n).map(|_| Vec::new()).collect(),
            next_tag: 0,
        }
    }

    fn init_word(&mut self, addr: Addr, value: u64) {
        let bank = addr.line().bank(self.dirs.len());
        self.dirs[bank].init_word(addr, value);
    }

    fn tick(&mut self) {
        let n = self.caches.len();
        for i in 0..n {
            for m in self.mesh.drain_arrived(NodeId(i as u16)) {
                let (dest, msg) = m.payload;
                match dest {
                    Dest::Cache(_) => self.caches[i].handle_msg(self.now, msg, &mut self.cores[i]),
                    Dest::Dir(_) => self.dirs[i].receive(self.now, msg),
                }
            }
        }
        for i in 0..n {
            self.dirs[i].tick(self.now);
            self.caches[i].tick(self.now, &mut self.cores[i]);
        }
        for i in 0..n {
            let from = NodeId(i as u16);
            let out: Vec<_> = self.caches[i]
                .drain_outbox()
                .into_iter()
                .chain(self.dirs[i].drain_outbox())
                .collect();
            for (dest, msg) in out {
                let flits = msg.flits(5, 1);
                self.mesh.send(
                    self.now,
                    MeshMsg { src: from, dst: dest.node(), vnet: msg.vnet(), flits, payload: (dest, msg) },
                );
            }
            self.collected[i].extend(self.caches[i].take_completions());
        }
        self.mesh.tick(self.now);
        self.now += 1;
    }

    fn run(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.tick();
        }
    }

    fn tag(&mut self) -> ReadTag {
        self.next_tag += 1;
        ReadTag(self.next_tag)
    }

    /// Blocking read helper: issue a load and run until its value arrives.
    fn read(&mut self, core: usize, addr: Addr) -> u64 {
        self.read_opt(core, addr, 20_000).expect("read did not complete")
    }

    fn read_opt(&mut self, core: usize, addr: Addr, limit: u64) -> Option<u64> {
        let tag = self.tag();
        match self.caches[core].load_access(self.now, tag, addr, true) {
            LoadAccess::Hit { value, .. } => return Some(value),
            LoadAccess::Miss => {}
            LoadAccess::Blocked => panic!("unexpected MSHR exhaustion"),
        }
        for _ in 0..limit {
            self.tick();
            let found = self.collected[core].iter().find_map(|c| match c {
                Completion::LoadData { tags, data, .. } if tags.contains(&tag) => {
                    Some(data.word(addr.word_index()))
                }
                _ => None,
            });
            if found.is_some() {
                self.collected[core].clear();
                return found;
            }
        }
        None
    }

    /// Blocking write helper: obtain permission, then perform the store.
    fn write(&mut self, core: usize, addr: Addr, value: u64) {
        assert!(self.try_write(core, addr, value, 20_000), "write did not complete");
    }

    fn try_write(&mut self, core: usize, addr: Addr, value: u64, limit: u64) -> bool {
        let line = addr.line();
        for _ in 0..limit {
            if self.caches[core].ensure_writable(self.now, line) {
                assert!(self.caches[core].store_perform(self.now, addr, value));
                return true;
            }
            self.tick();
        }
        false
    }
}

fn small_mem() -> MemoryConfig {
    MemoryConfig::default()
}

const A: Addr = Addr(0x1000);
const B: Addr = Addr(0x2040);

#[test]
fn cold_read_returns_initial_memory_value() {
    let mut f = Fabric::new(4, ProtocolKind::BaseMesi, small_mem());
    f.init_word(A, 77);
    assert_eq!(f.read(0, A), 77);
    // Second read from the same core hits locally.
    let tag = f.tag();
    match f.caches[0].load_access(f.now, tag, A, true) {
        LoadAccess::Hit { value, latency } => {
            assert_eq!(value, 77);
            assert_eq!(latency, 4, "L1 hit after fill");
        }
        other => panic!("expected hit, got {other:?}"),
    }
}

#[test]
fn three_hop_read_from_owner() {
    let mut f = Fabric::new(4, ProtocolKind::BaseMesi, small_mem());
    f.init_word(A, 1);
    // Core 0 becomes exclusive owner and modifies the line.
    f.write(0, A, 42);
    // Core 1's read must be forwarded to core 0 and see 42.
    assert_eq!(f.read(1, A), 42);
    // Core 0 should have been downgraded: writing again requires a new
    // permission round but reading still hits.
    assert!(!f.caches[0].is_writable(A.line()));
}

#[test]
fn write_invalidates_sharers() {
    let mut f = Fabric::new(4, ProtocolKind::BaseMesi, small_mem());
    f.init_word(A, 5);
    assert_eq!(f.read(0, A), 5);
    assert_eq!(f.read(1, A), 5);
    assert_eq!(f.read(2, A), 5);
    // Core 3 writes: cores 0-2 must all see an invalidation.
    f.write(3, A, 9);
    f.run(200);
    for c in 0..3 {
        assert!(
            f.cores[c].invals.contains(&A.line()),
            "core {c} missed the invalidation"
        );
    }
    assert_eq!(f.read(0, A), 9);
}

#[test]
fn upgrade_from_shared() {
    let mut f = Fabric::new(2, ProtocolKind::BaseMesi, small_mem());
    f.init_word(A, 3);
    assert_eq!(f.read(0, A), 3);
    assert_eq!(f.read(1, A), 3);
    // Core 0 upgrades its shared copy and writes.
    f.write(0, A, 4);
    assert_eq!(f.read(1, A), 4);
}

#[test]
fn distinct_lines_are_independent() {
    let mut f = Fabric::new(4, ProtocolKind::BaseMesi, small_mem());
    f.init_word(A, 10);
    f.init_word(B, 20);
    f.write(0, A, 11);
    f.write(1, B, 21);
    assert_eq!(f.read(2, A), 11);
    assert_eq!(f.read(3, B), 21);
}

#[test]
fn writersblock_delays_write_until_release() {
    let mut f = Fabric::new(4, ProtocolKind::WritersBlock, small_mem());
    f.init_word(A, 1);
    // Core 0 holds a shared copy with a pretend-lockdown.
    assert_eq!(f.read(0, A), 1);
    f.cores[0].nack_lines.insert(A.line());
    // Core 1's write must NOT complete while the lockdown stands.
    assert!(
        !f.try_write(1, A, 2, 3_000),
        "write completed despite an unreleased lockdown"
    );
    let blocked: u64 = f.dirs.iter().map(|d| d.stats().get("dir_writes_blocked")).sum();
    assert_eq!(blocked, 1, "exactly one write should have entered WritersBlock");
    // The writer received the hint.
    assert!(f.caches[1].write_blocked(A.line()));
    // Release the lockdown: the write must now complete.
    f.cores[0].nack_lines.clear();
    f.caches[0].release_lockdown(f.now, A.line());
    assert!(f.try_write(1, A, 2, 3_000), "write still blocked after release");
    assert_eq!(f.read(2, A), 2);
}

#[test]
fn writersblock_serves_tearoff_reads_of_old_value() {
    let mut f = Fabric::new(4, ProtocolKind::WritersBlock, small_mem());
    f.init_word(A, 10);
    assert_eq!(f.read(0, A), 10);
    f.cores[0].nack_lines.insert(A.line());
    // Core 1 starts a write that will block.
    assert!(!f.try_write(1, A, 99, 2_000));
    // Core 2 reads while the write is blocked: it must get the OLD value,
    // delivered as an uncacheable tear-off copy.
    let v = f.read(2, A);
    assert_eq!(v, 10, "reads under WritersBlock must see the pre-write value");
    let tearoffs: u64 = f.dirs.iter().map(|d| d.stats().get("dir_tearoff_replies")).sum();
    assert!(tearoffs >= 1, "expected at least one tear-off reply");
    // Clean up: release and let the write finish.
    f.cores[0].nack_lines.clear();
    f.caches[0].release_lockdown(f.now, A.line());
    assert!(f.try_write(1, A, 99, 3_000));
    assert_eq!(f.read(3, A), 99);
}

#[test]
fn owner_nack_path_updates_llc_and_redirects_ack() {
    let mut f = Fabric::new(4, ProtocolKind::WritersBlock, small_mem());
    f.init_word(A, 0);
    // Core 0 owns the line with a dirty value and a pretend-lockdown.
    f.write(0, A, 123);
    f.cores[0].nack_lines.insert(A.line());
    // Core 1's write forwards to the owner, which Nacks+Data.
    assert!(!f.try_write(1, A, 200, 3_000), "write must block on the owner's lockdown");
    // A third core's read must see the owner's pre-write value (123),
    // served from the LLC copy refreshed by Nack+Data.
    assert_eq!(f.read(2, A), 123);
    // Release: the deferred ack must redirect through the directory.
    f.cores[0].nack_lines.clear();
    f.caches[0].release_lockdown(f.now, A.line());
    assert!(f.try_write(1, A, 200, 3_000));
    let redirs: u64 = f.dirs.iter().map(|d| d.stats().get("dir_redir_acks")).sum();
    assert_eq!(redirs, 1);
    assert_eq!(f.read(3, A), 200);
}

#[test]
fn sos_load_bypasses_blocked_write_mshr() {
    let mut f = Fabric::new(4, ProtocolKind::WritersBlock, small_mem());
    f.init_word(A, 7);
    assert_eq!(f.read(0, A), 7);
    f.cores[0].nack_lines.insert(A.line());
    // Core 1 writes; the write blocks.
    assert!(!f.try_write(1, A, 8, 2_000));
    assert!(f.caches[1].write_blocked(A.line()));
    // A load on core 1 to the same line would piggyback on the blocked
    // write MSHR — Figure 5.B. As the SoS load it must instead launch a
    // fresh tear-off read and get the pre-write value.
    let tag = f.tag();
    assert_eq!(f.caches[1].load_access(f.now, tag, A, true), LoadAccess::Miss);
    let mut got = None;
    for _ in 0..2_000 {
        f.tick();
        for c in f.collected[1].drain(..) {
            if let Completion::LoadData { tags, data, cacheable, .. } = c {
                if tags.contains(&tag) {
                    got = Some((data.word(A.word_index()), cacheable));
                }
            }
        }
        if got.is_some() {
            break;
        }
    }
    let (value, cacheable) = got.expect("SoS load starved behind a blocked write");
    assert_eq!(value, 7, "SoS load must read the pre-write value");
    assert!(!cacheable, "the bypass read must be a tear-off copy");
    assert!(f.caches[1].stats().get("cache_sos_bypass_reads") >= 1);
    // Clean up.
    f.cores[0].nack_lines.clear();
    f.caches[0].release_lockdown(f.now, A.line());
    assert!(f.try_write(1, A, 8, 3_000));
}

#[test]
fn directory_eviction_parks_writersblock_entry() {
    // Tiny LLC: 1 set x 2 ways per bank forces directory evictions.
    let mut mem = small_mem();
    mem.l3_bank_bytes = 2 * 64;
    mem.l3_ways = 2;
    let mut f = Fabric::new(2, ProtocolKind::WritersBlock, mem);
    // Three lines mapping to bank 0 (even line numbers in a 2-bank system).
    let a = Addr(0x0000); // line 0
    let b = Addr(0x0080); // line 2
    let c = Addr(0x0100); // line 4
    f.init_word(a, 1);
    f.init_word(b, 2);
    f.init_word(c, 3);
    assert_eq!(f.read(0, a), 1);
    f.cores[0].nack_lines.insert(a.line());
    // Touch two more lines in the same bank: entry `a` must be evicted,
    // its eviction-invalidation Nacked, and the entry parked.
    assert_eq!(f.read(0, b), 2);
    assert_eq!(f.read(0, c), 3);
    f.run(2_000);
    let blocked_evictions: u64 = f.dirs.iter().map(|d| d.stats().get("dir_evictions_blocked")).sum();
    assert!(blocked_evictions >= 1, "eviction should have been parked by the lockdown");
    // Reads of the parked line still work (tear-off from the buffer).
    assert_eq!(f.read(1, a), 1);
    // Release: the eviction completes and the line is writable again.
    f.cores[0].nack_lines.clear();
    f.caches[0].release_lockdown(f.now, a.line());
    f.run(2_000);
    let completed: u64 = f.dirs.iter().map(|d| d.stats().get("dir_evictions_completed")).sum();
    assert!(completed >= 1);
    f.write(1, a, 50);
    assert_eq!(f.read(0, a), 50);
}

#[test]
fn private_cache_eviction_writes_back_dirty_lines() {
    // Tiny private L2: 1 set x 2 ways.
    let mut mem = small_mem();
    mem.l1_bytes = 64;
    mem.l1_ways = 1;
    mem.l2_bytes = 2 * 64;
    mem.l2_ways = 2;
    let mut f = Fabric::new(2, ProtocolKind::BaseMesi, mem);
    let a = Addr(0x0000);
    let b = Addr(0x0080);
    let c = Addr(0x0100);
    f.write(0, a, 111);
    // Fill the set with two more lines: `a` must be written back.
    f.write(0, b, 222);
    f.write(0, c, 333);
    f.run(2_000);
    assert!(f.caches[0].stats().get("cache_putm_evictions") >= 1);
    // Core 1 reads `a`: the value must have survived the writeback.
    assert_eq!(f.read(1, a), 111);
}

#[test]
fn base_protocol_never_nacks() {
    let mut f = Fabric::new(4, ProtocolKind::BaseMesi, small_mem());
    f.init_word(A, 1);
    assert_eq!(f.read(0, A), 1);
    // Even if the stub pretends to have a lockdown, base-protocol caches
    // get an Ack from the stub (the core-side policy differs, but here we
    // verify the fabric wiring: base runs never enter WritersBlock when
    // cores Ack).
    f.write(1, A, 2);
    assert_eq!(f.read(2, A), 2);
    let blocked: u64 = f.dirs.iter().map(|d| d.stats().get("dir_writes_blocked")).sum();
    assert_eq!(blocked, 0);
}

#[test]
fn rmw_performs_atomically_at_owner() {
    let mut f = Fabric::new(2, ProtocolKind::BaseMesi, small_mem());
    f.init_word(A, 10);
    // Acquire write permission then fetch-add.
    let line = A.line();
    for _ in 0..20_000 {
        if f.caches[0].ensure_writable(f.now, line) {
            break;
        }
        f.tick();
    }
    let old = f.caches[0].rmw_perform(f.now, A, |v| v + 5).expect("writable");
    assert_eq!(old, 10);
    assert_eq!(f.read(1, A), 15);
}

#[test]
fn tearoff_read_from_owner_keeps_ownership() {
    // A tear-off read of a line owned in M must be served by the owner
    // without a downgrade (Section 3.5.1: reads without a directory
    // entry change).
    let mut f = Fabric::new(2, ProtocolKind::WritersBlock, small_mem());
    f.write(0, A, 55);
    // Issue an explicit tear-off request from core 1 by exhausting its
    // ability to allocate... simpler: drive the cache API directly with a
    // SoS bypass: first give core 1 a blocked-write situation is complex;
    // instead verify via the directory path: a GetS{TearOff} is produced
    // by SoS bypass logic, tested elsewhere. Here we check the owner
    // serves FwdGetS{TearOff} correctly by sending the raw message.
    use wb_protocol::messages::ReadKind;
    f.caches[0].handle_msg(f.now, ProtoMsg::FwdGetS { line: A.line(), requester: NodeId(1), kind: ReadKind::TearOff }, &mut f.cores[0]);
    // Owner must still be writable (kept M) and have sent uncacheable data.
    assert!(f.caches[0].is_writable(A.line()), "tear-off must not downgrade the owner");
    let out = f.caches[0].drain_outbox();
    assert!(out.iter().any(|(_, m)| matches!(m, ProtoMsg::Data { cacheable: false, .. })));
}

#[test]
fn write_permission_lost_before_store_performs() {
    // Footnote 3 of the paper: if write permission is lost by the time
    // the store reaches the SB head, it must re-request and still
    // complete.
    let mut f = Fabric::new(2, ProtocolKind::BaseMesi, small_mem());
    f.init_word(A, 0);
    // Core 0 acquires write permission (prefetch) but does NOT perform.
    for _ in 0..20_000 {
        if f.caches[0].ensure_writable(f.now, A.line()) {
            break;
        }
        f.tick();
    }
    assert!(f.caches[0].is_writable(A.line()));
    // Core 1 writes the line, stealing the permission.
    f.write(1, A, 7);
    f.run(200);
    assert!(!f.caches[0].is_writable(A.line()), "permission should be gone");
    // Core 0's store now re-requests and performs.
    assert!(f.try_write(0, A, 9, 20_000), "store must re-acquire permission");
    assert_eq!(f.read(1, A), 9);
}

#[test]
fn concurrent_read_and_write_mshrs_on_one_line() {
    // Regression for the GETS_DATA/GETX_DATA confusion: a cache with both
    // a read and a write outstanding on one line must route each reply to
    // the right MSHR (the `for_write` tag on Data).
    let mut f = Fabric::new(2, ProtocolKind::BaseMesi, small_mem());
    f.init_word(A, 3);
    // Issue the read, then immediately the write request, before any
    // reply can arrive.
    let tag = f.tag();
    assert_eq!(f.caches[0].load_access(f.now, tag, A, true), LoadAccess::Miss);
    assert!(!f.caches[0].ensure_writable(f.now, A.line()));
    // Run until the write completes.
    let mut done = false;
    for _ in 0..20_000 {
        f.tick();
        if f.caches[0].is_writable(A.line()) {
            done = true;
            break;
        }
    }
    assert!(done, "write never completed");
    // The waiting load must have been satisfied (by either reply path).
    let got = f.collected[0].iter().any(|c| match c {
        Completion::LoadData { tags, .. } => tags.contains(&tag),
        _ => false,
    });
    assert!(got, "load starved while write completed");
    assert!(f.caches[0].store_perform(f.now, A, 11));
    assert_eq!(f.read(1, A), 11);
}

#[test]
fn non_silent_shared_evictions_update_directory() {
    // Ablation path of Section 3.8: with non-silent shared evictions the
    // directory prunes its sharer list, so a later write sends fewer
    // invalidations.
    let mut mem = small_mem();
    mem.l1_bytes = 64;
    mem.l1_ways = 1;
    mem.l2_bytes = 2 * 64;
    mem.l2_ways = 2;
    mem.silent_shared_evictions = false;
    let mut f = Fabric::new(2, ProtocolKind::BaseMesi, mem);
    let a = Addr(0x0000);
    let b = Addr(0x0080);
    let c = Addr(0x0100);
    f.init_word(a, 1);
    // Both cores read `a` so core 0 holds it in S (not E)...
    assert_eq!(f.read(0, a), 1);
    assert_eq!(f.read(1, a), 1);
    // ...then core 0 evicts it by filling the set.
    assert_eq!(f.read(0, b), 0);
    assert_eq!(f.read(0, c), 0);
    f.run(500);
    // A write by core 1 should see no sharers left: no Inv reaches core 0.
    f.write(1, a, 9);
    f.run(500);
    assert!(
        !f.cores[0].invals.contains(&a.line()),
        "PutS should have removed core 0 from the sharer list"
    );
}

#[test]
fn inval_of_absent_line_still_queries_core() {
    // Silent evictions leave stale sharers: an Inv for a line the cache
    // no longer holds must still reach the core's LQ (the whole point of
    // choosing silent evictions in Section 3.8).
    let mut mem = small_mem();
    mem.l1_bytes = 64;
    mem.l1_ways = 1;
    mem.l2_bytes = 2 * 64;
    mem.l2_ways = 2;
    let mut f = Fabric::new(2, ProtocolKind::BaseMesi, mem);
    let a = Addr(0x0000);
    let b = Addr(0x0080);
    let c = Addr(0x0100);
    f.init_word(a, 1);
    // Both cores read `a` so core 0 holds it in S (not E).
    assert_eq!(f.read(0, a), 1);
    assert_eq!(f.read(1, a), 1);
    assert_eq!(f.read(0, b), 0); // evict a silently at core 0
    assert_eq!(f.read(0, c), 0);
    f.run(500);
    f.write(1, a, 9);
    f.run(500);
    assert!(
        f.cores[0].invals.contains(&a.line()),
        "stale sharer must still receive the invalidation"
    );
}

#[test]
fn lockdown_pins_exclusive_line_against_eviction() {
    // Section 3.8: under WritersBlock, an E/M line protecting a lockdown
    // must not be evicted (a dirty line cannot leave silently, and a
    // non-silent eviction would lose the lockdown's protection).
    let mut mem = small_mem();
    mem.l1_bytes = 64;
    mem.l1_ways = 1;
    mem.l2_bytes = 2 * 64;
    mem.l2_ways = 2;
    let mut f = Fabric::new(2, ProtocolKind::WritersBlock, mem);
    let a = Addr(0x0000);
    let b = Addr(0x0080);
    let c = Addr(0x0100);
    // Core 0 owns `a` dirty and pretends to hold a lockdown on it.
    f.write(0, a, 42);
    f.cores[0].nack_lines.insert(a.line());
    // Pressure the set with two more lines: the victim must never be `a`.
    f.write(0, b, 1);
    f.write(0, c, 2);
    f.run(1_000);
    assert!(
        f.caches[0].is_writable(a.line()),
        "the lockdown-protected dirty line must stay resident"
    );
    // Release: now `a` is evictable again.
    f.cores[0].nack_lines.clear();
    let d = Addr(0x0180);
    f.write(0, d, 3);
    f.run(1_000);
    // `a`'s value must be recoverable wherever it went.
    assert_eq!(f.read(1, a), 42);
}
