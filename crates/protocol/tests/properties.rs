//! Property tests on the protocol's data structures.

use wb_kernel::check::prelude::*;
use wb_mem::LineAddr;
use wb_protocol::array::{Insert, SetAssocArray};
use wb_protocol::mshr::{MshrFile, MshrKind};

#[derive(Debug, Clone)]
enum ArrayOp {
    Insert(u64),
    Remove(u64),
    Touch(u64),
}

fn array_op() -> Gen<ArrayOp> {
    prop_oneof![
        (0u64..40).prop_map(ArrayOp::Insert),
        (0u64..40).prop_map(ArrayOp::Remove),
        (0u64..40).prop_map(ArrayOp::Touch),
    ]
}

wb_proptest! {
    /// The array mirrors a reference model (a set-limited map): presence
    /// agrees after every operation, and occupancy never exceeds
    /// sets x ways.
    #[test]
    fn set_assoc_array_matches_reference(ops in vec_of(array_op(), 1..200)) {
        let (sets, ways) = (4usize, 2usize);
        let mut a: SetAssocArray<u64> = SetAssocArray::new(sets, ways);
        let mut reference: Vec<(u64, u64)> = Vec::new(); // (line, payload)
        let mut now = 0u64;
        for op in ops {
            now += 1;
            match op {
                ArrayOp::Insert(l) => {
                    if reference.iter().any(|(rl, _)| *rl == l) {
                        continue; // duplicate inserts are a caller error
                    }
                    match a.insert(LineAddr(l), l * 10, now, |_, _| true) {
                        Insert::Done => reference.push((l, l * 10)),
                        Insert::Evicted(victim, _) => {
                            reference.retain(|(rl, _)| *rl != victim.0);
                            reference.push((l, l * 10));
                        }
                        Insert::NoVictim => unreachable!("all ways evictable"),
                    }
                }
                ArrayOp::Remove(l) => {
                    let got = a.remove(LineAddr(l));
                    let had = reference.iter().any(|(rl, _)| *rl == l);
                    prop_assert_eq!(got.is_some(), had);
                    reference.retain(|(rl, _)| *rl != l);
                }
                ArrayOp::Touch(l) => a.touch(LineAddr(l), now),
            }
            prop_assert!(a.len() <= sets * ways);
            prop_assert_eq!(a.len(), reference.len());
            for (l, v) in &reference {
                prop_assert_eq!(a.get(LineAddr(*l)), Some(v));
            }
        }
    }

    /// LRU: after touching a line, inserting a conflicting line never
    /// evicts the just-touched one while an older way exists.
    #[test]
    fn touched_line_survives_conflict(fresh in 0u64..8) {
        let mut a: SetAssocArray<u64> = SetAssocArray::new(1, 4);
        for l in 0..4u64 {
            a.insert(LineAddr(l), l, l, |_, _| true);
        }
        let keep = fresh % 4;
        a.touch(LineAddr(keep), 100);
        match a.insert(LineAddr(99), 99, 101, |_, _| true) {
            Insert::Evicted(victim, _) => prop_assert_ne!(victim.0, keep),
            other => prop_assert!(false, "expected eviction, got {:?}", other),
        }
    }

    /// MSHR invariants: occupancy bounded by capacity; non-SoS traffic
    /// always leaves one register free; free() returns exactly the
    /// allocated entries.
    #[test]
    fn mshr_reservation_invariant(
        allocs in vec_of((0u64..12, any::<bool>()), 1..40)
    ) {
        let cap = 4usize;
        let mut f = MshrFile::new(cap);
        let mut live: Vec<u64> = Vec::new();
        let mut normal_live = 0usize;
        for (line, sos) in allocs {
            if live.contains(&line) {
                continue;
            }
            match f.alloc(LineAddr(line), MshrKind::Read, sos, 0) {
                Some(_) => {
                    live.push(line);
                    if !sos {
                        normal_live += 1;
                    }
                }
                None => {
                    if sos {
                        prop_assert_eq!(live.len(), cap, "SoS refused before the file was full");
                    } else {
                        prop_assert!(live.len() >= cap - 1, "normal alloc refused too early");
                    }
                }
            }
            prop_assert!(f.in_use() <= cap);
            prop_assert!(normal_live <= cap - 1 || normal_live <= f.in_use());
        }
        for line in live {
            prop_assert!(f.free(LineAddr(line), MshrKind::Read).is_some());
        }
        prop_assert!(f.is_empty());
    }
}
