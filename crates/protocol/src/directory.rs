//! An LLC/directory bank.
//!
//! Each of the 16 tiles hosts one bank of the shared L3 plus the directory
//! slice for the lines that map to it. The protocol is a GEMS-style MESI
//! directory protocol: 3-hop read transactions with Unblock, transient
//! "busy" states that defer conflicting requests, and recall-based
//! directory evictions.
//!
//! The WritersBlock extension (Sections 3.3-3.5 of the paper) adds:
//!
//! - a `Nack` reply to an invalidation puts the in-flight write
//!   transaction into the **WritersBlock** condition: the write stays
//!   pending, *all* other writes for the line are queued (and hinted),
//!   while reads are served **uncacheable tear-off copies** of the
//!   pre-write data, never registering new sharers — Option 2 of Section
//!   3.4, the livelock-free choice;
//! - when the Nacking core's lockdown lifts, its deferred acknowledgement
//!   (`LockdownAck`) is redirected to the writer via the directory
//!   (`RedirAck`), because lockdowns do not retain the writer's identity;
//! - directory evictions whose invalidations hit lockdowns park the entry
//!   in an **eviction buffer** instead of blocking the allocating request
//!   (Section 3.5.1); when the buffer is full, reads fall back to
//!   uncacheable memory reads so SoS loads can never be blocked.
//!
//! The livelock-prone "Option 1" (serve cacheable copies from a
//! WritersBlock entry and re-invalidate) is implemented behind the
//! `wb_cacheable_reads` ablation flag so the spin-loop livelock the paper
//! predicts can be demonstrated.

use crate::array::{Insert, SetAssocArray};
use crate::messages::{Dest, ProtoMsg, ReadKind};
use crate::sharers::SharerSet;
use crate::{DirWait, ProtocolError};
use std::collections::{HashMap, VecDeque};
use wb_kernel::config::{MemoryConfig, SystemConfig};
use wb_kernel::trace::{Category, CompId, TraceEvent, TraceFilter, Tracer};
use wb_kernel::{CounterHandle, Cycle, HeavyHitters, NodeId, Stats};
use wb_mem::{HomeMap, LineAddr, LineData, MainMemory};

/// Directory-entry coherence state.
#[derive(Debug, Clone, PartialEq, Eq)]
enum DirState {
    /// No private copies; LLC data valid.
    Uncached,
    /// `sharers` hold S copies; LLC data valid.
    Shared,
    /// `owner` holds the line in E or M; LLC data possibly stale.
    Owned,
    /// A read transaction is in flight.
    BusyRead { requester: NodeId, waiting_datawb: bool, waiting_unblock: bool, grant_exclusive: bool },
    /// A write transaction is in flight. `wb` marks the WritersBlock
    /// condition (at least one invalidation was Nacked by a lockdown).
    BusyWrite {
        writer: NodeId,
        wb: bool,
        /// Option-1 ablation bookkeeping: cacheable readers admitted
        /// during WritersBlock that must be re-invalidated.
        extra_sharers: SharerSet,
        /// Outstanding acknowledgements from such re-invalidations.
        extra_acks: u32,
        /// LockdownAcks held back while re-invalidation rounds are running.
        deferred_redirs: u32,
    },
    /// Waiting for main memory.
    Fetching,
    /// A soft error was detected in this entry (guard mismatch): the
    /// sharer set and owner are being rebuilt by probing every core
    /// ([`ProtoMsg::AuditProbe`]). All requests queue until `pending`
    /// replies arrive. `parked` accumulates caches whose only claim is a
    /// non-superseded evict-buffer entry (possibly stale); `owner_hint`
    /// is the guard-decoded pre-flip owner used to disambiguate them.
    Poisoned { pending: u32, parked: SharerSet, owner_hint: Option<NodeId> },
}

#[derive(Debug, Clone)]
struct DirEntry {
    state: DirState,
    sharers: SharerSet,
    owner: Option<NodeId>,
    data: LineData,
    queued: VecDeque<ProtoMsg>,
    /// Guard hash over (state code, owner, sharer words) — the
    /// parity/ECC word of the soft-error model. Maintained (and
    /// meaningful) only for stable states while soft errors are on; 0
    /// otherwise, so `SoftPlan::none()` stays byte-identical to no plan.
    guard: u64,
}

impl DirEntry {
    fn stable(&self) -> bool {
        matches!(self.state, DirState::Uncached | DirState::Shared | DirState::Owned)
    }

    /// Guard-hash input code of a stable state.
    fn stable_code(&self) -> Option<u64> {
        match self.state {
            DirState::Uncached => Some(0),
            DirState::Shared => Some(1),
            DirState::Owned => Some(2),
            _ => None,
        }
    }
}

/// Guard hash over a directory entry's protected words: stable-state
/// code, owner (0 = none, 1 + index otherwise), and the four sharer
/// bitset words.
fn dir_guard(code: u64, owner: Option<NodeId>, sharers: &SharerSet) -> u64 {
    let w = sharers.guard_words();
    let o = owner.map_or(0, |n| 1 + n.index() as u64);
    wb_kernel::soft::guard_hash(&[code, o, w[0], w[1], w[2], w[3]])
}

/// A directory entry parked mid-eviction (Section 3.5.1). While parked it
/// still answers reads with tear-off copies and queues writes.
#[derive(Debug, Clone)]
struct Evicting {
    line: LineAddr,
    data: LineData,
    /// Responses still outstanding (InvAck / DataWb / LockdownAck, one per
    /// invalidated copy).
    pending: u32,
    /// True once a Nack arrived: this parked entry is in WritersBlock.
    wb: bool,
    queued: VecDeque<ProtoMsg>,
}

#[derive(Debug, Clone)]
enum Event {
    Process(ProtoMsg),
    MemReady { line: LineAddr },
    UncachedMemRead { line: LineAddr, requester: NodeId },
}

/// Keys tracked per bank by the contended-line attribution sketch.
/// Tens of entries: linear scans beat a heap here and memory stays O(k)
/// no matter how many lines a chaos cell touches.
const HOT_LINES_TRACKED: usize = 32;

/// One LLC + directory bank.
pub struct Directory {
    /// Node (tile) hosting this bank — the mesh routing target.
    node: NodeId,
    /// Global bank index in `0..HomeMap::total_banks()`. With one bank
    /// per node this equals the node index; sharded machines host
    /// several banks per tile.
    bank: usize,
    l3: SetAssocArray<DirEntry>,
    evict_buf: Vec<Evicting>,
    evict_cap: usize,
    memory: MainMemory,
    /// Network arrivals waiting for a request port, in arrival order.
    /// The bank accepts at most `ports` per cycle; the queue depth is
    /// the bank-occupancy contention signal.
    ingress: VecDeque<(Cycle, ProtoMsg)>,
    /// Request ports: messages accepted from `ingress` per cycle.
    ports: usize,
    events: VecDeque<(Cycle, Event)>,
    outbox: Vec<(Dest, ProtoMsg)>,
    l3_latency: u64,
    mem_latency: u64,
    retry_delay: u64,
    option1_cacheable_reads: bool,
    /// Option-1 ablation: cacheable copies handed out from a WritersBlock
    /// entry make the reader send a 3-hop Unblock the write transaction
    /// does not expect; this counts how many to absorb per line.
    stray_unblocks: std::collections::HashMap<LineAddr, u32>,
    stats: Stats,
    tracer: Tracer,
    /// Cycle each line entered WritersBlock (first Nack), for the
    /// blocked-duration histogram. Covers both in-flight writes and
    /// parked evictions (a line is never in both at once).
    wb_since: HashMap<LineAddr, Cycle>,
    /// First "impossible state" seen by this bank; the offending message
    /// is dropped and the system surfaces this as `RunOutcome::Fault`.
    fault: Option<ProtocolError>,
    /// Per-line retry escalation (Nack-driven requeues, Option-1
    /// re-invalidation rounds) feeding the `nack_retries` histogram.
    retry_counts: HashMap<LineAddr, u64>,
    /// Per-line tear-off serve counts feeding the `tearoff_reads_served`
    /// histogram (cross-check for Figure 8's uncacheable-read counts).
    tearoff_counts: HashMap<LineAddr, u64>,
    /// Cycle attribution: top contended lines by WritersBlock-window
    /// cycles and Nack retries. Bounded space-saving sketch — NOT a
    /// per-line map — so chaos cells touching unbounded line sets stay
    /// O(k). Surfaced through [`Directory::hot_lines`] into the report
    /// leaderboard and wedge notes.
    hot: HeavyHitters,
    /// True when a non-empty soft-error plan is active (guards
    /// maintained and checked).
    soft_on: bool,
    /// Number of cores to probe when rebuilding a poisoned entry.
    num_cores: usize,
    /// Cycle each still-undetected soft flip landed, keyed by line.
    wounds: HashMap<LineAddr, Cycle>,
    /// Pre-resolved handles for the counters on the request hot path
    /// (PR 5's `CounterHandle` pattern: no BTreeMap lookup per bump).
    h_gets: CounterHandle,
    h_getx: CounterHandle,
    h_tearoff_replies: CounterHandle,
    h_nack_retries: CounterHandle,
    h_invs_sent: CounterHandle,
}

impl std::fmt::Debug for Directory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Directory")
            .field("node", &self.node)
            .field("bank", &self.bank)
            .field("entries", &self.l3.len())
            .field("parked", &self.evict_buf.len())
            .finish()
    }
}

impl Directory {
    /// Build global bank `bank` of the machine described by `home`; the
    /// bank is hosted at `home.node_of(bank)`.
    pub fn new(bank: usize, home: &HomeMap, cfg: &SystemConfig) -> Self {
        let node = NodeId(home.node_of(bank) as u16);
        let mut d = Directory::with_memory_config(node, &cfg.memory, cfg.wb_cacheable_reads);
        d.bank = bank;
        d.tracer = Tracer::new(CompId::Dir(bank as u16));
        d
    }

    /// Build a single bank at `node` (bank index == node index, the
    /// one-bank-per-tile machine) from a memory configuration directly.
    pub fn with_memory_config(node: NodeId, mem: &MemoryConfig, option1: bool) -> Self {
        let sets = SetAssocArray::<DirEntry>::geometry(mem.l3_bank_bytes, mem.l3_ways, mem.line_bytes);
        let mut stats = Stats::new();
        let h_gets = stats.handle("dir_gets");
        let h_getx = stats.handle("dir_getx");
        let h_tearoff_replies = stats.handle("dir_tearoff_replies");
        let h_nack_retries = stats.handle("dir_nack_retries");
        let h_invs_sent = stats.handle("dir_invs_sent");
        Directory {
            node,
            bank: node.index(),
            l3: SetAssocArray::new(sets, mem.l3_ways),
            evict_buf: Vec::new(),
            evict_cap: mem.dir_evict_buffer,
            memory: MainMemory::new(),
            ingress: VecDeque::new(),
            ports: mem.dir_bank_ports,
            events: VecDeque::new(),
            outbox: Vec::new(),
            l3_latency: mem.l3_hit_cycles,
            mem_latency: mem.mem_cycles,
            retry_delay: 25,
            option1_cacheable_reads: option1,
            stray_unblocks: std::collections::HashMap::new(),
            stats,
            tracer: Tracer::new(CompId::Dir(node.0)),
            wb_since: HashMap::new(),
            fault: None,
            retry_counts: HashMap::new(),
            tearoff_counts: HashMap::new(),
            hot: HeavyHitters::new(HOT_LINES_TRACKED),
            soft_on: false,
            num_cores: 0,
            wounds: HashMap::new(),
            h_gets,
            h_getx,
            h_tearoff_replies,
            h_nack_retries,
            h_invs_sent,
        }
    }

    /// Record an "impossible state" instead of panicking. Only the first
    /// violation is kept (later ones are usually fallout); the counter
    /// still ticks for each.
    fn record_fault(&mut self, line: LineAddr, context: &'static str, detail: String) {
        self.stats.inc("dir_protocol_faults");
        if self.fault.is_none() {
            self.fault = Some(ProtocolError {
                at: format!("dir{}", self.bank),
                line: line.0,
                context: context.to_string(),
                detail,
            });
        }
    }

    /// The first protocol violation this bank has seen, if any.
    pub fn fault(&self) -> Option<&ProtocolError> {
        self.fault.as_ref()
    }

    /// A Nack-driven retry (requeue or Option-1 re-invalidation) for
    /// `line`: escalate its per-line count into the `nack_retries`
    /// histogram and the `dir_nack_retries` counter the livelock
    /// classifier watches.
    fn note_retry(&mut self, line: LineAddr) {
        self.stats.inc_h(self.h_nack_retries);
        // Each retry round costs the requester a retry_delay requeue:
        // attribute that to the line so spinning lines surface in the
        // hot-lines leaderboard even before their WB window closes.
        self.hot.add(line.0, self.retry_delay);
        let c = self.retry_counts.entry(line).or_insert(0);
        *c += 1;
        let c = *c;
        self.stats.record("nack_retries", c);
    }

    /// A tear-off copy served for `line` (from the LLC, a parked
    /// eviction, or uncacheable memory).
    fn note_tearoff(&mut self, line: LineAddr) {
        self.stats.inc_h(self.h_tearoff_replies);
        let c = self.tearoff_counts.entry(line).or_insert(0);
        *c += 1;
        let c = *c;
        self.stats.record("tearoff_reads_served", c);
    }

    /// Every transient or parked entry, with who it waits on and who is
    /// queued behind it — the directory's contribution to the wedge
    /// wait-for graph.
    pub fn wait_summary(&self) -> Vec<DirWait> {
        let queued_of = |q: &VecDeque<ProtoMsg>| -> Vec<u16> {
            q.iter().filter_map(|m| m.requester().map(|n| n.0)).collect()
        };
        let mut out: Vec<DirWait> = Vec::new();
        for (line, e) in self.l3.iter() {
            if e.stable() && e.queued.is_empty() {
                continue;
            }
            let (state, waiting_on) = match &e.state {
                DirState::BusyRead { requester, .. } => ("BusyRead", Some(requester.0)),
                DirState::BusyWrite { wb: true, writer, .. } => ("BusyWrite.wb", Some(writer.0)),
                DirState::BusyWrite { writer, .. } => ("BusyWrite", Some(writer.0)),
                DirState::Fetching => ("Fetching", None),
                DirState::Poisoned { .. } => ("Poisoned", None),
                DirState::Uncached => ("Uncached", None),
                DirState::Shared => ("Shared", None),
                DirState::Owned => ("Owned", e.owner.map(|o| o.0)),
            };
            out.push(DirWait { line: line.0, state, waiting_on, queued: queued_of(&e.queued) });
        }
        for p in &self.evict_buf {
            out.push(DirWait {
                line: p.line.0,
                state: if p.wb { "Evicting.wb" } else { "Evicting" },
                waiting_on: None,
                queued: queued_of(&p.queued),
            });
        }
        out.sort_by_key(|w| w.line);
        out
    }

    /// The node hosting this bank.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// This bank's global index (equals the node index on
    /// one-bank-per-tile machines).
    pub fn bank(&self) -> usize {
        self.bank
    }

    /// Enable/disable event tracing (state transitions, WritersBlock
    /// entry/exit).
    pub fn set_trace(&mut self, filter: TraceFilter) {
        self.tracer.set_filter(filter);
    }

    /// The bank's event tracer (for merging into a system timeline).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The observable state name of `line` at this bank.
    fn state_name(&self, line: LineAddr) -> &'static str {
        if let Some(p) = self.evict_buf.iter().find(|p| p.line == line) {
            return if p.wb { "Evicting.wb" } else { "Evicting" };
        }
        match self.l3.get(line).map(|e| &e.state) {
            None => "Absent",
            Some(DirState::Uncached) => "Uncached",
            Some(DirState::Shared) => "Shared",
            Some(DirState::Owned) => "Owned",
            Some(DirState::BusyRead { .. }) => "BusyRead",
            Some(DirState::BusyWrite { wb: true, .. }) => "BusyWrite.wb",
            Some(DirState::BusyWrite { .. }) => "BusyWrite",
            Some(DirState::Fetching) => "Fetching",
            Some(DirState::Poisoned { .. }) => "Poisoned",
        }
    }

    /// `line` left WritersBlock: close the stall histogram window.
    fn note_wb_exit(&mut self, now: Cycle, line: LineAddr) {
        if let Some(t0) = self.wb_since.remove(&line) {
            let stalled = now.saturating_sub(t0);
            self.stats.record("dir_wb_cycles", stalled);
            self.hot.add(line.0, stalled);
            self.tracer.record(now, TraceEvent::WritersBlockEnd { line: line.0 });
        }
    }

    /// Cycle attribution for this bank: the top contended lines by
    /// WritersBlock-window cycles plus Nack-retry requeue cost, as a
    /// bounded space-saving sketch (see [`wb_kernel::attr`]).
    pub fn hot_lines(&self) -> &HeavyHitters {
        &self.hot
    }

    /// Pre-load a word into this bank's backing memory (simulation setup).
    pub fn init_word(&mut self, addr: wb_mem::Addr, value: u64) {
        self.memory.write_word(addr, value);
    }

    /// The current architectural value of `addr` *as far as this bank
    /// knows*: LLC copy if fresh, else backing memory. Lines owned by a
    /// private cache must be resolved there instead (see `owner_of`).
    pub fn memory_value(&self, addr: wb_mem::Addr) -> u64 {
        let line = addr.line();
        if let Some(e) = self.l3.get(line) {
            if !matches!(e.state, DirState::Owned) {
                return e.data.word(addr.word_index());
            }
        }
        if let Some(p) = self.evict_buf.iter().find(|p| p.line == line) {
            return p.data.word(addr.word_index());
        }
        self.memory.read_word(addr)
    }

    /// Who owns `line` exclusively right now, if anyone.
    pub fn owner_of(&self, line: LineAddr) -> Option<NodeId> {
        match self.l3.get(line) {
            Some(e) if matches!(e.state, DirState::Owned) => e.owner,
            _ => None,
        }
    }

    /// Debug: describe the directory entry for `line`.
    pub fn debug_line(&self, line: LineAddr) -> String {
        let entry = self.l3.get(line).map(|e| {
            format!("state={:?} sharers={:#x} owner={:?} queued={}", e.state, e.sharers, e.owner, e.queued.len())
        });
        let parked = self.evict_buf.iter().find(|p| p.line == line).map(|p| format!("parked pending={} wb={}", p.pending, p.wb));
        let evs: Vec<String> = self.events.iter().map(|(due, e)| format!("@{due}:{e:?}")).collect();
        format!(
            "dir{} line {line}: {entry:?} {parked:?} ingress={} events=[{}]",
            self.bank,
            self.ingress.len(),
            evs.join("; ")
        )
    }

    /// Accept a message from the network. The message waits for one of
    /// the bank's request ports (at most `dir_bank_ports` acceptances
    /// per cycle); once accepted, processing happens after the bank's
    /// access latency.
    pub fn receive(&mut self, now: Cycle, msg: ProtoMsg) {
        self.ingress.push_back((now, msg));
    }

    /// Drain messages to inject into the mesh.
    pub fn drain_outbox(&mut self) -> Vec<(Dest, ProtoMsg)> {
        std::mem::take(&mut self.outbox)
    }

    /// Allocation-free [`Directory::drain_outbox`]: append queued
    /// messages to `out` (which the caller clears and reuses).
    pub fn drain_outbox_into(&mut self, out: &mut Vec<(Dest, ProtoMsg)>) {
        out.append(&mut self.outbox);
    }

    /// The earliest cycle at which ticking this bank can change state:
    /// `Some(now)` when the outbox has messages to inject or an event is
    /// already due, the minimum future event due-time otherwise, `None`
    /// when the event queue is empty. Parked evictions and queued
    /// requests only advance on *incoming* messages (tracked by the
    /// mesh's own `next_event`), so they carry no deadline here.
    ///
    /// This is also the sparse engine's sleep-eligibility hook: event
    /// due-times are absolute cycles, so the prediction is temporally
    /// stable — a sleeping bank's cached wake stays correct until a
    /// message is delivered to it (which wakes it at the glue layer).
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        let mut next: Option<Cycle> = None;
        if !self.outbox.is_empty() || !self.ingress.is_empty() {
            next = Some(now);
        }
        for &(due, _) in &self.events {
            let due = due.max(now);
            next = Some(next.map_or(due, |n| n.min(due)));
        }
        next
    }

    /// True when no protocol messages await injection (`SparseVerify`
    /// asserts this stays true across a slept bank's shadow tick).
    pub fn outbox_is_empty(&self) -> bool {
        self.outbox.is_empty()
    }

    /// Counter access for reports.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// True when no event, transient entry or parked eviction is pending.
    /// A `Poisoned` entry is not stable, so an in-flight rebuild keeps
    /// the bank (and the run) alive until its probes resolve.
    pub fn is_idle(&self) -> bool {
        self.ingress.is_empty()
            && self.events.is_empty()
            && self.evict_buf.is_empty()
            && self.l3.iter().all(|(_, e)| e.stable() && e.queued.is_empty())
    }

    // ------------------------------------------------------------------
    // Soft errors: guards, poison, probe-rebuild
    // ------------------------------------------------------------------

    /// Enable the soft-error guard machinery; `num_cores` bounds the
    /// probe fan-out when a poisoned entry rebuilds its sharer set.
    pub fn set_soft(&mut self, on: bool, num_cores: usize) {
        self.soft_on = on;
        self.num_cores = num_cores;
    }

    /// The guard a stable entry should carry right now.
    fn entry_guard(e: &DirEntry) -> Option<u64> {
        e.stable_code().map(|c| dir_guard(c, e.owner, &e.sharers))
    }

    /// Is this stable entry's guard consistent with its protected words?
    fn guard_ok(e: &DirEntry) -> bool {
        match Self::entry_guard(e) {
            Some(h) => e.guard == h,
            None => true, // transient entries carry no valid guard
        }
    }

    /// Refresh the guard of `line` after an event legitimately mutated
    /// the entry (no-op for transient states; they reguard on return to
    /// stability).
    fn reguard(&mut self, line: LineAddr) {
        if !self.soft_on {
            return;
        }
        if let Some(e) = self.l3.get_mut(line) {
            if let Some(h) = Self::entry_guard(e) {
                e.guard = h;
            }
        }
    }

    /// Guard-decode the pre-flip owner: if hashing the protected words
    /// with the `Owned` code reproduces the stored guard, the entry was
    /// Owned before the flip and the (untouched) owner field is the true
    /// owner. Used to tell a genuine parked owner from a stale
    /// evict-buffer claim during rebuild.
    fn decode_owner_hint(e: &DirEntry) -> Option<NodeId> {
        if e.guard == dir_guard(2, e.owner, &e.sharers) {
            e.owner
        } else {
            None
        }
    }

    /// Check the guard of `line` before interpreting its stored state.
    /// On a mismatch the flip is counted as detected and the entry
    /// enters `Poisoned`: sharers/owner reset to rebuild accumulators
    /// and every core is probed. Requests arriving meanwhile queue.
    fn check_guard(&mut self, now: Cycle, line: LineAddr) {
        if !self.soft_on {
            return;
        }
        let Some(e) = self.l3.get(line) else { return };
        if !e.stable() || Self::guard_ok(e) {
            return;
        }
        if let Some(t0) = self.wounds.remove(&line) {
            self.stats.record("soft_detect_latency", now.saturating_sub(t0));
        }
        self.stats.inc("soft_detected");
        self.stats.inc("dir_poisoned");
        let cores = self.num_cores as u32;
        debug_assert!(cores > 0, "set_soft must provide the core count");
        let e = self.l3.get_mut(line).expect("just checked");
        let owner_hint = Self::decode_owner_hint(e);
        e.sharers = SharerSet::EMPTY;
        e.owner = None;
        e.state = DirState::Poisoned { pending: cores, parked: SharerSet::EMPTY, owner_hint };
        for i in 0..self.num_cores {
            self.send(NodeId(i as u16), ProtoMsg::AuditProbe { line });
        }
    }

    /// One [`ProtoMsg::AuditReply`] for a poisoned entry: accumulate the
    /// core's claim and resolve the entry when the last reply lands.
    fn on_audit_reply(&mut self, now: Cycle, line: LineAddr, from: NodeId, present: bool, excl: bool) {
        let Some(e) = self.l3.get_mut(line) else {
            self.stats.inc("dir_stray_audit_replies");
            return;
        };
        let DirState::Poisoned { pending, parked, .. } = &mut e.state else {
            self.stats.inc("dir_stray_audit_replies");
            return;
        };
        let mut swmr_violation = false;
        if present && excl {
            swmr_violation = e.owner.is_some();
            e.owner = Some(from);
        } else if present {
            e.sharers.insert(from);
        } else if excl {
            parked.insert(from);
        }
        *pending = pending.saturating_sub(1);
        let done = *pending == 0;
        if swmr_violation {
            self.record_fault(line, "AuditReply", "two resident exclusive holders".to_string());
        }
        if done {
            self.finish_rebuild(now, line);
        }
    }

    /// Resolve a fully-rebuilt poisoned entry from the accumulated
    /// probe replies: a resident exclusive holder wins; otherwise
    /// resident sharers make the entry Shared; otherwise a parked claim
    /// matching the guard-decoded owner is the genuine (mid-PutM) owner;
    /// otherwise the line is Uncached. Queued requests then drain.
    fn finish_rebuild(&mut self, now: Cycle, line: LineAddr) {
        let Some(e) = self.l3.get_mut(line) else { return };
        let DirState::Poisoned { parked, owner_hint, .. } = e.state.clone() else { return };
        if let Some(owner) = e.owner {
            if !e.sharers.is_empty() {
                let detail = format!("owner {owner} with residual sharers {:?}", e.sharers);
                e.sharers = SharerSet::EMPTY;
                e.state = DirState::Owned;
                self.reguard(line);
                self.record_fault(line, "rebuild", detail);
            } else {
                e.state = DirState::Owned;
                self.reguard(line);
            }
        } else if !e.sharers.is_empty() {
            e.state = DirState::Shared;
            self.reguard(line);
        } else if let Some(h) = owner_hint.filter(|h| parked.contains(*h)) {
            // The pre-flip owner's PutM is still in flight (queued here
            // or in the mesh); restoring Owned lets it land normally.
            e.owner = Some(h);
            e.state = DirState::Owned;
            self.reguard(line);
        } else {
            // No copies anywhere (any parked claims are stale PutAck
            // races): the LLC data is authoritative.
            e.owner = None;
            e.state = DirState::Uncached;
            self.reguard(line);
        }
        self.stats.inc("soft_recovered");
        self.stats.inc("dir_rebuilds");
        self.drain_queued(now, line);
    }

    /// Apply one soft flip of `target` kind to this bank's stored
    /// directory state. Victims are stable entries with empty queues and
    /// healthy guards; returns `false` when none qualify.
    pub fn soft_flip(&mut self, now: Cycle, target: wb_kernel::SoftTarget, rng: &mut wb_kernel::SimRng) -> bool {
        use wb_kernel::SoftTarget;
        let want_shared = target == SoftTarget::Sharers;
        let candidates: Vec<LineAddr> = self
            .l3
            .iter()
            .filter(|(_, e)| {
                e.stable()
                    && e.queued.is_empty()
                    && Self::guard_ok(e)
                    && (!want_shared || matches!(e.state, DirState::Shared))
            })
            .map(|(l, _)| l)
            .collect();
        match target {
            SoftTarget::DirState => {
                if candidates.is_empty() {
                    return false;
                }
                let line = candidates[rng.below_usize(candidates.len())];
                let e = self.l3.get_mut(line).expect("candidate resident");
                let others: Vec<DirState> = [DirState::Uncached, DirState::Shared, DirState::Owned]
                    .into_iter()
                    .filter(|s| *s != e.state)
                    .collect();
                e.state = others[rng.below_usize(others.len())].clone();
                self.wounds.insert(line, now);
                self.stats.inc("soft_injected");
                true
            }
            SoftTarget::Sharers => {
                if candidates.is_empty() {
                    return false;
                }
                let line = candidates[rng.below_usize(candidates.len())];
                let victim = NodeId(rng.below(self.num_cores as u64) as u16);
                let e = self.l3.get_mut(line).expect("candidate resident");
                e.sharers.toggle(victim);
                self.wounds.insert(line, now);
                self.stats.inc("soft_injected");
                true
            }
            // Cache-side targets are routed to private caches.
            SoftTarget::CacheState | SoftTarget::CacheTag | SoftTarget::Mshr => false,
        }
    }

    /// Stable entries whose guard currently mismatches (undetected
    /// wounds), in deterministic array order — the online auditor's
    /// scrub worklist.
    pub fn audit_wounds(&self) -> Vec<LineAddr> {
        if !self.soft_on {
            return Vec::new();
        }
        self.l3
            .iter()
            .filter(|(_, e)| e.stable() && !Self::guard_ok(e))
            .map(|(l, _)| l)
            .collect()
    }

    /// Synchronous repair for the online auditor: the system gathers
    /// probe answers from every cache directly (same `(present, excl)`
    /// encoding as [`ProtoMsg::AuditReply`]) and hands them in; the
    /// entry resolves through the same rebuild path as the async
    /// message-based recovery. Returns true when a wound was repaired.
    pub fn audit_repair(
        &mut self,
        now: Cycle,
        line: LineAddr,
        owner: Option<NodeId>,
        sharers: SharerSet,
        parked: SharerSet,
    ) -> bool {
        if !self.soft_on {
            return false;
        }
        let Some(e) = self.l3.get(line) else { return false };
        if !e.stable() || Self::guard_ok(e) {
            return false;
        }
        if let Some(t0) = self.wounds.remove(&line) {
            self.stats.record("soft_detect_latency", now.saturating_sub(t0));
        }
        self.stats.inc("soft_detected");
        let e = self.l3.get_mut(line).expect("just checked");
        let owner_hint = Self::decode_owner_hint(e);
        e.owner = owner;
        e.sharers = sharers;
        e.state = DirState::Poisoned { pending: 0, parked, owner_hint };
        self.finish_rebuild(now, line);
        true
    }

    /// Mark every line with in-flight directory-side activity; the
    /// auditor only checks directory–cache agreement on unmarked lines.
    pub fn audit_busy_lines(&self, mark: &mut dyn FnMut(LineAddr)) {
        for (l, e) in self.l3.iter() {
            if !e.stable() || !e.queued.is_empty() {
                mark(l);
            }
        }
        for p in &self.evict_buf {
            mark(p.line);
        }
        for (_, msg) in &self.ingress {
            mark(msg.line());
        }
        for (_, ev) in &self.events {
            match ev {
                Event::Process(m) => mark(m.line()),
                Event::MemReady { line } | Event::UncachedMemRead { line, .. } => mark(*line),
            }
        }
        for (_, msg) in &self.outbox {
            mark(msg.line());
        }
        for l in self.stray_unblocks.keys() {
            mark(*l);
        }
        for l in self.wounds.keys() {
            mark(*l);
        }
    }

    /// The auditor's view of every stable entry: `(line, state code,
    /// owner, sharers)` with code 0 = Uncached, 1 = Shared, 2 = Owned.
    pub fn audit_entries(&self) -> Vec<(LineAddr, u64, Option<NodeId>, SharerSet)> {
        self.l3
            .iter()
            .filter_map(|(l, e)| e.stable_code().map(|c| (l, c, e.owner, e.sharers)))
            .collect()
    }

    /// Eviction-buffer occupancy against its configured capacity, for
    /// the auditor's leak bound.
    pub fn evict_buf_usage(&self) -> (usize, usize) {
        (self.evict_buf.len(), self.evict_cap)
    }

    /// Advance one cycle: accept waiting requests through the bank's
    /// ports, then handle every event that has become due.
    pub fn tick(&mut self, now: Cycle) {
        if !self.ingress.is_empty() {
            // One occupancy sample per busy cycle: how deep the request
            // queue is when the ports start accepting.
            self.stats.record("dir_bank_occupancy", self.ingress.len() as u64);
            for _ in 0..self.ports {
                match self.ingress.pop_front() {
                    Some((_, msg)) => {
                        self.events.push_back((now + self.l3_latency, Event::Process(msg)));
                    }
                    None => break,
                }
            }
            if !self.ingress.is_empty() {
                // Requests left waiting for a port: the contention the
                // infinite-bandwidth model hid.
                self.stats.inc("dir_port_stall_cycles");
            }
        }
        // Events are *not* guaranteed to be in due-time order (memory
        // fetches land far in the future), so scan the whole queue —
        // in place, rotating not-yet-due events to the back (handlers
        // only ever push strictly-future events, so the first
        // `original length` pops see exactly the pre-tick queue).
        for _ in 0..self.events.len() {
            match self.events.pop_front() {
                Some((due, ev)) if due <= now => self.handle(now, ev),
                Some(entry) => self.events.push_back(entry),
                None => break,
            }
        }
    }

    fn send(&mut self, dst: NodeId, msg: ProtoMsg) {
        // Every directory-originated message targets a private cache.
        self.outbox.push((Dest::Cache(dst), msg));
    }

    fn requeue(&mut self, now: Cycle, msg: ProtoMsg, delay: u64) {
        self.events.push_back((now + delay, Event::Process(msg)));
    }

    fn handle(&mut self, now: Cycle, ev: Event) {
        // State transitions are observed around each event rather than
        // at every `entry.state = ...` site: one wiring point, and the
        // trace shows the externally-visible before/after per message.
        let traced_line = if self.tracer.wants(Category::Directory) {
            match &ev {
                Event::Process(msg) => Some(msg.line()),
                Event::MemReady { line } => Some(*line),
                Event::UncachedMemRead { .. } => None,
            }
        } else {
            None
        };
        let before = traced_line.map(|l| self.state_name(l));
        let guard_line = match (&ev, self.soft_on) {
            (Event::Process(msg), true) => Some(msg.line()),
            (Event::MemReady { line }, true) => Some(*line),
            _ => None,
        };
        if let Some(l) = guard_line {
            // Scrub before interpreting stored state: a flipped entry
            // poisons (queueing this event's request if it targets the
            // line) instead of being acted on.
            self.check_guard(now, l);
        }
        self.handle_inner(now, ev);
        if let Some(l) = guard_line {
            self.reguard(l);
        }
        if let (Some(line), Some(before)) = (traced_line, before) {
            let after = self.state_name(line);
            if after != before {
                self.tracer.record(
                    now,
                    TraceEvent::DirTransition { line: line.0, from: before, to: after },
                );
            }
        }
    }

    fn handle_inner(&mut self, now: Cycle, ev: Event) {
        match ev {
            Event::Process(msg) => self.process(now, msg),
            Event::MemReady { line } => self.on_mem_ready(now, line),
            Event::UncachedMemRead { line, requester } => {
                let data = self.memory.read_line(line);
                self.note_tearoff(line);
                self.send(
                    requester,
                    ProtoMsg::Data {
                        line,
                        data,
                        acks_expected: 0,
                        exclusive: false,
                        cacheable: false,
                        for_write: false,
                    },
                );
            }
        }
    }

    fn process(&mut self, now: Cycle, msg: ProtoMsg) {
        match msg {
            ProtoMsg::GetS { line, requester, kind } => self.on_gets(now, line, requester, kind),
            ProtoMsg::GetX { line, requester } => self.on_getx(now, line, requester),
            ProtoMsg::PutM { line, requester, data } => self.on_putm(now, line, requester, data),
            ProtoMsg::PutS { line, requester } => self.on_puts(line, requester),
            ProtoMsg::Nack { line, from, data } => self.on_nack(now, line, from, data),
            ProtoMsg::LockdownAck { line, from } => self.on_lockdown_ack(now, line, from),
            ProtoMsg::InvAck { line, from } => self.on_inv_ack(now, line, from),
            ProtoMsg::DataWb { line, from, data } => self.on_datawb(now, line, from, data),
            ProtoMsg::Unblock { line, from } => self.on_unblock(now, line, from),
            ProtoMsg::AuditReply { line, from, present, excl } => {
                self.on_audit_reply(now, line, from, present, excl)
            }
            other => {
                let line = other.line();
                self.record_fault(line, "receive", format!("unexpected message {other:?}"));
            }
        }
    }

    // ------------------------------------------------------------------
    // Reads
    // ------------------------------------------------------------------

    fn tear_off_reply(&mut self, line: LineAddr, requester: NodeId, data: LineData) {
        self.note_tearoff(line);
        self.send(
            requester,
            ProtoMsg::Data {
                line,
                data,
                acks_expected: 0,
                exclusive: false,
                cacheable: false,
                for_write: false,
            },
        );
    }

    fn on_gets(&mut self, now: Cycle, line: LineAddr, requester: NodeId, kind: ReadKind) {
        self.stats.inc_h(self.h_gets);
        // Parked (mid-eviction) entries serve reads without a directory
        // entry: the read "performs without needing a directory entry"
        // (Section 3.5.1).
        if let Some(p) = self.evict_buf.iter().find(|p| p.line == line) {
            let data = p.data;
            self.tear_off_reply(line, requester, data);
            return;
        }
        let Some(entry) = self.l3.get_mut(line) else {
            self.fetch_or_fallback(now, ProtoMsg::GetS { line, requester, kind });
            return;
        };
        match entry.state.clone() {
            DirState::Uncached => match kind {
                ReadKind::TearOff => {
                    let data = entry.data;
                    self.tear_off_reply(line, requester, data);
                }
                ReadKind::Cacheable => {
                    // Exclusive grant: no other copies exist.
                    let data = entry.data;
                    entry.state = DirState::BusyRead {
                        requester,
                        waiting_datawb: false,
                        waiting_unblock: true,
                        grant_exclusive: true,
                    };
                    self.l3.touch(line, now);
                    self.send(
                        requester,
                        ProtoMsg::Data {
                            line,
                            data,
                            acks_expected: 0,
                            exclusive: true,
                            cacheable: true,
                            for_write: false,
                        },
                    );
                }
            },
            DirState::Shared => match kind {
                ReadKind::TearOff => {
                    let data = entry.data;
                    self.tear_off_reply(line, requester, data);
                }
                ReadKind::Cacheable => {
                    let data = entry.data;
                    entry.state = DirState::BusyRead {
                        requester,
                        waiting_datawb: false,
                        waiting_unblock: true,
                        grant_exclusive: false,
                    };
                    self.l3.touch(line, now);
                    self.send(
                        requester,
                        ProtoMsg::Data {
                            line,
                            data,
                            acks_expected: 0,
                            exclusive: false,
                            cacheable: true,
                            for_write: false,
                        },
                    );
                }
            },
            DirState::Owned => {
                let owner = entry.owner.expect("Owned entry has an owner");
                match kind {
                    ReadKind::TearOff => {
                        // Fresh data lives at the owner; it serves the
                        // tear-off directly and keeps its state.
                        self.stats.inc_h(self.h_tearoff_replies);
                        self.send(owner, ProtoMsg::FwdGetS { line, requester, kind });
                    }
                    ReadKind::Cacheable => {
                        // 3-hop read: owner sends data to the requester and
                        // a copy back here; both become sharers.
                        entry.sharers = SharerSet::solo(owner);
                        entry.owner = None;
                        entry.state = DirState::BusyRead {
                            requester,
                            waiting_datawb: true,
                            waiting_unblock: true,
                            grant_exclusive: false,
                        };
                        self.l3.touch(line, now);
                        self.send(owner, ProtoMsg::FwdGetS { line, requester, kind });
                    }
                }
            }
            DirState::BusyWrite { wb: true, writer, mut extra_sharers, .. } => {
                if self.option1_cacheable_reads && kind == ReadKind::Cacheable {
                    // Option 1 ablation (Section 3.4): admit a cacheable
                    // copy that will have to be re-invalidated before the
                    // blocked write may proceed. Livelock-prone by design.
                    let data = entry.data;
                    extra_sharers.insert(requester);
                    if let DirState::BusyWrite { extra_sharers: es, .. } = &mut entry.state {
                        *es = extra_sharers;
                    }
                    entry.sharers.insert(requester);
                    *self.stray_unblocks.entry(line).or_insert(0) += 1;
                    self.stats.inc("dir_option1_cacheable_reads");
                    self.send(
                        requester,
                        ProtoMsg::Data {
                            line,
                            data,
                            acks_expected: 0,
                            exclusive: false,
                            cacheable: true,
                            for_write: false,
                        },
                    );
                    let _ = writer;
                } else {
                    // Option 2 (the paper's choice): an uncacheable
                    // tear-off copy of the latest pre-write data.
                    let data = entry.data;
                    self.tear_off_reply(line, requester, data);
                }
            }
            DirState::BusyRead { .. }
            | DirState::BusyWrite { .. }
            | DirState::Fetching
            | DirState::Poisoned { .. } => {
                let entry = self.l3.get_mut(line).expect("entry still present");
                entry.queued.push_back(ProtoMsg::GetS { line, requester, kind });
            }
        }
    }

    // ------------------------------------------------------------------
    // Writes
    // ------------------------------------------------------------------

    fn on_getx(&mut self, now: Cycle, line: LineAddr, requester: NodeId) {
        self.stats.inc_h(self.h_getx);
        if let Some(p) = self.evict_buf.iter_mut().find(|p| p.line == line) {
            // Writes queue behind a parked (WritersBlock) eviction.
            let hinted = p.wb;
            p.queued.push_back(ProtoMsg::GetX { line, requester });
            if hinted {
                self.send(requester, ProtoMsg::WbHint { line });
            }
            return;
        }
        let Some(entry) = self.l3.get_mut(line) else {
            self.fetch_or_fallback(now, ProtoMsg::GetX { line, requester });
            return;
        };
        match entry.state.clone() {
            DirState::Uncached => {
                let data = entry.data;
                entry.state = DirState::BusyWrite {
                    writer: requester,
                    wb: false,
                    extra_sharers: SharerSet::EMPTY,
                    extra_acks: 0,
                    deferred_redirs: 0,
                };
                self.l3.touch(line, now);
                self.send(
                    requester,
                    ProtoMsg::Data {
                        line,
                        data,
                        acks_expected: 0,
                        exclusive: false,
                        cacheable: true,
                        for_write: true,
                    },
                );
            }
            DirState::Shared => {
                let invs = entry.sharers.without(requester);
                let n = invs.count() as u32;
                let data = entry.data;
                entry.state = DirState::BusyWrite {
                    writer: requester,
                    wb: false,
                    extra_sharers: SharerSet::EMPTY,
                    extra_acks: 0,
                    deferred_redirs: 0,
                };
                self.l3.touch(line, now);
                self.send(
                    requester,
                    ProtoMsg::Data {
                        line,
                        data,
                        acks_expected: n,
                        exclusive: false,
                        cacheable: true,
                        for_write: true,
                    },
                );
                for target in invs {
                    self.send(target, ProtoMsg::Inv { line, writer: Some(requester) });
                    self.stats.inc_h(self.h_invs_sent);
                }
            }
            DirState::Owned => {
                let owner = entry.owner.expect("Owned entry has an owner");
                let data = entry.data;
                entry.state = DirState::BusyWrite {
                    writer: requester,
                    wb: false,
                    extra_sharers: SharerSet::EMPTY,
                    extra_acks: 0,
                    deferred_redirs: 0,
                };
                self.l3.touch(line, now);
                if owner == requester {
                    // The owner's stale prefetch request: it already holds
                    // the line exclusively; the data payload is ignored by
                    // the cache.
                    self.send(
                        requester,
                        ProtoMsg::Data {
                            line,
                            data,
                            acks_expected: 0,
                            exclusive: false,
                            cacheable: true,
                            for_write: true,
                        },
                    );
                } else {
                    self.send(owner, ProtoMsg::FwdGetX { line, requester });
                }
            }
            DirState::BusyWrite { wb, .. } => {
                if wb {
                    // "Any write that encounters a WritersBlock" gets the
                    // hint (Section 3.5.2) and waits its turn.
                    self.send(requester, ProtoMsg::WbHint { line });
                }
                let entry = self.l3.get_mut(line).expect("entry still present");
                entry.queued.push_back(ProtoMsg::GetX { line, requester });
            }
            DirState::BusyRead { .. } | DirState::Fetching | DirState::Poisoned { .. } => {
                let entry = self.l3.get_mut(line).expect("entry still present");
                entry.queued.push_back(ProtoMsg::GetX { line, requester });
            }
        }
    }

    // ------------------------------------------------------------------
    // Writebacks and sharer removals
    // ------------------------------------------------------------------

    fn on_putm(&mut self, now: Cycle, line: LineAddr, requester: NodeId, data: LineData) {
        if let Some(i) = self.evict_buf.iter().position(|p| p.line == line && p.pending > 0) {
            // The recalled owner's PutM crossed our Recall: it carries the
            // data we were waiting for.
            self.evict_buf[i].data = data;
            self.evict_buf[i].pending = 0;
            self.send(requester, ProtoMsg::PutAck { line });
            self.complete_eviction(now, i);
            return;
        }
        // A PutM crossing an in-flight forward: the PutAck must not reach
        // the evicting owner before the forward does (they travel on
        // different virtual networks), or the owner drops the data the
        // forward needs. Defer until the transaction completes.
        if let Some(entry) = self.l3.get_mut(line) {
            if !entry.stable() {
                entry.queued.push_back(ProtoMsg::PutM { line, requester, data });
                return;
            }
        }
        let is_owner = self
            .l3
            .get(line)
            .is_some_and(|e| matches!(e.state, DirState::Owned) && e.owner == Some(requester));
        if is_owner {
            let entry = self.l3.get_mut(line).expect("just checked");
            entry.data = data;
            entry.owner = None;
            entry.state = DirState::Uncached;
            self.stats.inc("dir_putm");
        } else {
            // Stale PutM (a forward consumed the line first). Ack so the
            // evictor can free its buffer.
            self.stats.inc("dir_putm_stale");
        }
        self.send(requester, ProtoMsg::PutAck { line });
    }

    fn on_puts(&mut self, line: LineAddr, requester: NodeId) {
        if let Some(entry) = self.l3.get_mut(line) {
            if matches!(entry.state, DirState::Shared) {
                entry.sharers.remove(requester);
                if entry.sharers.is_empty() {
                    entry.state = DirState::Uncached;
                }
            }
        }
        // In any other state the in-flight transaction's invalidations
        // handle this cache; no acknowledgement is needed for PutS.
    }

    // ------------------------------------------------------------------
    // WritersBlock machinery
    // ------------------------------------------------------------------

    fn on_nack(&mut self, now: Cycle, line: LineAddr, _from: NodeId, data: Option<LineData>) {
        if let Some(p) = self.evict_buf.iter_mut().find(|p| p.line == line) {
            if !p.wb {
                p.wb = true;
                self.stats.inc("dir_evictions_blocked");
                self.wb_since.entry(line).or_insert(now);
            }
            if let Some(d) = data {
                p.data = d;
            }
            return;
        }
        let Some(entry) = self.l3.get_mut(line) else {
            self.record_fault(line, "Nack", "no directory entry".to_string());
            return;
        };
        if let Some(d) = data {
            entry.data = d;
        }
        let newly_blocked = match &mut entry.state {
            DirState::BusyWrite { writer, wb, .. } => {
                let writer = *writer;
                if !*wb {
                    *wb = true;
                    Some(writer)
                } else {
                    None
                }
            }
            other => {
                let detail = format!("in state {other:?}");
                self.record_fault(line, "Nack", detail);
                return;
            }
        };
        // Entering WritersBlock: reads must never wait behind the blocked
        // write (Section 3.4). A read queued while the entry was merely
        // busy would now wait on the lockdowns — and if it serves an SoS
        // load, deadlock. Serve queued reads with tear-off copies and
        // hint queued writers.
        let mut tear_offs: Vec<NodeId> = Vec::new();
        let mut hints: Vec<NodeId> = Vec::new();
        let wbdata = entry.data;
        if newly_blocked.is_some() {
            entry.queued.retain(|m| match *m {
                ProtoMsg::GetS { requester, .. } => {
                    tear_offs.push(requester);
                    false
                }
                ProtoMsg::GetX { requester, .. } => {
                    hints.push(requester);
                    true
                }
                _ => true,
            });
        }
        self.l3.touch(line, now);
        for r in tear_offs {
            self.tear_off_reply(line, r, wbdata);
        }
        for r in hints {
            self.send(r, ProtoMsg::WbHint { line });
        }
        if let Some(writer) = newly_blocked {
            self.stats.inc("dir_writes_blocked");
            self.wb_since.entry(line).or_insert(now);
            self.tracer
                .record(now, TraceEvent::WritersBlockBegin { line: line.0, writer: writer.0 });
            self.send(writer, ProtoMsg::WbHint { line });
        }
    }

    fn on_lockdown_ack(&mut self, now: Cycle, line: LineAddr, _from: NodeId) {
        if let Some(i) = self.evict_buf.iter().position(|p| p.line == line) {
            self.evict_buf[i].pending = self.evict_buf[i].pending.saturating_sub(1);
            if self.evict_buf[i].pending == 0 {
                self.complete_eviction(now, i);
            }
            return;
        }
        let option1 = self.option1_cacheable_reads;
        let Some(entry) = self.l3.get_mut(line) else {
            self.record_fault(line, "LockdownAck", "no directory entry".to_string());
            return;
        };
        enum Act {
            Redir(NodeId),
            Reinvalidate(SharerSet),
            Bad(String),
        }
        let act = match &mut entry.state {
            DirState::BusyWrite { writer, extra_sharers, extra_acks, deferred_redirs, .. } => {
                if option1 && (!extra_sharers.is_empty() || *extra_acks > 0) {
                    // Option 1: new sharers were admitted; they must be
                    // re-invalidated before the write may see its acks.
                    *deferred_redirs += 1;
                    let sharers = extra_sharers.take();
                    *extra_acks += sharers.count() as u32;
                    Act::Reinvalidate(sharers)
                } else {
                    Act::Redir(*writer)
                }
            }
            other => Act::Bad(format!("in state {other:?}")),
        };
        if let Act::Reinvalidate(sharers) = &act {
            for n in sharers.iter() {
                entry.sharers.remove(n);
            }
        }
        match act {
            Act::Redir(writer) => {
                self.stats.inc("dir_redir_acks");
                self.send(writer, ProtoMsg::RedirAck { line });
            }
            Act::Reinvalidate(sharers) => {
                for target in sharers {
                    self.send(target, ProtoMsg::Inv { line, writer: None });
                    self.stats.inc("dir_option1_reinvalidations");
                    self.note_retry(line);
                }
            }
            Act::Bad(detail) => self.record_fault(line, "LockdownAck", detail),
        }
    }

    fn on_inv_ack(&mut self, now: Cycle, line: LineAddr, _from: NodeId) {
        if let Some(i) = self.evict_buf.iter().position(|p| p.line == line) {
            self.evict_buf[i].pending = self.evict_buf[i].pending.saturating_sub(1);
            if self.evict_buf[i].pending == 0 {
                self.complete_eviction(now, i);
            }
            return;
        }
        // Option-1 re-invalidation acknowledgement. If new readers kept
        // arriving while this round ran, start another round — the
        // perpetual re-invalidation the paper predicts (Section 3.4).
        let mut flush: Option<(NodeId, u32)> = None;
        let mut next_round = SharerSet::EMPTY;
        let mut handled = false;
        if let Some(entry) = self.l3.get_mut(line) {
            if let DirState::BusyWrite { writer, extra_sharers, extra_acks, deferred_redirs, .. } =
                &mut entry.state
            {
                handled = true;
                *extra_acks = extra_acks.saturating_sub(1);
                if *extra_acks == 0 {
                    if !extra_sharers.is_empty() {
                        next_round = extra_sharers.take();
                        *extra_acks = next_round.count() as u32;
                    } else if *deferred_redirs > 0 {
                        flush = Some((*writer, std::mem::take(deferred_redirs)));
                    }
                }
            }
        }
        if !next_round.is_empty() {
            if let Some(entry) = self.l3.get_mut(line) {
                for n in next_round.iter() {
                    entry.sharers.remove(n);
                }
            }
            for target in next_round {
                self.send(target, ProtoMsg::Inv { line, writer: None });
                self.stats.inc("dir_option1_reinvalidations");
                self.note_retry(line);
            }
        }
        if let Some((writer, n)) = flush {
            for _ in 0..n {
                self.stats.inc("dir_redir_acks");
                self.send(writer, ProtoMsg::RedirAck { line });
            }
        }
        if !handled {
            self.stats.inc("dir_stray_inv_acks");
        }
    }

    fn on_datawb(&mut self, now: Cycle, line: LineAddr, _from: NodeId, data: LineData) {
        if let Some(i) = self.evict_buf.iter().position(|p| p.line == line) {
            self.evict_buf[i].data = data;
            self.evict_buf[i].pending = self.evict_buf[i].pending.saturating_sub(1);
            if self.evict_buf[i].pending == 0 {
                self.complete_eviction(now, i);
            }
            return;
        }
        let Some(entry) = self.l3.get_mut(line) else {
            self.record_fault(line, "DataWb", "no directory entry".to_string());
            return;
        };
        entry.data = data;
        let done = match &mut entry.state {
            DirState::BusyRead { waiting_datawb, waiting_unblock, .. } => {
                *waiting_datawb = false;
                Ok(!*waiting_unblock)
            }
            other => Err(format!("in state {other:?}")),
        };
        match done {
            Ok(true) => self.finalize_read(now, line),
            Ok(false) => {}
            Err(detail) => self.record_fault(line, "DataWb", detail),
        }
    }

    fn on_unblock(&mut self, now: Cycle, line: LineAddr, from: NodeId) {
        // Absorb Unblocks from Option-1 cacheable WritersBlock reads —
        // but never one the current transaction is actually waiting for
        // (a stray from a spin-reader can still be in flight when the
        // blocked write finally performs and sends its own Unblock).
        let expected_here = match self.l3.get(line).map(|e| &e.state) {
            Some(DirState::BusyRead { requester, waiting_unblock, .. }) => {
                *waiting_unblock && *requester == from
            }
            Some(DirState::BusyWrite { writer, .. }) => *writer == from,
            _ => false,
        };
        if !expected_here {
            if let Some(n) = self.stray_unblocks.get_mut(&line) {
                *n -= 1;
                if *n == 0 {
                    self.stray_unblocks.remove(&line);
                }
                return;
            }
        }
        let Some(entry) = self.l3.get_mut(line) else {
            self.record_fault(line, "Unblock", "no directory entry".to_string());
            return;
        };
        enum After {
            Nothing,
            FinalizeRead,
            DrainQueued,
            Bad(String),
        }
        let after = match &mut entry.state {
            DirState::BusyRead { waiting_unblock, waiting_datawb, requester, .. } => {
                if *requester != from {
                    After::Bad(format!("from {from}, BusyRead requester is {requester}"))
                } else {
                    *waiting_unblock = false;
                    if !*waiting_datawb {
                        After::FinalizeRead
                    } else {
                        After::Nothing
                    }
                }
            }
            DirState::BusyWrite { writer, .. } => {
                if *writer != from {
                    After::Bad(format!("from {from}, BusyWrite writer is {writer}"))
                } else {
                    entry.sharers = SharerSet::EMPTY;
                    entry.owner = Some(from);
                    entry.state = DirState::Owned;
                    After::DrainQueued
                }
            }
            other => After::Bad(format!("in state {other:?}")),
        };
        match after {
            After::Nothing => {}
            After::FinalizeRead => self.finalize_read(now, line),
            After::DrainQueued => {
                // The write finally performed; if it had been blocked in
                // WritersBlock, the stall window closes here.
                self.note_wb_exit(now, line);
                self.drain_queued(now, line);
            }
            After::Bad(detail) => self.record_fault(line, "Unblock", detail),
        }
    }

    fn finalize_read(&mut self, now: Cycle, line: LineAddr) {
        let Some(entry) = self.l3.get_mut(line) else {
            self.record_fault(line, "finalize_read", "entry vanished mid-read".to_string());
            return;
        };
        if let DirState::BusyRead { requester, grant_exclusive, .. } = entry.state.clone() {
            if grant_exclusive {
                entry.owner = Some(requester);
                entry.sharers = SharerSet::EMPTY;
                entry.state = DirState::Owned;
            } else {
                entry.sharers.insert(requester);
                entry.owner = None;
                entry.state = DirState::Shared;
            }
            self.drain_queued(now, line);
        } else {
            let detail = format!("in state {:?}", entry.state);
            self.record_fault(line, "finalize_read", detail);
        }
    }

    fn drain_queued(&mut self, now: Cycle, line: LineAddr) {
        if let Some(entry) = self.l3.get_mut(line) {
            let queued = std::mem::take(&mut entry.queued);
            for m in queued {
                self.requeue(now, m, 1);
            }
        }
    }

    // ------------------------------------------------------------------
    // Allocation, eviction and memory
    // ------------------------------------------------------------------

    /// Handle a request for a line with no LLC entry: allocate (evicting
    /// if needed) and start a memory fetch, or fall back to an allocation-
    /// free path when no victim is available (Section 3.5.1).
    fn fetch_or_fallback(&mut self, now: Cycle, msg: ProtoMsg) {
        let line = msg.line();
        if self.try_allocate(now, line) {
            let entry = self.l3.get_mut(line).expect("just allocated");
            entry.queued.push_back(msg);
            self.events.push_back((now + self.mem_latency, Event::MemReady { line }));
            return;
        }
        self.stats.inc("dir_alloc_fallbacks");
        match msg {
            ProtoMsg::GetS { line, requester, .. } => {
                // Uncacheable memory read: the SoS load can always make
                // progress even with every way and buffer slot tied up.
                self.events
                    .push_back((now + self.mem_latency, Event::UncachedMemRead { line, requester }));
            }
            ProtoMsg::GetX { .. } => {
                // Writes may wait (TSO allows it): retry after a delay.
                self.note_retry(line);
                self.requeue(now, msg, self.retry_delay);
            }
            other => {
                let detail = format!("cannot fall back for {other:?}");
                self.record_fault(line, "allocate", detail);
            }
        }
    }

    fn try_allocate(&mut self, now: Cycle, line: LineAddr) -> bool {
        let buffer_free = self.evict_buf.len() < self.evict_cap;
        let fresh = DirEntry {
            state: DirState::Fetching,
            sharers: SharerSet::EMPTY,
            owner: None,
            data: LineData::new(),
            queued: VecDeque::new(),
            guard: 0,
        };
        let soft_on = self.soft_on;
        let res = self.l3.insert(line, fresh, now, |_, e| {
            // Busy entries are never evictable; Shared/Owned victims need
            // an eviction-buffer slot for their protocol action. A wounded
            // entry (guard mismatch) is pinned until detection repairs it —
            // evicting it would act on corrupt state.
            e.stable()
                && (matches!(e.state, DirState::Uncached) || buffer_free)
                && (!soft_on || Self::guard_ok(e))
        });
        match res {
            Insert::Done => true,
            Insert::Evicted(vline, v) => {
                self.dispose_victim(now, vline, v);
                true
            }
            Insert::NoVictim => false,
        }
    }

    fn dispose_victim(&mut self, now: Cycle, vline: LineAddr, v: DirEntry) {
        debug_assert!(v.queued.is_empty(), "busy entries are not evictable");
        match v.state {
            DirState::Uncached => {
                self.memory.write_line(vline, v.data);
                self.stats.inc("dir_evictions_clean");
            }
            DirState::Shared => {
                let n = v.sharers.count() as u32;
                if n == 0 {
                    self.memory.write_line(vline, v.data);
                    self.stats.inc("dir_evictions_clean");
                    return;
                }
                self.stats.inc("dir_evictions_shared");
                self.evict_buf.push(Evicting {
                    line: vline,
                    data: v.data,
                    pending: n,
                    wb: false,
                    queued: VecDeque::new(),
                });
                for target in v.sharers {
                    self.send(target, ProtoMsg::Inv { line: vline, writer: None });
                }
                let _ = now;
            }
            DirState::Owned => {
                let owner = v.owner.expect("Owned entry has an owner");
                self.stats.inc("dir_evictions_owned");
                self.evict_buf.push(Evicting {
                    line: vline,
                    data: v.data,
                    pending: 1,
                    wb: false,
                    queued: VecDeque::new(),
                });
                self.send(owner, ProtoMsg::Recall { line: vline });
            }
            other => {
                // The victim filter only admits stable entries, so this is
                // unreachable unless the protocol is broken; preserve the
                // data and report rather than abort.
                let detail = format!("evicting busy entry {other:?}");
                self.memory.write_line(vline, v.data);
                self.record_fault(vline, "evict", detail);
            }
        }
    }

    fn complete_eviction(&mut self, now: Cycle, idx: usize) {
        let p = self.evict_buf.swap_remove(idx);
        if p.wb {
            self.note_wb_exit(now, p.line);
        }
        self.memory.write_line(p.line, p.data);
        self.stats.inc("dir_evictions_completed");
        for m in p.queued {
            self.requeue(now, m, 1);
        }
    }

    fn on_mem_ready(&mut self, now: Cycle, line: LineAddr) {
        let data = self.memory.read_line(line);
        let Some(entry) = self.l3.get_mut(line) else {
            self.record_fault(line, "MemReady", "fetch completed for missing entry".to_string());
            return;
        };
        debug_assert!(matches!(entry.state, DirState::Fetching));
        entry.data = data;
        entry.state = DirState::Uncached;
        self.stats.inc("dir_mem_fetches");
        self.drain_queued(now, line);
    }

    // ------------------------------------------------------------------
    // Checkpointing
    // ------------------------------------------------------------------

    /// Serialize every execution-visible field. Configuration-derived
    /// fields (`node`, `bank`, latencies, port/buffer capacities, the
    /// Option-1 flag) and observability state (the tracer) are not
    /// written: restore targets a bank built from the same
    /// [`SystemConfig`].
    pub fn snap(&self, w: &mut wb_kernel::SnapWriter) {
        use wb_kernel::Snap;
        self.l3.snap(w);
        self.evict_buf.snap(w);
        self.memory.snap(w);
        self.ingress.snap(w);
        self.events.snap(w);
        self.outbox.snap(w);
        // HashMaps: sorted key order for determinism.
        fn sorted<V: Copy>(m: &HashMap<LineAddr, V>) -> Vec<(LineAddr, V)> {
            let mut v: Vec<(LineAddr, V)> = m.iter().map(|(&l, &x)| (l, x)).collect();
            v.sort_unstable_by_key(|(l, _)| l.0);
            v
        }
        sorted(&self.stray_unblocks).snap(w);
        self.stats.snap(w);
        sorted(&self.wb_since).snap(w);
        self.fault.snap(w);
        sorted(&self.retry_counts).snap(w);
        sorted(&self.tearoff_counts).snap(w);
        self.hot.snap(w);
        sorted(&self.wounds).snap(w);
    }

    /// Inverse of [`Directory::snap`], in place.
    pub fn restore(&mut self, r: &mut wb_kernel::SnapReader) -> wb_kernel::SnapResult<()> {
        use wb_kernel::Snap;
        self.l3 = SetAssocArray::unsnap(r)?;
        self.evict_buf = Vec::unsnap(r)?;
        self.memory = MainMemory::unsnap(r)?;
        self.ingress = VecDeque::unsnap(r)?;
        self.events = VecDeque::unsnap(r)?;
        self.outbox = Vec::unsnap(r)?;
        self.stray_unblocks = Vec::<(LineAddr, u32)>::unsnap(r)?.into_iter().collect();
        let stats = Stats::unsnap(r)?;
        self.stats.load(&stats);
        self.wb_since = Vec::<(LineAddr, Cycle)>::unsnap(r)?.into_iter().collect();
        self.fault = Option::unsnap(r)?;
        self.retry_counts = Vec::<(LineAddr, u64)>::unsnap(r)?.into_iter().collect();
        self.tearoff_counts = Vec::<(LineAddr, u64)>::unsnap(r)?.into_iter().collect();
        self.hot = HeavyHitters::unsnap(r)?;
        self.wounds = Vec::<(LineAddr, Cycle)>::unsnap(r)?.into_iter().collect();
        Ok(())
    }
}

impl wb_kernel::Snap for DirState {
    fn snap(&self, w: &mut wb_kernel::SnapWriter) {
        match self {
            DirState::Uncached => w.u8(0),
            DirState::Shared => w.u8(1),
            DirState::Owned => w.u8(2),
            DirState::BusyRead { requester, waiting_datawb, waiting_unblock, grant_exclusive } => {
                w.u8(3);
                requester.snap(w);
                w.bool(*waiting_datawb);
                w.bool(*waiting_unblock);
                w.bool(*grant_exclusive);
            }
            DirState::BusyWrite { writer, wb, extra_sharers, extra_acks, deferred_redirs } => {
                w.u8(4);
                writer.snap(w);
                w.bool(*wb);
                extra_sharers.snap(w);
                w.u32(*extra_acks);
                w.u32(*deferred_redirs);
            }
            DirState::Fetching => w.u8(5),
            DirState::Poisoned { pending, parked, owner_hint } => {
                w.u8(6);
                w.u32(*pending);
                parked.snap(w);
                owner_hint.snap(w);
            }
        }
    }
    fn unsnap(r: &mut wb_kernel::SnapReader) -> wb_kernel::SnapResult<Self> {
        match r.u8()? {
            0 => Ok(DirState::Uncached),
            1 => Ok(DirState::Shared),
            2 => Ok(DirState::Owned),
            3 => Ok(DirState::BusyRead {
                requester: NodeId::unsnap(r)?,
                waiting_datawb: r.bool()?,
                waiting_unblock: r.bool()?,
                grant_exclusive: r.bool()?,
            }),
            4 => Ok(DirState::BusyWrite {
                writer: NodeId::unsnap(r)?,
                wb: r.bool()?,
                extra_sharers: SharerSet::unsnap(r)?,
                extra_acks: r.u32()?,
                deferred_redirs: r.u32()?,
            }),
            5 => Ok(DirState::Fetching),
            6 => Ok(DirState::Poisoned {
                pending: r.u32()?,
                parked: SharerSet::unsnap(r)?,
                owner_hint: Option::unsnap(r)?,
            }),
            t => Err(wb_kernel::SnapError::new(format!("bad DirState tag {t:#x}"))),
        }
    }
}

impl wb_kernel::Snap for DirEntry {
    fn snap(&self, w: &mut wb_kernel::SnapWriter) {
        self.state.snap(w);
        self.sharers.snap(w);
        self.owner.snap(w);
        self.data.snap(w);
        self.queued.snap(w);
        // The guard must round-trip verbatim: a snapshot taken between a
        // flip and its detection carries the (now-mismatched) guard, and
        // the restored run must detect it on the same cycle.
        w.u64(self.guard);
    }
    fn unsnap(r: &mut wb_kernel::SnapReader) -> wb_kernel::SnapResult<Self> {
        Ok(DirEntry {
            state: DirState::unsnap(r)?,
            sharers: SharerSet::unsnap(r)?,
            owner: Option::unsnap(r)?,
            data: LineData::unsnap(r)?,
            queued: VecDeque::unsnap(r)?,
            guard: r.u64()?,
        })
    }
}

impl wb_kernel::Snap for Evicting {
    fn snap(&self, w: &mut wb_kernel::SnapWriter) {
        self.line.snap(w);
        self.data.snap(w);
        w.u32(self.pending);
        w.bool(self.wb);
        self.queued.snap(w);
    }
    fn unsnap(r: &mut wb_kernel::SnapReader) -> wb_kernel::SnapResult<Self> {
        Ok(Evicting {
            line: LineAddr::unsnap(r)?,
            data: LineData::unsnap(r)?,
            pending: r.u32()?,
            wb: r.bool()?,
            queued: VecDeque::unsnap(r)?,
        })
    }
}

impl wb_kernel::Snap for Event {
    fn snap(&self, w: &mut wb_kernel::SnapWriter) {
        match self {
            Event::Process(msg) => {
                w.u8(0);
                msg.snap(w);
            }
            Event::MemReady { line } => {
                w.u8(1);
                line.snap(w);
            }
            Event::UncachedMemRead { line, requester } => {
                w.u8(2);
                line.snap(w);
                requester.snap(w);
            }
        }
    }
    fn unsnap(r: &mut wb_kernel::SnapReader) -> wb_kernel::SnapResult<Self> {
        match r.u8()? {
            0 => Ok(Event::Process(ProtoMsg::unsnap(r)?)),
            1 => Ok(Event::MemReady { line: LineAddr::unsnap(r)? }),
            2 => Ok(Event::UncachedMemRead {
                line: LineAddr::unsnap(r)?,
                requester: NodeId::unsnap(r)?,
            }),
            t => Err(wb_kernel::SnapError::new(format!("bad dir Event tag {t:#x}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(state: DirState, owner: Option<NodeId>, sharers: SharerSet) -> DirEntry {
        let mut e = DirEntry {
            state,
            sharers,
            owner,
            data: LineData::new(),
            queued: VecDeque::new(),
            guard: 0,
        };
        if let Some(c) = e.stable_code() {
            e.guard = dir_guard(c, e.owner, &e.sharers);
        }
        e
    }

    #[test]
    fn guard_detects_every_single_field_flip() {
        let base = entry(DirState::Shared, None, SharerSet::solo(NodeId(3)));
        assert!(Directory::guard_ok(&base));

        let mut state_flip = base.clone();
        state_flip.state = DirState::Owned;
        assert!(!Directory::guard_ok(&state_flip));

        let mut sharer_flip = base.clone();
        sharer_flip.sharers.toggle(NodeId(100));
        assert!(!Directory::guard_ok(&sharer_flip));

        let mut drop_flip = base.clone();
        drop_flip.sharers.toggle(NodeId(3));
        assert!(!Directory::guard_ok(&drop_flip));
    }

    #[test]
    fn owner_hint_decodes_only_true_owned() {
        // Owned entry whose state word was scrambled to Shared: the
        // guard still hashes as Owned over the untouched owner field.
        let mut e = entry(DirState::Owned, Some(NodeId(7)), SharerSet::EMPTY);
        e.state = DirState::Shared;
        assert_eq!(Directory::decode_owner_hint(&e), Some(NodeId(7)));

        // Uncached entry scrambled to Owned: the hint must NOT claim an
        // owner that never existed.
        let mut u = entry(DirState::Uncached, None, SharerSet::EMPTY);
        u.state = DirState::Owned;
        assert_eq!(Directory::decode_owner_hint(&u), None);
    }

    #[test]
    fn transient_entries_skip_guard_checks() {
        let e = entry(DirState::Fetching, None, SharerSet::EMPTY);
        assert!(Directory::guard_ok(&e));
        assert_eq!(Directory::entry_guard(&e), None);
    }
}
