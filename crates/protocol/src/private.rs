//! The private cache hierarchy of one core (L1 + L2) and its coherence
//! controller.
//!
//! Coherence is tracked at the private-hierarchy level: the L2 array holds
//! the authoritative state and data; the L1 array is an inclusive subset
//! used only to decide hit latency (4 vs. 12 cycles, Table 6). This is the
//! standard "private cache complex" arrangement of GEMS-style models.
//!
//! The controller implements the cache side of both protocols:
//!
//! - **base MESI**: invalidations that match M-speculative loads squash
//!   them (delegated to the core through [`CoreSide`]), acknowledgements
//!   are immediate;
//! - **WritersBlock**: invalidations that hit a lockdown are Nacked to the
//!   directory (Section 3.3); the acknowledgement is deferred until the
//!   core calls [`PrivateCache::release_lockdown`]; SoS loads bypass
//!   blocked write MSHRs with tear-off reads (Section 3.5.2); evictions
//!   under a lockdown are suppressed rather than squashing (Section 3.8).

use crate::array::{Insert, SetAssocArray};
use crate::messages::{Dest, ProtoMsg, ReadKind};
use crate::mshr::{Mshr, MshrFile, MshrKind};
use crate::{CoreSide, InvalResponse, MshrWait, ProtocolError};
use std::collections::HashMap;
use wb_kernel::config::{MemoryConfig, ProtocolKind};
use wb_kernel::trace::{CompId, TraceEvent, TraceFilter, Tracer};
use wb_kernel::{CounterHandle, Cycle, HeavyHitters, NodeId, Stats};
use wb_mem::{Addr, HomeMap, LineAddr, LineData};

/// Identifies a load at the core so completions can be matched to LQ
/// entries (the core uses the load's sequence number).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ReadTag(pub u64);

impl wb_kernel::Snap for ReadTag {
    fn snap(&self, w: &mut wb_kernel::SnapWriter) {
        w.u64(self.0);
    }
    fn unsnap(r: &mut wb_kernel::SnapReader) -> wb_kernel::SnapResult<Self> {
        Ok(ReadTag(r.u64()?))
    }
}

/// Outcome of a [`PrivateCache::load_access`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadAccess {
    /// The line is readable: the value is bound now, consumers wake after
    /// `latency` cycles (4 for an L1 hit, 12 for an L2 hit).
    Hit { value: u64, latency: u64 },
    /// A miss: the load now waits on an MSHR; a [`Completion::LoadData`]
    /// will carry its tag later.
    Miss,
    /// No MSHR could be allocated; the core should retry next cycle.
    Blocked,
}

/// Events the cache delivers to the core (drained once per cycle).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Completion {
    /// Line data arrived for the listed waiting loads. With
    /// `cacheable: false` this is a tear-off copy: *at most one* load may
    /// use it, and only if it is ordered (the SoS load) — Section 3.4.
    LoadData { tags: Vec<ReadTag>, line: LineAddr, data: LineData, cacheable: bool },
    /// The line is now writable (M): stores to it at the store-buffer
    /// head may perform.
    WriteReady { line: LineAddr },
    /// The directory hinted that our write request for `line` is blocked
    /// in WritersBlock (Section 3.5.2).
    WriteBlocked { line: LineAddr },
}

/// Stable coherence state of a resident line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PState {
    /// Shared, clean.
    S,
    /// Exclusive, clean (silently upgradable to M).
    E,
    /// Modified.
    M,
    /// Shared with a GetX outstanding (readable; upgrade in flight).
    SmAd,
}

impl PState {
    fn readable(self) -> bool {
        true // every resident state keeps readable data
    }
    fn exclusive(self) -> bool {
        matches!(self, PState::E | PState::M)
    }

    /// Code word fed to the guard hash (distinct per state).
    fn code(self) -> u64 {
        match self {
            PState::S => 0,
            PState::E => 1,
            PState::M => 2,
            PState::SmAd => 3,
        }
    }
}

/// Guard hash protecting a line's stored tag and coherence state — the
/// per-line parity/ECC word of the soft-error model. 64 bits also let
/// detection *decode* the true pre-flip state: the array key is the
/// true tag, so re-hashing the key against each candidate state finds
/// the unique one the guard was computed over.
fn line_guard(tag: u64, state: PState) -> u64 {
    wb_kernel::soft::guard_hash(&[tag, state.code()])
}

#[derive(Debug, Clone, Copy)]
struct L2Line {
    state: PState,
    data: LineData,
    /// Redundant stored tag (the line address), the soft-error target of
    /// [`wb_kernel::SoftTarget::CacheTag`]. The array's lookup key plane
    /// is never flipped, so a corrupted stored tag is detectable against
    /// it via the guard.
    tag: u64,
    /// Guard hash over (tag, state); refreshed on every legitimate
    /// write, checked before every use while soft errors are enabled.
    guard: u64,
}

/// A line parked after eviction, awaiting PutAck (MI_A) or already
/// superseded by a forward (II_A).
#[derive(Debug, Clone, Copy)]
struct EvictBufEntry {
    line: LineAddr,
    data: LineData,
    /// false = MI_A (our PutM stands), true = II_A (a forward consumed the
    /// line; the directory will still PutAck our stale PutM).
    superseded: bool,
}

/// A completed write fill that could not allocate an L2 way yet.
#[derive(Debug, Clone, Copy)]
struct PendingFill {
    line: LineAddr,
    data: LineData,
}

/// Keys tracked per cache by the contended-line attribution sketch
/// (same bound as the directory side: tens of entries, O(k) forever).
const HOT_LINES_TRACKED: usize = 32;

/// The private cache hierarchy and coherence controller of one core.
pub struct PrivateCache {
    node: NodeId,
    home: HomeMap,
    protocol: ProtocolKind,
    silent_shared_evictions: bool,
    l1_hit: u64,
    l2_hit: u64,
    l1: SetAssocArray<()>,
    l2: SetAssocArray<L2Line>,
    mshrs: MshrFile,
    evict_buf: Vec<EvictBufEntry>,
    pending_fills: Vec<PendingFill>,
    outbox: Vec<(Dest, ProtoMsg)>,
    completions: Vec<Completion>,
    stats: Stats,
    tracer: Tracer,
    /// Cycle each active lockdown began (first Nack sent), for the
    /// lockdown-duration histogram.
    lockdown_since: HashMap<LineAddr, Cycle>,
    /// Cycle attribution: top contended lines by blocked-write stall
    /// and lockdown-held cycles. Bounded space-saving sketch — NOT a
    /// per-line map — surfaced via [`PrivateCache::hot_lines`].
    hot: HeavyHitters,
    /// First "impossible state" seen by this cache; the offending
    /// message is dropped and the system surfaces `RunOutcome::Fault`.
    fault: Option<ProtocolError>,
    /// True when a non-empty soft-error plan is active: guards are
    /// computed, checked, and repaired. False keeps every guard word 0
    /// so `SoftPlan::none()` runs are byte-identical to `soft: None`.
    soft_on: bool,
    /// Cycle each still-undetected soft flip landed, keyed by line —
    /// feeds the `soft_detect_latency` histogram at detection time.
    wounds: HashMap<LineAddr, Cycle>,
    /// Lines whose guard mismatch has been detected (and counted) but
    /// not yet repaired; accesses NACK until the next repair pass.
    poisoned: Vec<LineAddr>,
    /// Pre-resolved handles for the per-access hot-path counters
    /// (PR 5's `CounterHandle` pattern: no BTreeMap lookup per bump).
    h_load_accesses: CounterHandle,
    h_l1_hits: CounterHandle,
    h_l2_hits: CounterHandle,
    h_load_misses: CounterHandle,
    h_stores_performed: CounterHandle,
}

impl std::fmt::Debug for PrivateCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrivateCache")
            .field("node", &self.node)
            .field("mshrs_in_use", &self.mshrs.in_use())
            .field("l2_lines", &self.l2.len())
            .finish()
    }
}

impl PrivateCache {
    /// Build a private cache for `node` in a system whose directory
    /// banks are laid out by `home`, from the Table 6 memory
    /// configuration.
    pub fn new(node: NodeId, home: HomeMap, mem: &MemoryConfig, protocol: ProtocolKind) -> Self {
        let l1_sets = SetAssocArray::<()>::geometry(mem.l1_bytes, mem.l1_ways, mem.line_bytes);
        let l2_sets = SetAssocArray::<L2Line>::geometry(mem.l2_bytes, mem.l2_ways, mem.line_bytes);
        let mut stats = Stats::new();
        let h_load_accesses = stats.handle("cache_load_accesses");
        let h_l1_hits = stats.handle("cache_l1_hits");
        let h_l2_hits = stats.handle("cache_l2_hits");
        let h_load_misses = stats.handle("cache_load_misses");
        let h_stores_performed = stats.handle("cache_stores_performed");
        PrivateCache {
            node,
            home,
            protocol,
            silent_shared_evictions: mem.silent_shared_evictions,
            l1_hit: mem.l1_hit_cycles,
            l2_hit: mem.l2_hit_cycles,
            l1: SetAssocArray::new(l1_sets, mem.l1_ways),
            l2: SetAssocArray::new(l2_sets, mem.l2_ways),
            mshrs: MshrFile::new(mem.mshrs),
            evict_buf: Vec::new(),
            pending_fills: Vec::new(),
            outbox: Vec::new(),
            completions: Vec::new(),
            stats,
            tracer: Tracer::new(CompId::Cache(node.0)),
            lockdown_since: HashMap::new(),
            hot: HeavyHitters::new(HOT_LINES_TRACKED),
            fault: None,
            soft_on: false,
            wounds: HashMap::new(),
            poisoned: Vec::new(),
            h_load_accesses,
            h_l1_hits,
            h_l2_hits,
            h_load_misses,
            h_stores_performed,
        }
    }

    /// Record an "impossible state" instead of panicking; only the first
    /// violation is kept, later ones are usually fallout.
    fn record_fault(&mut self, line: LineAddr, context: &'static str, detail: String) {
        self.stats.inc("cache_protocol_faults");
        if self.fault.is_none() {
            self.fault = Some(ProtocolError {
                at: format!("cache{}", self.node.index()),
                line: line.0,
                context: context.to_string(),
                detail,
            });
        }
    }

    /// The first protocol violation this cache has seen, if any.
    pub fn fault(&self) -> Option<&ProtocolError> {
        self.fault.as_ref()
    }

    /// Cycle attribution for this cache: top contended lines by
    /// blocked-write stall and lockdown-held cycles, as a bounded
    /// space-saving sketch (see [`wb_kernel::attr`]).
    pub fn hot_lines(&self) -> &HeavyHitters {
        &self.hot
    }

    /// Lines this cache currently holds a lockdown on (sorted).
    pub fn lockdown_lines(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.lockdown_since.keys().map(|l| l.0).collect();
        v.sort_unstable();
        v
    }

    /// Number of live lockdowns (for the chaos lockdown signal).
    pub fn active_lockdowns(&self) -> usize {
        self.lockdown_since.len()
    }

    /// Every outstanding MSHR, with its blocked-write status — this
    /// cache's contribution to the wedge wait-for graph.
    pub fn mshr_summary(&self) -> Vec<MshrWait> {
        let mut v: Vec<MshrWait> = self
            .mshrs
            .iter()
            .map(|m| MshrWait {
                line: m.line.0,
                kind: m.kind.label(),
                blocked: m.blocked_hint,
                issued_at: m.issued_at,
            })
            .collect();
        v.sort_by_key(|w| (w.line, w.issued_at));
        v
    }

    /// The node this cache belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Enable/disable event tracing (MSHR and lockdown events).
    pub fn set_trace(&mut self, filter: TraceFilter) {
        self.tracer.set_filter(filter);
    }

    /// The cache's event tracer (for merging into a system timeline).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Record an MSHR free: trace the event and feed the latency
    /// histograms (read/write miss latency; blocked-write stall).
    fn note_mshr_free(&mut self, now: Cycle, m: &Mshr) {
        let latency = now.saturating_sub(m.issued_at);
        match m.kind {
            MshrKind::Write => {
                self.stats.record("cache_write_miss_cycles", latency);
                if let Some(b) = m.blocked_at {
                    let stalled = now.saturating_sub(b);
                    self.stats.record("cache_blocked_write_cycles", stalled);
                    self.hot.add(m.line.0, stalled);
                }
            }
            MshrKind::Read | MshrKind::TearOff => {
                self.stats.record("cache_read_miss_cycles", latency);
            }
        }
        self.tracer.record(
            now,
            TraceEvent::MshrFree { line: m.line.0, kind: m.kind.label(), latency },
        );
    }

    /// A Nack was sent for `line`: the lockdown window opens now (if it
    /// is not already open).
    fn note_lockdown_begin(&mut self, now: Cycle, line: LineAddr) {
        if let std::collections::hash_map::Entry::Vacant(e) = self.lockdown_since.entry(line) {
            e.insert(now);
            self.tracer.record(now, TraceEvent::LockdownBegin { line: line.0 });
        }
    }

    /// The node hosting the directory bank that owns `line`. Messages
    /// route by node; the receiving tile dispatches to the right bank.
    fn home(&self, line: LineAddr) -> NodeId {
        NodeId(self.home.home_node(line) as u16)
    }

    fn send_cache(&mut self, dst: NodeId, msg: ProtoMsg) {
        self.outbox.push((Dest::Cache(dst), msg));
    }

    fn send_dir(&mut self, dst: NodeId, msg: ProtoMsg) {
        self.outbox.push((Dest::Dir(dst), msg));
    }

    /// Drain messages to be injected into the mesh this cycle.
    pub fn drain_outbox(&mut self) -> Vec<(Dest, ProtoMsg)> {
        std::mem::take(&mut self.outbox)
    }

    /// Allocation-free [`PrivateCache::drain_outbox`]: append queued
    /// messages to `out` (which the caller clears and reuses).
    pub fn drain_outbox_into(&mut self, out: &mut Vec<(Dest, ProtoMsg)>) {
        out.append(&mut self.outbox);
    }

    /// Drain core-facing completion events.
    pub fn take_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.completions)
    }

    /// True when core-facing completion events await `take_completions`.
    pub fn has_completions(&self) -> bool {
        !self.completions.is_empty()
    }

    /// True when a write MSHR for `line` is outstanding (a `GetX` is in
    /// flight, so `ensure_writable` would be a no-op this cycle).
    pub fn has_write_mshr(&self, line: LineAddr) -> bool {
        self.mshrs.find(line, MshrKind::Write).is_some()
    }

    /// The earliest cycle at which ticking this cache can change state:
    /// `Some(now)` when something is actionable (outbox messages to
    /// inject, completions for the core, or a deferred fill retrying
    /// every cycle), `None` otherwise. MSHRs and parked evictions only
    /// advance on incoming messages, which the mesh's own `next_event`
    /// tracks.
    ///
    /// This is the sparse engine's sleep-eligibility hook: a cache
    /// returning `None` may be skipped entirely until a message is
    /// delivered to it (wake-on-message at the system glue), because
    /// every state transition here is driven by `handle_msg`, the
    /// paired core's calls, or one of the four queues tested below.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        if !self.outbox.is_empty()
            || !self.completions.is_empty()
            || !self.pending_fills.is_empty()
            || !self.poisoned.is_empty()
        {
            Some(now)
        } else {
            None
        }
    }

    /// True when no protocol messages await injection (`SparseVerify`
    /// asserts this stays true across a slept cache's shadow tick).
    pub fn outbox_is_empty(&self) -> bool {
        self.outbox.is_empty()
    }

    /// Counter access for reports.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Debug: describe all outstanding MSHRs and the state of `line`.
    pub fn debug_line(&self, line: LineAddr) -> String {
        let st = self.l2.get(line).map(|l| format!("{:?}", l.state));
        let mshrs: Vec<String> = self
            .mshrs
            .iter()
            .map(|m| {
                format!(
                    "{:?}:{:?} data={} acks={:?}/{} hint={} waiters={}",
                    m.line, m.kind, m.data_received, m.acks_expected, m.acks_received, m.blocked_hint,
                    m.waiting_loads.len()
                )
            })
            .collect();
        let eb: Vec<String> = self.evict_buf.iter().map(|e| format!("{}sup={}", e.line, e.superseded)).collect();
        format!(
            "node{} line {line} state={st:?} mshrs=[{}] fills={} evbuf=[{}]",
            self.node.index(),
            mshrs.join("; "),
            self.pending_fills.len(),
            eb.join(";")
        )
    }

    /// True when no transaction, parked eviction or deferred fill is
    /// outstanding.
    pub fn is_idle(&self) -> bool {
        self.mshrs.is_empty()
            && self.evict_buf.is_empty()
            && self.pending_fills.is_empty()
            && self.poisoned.is_empty()
    }

    // ------------------------------------------------------------------
    // Soft errors: guards, poison, repair
    // ------------------------------------------------------------------

    /// Enable or disable the soft-error guard machinery. Called by the
    /// system when a non-empty [`wb_kernel::SoftPlan`] is configured;
    /// disabled caches keep every guard word at 0 so `SoftPlan::none()`
    /// snapshots are byte-identical to `soft: None`.
    pub fn set_soft(&mut self, on: bool) {
        self.soft_on = on;
    }

    /// Is the stored (tag, state, guard) triple of a resident line
    /// self-consistent? The array key `l` is the true tag.
    fn guard_ok(l: LineAddr, pl: &L2Line) -> bool {
        pl.tag == l.0 && pl.guard == line_guard(pl.tag, pl.state)
    }

    /// Build a fresh line with its guard (0 while soft errors are off).
    fn mk_line(&self, line: LineAddr, state: PState, data: LineData) -> L2Line {
        let guard = if self.soft_on { line_guard(line.0, state) } else { 0 };
        L2Line { state, data, tag: line.0, guard }
    }

    /// Refresh the guard of `line` after a legitimate state write.
    fn reguard(&mut self, line: LineAddr) {
        if !self.soft_on {
            return;
        }
        if let Some(l2) = self.l2.get_mut(line) {
            l2.tag = line.0;
            l2.guard = line_guard(line.0, l2.state);
        }
    }

    /// Check the guard of `line` before acting on its stored state.
    /// Returns `true` when healthy (or soft errors are off / the line is
    /// not resident). On a mismatch the flip is counted as detected, the
    /// line enters the poison list, and the access must NACK (`false`).
    fn check_guard(&mut self, now: Cycle, line: LineAddr) -> bool {
        if !self.soft_on {
            return true;
        }
        let Some(pl) = self.l2.get(line) else { return true };
        if Self::guard_ok(line, pl) {
            return true;
        }
        if !self.poisoned.contains(&line) {
            if let Some(t0) = self.wounds.remove(&line) {
                self.stats.record("soft_detect_latency", now.saturating_sub(t0));
            }
            self.stats.inc("soft_detected");
            self.poisoned.push(line);
        }
        self.stats.inc("soft_poison_nacks");
        false
    }

    /// Scrub the MSHR file against its ECC shadows; every corrected
    /// entry counts as detected + recovered in one step.
    fn scrub_mshrs(&mut self, now: Cycle) -> u64 {
        let fixed = self.mshrs.scrub();
        let n = fixed.len() as u64;
        for line in fixed {
            if let Some(t0) = self.wounds.remove(&line) {
                self.stats.record("soft_detect_latency", now.saturating_sub(t0));
            }
            self.stats.inc("soft_detected");
            self.stats.inc("soft_recovered");
        }
        n
    }

    /// Repair every poisoned line; returns how many were repaired.
    fn repair_poisoned(&mut self, now: Cycle, core: &mut dyn CoreSide) -> u64 {
        if self.poisoned.is_empty() {
            return 0;
        }
        let lines = std::mem::take(&mut self.poisoned);
        let n = lines.len() as u64;
        for line in lines {
            self.repair_line(now, line, core);
        }
        n
    }

    /// Repair one poisoned line by guard decoding: the array key is the
    /// true tag, so re-hashing it against each candidate state finds the
    /// pre-flip state. Tag-only flips are fixed in place; a true-S line
    /// is silently dropped (re-fetched from the home on demand); a true
    /// E/M line is written back through the normal PutM eviction path so
    /// no dirty data is lost.
    fn repair_line(&mut self, now: Cycle, line: LineAddr, core: &mut dyn CoreSide) {
        self.stats.inc("soft_recovered");
        let Some((stored, guard)) = self.l2.get(line).map(|l| (l.state, l.guard)) else {
            // Dropped by an invalidation between detect and repair: the
            // corrupted copy is already gone.
            return;
        };
        let decoded = [PState::S, PState::E, PState::M, PState::SmAd]
            .into_iter()
            .find(|s| guard == line_guard(line.0, *s));
        match decoded {
            Some(s) if s == stored => {
                // Tag-only flip: the state is intact; restore the tag.
                if let Some(l2) = self.l2.get_mut(line) {
                    l2.tag = line.0;
                }
            }
            Some(PState::S) => {
                // True state S: silent drop; we stay in the directory's
                // sharer list, the next access re-fetches from the home.
                self.drop_line(line);
            }
            Some(s @ (PState::E | PState::M)) => {
                // True state E/M: the data words were never flipped, so
                // write the line back through the ordinary eviction path
                // (evict buffer + PutM) to resynchronise with the home.
                let v = {
                    let l2 = self.l2.get_mut(line).expect("resident");
                    l2.state = s;
                    l2.tag = line.0;
                    l2.guard = line_guard(line.0, s);
                    *l2
                };
                self.drop_line(line);
                self.handle_victim(now, line, v, core);
            }
            Some(PState::SmAd) => {
                // Transient upgrade in flight: repair in place.
                if let Some(l2) = self.l2.get_mut(line) {
                    l2.state = PState::SmAd;
                    l2.tag = line.0;
                    l2.guard = line_guard(line.0, PState::SmAd);
                }
            }
            None => {
                // Undecodable (outside the single-flip model): drop the
                // line defensively and count it.
                self.stats.inc("soft_undecodable");
                self.drop_line(line);
            }
        }
    }

    /// Apply one soft flip of `target` kind to this cache's stored
    /// state, drawing victims from `rng`. Returns `false` when no
    /// eligible victim exists (the engine counts it as missed).
    ///
    /// Eligibility keeps the model honest without double-wounding:
    /// stable resident lines only (no transients), healthy guard, no
    /// outstanding MSHR on the line, no lockdown, not parked in the
    /// evict buffer.
    pub fn soft_flip(&mut self, now: Cycle, target: wb_kernel::SoftTarget, rng: &mut wb_kernel::SimRng) -> bool {
        use wb_kernel::SoftTarget;
        match target {
            SoftTarget::CacheState | SoftTarget::CacheTag => {
                let candidates: Vec<LineAddr> = self
                    .l2
                    .iter()
                    .filter(|(l, pl)| {
                        matches!(pl.state, PState::S | PState::E | PState::M)
                            && Self::guard_ok(*l, pl)
                            && !self.mshrs.iter().any(|m| m.line == *l)
                            && !self.lockdown_since.contains_key(l)
                            && !self.evict_buf.iter().any(|e| e.line == *l)
                    })
                    .map(|(l, _)| l)
                    .collect();
                if candidates.is_empty() {
                    return false;
                }
                let line = candidates[rng.below_usize(candidates.len())];
                let l2 = self.l2.get_mut(line).expect("candidate resident");
                if target == SoftTarget::CacheState {
                    let others: Vec<PState> = [PState::S, PState::E, PState::M]
                        .into_iter()
                        .filter(|s| *s != l2.state)
                        .collect();
                    l2.state = others[rng.below_usize(others.len())];
                } else {
                    l2.tag ^= 1u64 << rng.below(64);
                }
                self.wounds.insert(line, now);
                self.stats.inc("soft_injected");
                true
            }
            SoftTarget::Mshr => {
                let n = self.mshrs.in_use();
                if n == 0 {
                    return false;
                }
                let idx = rng.below_usize(n);
                match self.mshrs.soft_flip_nth(idx, rng) {
                    Some(line) => {
                        self.wounds.insert(line, now);
                        self.stats.inc("soft_injected");
                        true
                    }
                    None => false,
                }
            }
            // Directory targets are routed to directory banks.
            SoftTarget::DirState | SoftTarget::Sharers => false,
        }
    }

    /// Answer an [`ProtoMsg::AuditProbe`]: does this cache hold `line`,
    /// and exclusively? The `(present, excl)` pair encodes three cases:
    /// `(true, excl)` for a resident copy, `(false, true)` for a
    /// *parked* ownership claim (a non-superseded evict-buffer entry
    /// whose PutM/PutAck handshake is still in flight — possibly already
    /// stale at the directory), `(false, false)` for no copy.
    pub fn probe_line(&self, line: LineAddr) -> (bool, bool) {
        if let Some(l2) = self.l2.get(line) {
            return (true, l2.state.exclusive());
        }
        if self.evict_buf.iter().any(|e| e.line == line && !e.superseded) {
            return (false, true);
        }
        (false, false)
    }

    /// Residency of `line` for the auditor: `Some(exclusive)` when
    /// resident, `None` otherwise.
    pub fn resident_excl(&self, line: LineAddr) -> Option<bool> {
        self.l2.get(line).map(|l| l.state.exclusive())
    }

    /// Every resident line with its exclusivity, in deterministic array
    /// order — the auditor's view for SWMR and agreement checks.
    pub fn resident_lines(&self) -> Vec<(LineAddr, bool)> {
        self.l2.iter().map(|(l, pl)| (l, pl.state.exclusive())).collect()
    }

    /// Mark every line with in-flight cache-side activity; the auditor
    /// only checks directory–cache agreement on lines no one marks.
    pub fn audit_busy_lines(&self, mark: &mut dyn FnMut(LineAddr)) {
        for m in self.mshrs.iter() {
            mark(m.line);
        }
        for e in &self.evict_buf {
            mark(e.line);
        }
        for f in &self.pending_fills {
            mark(f.line);
        }
        for (_, m) in &self.outbox {
            mark(m.line());
        }
        for c in &self.completions {
            match c {
                Completion::LoadData { line, .. }
                | Completion::WriteReady { line }
                | Completion::WriteBlocked { line } => mark(*line),
            }
        }
        for l in self.lockdown_since.keys() {
            mark(*l);
        }
        for l in &self.poisoned {
            mark(*l);
        }
        for l in self.wounds.keys() {
            mark(*l);
        }
    }

    /// MSHR occupancy against the file's capacity, for the auditor's
    /// leak bound.
    pub fn mshr_usage(&self) -> (usize, usize) {
        (self.mshrs.in_use(), self.mshrs.capacity())
    }

    /// Entries parked in the eviction buffer (superseded ones included),
    /// for the auditor's end-of-run drain check.
    pub fn evict_buf_len(&self) -> usize {
        self.evict_buf.len()
    }

    /// Synchronous scrub for the online auditor: detect and repair every
    /// outstanding wound (guard scan + MSHR ECC scrub + poison repair).
    /// Returns the number of repairs performed.
    pub fn audit_scrub(&mut self, now: Cycle, core: &mut dyn CoreSide) -> u64 {
        if !self.soft_on {
            return 0;
        }
        let mut n = self.scrub_mshrs(now);
        let wounded: Vec<LineAddr> = self
            .l2
            .iter()
            .filter(|(l, pl)| !Self::guard_ok(*l, pl))
            .map(|(l, _)| l)
            .collect();
        for line in wounded {
            let _ = self.check_guard(now, line);
        }
        n += self.repair_poisoned(now, core);
        n
    }

    // ------------------------------------------------------------------
    // Core-facing operations
    // ------------------------------------------------------------------

    /// Read `addr` for the load tagged `tag`. `sos` marks the core's
    /// current source-of-speculation load, which is entitled to the
    /// reserved MSHR and to tear-off bypasses of blocked writes.
    pub fn load_access(&mut self, now: Cycle, tag: ReadTag, addr: Addr, sos: bool) -> LoadAccess {
        let line = addr.line();
        self.stats.inc_h(self.h_load_accesses);
        if !self.check_guard(now, line) {
            // Poisoned: NACK the access until the next repair pass.
            return LoadAccess::Blocked;
        }
        if let Some(l2) = self.l2.get(line) {
            if l2.state.readable() {
                let value = l2.data.word(addr.word_index());
                let latency = if self.l1.contains(line) {
                    self.stats.inc_h(self.h_l1_hits);
                    self.l1_hit
                } else {
                    self.stats.inc_h(self.h_l2_hits);
                    self.fill_l1(line, now);
                    self.l2_hit
                };
                self.l2.touch(line, now);
                return LoadAccess::Hit { value, latency };
            }
        }
        self.stats.inc_h(self.h_load_misses);

        // Piggyback on an outstanding transaction when possible.
        if let Some(w) = self.mshrs.find_mut(line, MshrKind::Write) {
            if !(sos && w.blocked_hint) {
                if !w.waiting_loads.contains(&tag) {
                    w.waiting_loads.push(tag);
                }
                return LoadAccess::Miss;
            }
            // SoS load bypassing a blocked write: fresh tear-off read on a
            // new (possibly reserved) MSHR — Section 3.5.2.
            if let Some(t) = self.mshrs.find_mut(line, MshrKind::TearOff) {
                if !t.waiting_loads.contains(&tag) {
                    t.waiting_loads.push(tag);
                }
                return LoadAccess::Miss;
            }
            if self.mshrs.alloc(line, MshrKind::TearOff, true, now).is_some() {
                self.mshrs
                    .find_mut(line, MshrKind::TearOff)
                    .expect("just allocated")
                    .waiting_loads
                    .push(tag);
                self.stats.inc("cache_sos_bypass_reads");
                self.tracer.record(now, TraceEvent::MshrAlloc { line: line.0, kind: "TearOff" });
                let home = self.home(line);
                self.send_dir(home, ProtoMsg::GetS { line, requester: self.node, kind: ReadKind::TearOff });
                return LoadAccess::Miss;
            }
            return LoadAccess::Blocked;
        }
        for kind in [MshrKind::Read, MshrKind::TearOff] {
            if let Some(m) = self.mshrs.find_mut(line, kind) {
                if !m.waiting_loads.contains(&tag) {
                    m.waiting_loads.push(tag);
                }
                return LoadAccess::Miss;
            }
        }
        // Fresh read.
        if self.mshrs.alloc(line, MshrKind::Read, sos, now).is_none() {
            self.stats.inc("cache_mshr_blocked");
            return LoadAccess::Blocked;
        }
        self.mshrs.find_mut(line, MshrKind::Read).expect("just allocated").waiting_loads.push(tag);
        self.tracer.record(now, TraceEvent::MshrAlloc { line: line.0, kind: "Read" });
        let home = self.home(line);
        self.send_dir(home, ProtoMsg::GetS { line, requester: self.node, kind: ReadKind::Cacheable });
        LoadAccess::Miss
    }

    /// Is the line currently writable (E or M)?
    pub fn is_writable(&self, line: LineAddr) -> bool {
        self.l2.get(line).is_some_and(|l| l.state.exclusive())
    }

    /// Make sure `line` is (or is becoming) writable. Returns `true` when
    /// it already is; otherwise issues a GetX (write-permission prefetch)
    /// if none is outstanding and returns `false`.
    pub fn ensure_writable(&mut self, now: Cycle, line: LineAddr) -> bool {
        if !self.check_guard(now, line) {
            return false;
        }
        if self.is_writable(line) {
            return true;
        }
        if self.mshrs.find(line, MshrKind::Write).is_some() {
            return false;
        }
        if self.mshrs.alloc(line, MshrKind::Write, false, now).is_none() {
            self.stats.inc("cache_mshr_blocked");
            return false;
        }
        self.stats.inc("cache_getx_issued");
        self.tracer.record(now, TraceEvent::MshrAlloc { line: line.0, kind: "Write" });
        if let Some(l2) = self.l2.get_mut(line) {
            debug_assert_eq!(l2.state, PState::S);
            l2.state = PState::SmAd;
            self.reguard(line);
        }
        let home = self.home(line);
        self.send_dir(home, ProtoMsg::GetX { line, requester: self.node });
        false
    }

    /// Perform a store: write `value` to `addr`. Requires write
    /// permission; returns `false` (and issues nothing) otherwise.
    /// On success the line is M and the store is globally visible.
    pub fn store_perform(&mut self, now: Cycle, addr: Addr, value: u64) -> bool {
        let line = addr.line();
        if !self.check_guard(now, line) {
            return false;
        }
        let Some(l2) = self.l2.get_mut(line) else { return false };
        if !l2.state.exclusive() {
            return false;
        }
        l2.state = PState::M;
        l2.data.set_word(addr.word_index(), value);
        self.reguard(line);
        self.l2.touch(line, now);
        self.stats.inc_h(self.h_stores_performed);
        true
    }

    /// Perform an atomic read-modify-write on `addr`: returns the old
    /// value if write permission is held, applying `new` as replacement.
    pub fn rmw_perform(&mut self, now: Cycle, addr: Addr, new: impl FnOnce(u64) -> u64) -> Option<u64> {
        let line = addr.line();
        if !self.check_guard(now, line) {
            return None;
        }
        let l2 = self.l2.get_mut(line)?;
        if !l2.state.exclusive() {
            return None;
        }
        let old = l2.data.word(addr.word_index());
        l2.state = PState::M;
        l2.data.set_word(addr.word_index(), new(old));
        self.reguard(line);
        self.l2.touch(line, now);
        self.stats.inc("cache_rmws_performed");
        Some(old)
    }

    /// Read a word from a readable resident line (used by the LSQ to bind
    /// values for loads waking on a fill).
    pub fn read_word(&self, addr: Addr) -> Option<u64> {
        let l2 = self.l2.get(addr.line())?;
        l2.state.readable().then(|| l2.data.word(addr.word_index()))
    }

    /// The value of `addr` if this cache holds its line exclusively (E or
    /// M) — i.e. this cache is the architecturally authoritative copy.
    /// Used for end-of-run memory state resolution.
    pub fn exclusive_word(&self, addr: Addr) -> Option<u64> {
        let l2 = self.l2.get(addr.line())?;
        l2.state.exclusive().then(|| l2.data.word(addr.word_index()))
    }

    /// The core lifted the last lockdown for `line` after having Nacked an
    /// invalidation: send the deferred acknowledgement to the directory,
    /// which redirects it to the blocked writer (Figure 3.B steps 4-5).
    pub fn release_lockdown(&mut self, now: Cycle, line: LineAddr) {
        self.stats.inc("cache_lockdown_acks");
        if let Some(t0) = self.lockdown_since.remove(&line) {
            let held = now.saturating_sub(t0);
            self.stats.record("cache_lockdown_cycles", held);
            self.hot.add(line.0, held);
            self.tracer.record(now, TraceEvent::LockdownEnd { line: line.0, held });
        }
        let home = self.home(line);
        self.send_dir(home, ProtoMsg::LockdownAck { line, from: self.node });
    }

    /// Does an outstanding write for `line` carry a blocked hint?
    pub fn write_blocked(&self, line: LineAddr) -> bool {
        self.mshrs.find(line, MshrKind::Write).is_some_and(|m| m.blocked_hint)
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn fill_l1(&mut self, line: LineAddr, now: Cycle) {
        if !self.l1.contains(line) {
            // L1 victims leave silently; L1 is a latency filter only.
            let _ = self.l1.insert(line, (), now, |_, _| true);
        } else {
            self.l1.touch(line, now);
        }
    }

    fn drop_line(&mut self, line: LineAddr) {
        self.l1.remove(line);
        self.l2.remove(line);
    }

    /// Allocate (or refresh) an L2 line, evicting as needed. Returns
    /// false when no victim was available (caller retries).
    fn fill_l2(&mut self, now: Cycle, line: LineAddr, data: LineData, state: PState, core: &mut dyn CoreSide) -> bool {
        if let Some(l2) = self.l2.get_mut(line) {
            l2.data = data;
            l2.state = state;
            self.reguard(line);
            if self.soft_on && self.wounds.remove(&line).is_some() {
                // A legitimate overwrite destroyed the flipped bits
                // before detection: count the wound as masked, not
                // silent (it can no longer corrupt anything).
                self.stats.inc("soft_masked");
                self.poisoned.retain(|l| *l != line);
            }
            self.l2.touch(line, now);
            self.fill_l1(line, now);
            return true;
        }
        // Choose a victim: stable lines only; under WritersBlock, lines
        // protecting a lockdown are pinned (Section 3.8 — no squash, and a
        // dirty line cannot leave silently); wounded lines are pinned
        // until repaired (evicting on flipped state could lose data).
        let protocol = self.protocol;
        let soft_on = self.soft_on;
        let pinned: Vec<LineAddr> = self
            .l2
            .iter()
            .filter(|(l, pl)| {
                matches!(pl.state, PState::SmAd)
                    || (protocol == ProtocolKind::WritersBlock
                        && pl.state.exclusive()
                        && core.has_mspec(*l))
                    || (soft_on && !Self::guard_ok(*l, pl))
            })
            .map(|(l, _)| l)
            .collect();
        let fresh = self.mk_line(line, state, data);
        match self.l2.insert(line, fresh, now, |l, _| !pinned.contains(&l)) {
            Insert::Done => {
                self.fill_l1(line, now);
                true
            }
            Insert::Evicted(vline, vpayload) => {
                self.l1.remove(vline);
                self.handle_victim(now, vline, vpayload, core);
                self.fill_l1(line, now);
                true
            }
            Insert::NoVictim => {
                self.stats.inc("cache_fill_no_victim");
                false
            }
        }
    }

    fn handle_victim(&mut self, now: Cycle, vline: LineAddr, v: L2Line, core: &mut dyn CoreSide) {
        match v.state {
            PState::S => {
                if self.silent_shared_evictions {
                    // Section 3.8: silent eviction — the directory keeps us
                    // in the sharing list, so a future write still reaches
                    // our LQ via an invalidation. Nothing to do.
                    self.stats.inc("cache_silent_evictions");
                } else {
                    // Non-silent eviction of a shared line (ablation): the
                    // directory forgets us, so in the base protocol any
                    // M-speculative load on this line must be squashed; in
                    // WritersBlock such lines revert to a *silent*
                    // eviction instead (Section 3.8).
                    if self.protocol == ProtocolKind::WritersBlock && core.has_mspec(vline) {
                        self.stats.inc("cache_evictions_kept_silent");
                    } else {
                        if self.protocol == ProtocolKind::BaseMesi {
                            core.on_eviction(now, vline);
                        }
                        self.stats.inc("cache_puts_evictions");
                        let home = self.home(vline);
                        self.send_dir(home, ProtoMsg::PutS { line: vline, requester: self.node });
                    }
                }
            }
            PState::E | PState::M => {
                // Non-silent by necessity (dirty or exclusively tracked):
                // in the base protocol squash M-speculative loads on the
                // line (the directory will no longer invalidate us);
                // under WritersBlock this only happens when no lockdown
                // exists (pinning filtered the rest).
                if self.protocol == ProtocolKind::BaseMesi {
                    core.on_eviction(now, vline);
                }
                self.stats.inc("cache_putm_evictions");
                self.evict_buf.push(EvictBufEntry { line: vline, data: v.data, superseded: false });
                let home = self.home(vline);
                self.send_dir(home, ProtoMsg::PutM { line: vline, requester: self.node, data: v.data });
            }
            PState::SmAd => {
                // The eviction filter pins transient lines, so this state
                // is unreachable unless the protocol is broken.
                self.record_fault(vline, "evict", "evicting transient line".to_string());
            }
        }
    }

    fn finish_write(&mut self, now: Cycle, line: LineAddr, core: &mut dyn CoreSide) {
        let m = self.mshrs.free(line, MshrKind::Write).expect("write MSHR present");
        self.note_mshr_free(now, &m);
        // If the line is already exclusive locally (a stale prefetch, e.g.
        // a GetX that raced with a silent E->M upgrade), keep the local
        // data: the directory's payload may be older than ours.
        let data = match self.l2.get(line) {
            Some(l2) if l2.state.exclusive() => l2.data,
            _ => m.pending_data.expect("completed write carries data"),
        };
        if !self.fill_l2(now, line, data, PState::M, core) {
            // No victim available: retry the fill until one frees up. The
            // transaction is complete from the directory's point of view,
            // so unblock it now.
            self.pending_fills.push(PendingFill { line, data });
        }
        let home = self.home(line);
        self.send_dir(home, ProtoMsg::Unblock { line, from: self.node });
        self.completions.push(Completion::WriteReady { line });
        if !m.waiting_loads.is_empty() {
            self.completions.push(Completion::LoadData {
                tags: m.waiting_loads,
                line,
                data,
                cacheable: true,
            });
        }
        self.stats.inc("cache_writes_completed");
    }

    /// Retry deferred fills (and, under soft errors, scrub the MSHR
    /// shadows and repair poisoned lines); call once per cycle.
    pub fn tick(&mut self, now: Cycle, core: &mut dyn CoreSide) {
        if self.soft_on {
            self.scrub_mshrs(now);
            self.repair_poisoned(now, core);
        }
        if self.pending_fills.is_empty() {
            return;
        }
        let fills = std::mem::take(&mut self.pending_fills);
        for f in fills {
            if !self.fill_l2(now, f.line, f.data, PState::M, core) {
                self.pending_fills.push(f);
            }
        }
    }

    // ------------------------------------------------------------------
    // Network-facing message handling
    // ------------------------------------------------------------------

    /// Handle one protocol message addressed to this cache.
    ///
    /// # Panics
    ///
    /// Panics on protocol violations (e.g. a forward for a line we
    /// provably cannot own) — these indicate simulator bugs, not workload
    /// behaviour.
    pub fn handle_msg(&mut self, now: Cycle, msg: ProtoMsg, core: &mut dyn CoreSide) {
        if self.soft_on {
            // Scrub the MSHR shadows and repair any wound on the line
            // this message touches before interpreting stored state.
            self.scrub_mshrs(now);
            if !self.check_guard(now, msg.line()) {
                self.repair_poisoned(now, core);
            }
        }
        match msg {
            ProtoMsg::Data { line, data, acks_expected, exclusive, cacheable, for_write } => {
                self.on_data(now, line, data, acks_expected, exclusive, cacheable, for_write, core);
            }
            ProtoMsg::InvAck { line, .. } | ProtoMsg::RedirAck { line } => {
                if let Some(m) = self.mshrs.find_mut(line, MshrKind::Write) {
                    m.acks_received += 1;
                    if m.write_complete() {
                        self.finish_write(now, line, core);
                    }
                } else {
                    self.stats.inc("cache_stray_acks");
                }
            }
            ProtoMsg::WbHint { line } => {
                if let Some(m) = self.mshrs.find_mut(line, MshrKind::Write) {
                    if !m.blocked_hint {
                        m.blocked_hint = true;
                        m.blocked_at = Some(now);
                        self.stats.inc("cache_wb_hints");
                        self.completions.push(Completion::WriteBlocked { line });
                    }
                }
            }
            ProtoMsg::Inv { line, writer } => self.on_inv(now, line, writer, core),
            ProtoMsg::FwdGetS { line, requester, kind } => self.on_fwd_gets(now, line, requester, kind),
            ProtoMsg::FwdGetX { line, requester } => self.on_fwd_getx(now, line, requester, core),
            ProtoMsg::Recall { line } => self.on_recall(now, line, core),
            ProtoMsg::PutAck { line } => {
                if let Some(i) = self.evict_buf.iter().position(|e| e.line == line) {
                    self.evict_buf.swap_remove(i);
                }
            }
            ProtoMsg::AuditProbe { line } => {
                let (present, excl) = self.probe_line(line);
                let home = self.home(line);
                self.send_dir(home, ProtoMsg::AuditReply { line, from: self.node, present, excl });
            }
            other => {
                let line = other.line();
                self.record_fault(line, "receive", format!("unexpected message {other:?}"));
            }
        }
        if self.soft_on {
            // Message handling may have mutated MSHR protected fields
            // (acks, data, hints): refresh every ECC shadow.
            self.mshrs.reshadow_all();
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_data(
        &mut self,
        now: Cycle,
        line: LineAddr,
        data: LineData,
        acks_expected: u32,
        exclusive: bool,
        cacheable: bool,
        for_write: bool,
        core: &mut dyn CoreSide,
    ) {
        if for_write {
            // A GetX reply: it belongs to the write MSHR even when a read
            // to the same line is also outstanding.
            if let Some(m) = self.mshrs.find_mut(line, MshrKind::Write) {
                m.data_received = true;
                m.acks_expected = Some(acks_expected);
                m.pending_data = Some(data);
                if m.write_complete() {
                    self.finish_write(now, line, core);
                }
            } else {
                self.stats.inc("cache_stray_data");
            }
            return;
        }
        if !cacheable {
            // Tear-off reply: satisfy whichever read transaction asked.
            self.stats.inc("cache_tearoff_data");
            for kind in [MshrKind::TearOff, MshrKind::Read] {
                if let Some(m) = self.mshrs.free(line, kind) {
                    self.note_mshr_free(now, &m);
                    if !m.waiting_loads.is_empty() {
                        self.completions.push(Completion::LoadData {
                            tags: m.waiting_loads,
                            line,
                            data,
                            cacheable: false,
                        });
                    }
                    return;
                }
            }
            // Both transactions already satisfied elsewhere; drop.
            return;
        }
        if self.mshrs.find(line, MshrKind::Read).is_some() {
            let m = self.mshrs.free(line, MshrKind::Read).expect("just found");
            self.note_mshr_free(now, &m);
            let state = if exclusive { PState::E } else { PState::S };
            let filled = self.fill_l2(now, line, data, state, core);
            if !filled {
                // Rare: every way pinned. Serve the waiting loads from the
                // message data without caching the line (we stay a
                // registered sharer; invalidations still reach the LQ).
                self.stats.inc("cache_uncached_fills");
            }
            self.completions.push(Completion::LoadData { tags: m.waiting_loads, line, data, cacheable: true });
            let home = self.home(line);
            self.send_dir(home, ProtoMsg::Unblock { line, from: self.node });
            return;
        }
        let _ = acks_expected;
        self.stats.inc("cache_stray_data");
    }

    fn on_inv(&mut self, now: Cycle, line: LineAddr, writer: Option<NodeId>, core: &mut dyn CoreSide) {
        self.stats.inc("cache_invs_received");
        // Drop any readable copy (plain Inv never targets an owner; an
        // owner is reached through FwdGetX/Recall).
        if let Some(l2) = self.l2.get(line) {
            debug_assert!(
                matches!(l2.state, PState::S | PState::SmAd),
                "Inv hit owner state {:?} for {line}",
                l2.state
            );
        }
        self.drop_line(line);
        match core.on_invalidation(now, line) {
            InvalResponse::Ack => match writer {
                Some(w) => self.send_cache(w, ProtoMsg::InvAck { line, from: self.node }),
                None => {
                    let home = self.home(line);
                    self.send_dir(home, ProtoMsg::InvAck { line, from: self.node });
                }
            },
            InvalResponse::Nack => {
                debug_assert_eq!(self.protocol, ProtocolKind::WritersBlock);
                self.stats.inc("cache_nacks_sent");
                self.note_lockdown_begin(now, line);
                let home = self.home(line);
                self.send_dir(home, ProtoMsg::Nack { line, from: self.node, data: None });
            }
        }
    }

    fn current_owner_data(&mut self, line: LineAddr) -> Option<(LineData, bool)> {
        if let Some(l2) = self.l2.get(line) {
            if l2.state.exclusive() {
                return Some((l2.data, false));
            }
        }
        if let Some(e) = self.evict_buf.iter_mut().find(|e| e.line == line && !e.superseded) {
            e.superseded = true;
            return Some((e.data, true));
        }
        None
    }

    fn on_fwd_gets(&mut self, now: Cycle, line: LineAddr, requester: NodeId, kind: ReadKind) {
        let Some((data, from_buf)) = self.current_owner_data(line) else {
            self.record_fault(line, "FwdGetS", "cache is not owner".to_string());
            return;
        };
        match kind {
            ReadKind::TearOff => {
                // Serve an uncacheable copy; keep ownership (nothing
                // changes hands). Un-supersede the buffer entry if that is
                // where the data lives.
                if from_buf {
                    if let Some(e) = self.evict_buf.iter_mut().find(|e| e.line == line) {
                        e.superseded = false;
                    }
                }
                self.send_cache(requester,
                    ProtoMsg::Data { line, data, acks_expected: 0, exclusive: false, cacheable: false, for_write: false },
                );
            }
            ReadKind::Cacheable => {
                self.send_cache(requester,
                    ProtoMsg::Data { line, data, acks_expected: 0, exclusive: false, cacheable: true, for_write: false },
                );
                let home = self.home(line);
                self.send_dir(home, ProtoMsg::DataWb { line, from: self.node, data });
                if !from_buf {
                    if let Some(l2) = self.l2.get_mut(line) {
                        l2.state = PState::S;
                        self.reguard(line);
                        self.l2.touch(line, now);
                    }
                }
            }
        }
    }

    fn on_fwd_getx(&mut self, now: Cycle, line: LineAddr, requester: NodeId, core: &mut dyn CoreSide) {
        let Some((data, _)) = self.current_owner_data(line) else {
            self.record_fault(line, "FwdGetX", "cache is not owner".to_string());
            return;
        };
        self.drop_line(line);
        match core.on_invalidation(now, line) {
            InvalResponse::Ack => {
                // 3-hop: the requester needs no further acks.
                self.send_cache(requester,
                    ProtoMsg::Data { line, data, acks_expected: 0, exclusive: false, cacheable: true, for_write: true },
                );
            }
            InvalResponse::Nack => {
                // Figure 3.B step 3: Data to the writer (who must await one
                // redirected ack) and Nack+Data to the directory so the LLC
                // can serve tear-off reads meanwhile.
                self.stats.inc("cache_nacks_sent");
                self.note_lockdown_begin(now, line);
                self.send_cache(requester,
                    ProtoMsg::Data { line, data, acks_expected: 1, exclusive: false, cacheable: true, for_write: true },
                );
                let home = self.home(line);
                self.send_dir(home, ProtoMsg::Nack { line, from: self.node, data: Some(data) });
            }
        }
    }

    fn on_recall(&mut self, now: Cycle, line: LineAddr, core: &mut dyn CoreSide) {
        let Some((data, _)) = self.current_owner_data(line) else {
            self.record_fault(line, "Recall", "cache is not owner".to_string());
            return;
        };
        self.drop_line(line);
        let home = self.home(line);
        match core.on_invalidation(now, line) {
            InvalResponse::Ack => {
                self.send_dir(home, ProtoMsg::DataWb { line, from: self.node, data });
            }
            InvalResponse::Nack => {
                self.stats.inc("cache_nacks_sent");
                self.note_lockdown_begin(now, line);
                self.send_dir(home, ProtoMsg::Nack { line, from: self.node, data: Some(data) });
            }
        }
    }

    // ------------------------------------------------------------------
    // Checkpointing
    // ------------------------------------------------------------------

    /// Serialize every execution-visible field. Configuration-derived
    /// fields (`node`, `home`, geometry, latencies) and observability
    /// state (the tracer) are not written: restore targets a cache built
    /// from the same [`wb_kernel::config::SystemConfig`].
    pub fn snap(&self, w: &mut wb_kernel::SnapWriter) {
        use wb_kernel::Snap;
        self.l1.snap(w);
        self.l2.snap(w);
        self.mshrs.snap(w);
        self.evict_buf.snap(w);
        self.pending_fills.snap(w);
        self.outbox.snap(w);
        self.completions.snap(w);
        self.stats.snap(w);
        // HashMap: serialize in sorted line order for determinism.
        let mut locks: Vec<(LineAddr, Cycle)> =
            self.lockdown_since.iter().map(|(&l, &c)| (l, c)).collect();
        locks.sort_unstable_by_key(|(l, _)| l.0);
        locks.snap(w);
        self.hot.snap(w);
        self.fault.snap(w);
        // Soft-error layer (v2): undetected wounds (sorted) and the
        // poison list. Corrupted guards live inside the L2 lines above.
        let mut wounds: Vec<(LineAddr, Cycle)> =
            self.wounds.iter().map(|(&l, &c)| (l, c)).collect();
        wounds.sort_unstable_by_key(|(l, _)| l.0);
        wounds.snap(w);
        self.poisoned.snap(w);
    }

    /// Inverse of [`PrivateCache::snap`], in place.
    pub fn restore(&mut self, r: &mut wb_kernel::SnapReader) -> wb_kernel::SnapResult<()> {
        use wb_kernel::Snap;
        self.l1 = SetAssocArray::unsnap(r)?;
        self.l2 = SetAssocArray::unsnap(r)?;
        self.mshrs = MshrFile::unsnap(r)?;
        self.evict_buf = Vec::unsnap(r)?;
        self.pending_fills = Vec::unsnap(r)?;
        self.outbox = Vec::unsnap(r)?;
        self.completions = Vec::unsnap(r)?;
        let stats = Stats::unsnap(r)?;
        self.stats.load(&stats);
        let locks: Vec<(LineAddr, Cycle)> = Vec::unsnap(r)?;
        self.lockdown_since = locks.into_iter().collect();
        self.hot = HeavyHitters::unsnap(r)?;
        self.fault = Option::unsnap(r)?;
        let wounds: Vec<(LineAddr, Cycle)> = Vec::unsnap(r)?;
        self.wounds = wounds.into_iter().collect();
        self.poisoned = Vec::unsnap(r)?;
        Ok(())
    }
}

impl wb_kernel::Snap for PState {
    fn snap(&self, w: &mut wb_kernel::SnapWriter) {
        w.u8(match self {
            PState::S => 0,
            PState::E => 1,
            PState::M => 2,
            PState::SmAd => 3,
        });
    }
    fn unsnap(r: &mut wb_kernel::SnapReader) -> wb_kernel::SnapResult<Self> {
        match r.u8()? {
            0 => Ok(PState::S),
            1 => Ok(PState::E),
            2 => Ok(PState::M),
            3 => Ok(PState::SmAd),
            t => Err(wb_kernel::SnapError::new(format!("bad PState tag {t:#x}"))),
        }
    }
}

impl wb_kernel::Snap for L2Line {
    fn snap(&self, w: &mut wb_kernel::SnapWriter) {
        self.state.snap(w);
        self.data.snap(w);
        // v2: the redundant tag and its guard word must round-trip
        // verbatim — a snapshot may capture an undetected wound.
        w.u64(self.tag);
        w.u64(self.guard);
    }
    fn unsnap(r: &mut wb_kernel::SnapReader) -> wb_kernel::SnapResult<Self> {
        Ok(L2Line {
            state: PState::unsnap(r)?,
            data: LineData::unsnap(r)?,
            tag: r.u64()?,
            guard: r.u64()?,
        })
    }
}

impl wb_kernel::Snap for EvictBufEntry {
    fn snap(&self, w: &mut wb_kernel::SnapWriter) {
        self.line.snap(w);
        self.data.snap(w);
        w.bool(self.superseded);
    }
    fn unsnap(r: &mut wb_kernel::SnapReader) -> wb_kernel::SnapResult<Self> {
        Ok(EvictBufEntry {
            line: LineAddr::unsnap(r)?,
            data: LineData::unsnap(r)?,
            superseded: r.bool()?,
        })
    }
}

impl wb_kernel::Snap for PendingFill {
    fn snap(&self, w: &mut wb_kernel::SnapWriter) {
        self.line.snap(w);
        self.data.snap(w);
    }
    fn unsnap(r: &mut wb_kernel::SnapReader) -> wb_kernel::SnapResult<Self> {
        Ok(PendingFill { line: LineAddr::unsnap(r)?, data: LineData::unsnap(r)? })
    }
}

impl wb_kernel::Snap for Completion {
    fn snap(&self, w: &mut wb_kernel::SnapWriter) {
        match self {
            Completion::LoadData { tags, line, data, cacheable } => {
                w.u8(0);
                tags.snap(w);
                line.snap(w);
                data.snap(w);
                w.bool(*cacheable);
            }
            Completion::WriteReady { line } => {
                w.u8(1);
                line.snap(w);
            }
            Completion::WriteBlocked { line } => {
                w.u8(2);
                line.snap(w);
            }
        }
    }
    fn unsnap(r: &mut wb_kernel::SnapReader) -> wb_kernel::SnapResult<Self> {
        match r.u8()? {
            0 => Ok(Completion::LoadData {
                tags: Vec::unsnap(r)?,
                line: LineAddr::unsnap(r)?,
                data: LineData::unsnap(r)?,
                cacheable: r.bool()?,
            }),
            1 => Ok(Completion::WriteReady { line: LineAddr::unsnap(r)? }),
            2 => Ok(Completion::WriteBlocked { line: LineAddr::unsnap(r)? }),
            t => Err(wb_kernel::SnapError::new(format!("bad Completion tag {t:#x}"))),
        }
    }
}
