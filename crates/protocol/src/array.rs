//! Generic set-associative cache array with LRU replacement.
//!
//! Used for the L1 presence array, the private L2 coherence array and the
//! LLC/directory banks. Payload type is generic; replacement victims can
//! be filtered by the caller (e.g. lines pinned by pending loads or
//! transient coherence states are not evictable).
//!
//! # Layout
//!
//! Storage is struct-of-arrays over flat slot arenas (slot = `set *
//! ways + way`): a tag plane, an LRU-stamp plane and a payload plane.
//! Tag scans — the operation every cache access performs — walk `ways`
//! adjacent `u64`s (one cache line for typical associativities) instead
//! of chasing a `Vec<Vec<Way<T>>>` through two pointer hops per set and
//! dragging payload bytes through the scan. At 256 cores the simulator
//! holds hundreds of these arrays, so tick-loop residency matters.

use wb_mem::LineAddr;

/// Tag-plane sentinel for a free way. Line numbers are byte addresses
/// divided by the 64-byte line size, so no real line reaches this value.
const FREE: u64 = u64::MAX;

/// Result of an [`SetAssocArray::insert`].
#[derive(Debug, PartialEq, Eq)]
pub enum Insert<T> {
    /// Inserted into a free way.
    Done,
    /// Inserted after evicting the returned victim.
    Evicted(LineAddr, T),
    /// The set is full and no way was evictable; nothing was inserted.
    NoVictim,
}

/// A set-associative array with per-set LRU.
///
/// # Example
///
/// ```
/// use wb_protocol::array::{Insert, SetAssocArray};
/// use wb_mem::LineAddr;
///
/// let mut a: SetAssocArray<u32> = SetAssocArray::new(2, 1); // 2 sets, direct-mapped
/// assert!(matches!(a.insert(LineAddr(0), 10, 0, |_, _| true), Insert::Done));
/// assert!(matches!(a.insert(LineAddr(2), 20, 1, |_, _| true), Insert::Evicted(..)));
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocArray<T> {
    /// Line number per slot; [`FREE`] marks an empty way.
    tags: Vec<u64>,
    /// LRU stamp per slot, parallel to `tags`.
    stamps: Vec<u64>,
    /// Payload per slot; `None` exactly when the tag is [`FREE`].
    slots: Vec<Option<T>>,
    num_sets: usize,
    ways: usize,
    len: usize,
}

impl<T> SetAssocArray<T> {
    /// Create an array with `num_sets` sets of `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(num_sets: usize, ways: usize) -> Self {
        assert!(num_sets > 0 && ways > 0, "degenerate cache geometry");
        let n = num_sets * ways;
        SetAssocArray {
            tags: vec![FREE; n],
            stamps: vec![0; n],
            slots: (0..n).map(|_| None).collect(),
            num_sets,
            ways,
            len: 0,
        }
    }

    /// Geometry helper: sets needed for `capacity_bytes` at `ways`
    /// associativity and `line_bytes` lines.
    pub fn geometry(capacity_bytes: usize, ways: usize, line_bytes: usize) -> usize {
        let lines = capacity_bytes / line_bytes;
        (lines / ways).max(1)
    }

    #[inline]
    fn base_of(&self, line: LineAddr) -> usize {
        ((line.0 % self.num_sets as u64) as usize) * self.ways
    }

    /// Slot index holding `line`, if resident.
    #[inline]
    fn find(&self, line: LineAddr) -> Option<usize> {
        let base = self.base_of(line);
        self.tags[base..base + self.ways]
            .iter()
            .position(|&t| t == line.0)
            .map(|w| base + w)
    }

    /// Does the array currently hold `line`?
    pub fn contains(&self, line: LineAddr) -> bool {
        self.find(line).is_some()
    }

    /// Borrow the payload for `line`.
    pub fn get(&self, line: LineAddr) -> Option<&T> {
        self.find(line).and_then(|i| self.slots[i].as_ref())
    }

    /// Mutably borrow the payload for `line`.
    pub fn get_mut(&mut self, line: LineAddr) -> Option<&mut T> {
        self.find(line).and_then(|i| self.slots[i].as_mut())
    }

    /// Mark `line` as most-recently used at time `now`.
    pub fn touch(&mut self, line: LineAddr, now: u64) {
        if let Some(i) = self.find(line) {
            self.stamps[i] = now;
        }
    }

    /// Insert `line`. If the set is full, the least-recently-used way for
    /// which `evictable` returns true is evicted and returned.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `line` is already present — callers must use
    /// [`SetAssocArray::get_mut`] to update an existing entry.
    pub fn insert(
        &mut self,
        line: LineAddr,
        payload: T,
        now: u64,
        evictable: impl Fn(LineAddr, &T) -> bool,
    ) -> Insert<T> {
        debug_assert!(!self.contains(line), "inserting duplicate line {line}");
        let base = self.base_of(line);
        // Free way first; otherwise the LRU evictable way (tag scan
        // only — payloads are read just for the evictability filter).
        let mut victim: Option<usize> = None;
        for i in base..base + self.ways {
            if self.tags[i] == FREE {
                self.tags[i] = line.0;
                self.stamps[i] = now;
                self.slots[i] = Some(payload);
                self.len += 1;
                return Insert::Done;
            }
            let older = victim.is_none_or(|v| self.stamps[i] < self.stamps[v]);
            if older && self.slots[i].as_ref().is_some_and(|p| evictable(LineAddr(self.tags[i]), p)) {
                victim = Some(i);
            }
        }
        match victim {
            Some(i) => {
                let old_line = LineAddr(self.tags[i]);
                self.tags[i] = line.0;
                self.stamps[i] = now;
                match self.slots[i].replace(payload) {
                    Some(old) => Insert::Evicted(old_line, old),
                    None => Insert::Done,
                }
            }
            None => Insert::NoVictim,
        }
    }

    /// Remove `line`, returning its payload.
    pub fn remove(&mut self, line: LineAddr) -> Option<T> {
        let i = self.find(line)?;
        self.tags[i] = FREE;
        let old = self.slots[i].take();
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    /// Iterate over `(line, payload)` for every resident entry.
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, &T)> {
        self.tags
            .iter()
            .zip(&self.slots)
            .filter(|(&t, _)| t != FREE)
            .filter_map(|(&t, p)| p.as_ref().map(|p| (LineAddr(t), p)))
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl<T: wb_kernel::Snap> wb_kernel::Snap for SetAssocArray<T> {
    /// All three slot planes serialize positionally: LRU stamps decide
    /// future victims and the way an entry occupies decides scan order,
    /// so slot layout is execution-visible state, not an implementation
    /// detail.
    fn snap(&self, w: &mut wb_kernel::SnapWriter) {
        self.tags.snap(w);
        self.stamps.snap(w);
        self.slots.snap(w);
        w.usize(self.num_sets);
        w.usize(self.ways);
        w.usize(self.len);
    }

    fn unsnap(r: &mut wb_kernel::SnapReader) -> wb_kernel::SnapResult<Self> {
        let a = SetAssocArray {
            tags: Vec::unsnap(r)?,
            stamps: Vec::unsnap(r)?,
            slots: Vec::unsnap(r)?,
            num_sets: r.usize()?,
            ways: r.usize()?,
            len: r.usize()?,
        };
        let n = a.num_sets.checked_mul(a.ways).unwrap_or(0);
        if a.tags.len() != n || a.stamps.len() != n || a.slots.len() != n {
            return Err(wb_kernel::SnapError::new(format!(
                "cache array planes disagree with geometry {}x{}",
                a.num_sets, a.ways
            )));
        }
        Ok(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_math() {
        // 32 KiB, 8-way, 64 B lines -> 64 sets.
        assert_eq!(SetAssocArray::<()>::geometry(32 * 1024, 8, 64), 64);
        assert_eq!(SetAssocArray::<()>::geometry(64, 8, 64), 1);
    }

    #[test]
    fn insert_get_remove() {
        let mut a: SetAssocArray<u32> = SetAssocArray::new(4, 2);
        assert!(matches!(a.insert(LineAddr(1), 11, 0, |_, _| true), Insert::Done));
        assert_eq!(a.get(LineAddr(1)), Some(&11));
        *a.get_mut(LineAddr(1)).unwrap() = 12;
        assert_eq!(a.remove(LineAddr(1)), Some(12));
        assert!(!a.contains(LineAddr(1)));
        assert!(a.is_empty());
    }

    #[test]
    fn lru_eviction_order() {
        let mut a: SetAssocArray<u32> = SetAssocArray::new(1, 2);
        a.insert(LineAddr(0), 0, 0, |_, _| true);
        a.insert(LineAddr(1), 1, 1, |_, _| true);
        a.touch(LineAddr(0), 2); // 1 is now LRU
        match a.insert(LineAddr(2), 2, 3, |_, _| true) {
            Insert::Evicted(l, v) => {
                assert_eq!(l, LineAddr(1));
                assert_eq!(v, 1);
            }
            other => panic!("unexpected {other:?}"), // allow(panic): test-only assertion
        }
    }

    #[test]
    fn pinned_ways_not_evicted() {
        let mut a: SetAssocArray<u32> = SetAssocArray::new(1, 2);
        a.insert(LineAddr(0), 0, 0, |_, _| true);
        a.insert(LineAddr(1), 1, 1, |_, _| true);
        // Only line 1 is evictable.
        match a.insert(LineAddr(2), 2, 2, |l, _| l == LineAddr(1)) {
            Insert::Evicted(l, _) => assert_eq!(l, LineAddr(1)),
            other => panic!("unexpected {other:?}"), // allow(panic): test-only assertion
        }
        // Now nothing is evictable.
        assert!(matches!(a.insert(LineAddr(3), 3, 3, |_, _| false), Insert::NoVictim));
        assert!(!a.contains(LineAddr(3)));
    }

    #[test]
    fn sets_are_independent() {
        let mut a: SetAssocArray<u32> = SetAssocArray::new(2, 1);
        a.insert(LineAddr(0), 0, 0, |_, _| true); // set 0
        a.insert(LineAddr(1), 1, 0, |_, _| true); // set 1
        assert_eq!(a.len(), 2);
        assert!(a.contains(LineAddr(0)) && a.contains(LineAddr(1)));
    }

    #[test]
    fn iter_sees_everything() {
        let mut a: SetAssocArray<u32> = SetAssocArray::new(4, 4);
        for i in 0..10u64 {
            a.insert(LineAddr(i), i as u32, i, |_, _| true);
        }
        let mut lines: Vec<u64> = a.iter().map(|(l, _)| l.0).collect();
        lines.sort_unstable();
        assert_eq!(lines, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn reuse_after_remove_keeps_len_consistent() {
        // Slot arenas must recycle freed ways without leaking `len`.
        let mut a: SetAssocArray<u32> = SetAssocArray::new(2, 2);
        for round in 0..5u64 {
            for i in 0..4u64 {
                a.insert(LineAddr(i), (round * 4 + i) as u32, round, |_, _| true);
            }
            assert_eq!(a.len(), 4);
            for i in 0..4u64 {
                assert_eq!(a.remove(LineAddr(i)), Some((round * 4 + i) as u32));
            }
            assert_eq!(a.len(), 0);
        }
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_geometry_panics() {
        let _: SetAssocArray<()> = SetAssocArray::new(0, 1);
    }
}
