//! Generic set-associative cache array with LRU replacement.
//!
//! Used for the L1 presence array, the private L2 coherence array and the
//! LLC/directory banks. Payload type is generic; replacement victims can
//! be filtered by the caller (e.g. lines pinned by pending loads or
//! transient coherence states are not evictable).

use wb_mem::LineAddr;

#[derive(Debug, Clone)]
struct Way<T> {
    line: LineAddr,
    last_used: u64,
    payload: T,
}

/// Result of an [`SetAssocArray::insert`].
#[derive(Debug, PartialEq, Eq)]
pub enum Insert<T> {
    /// Inserted into a free way.
    Done,
    /// Inserted after evicting the returned victim.
    Evicted(LineAddr, T),
    /// The set is full and no way was evictable; nothing was inserted.
    NoVictim,
}

/// A set-associative array with per-set LRU.
///
/// # Example
///
/// ```
/// use wb_protocol::array::{Insert, SetAssocArray};
/// use wb_mem::LineAddr;
///
/// let mut a: SetAssocArray<u32> = SetAssocArray::new(2, 1); // 2 sets, direct-mapped
/// assert!(matches!(a.insert(LineAddr(0), 10, 0, |_, _| true), Insert::Done));
/// assert!(matches!(a.insert(LineAddr(2), 20, 1, |_, _| true), Insert::Evicted(..)));
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocArray<T> {
    sets: Vec<Vec<Way<T>>>,
    ways: usize,
}

impl<T> SetAssocArray<T> {
    /// Create an array with `num_sets` sets of `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(num_sets: usize, ways: usize) -> Self {
        assert!(num_sets > 0 && ways > 0, "degenerate cache geometry");
        SetAssocArray { sets: (0..num_sets).map(|_| Vec::with_capacity(ways)).collect(), ways }
    }

    /// Geometry helper: sets needed for `capacity_bytes` at `ways`
    /// associativity and `line_bytes` lines.
    pub fn geometry(capacity_bytes: usize, ways: usize, line_bytes: usize) -> usize {
        let lines = capacity_bytes / line_bytes;
        (lines / ways).max(1)
    }

    fn set_of(&self, line: LineAddr) -> usize {
        (line.0 % self.sets.len() as u64) as usize
    }

    /// Does the array currently hold `line`?
    pub fn contains(&self, line: LineAddr) -> bool {
        let s = self.set_of(line);
        self.sets[s].iter().any(|w| w.line == line)
    }

    /// Borrow the payload for `line`.
    pub fn get(&self, line: LineAddr) -> Option<&T> {
        let s = self.set_of(line);
        self.sets[s].iter().find(|w| w.line == line).map(|w| &w.payload)
    }

    /// Mutably borrow the payload for `line`.
    pub fn get_mut(&mut self, line: LineAddr) -> Option<&mut T> {
        let s = self.set_of(line);
        self.sets[s].iter_mut().find(|w| w.line == line).map(|w| &mut w.payload)
    }

    /// Mark `line` as most-recently used at time `now`.
    pub fn touch(&mut self, line: LineAddr, now: u64) {
        let s = self.set_of(line);
        if let Some(w) = self.sets[s].iter_mut().find(|w| w.line == line) {
            w.last_used = now;
        }
    }

    /// Insert `line`. If the set is full, the least-recently-used way for
    /// which `evictable` returns true is evicted and returned.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `line` is already present — callers must use
    /// [`SetAssocArray::get_mut`] to update an existing entry.
    pub fn insert(
        &mut self,
        line: LineAddr,
        payload: T,
        now: u64,
        evictable: impl Fn(LineAddr, &T) -> bool,
    ) -> Insert<T> {
        let ways = self.ways;
        let s = self.set_of(line);
        debug_assert!(
            !self.sets[s].iter().any(|w| w.line == line),
            "inserting duplicate line {line}"
        );
        if self.sets[s].len() < ways {
            self.sets[s].push(Way { line, last_used: now, payload });
            return Insert::Done;
        }
        // Pick the LRU evictable way.
        let victim = self.sets[s]
            .iter()
            .enumerate()
            .filter(|(_, w)| evictable(w.line, &w.payload))
            .min_by_key(|(_, w)| w.last_used)
            .map(|(i, _)| i);
        match victim {
            Some(i) => {
                let old = std::mem::replace(&mut self.sets[s][i], Way { line, last_used: now, payload });
                Insert::Evicted(old.line, old.payload)
            }
            None => Insert::NoVictim,
        }
    }

    /// Remove `line`, returning its payload.
    pub fn remove(&mut self, line: LineAddr) -> Option<T> {
        let s = self.set_of(line);
        let i = self.sets[s].iter().position(|w| w.line == line)?;
        Some(self.sets[s].swap_remove(i).payload)
    }

    /// Iterate over `(line, payload)` for every resident entry.
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, &T)> {
        self.sets.iter().flat_map(|s| s.iter().map(|w| (w.line, &w.payload)))
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.sets.iter().map(|s| s.len()).sum()
    }

    /// True when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_math() {
        // 32 KiB, 8-way, 64 B lines -> 64 sets.
        assert_eq!(SetAssocArray::<()>::geometry(32 * 1024, 8, 64), 64);
        assert_eq!(SetAssocArray::<()>::geometry(64, 8, 64), 1);
    }

    #[test]
    fn insert_get_remove() {
        let mut a: SetAssocArray<u32> = SetAssocArray::new(4, 2);
        assert!(matches!(a.insert(LineAddr(1), 11, 0, |_, _| true), Insert::Done));
        assert_eq!(a.get(LineAddr(1)), Some(&11));
        *a.get_mut(LineAddr(1)).unwrap() = 12;
        assert_eq!(a.remove(LineAddr(1)), Some(12));
        assert!(!a.contains(LineAddr(1)));
        assert!(a.is_empty());
    }

    #[test]
    fn lru_eviction_order() {
        let mut a: SetAssocArray<u32> = SetAssocArray::new(1, 2);
        a.insert(LineAddr(0), 0, 0, |_, _| true);
        a.insert(LineAddr(1), 1, 1, |_, _| true);
        a.touch(LineAddr(0), 2); // 1 is now LRU
        match a.insert(LineAddr(2), 2, 3, |_, _| true) {
            Insert::Evicted(l, v) => {
                assert_eq!(l, LineAddr(1));
                assert_eq!(v, 1);
            }
            other => panic!("unexpected {other:?}"), // allow(panic): test-only assertion
        }
    }

    #[test]
    fn pinned_ways_not_evicted() {
        let mut a: SetAssocArray<u32> = SetAssocArray::new(1, 2);
        a.insert(LineAddr(0), 0, 0, |_, _| true);
        a.insert(LineAddr(1), 1, 1, |_, _| true);
        // Only line 1 is evictable.
        match a.insert(LineAddr(2), 2, 2, |l, _| l == LineAddr(1)) {
            Insert::Evicted(l, _) => assert_eq!(l, LineAddr(1)),
            other => panic!("unexpected {other:?}"), // allow(panic): test-only assertion
        }
        // Now nothing is evictable.
        assert!(matches!(a.insert(LineAddr(3), 3, 3, |_, _| false), Insert::NoVictim));
        assert!(!a.contains(LineAddr(3)));
    }

    #[test]
    fn sets_are_independent() {
        let mut a: SetAssocArray<u32> = SetAssocArray::new(2, 1);
        a.insert(LineAddr(0), 0, 0, |_, _| true); // set 0
        a.insert(LineAddr(1), 1, 0, |_, _| true); // set 1
        assert_eq!(a.len(), 2);
        assert!(a.contains(LineAddr(0)) && a.contains(LineAddr(1)));
    }

    #[test]
    fn iter_sees_everything() {
        let mut a: SetAssocArray<u32> = SetAssocArray::new(4, 4);
        for i in 0..10u64 {
            a.insert(LineAddr(i), i as u32, i, |_, _| true);
        }
        let mut lines: Vec<u64> = a.iter().map(|(l, _)| l.0).collect();
        lines.sort_unstable();
        assert_eq!(lines, (0..10).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_geometry_panics() {
        let _: SetAssocArray<()> = SetAssocArray::new(0, 1);
    }
}
