//! Miss status holding registers.
//!
//! The MSHR file tracks outstanding coherence transactions of a private
//! cache. Loads to a line with an outstanding transaction piggyback on its
//! MSHR (the common optimization Section 3.5.2 discusses); one register is
//! *reserved for SoS loads* so that a source-of-speculation load can
//! always launch a fresh read and bypass a write blocked in WritersBlock —
//! the paper's resource-partitioning rule that makes SoS loads unblockable.

use crate::private::ReadTag;
use wb_mem::LineAddr;

/// What transaction an MSHR tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MshrKind {
    /// An outstanding cacheable GetS.
    Read,
    /// An outstanding GetX (write permission, possibly with data).
    Write,
    /// An outstanding tear-off read launched by (or on behalf of) a SoS
    /// load to bypass a blocked write (Section 3.5.2) or a full set.
    TearOff,
}

impl MshrKind {
    /// Static name, used as the trace-event mnemonic.
    pub fn label(self) -> &'static str {
        match self {
            MshrKind::Read => "Read",
            MshrKind::Write => "Write",
            MshrKind::TearOff => "TearOff",
        }
    }
}

/// One miss status holding register.
#[derive(Debug, Clone)]
pub struct Mshr {
    pub line: LineAddr,
    pub kind: MshrKind,
    /// Loads waiting on this transaction.
    pub waiting_loads: Vec<ReadTag>,
    /// For writes: invalidation acks still outstanding (known once the
    /// Data/ack-count reply arrives).
    pub acks_expected: Option<u32>,
    pub acks_received: u32,
    pub data_received: bool,
    /// Set when the directory hinted that this write is blocked in
    /// WritersBlock.
    pub blocked_hint: bool,
    /// Line contents delivered for a write, held until every expected
    /// acknowledgement arrives (the line becomes M only then).
    pub pending_data: Option<wb_mem::LineData>,
    /// Cycle at which the request was issued (for latency stats).
    pub issued_at: u64,
    /// Cycle at which the first WritersBlock hint arrived, if any
    /// (for the blocked-write stall-duration histogram).
    pub blocked_at: Option<u64>,
    /// ECC shadow: a packed copy ([`Mshr::pack`]) of the ack/flag
    /// bookkeeping, refreshed after every legitimate mutation. A
    /// soft-error flip leaves the live fields and the shadow
    /// disagreeing; the scrub restores the fields from the shadow.
    pub shadow: u64,
}

/// Bits in the packed ack/flag image ([`Mshr::pack`]).
pub const MSHR_PACK_BITS: u32 = 35;

impl Mshr {
    /// A write transaction is complete when its data arrived and every
    /// expected invalidation acknowledgement has been counted.
    pub fn write_complete(&self) -> bool {
        self.data_received && self.acks_expected.is_some_and(|n| self.acks_received >= n)
    }

    /// Pack the soft-error-protected fields — the ack counters and
    /// flags that decide [`Mshr::write_complete`] — into one word.
    pub fn pack(&self) -> u64 {
        (self.acks_expected.unwrap_or(0) as u64 & 0xffff)
            | (self.acks_expected.is_some() as u64) << 16
            | (self.acks_received as u64 & 0xffff) << 17
            | (self.data_received as u64) << 33
            | (self.blocked_hint as u64) << 34
    }

    /// Overwrite the protected fields from a packed image — used both
    /// by the injector (apply a flipped image) and by the scrub
    /// (restore the shadow).
    pub fn unpack_into(&mut self, p: u64) {
        self.acks_expected = if p >> 16 & 1 != 0 { Some((p & 0xffff) as u32) } else { None };
        self.acks_received = (p >> 17 & 0xffff) as u32;
        self.data_received = p >> 33 & 1 != 0;
        self.blocked_hint = p >> 34 & 1 != 0;
    }

    /// Refresh the ECC shadow after a legitimate mutation.
    pub fn reshadow(&mut self) {
        self.shadow = self.pack();
    }
}

/// The MSHR file: fixed capacity, one register reserved for SoS traffic.
#[derive(Debug, Clone)]
pub struct MshrFile {
    entries: Vec<Mshr>,
    capacity: usize,
}

impl MshrFile {
    /// A file with `capacity` registers.
    ///
    /// # Panics
    ///
    /// Panics if `capacity < 2` (one register must remain reservable for
    /// SoS loads while normal traffic uses the rest).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 2, "need >= 2 MSHRs (one reserved for SoS loads)");
        MshrFile { entries: Vec::with_capacity(capacity), capacity }
    }

    /// Find the MSHR for `(line, kind)`.
    pub fn find(&self, line: LineAddr, kind: MshrKind) -> Option<&Mshr> {
        self.entries.iter().find(|m| m.line == line && m.kind == kind)
    }

    /// Mutable [`MshrFile::find`].
    pub fn find_mut(&mut self, line: LineAddr, kind: MshrKind) -> Option<&mut Mshr> {
        self.entries.iter_mut().find(|m| m.line == line && m.kind == kind)
    }

    /// Any MSHR for `line`, preferring Write then Read then TearOff (the
    /// piggyback order for loads).
    pub fn find_any_mut(&mut self, line: LineAddr) -> Option<&mut Mshr> {
        for kind in [MshrKind::Write, MshrKind::Read, MshrKind::TearOff] {
            if self.entries.iter().any(|m| m.line == line && m.kind == kind) {
                return self.find_mut(line, kind);
            }
        }
        None
    }

    /// Allocate a new register. Non-SoS allocations keep one register
    /// free; `sos` allocations may take the last one. Returns `None` when
    /// the file is exhausted for this class.
    ///
    /// # Panics
    ///
    /// Panics (debug) if an MSHR for `(line, kind)` already exists.
    pub fn alloc(&mut self, line: LineAddr, kind: MshrKind, sos: bool, now: u64) -> Option<&mut Mshr> {
        debug_assert!(self.find(line, kind).is_none(), "duplicate MSHR for {line} {kind:?}");
        let limit = if sos { self.capacity } else { self.capacity - 1 };
        if self.entries.len() >= limit {
            return None;
        }
        self.entries.push(Mshr {
            line,
            kind,
            waiting_loads: Vec::new(),
            acks_expected: None,
            acks_received: 0,
            data_received: false,
            blocked_hint: false,
            pending_data: None,
            issued_at: now,
            blocked_at: None,
            shadow: 0,
        });
        let m = self.entries.last_mut().expect("just pushed");
        m.reshadow();
        Some(m)
    }

    /// Free the register for `(line, kind)`, returning it (with its
    /// waiting loads) to the caller.
    pub fn free(&mut self, line: LineAddr, kind: MshrKind) -> Option<Mshr> {
        let i = self.entries.iter().position(|m| m.line == line && m.kind == kind)?;
        Some(self.entries.swap_remove(i))
    }

    /// Number of registers in use.
    pub fn in_use(&self) -> usize {
        self.entries.len()
    }

    /// True when no transaction is outstanding.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over occupied registers.
    pub fn iter(&self) -> impl Iterator<Item = &Mshr> {
        self.entries.iter()
    }

    /// Registers the file may hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// ECC scrub: restore any register whose live fields disagree with
    /// its shadow, returning the lines corrected (normally empty). Runs
    /// at message/tick entry so a flip never reaches a protocol
    /// decision.
    pub fn scrub(&mut self) -> Vec<LineAddr> {
        let mut corrected = Vec::new();
        for m in &mut self.entries {
            if m.pack() != m.shadow {
                let shadow = m.shadow;
                m.unpack_into(shadow);
                corrected.push(m.line);
            }
        }
        corrected
    }

    /// Refresh every shadow after a batch of legitimate mutations.
    pub fn reshadow_all(&mut self) {
        for m in &mut self.entries {
            m.reshadow();
        }
    }

    /// Soft-error injection: flip one random bit of the `idx`-th
    /// register's packed ack/flag image, leaving the shadow stale so the
    /// scrub can detect (and correct) it. Returns the victim line, or
    /// `None` when the flip landed in don't-care storage (e.g. the
    /// `acks_expected` value bits while the field is `None`): such a
    /// strike is physically absorbed and counts as a miss.
    pub fn soft_flip_nth(&mut self, idx: usize, rng: &mut wb_kernel::SimRng) -> Option<LineAddr> {
        let m = self.entries.get_mut(idx)?;
        let before = m.pack();
        m.unpack_into(before ^ 1u64 << rng.below(MSHR_PACK_BITS as u64));
        (m.pack() != before).then_some(m.line)
    }
}

impl wb_kernel::Snap for MshrKind {
    fn snap(&self, w: &mut wb_kernel::SnapWriter) {
        w.u8(match self {
            MshrKind::Read => 0,
            MshrKind::Write => 1,
            MshrKind::TearOff => 2,
        });
    }

    fn unsnap(r: &mut wb_kernel::SnapReader) -> wb_kernel::SnapResult<Self> {
        match r.u8()? {
            0 => Ok(MshrKind::Read),
            1 => Ok(MshrKind::Write),
            2 => Ok(MshrKind::TearOff),
            t => Err(wb_kernel::SnapError::new(format!("bad MshrKind tag {t:#x}"))),
        }
    }
}

impl wb_kernel::Snap for Mshr {
    fn snap(&self, w: &mut wb_kernel::SnapWriter) {
        self.line.snap(w);
        self.kind.snap(w);
        self.waiting_loads.snap(w);
        self.acks_expected.snap(w);
        w.u32(self.acks_received);
        w.bool(self.data_received);
        w.bool(self.blocked_hint);
        self.pending_data.snap(w);
        w.u64(self.issued_at);
        self.blocked_at.snap(w);
        w.u64(self.shadow);
    }

    fn unsnap(r: &mut wb_kernel::SnapReader) -> wb_kernel::SnapResult<Self> {
        Ok(Mshr {
            line: LineAddr::unsnap(r)?,
            kind: MshrKind::unsnap(r)?,
            waiting_loads: Vec::unsnap(r)?,
            acks_expected: Option::unsnap(r)?,
            acks_received: r.u32()?,
            data_received: r.bool()?,
            blocked_hint: r.bool()?,
            pending_data: Option::unsnap(r)?,
            issued_at: r.u64()?,
            blocked_at: Option::unsnap(r)?,
            shadow: r.u64()?,
        })
    }
}

impl wb_kernel::Snap for MshrFile {
    /// Entries serialize positionally: [`MshrFile::free`] uses
    /// `swap_remove` and lookups scan linearly, so register order is
    /// execution-visible.
    fn snap(&self, w: &mut wb_kernel::SnapWriter) {
        self.entries.snap(w);
        w.usize(self.capacity);
    }

    fn unsnap(r: &mut wb_kernel::SnapReader) -> wb_kernel::SnapResult<Self> {
        Ok(MshrFile { entries: Vec::unsnap(r)?, capacity: r.usize()? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_find_free() {
        let mut f = MshrFile::new(4);
        f.alloc(LineAddr(1), MshrKind::Read, false, 0).unwrap();
        assert!(f.find(LineAddr(1), MshrKind::Read).is_some());
        assert!(f.find(LineAddr(1), MshrKind::Write).is_none());
        let m = f.free(LineAddr(1), MshrKind::Read).unwrap();
        assert_eq!(m.line, LineAddr(1));
        assert!(f.is_empty());
    }

    #[test]
    fn reserved_register_for_sos() {
        let mut f = MshrFile::new(2);
        assert!(f.alloc(LineAddr(1), MshrKind::Write, false, 0).is_some());
        // Normal allocation refused: only the reserved slot is left.
        assert!(f.alloc(LineAddr(2), MshrKind::Read, false, 0).is_none());
        // SoS allocation may take it.
        assert!(f.alloc(LineAddr(2), MshrKind::TearOff, true, 0).is_some());
        // And now even SoS is out of luck.
        assert!(f.alloc(LineAddr(3), MshrKind::TearOff, true, 0).is_none());
    }

    #[test]
    fn same_line_different_kinds_coexist() {
        let mut f = MshrFile::new(4);
        f.alloc(LineAddr(1), MshrKind::Write, false, 0).unwrap();
        f.alloc(LineAddr(1), MshrKind::TearOff, true, 0).unwrap();
        assert_eq!(f.in_use(), 2);
        // find_any prefers the write MSHR.
        assert_eq!(f.find_any_mut(LineAddr(1)).unwrap().kind, MshrKind::Write);
    }

    #[test]
    fn write_completion_rule() {
        let mut f = MshrFile::new(2);
        let m = f.alloc(LineAddr(1), MshrKind::Write, false, 0).unwrap();
        assert!(!m.write_complete());
        m.data_received = true;
        assert!(!m.write_complete(), "ack count unknown yet");
        m.acks_expected = Some(2);
        m.acks_received = 1;
        assert!(!m.write_complete());
        m.acks_received = 2;
        assert!(m.write_complete());
    }

    #[test]
    #[should_panic(expected = ">= 2 MSHRs")]
    fn tiny_file_rejected() {
        let _ = MshrFile::new(1);
    }

    #[test]
    fn pack_round_trips_protected_fields() {
        let mut f = MshrFile::new(2);
        let m = f.alloc(LineAddr(1), MshrKind::Write, false, 0).unwrap();
        m.acks_expected = Some(3);
        m.acks_received = 2;
        m.data_received = true;
        m.blocked_hint = true;
        let p = m.pack();
        let mut clean = f.free(LineAddr(1), MshrKind::Write).unwrap();
        clean.unpack_into(0);
        assert_eq!((clean.acks_expected, clean.acks_received), (None, 0));
        clean.unpack_into(p);
        assert_eq!(clean.acks_expected, Some(3));
        assert_eq!(clean.acks_received, 2);
        assert!(clean.data_received && clean.blocked_hint);
    }

    #[test]
    fn every_flipped_bit_is_scrubbed() {
        for bit in 0..MSHR_PACK_BITS {
            let mut f = MshrFile::new(4);
            let m = f.alloc(LineAddr(9), MshrKind::Write, false, 0).unwrap();
            m.acks_expected = Some(2);
            m.acks_received = 1;
            m.data_received = true;
            m.reshadow();
            let want = m.pack();
            let corrupt = want ^ 1u64 << bit;
            m.unpack_into(corrupt);
            let corrected = f.scrub();
            assert_eq!(corrected, vec![LineAddr(9)], "bit {bit} undetected");
            assert_eq!(f.find(LineAddr(9), MshrKind::Write).unwrap().pack(), want);
            assert!(f.scrub().is_empty(), "scrub must converge");
        }
    }

    #[test]
    fn soft_flip_is_detectable() {
        let mut rng = wb_kernel::SimRng::new(11);
        let mut f = MshrFile::new(4);
        // Populate every protected field so no strike lands in
        // don't-care storage (a None acks_expected absorbs value bits).
        let m = f.alloc(LineAddr(5), MshrKind::Write, false, 0).unwrap();
        m.acks_expected = Some(3);
        m.acks_received = 1;
        m.reshadow();
        assert!(f.scrub().is_empty(), "fresh register is clean");
        let victim = f.soft_flip_nth(0, &mut rng).unwrap();
        assert_eq!(victim, LineAddr(5));
        assert_eq!(f.scrub(), vec![LineAddr(5)]);
        assert!(f.soft_flip_nth(7, &mut rng).is_none(), "bad index is a miss");
    }
}
