//! Fixed-width sharer sets for directory entries.
//!
//! The directory used to track sharers in a bare `u64` bitmask, which
//! silently caps the machine at 64 cores — `1u64 << n.index()` is
//! undefined for node 64 and beyond. [`SharerSet`] is a `Copy` bitset
//! sized from [`wb_kernel::MAX_NODES`], so a 256-core directory entry
//! still fits in four words, allocates nothing, and every sharer-walk
//! loop is bounded by the set's width rather than a literal `64`.

use wb_kernel::{NodeId, MAX_NODES};

const WORD_BITS: usize = 64;
const WORDS: usize = MAX_NODES.div_ceil(WORD_BITS);

/// A set of nodes (sharers of a line), as a fixed-width bitset.
///
/// # Example
///
/// ```
/// use wb_protocol::SharerSet;
/// use wb_kernel::NodeId;
///
/// let mut s = SharerSet::solo(NodeId(200));
/// s.insert(NodeId(3));
/// assert_eq!(s.count(), 2);
/// assert!(s.contains(NodeId(200)));
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![NodeId(3), NodeId(200)]);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Default)]
pub struct SharerSet {
    words: [u64; WORDS],
}

impl SharerSet {
    /// The empty set.
    pub const EMPTY: SharerSet = SharerSet { words: [0; WORDS] };

    /// The empty set.
    #[inline]
    pub fn empty() -> Self {
        Self::EMPTY
    }

    /// The set containing exactly `n`.
    #[inline]
    pub fn solo(n: NodeId) -> Self {
        let mut s = Self::EMPTY;
        s.insert(n);
        s
    }

    #[inline]
    fn slot(n: NodeId) -> (usize, u64) {
        let i = n.index();
        debug_assert!(i < MAX_NODES, "node {i} beyond MAX_NODES");
        (i / WORD_BITS, 1u64 << (i % WORD_BITS))
    }

    /// Add `n` to the set.
    #[inline]
    pub fn insert(&mut self, n: NodeId) {
        let (w, b) = Self::slot(n);
        self.words[w] |= b;
    }

    /// Remove `n` from the set.
    #[inline]
    pub fn remove(&mut self, n: NodeId) {
        let (w, b) = Self::slot(n);
        self.words[w] &= !b;
    }

    /// Is `n` in the set?
    #[inline]
    pub fn contains(&self, n: NodeId) -> bool {
        let (w, b) = Self::slot(n);
        self.words[w] & b != 0
    }

    /// Is the set empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of nodes in the set.
    #[inline]
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// A copy of the set with `n` removed.
    #[inline]
    pub fn without(mut self, n: NodeId) -> Self {
        self.remove(n);
        self
    }

    /// Add every member of `other` to this set.
    #[inline]
    pub fn union_with(&mut self, other: SharerSet) {
        for (w, o) in self.words.iter_mut().zip(other.words) {
            *w |= o;
        }
    }

    /// Replace the set with the empty set, returning the old contents.
    #[inline]
    pub fn take(&mut self) -> SharerSet {
        std::mem::replace(self, Self::EMPTY)
    }

    /// Flip `n`'s membership bit — the soft-error layer's particle
    /// strike. Keeps raw word access confined to this module.
    #[inline]
    pub fn toggle(&mut self, n: NodeId) {
        let (w, b) = Self::slot(n);
        self.words[w] ^= b;
    }

    /// A copy of the backing words for guard hashing (read-only; the
    /// parity code covers every sharer bit without exposing the layout
    /// for mutation).
    #[inline]
    pub fn guard_words(&self) -> [u64; 4] {
        self.words
    }

    /// Members in ascending node order.
    pub fn iter(&self) -> SharerIter {
        SharerIter { words: self.words, word: 0 }
    }
}

/// Iterator over a [`SharerSet`], ascending.
pub struct SharerIter {
    words: [u64; WORDS],
    word: usize,
}

impl Iterator for SharerIter {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        while self.word < WORDS {
            let w = self.words[self.word];
            if w != 0 {
                let bit = w.trailing_zeros() as usize;
                self.words[self.word] &= w - 1;
                return Some(NodeId((self.word * WORD_BITS + bit) as u16));
            }
            self.word += 1;
        }
        None
    }
}

impl IntoIterator for SharerSet {
    type Item = NodeId;
    type IntoIter = SharerIter;
    fn into_iter(self) -> SharerIter {
        self.iter()
    }
}

impl wb_kernel::Snap for SharerSet {
    fn snap(&self, w: &mut wb_kernel::SnapWriter) {
        self.words.snap(w);
    }
    fn unsnap(r: &mut wb_kernel::SnapReader) -> wb_kernel::SnapResult<Self> {
        Ok(SharerSet { words: <[u64; WORDS]>::unsnap(r)? })
    }
}

impl std::fmt::Debug for SharerSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter().map(|n| n.0)).finish()
    }
}

/// Hex rendering for `debug_line` dumps: highest word first, words
/// joined by `_`, leading all-zero words elided.
impl std::fmt::LowerHex for SharerSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let top = self.words.iter().rposition(|&w| w != 0).unwrap_or(0);
        write!(f, "{:x}", self.words[top])?;
        for w in self.words[..top].iter().rev() {
            write!(f, "_{w:016x}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wb_kernel::check::prelude::*;

    #[test]
    fn empty_solo_and_membership() {
        assert!(SharerSet::empty().is_empty());
        assert_eq!(SharerSet::empty().count(), 0);
        let s = SharerSet::solo(NodeId(63));
        assert!(s.contains(NodeId(63)));
        assert!(!s.contains(NodeId(62)));
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn works_beyond_64_nodes() {
        // The whole point of the type: nodes 64..256 must track
        // correctly where `1u64 << n` broke down.
        let mut s = SharerSet::empty();
        for n in [0u16, 63, 64, 65, 127, 128, 255] {
            s.insert(NodeId(n));
        }
        assert_eq!(s.count(), 7);
        for n in [0u16, 63, 64, 65, 127, 128, 255] {
            assert!(s.contains(NodeId(n)), "missing n{n}");
        }
        assert!(!s.contains(NodeId(66)));
        let collected: Vec<u16> = s.iter().map(|n| n.0).collect();
        assert_eq!(collected, vec![0, 63, 64, 65, 127, 128, 255]);
    }

    #[test]
    fn remove_without_and_take() {
        let mut s = SharerSet::solo(NodeId(5));
        s.insert(NodeId(100));
        assert_eq!(s.without(NodeId(5)).iter().collect::<Vec<_>>(), vec![NodeId(100)]);
        s.remove(NodeId(100));
        assert_eq!(s.count(), 1);
        let old = s.take();
        assert!(s.is_empty());
        assert!(old.contains(NodeId(5)));
    }

    #[test]
    fn toggle_flips_membership() {
        let mut s = SharerSet::solo(NodeId(70));
        s.toggle(NodeId(70));
        assert!(s.is_empty());
        s.toggle(NodeId(200));
        assert!(s.contains(NodeId(200)));
        // Guard words see every toggle.
        let before = SharerSet::solo(NodeId(9)).guard_words();
        let mut t = SharerSet::solo(NodeId(9));
        t.toggle(NodeId(9));
        assert_ne!(before, t.guard_words());
    }

    #[test]
    fn union_accumulates() {
        let mut a = SharerSet::solo(NodeId(1));
        a.union_with(SharerSet::solo(NodeId(200)));
        assert_eq!(a.count(), 2);
        assert!(a.contains(NodeId(200)));
    }

    #[test]
    fn hex_rendering_is_compact() {
        assert_eq!(format!("{:x}", SharerSet::empty()), "0");
        assert_eq!(format!("{:x}", SharerSet::solo(NodeId(5))), "20");
        let mut s = SharerSet::solo(NodeId(64));
        s.insert(NodeId(0));
        assert_eq!(format!("{:x}", s), "1_0000000000000001");
    }

    wb_proptest! {
        #[test]
        fn insert_remove_roundtrip(a in 0usize..256, b in 0usize..256) {
            let (a, b) = (NodeId(a as u16), NodeId(b as u16));
            let mut s = SharerSet::solo(a);
            s.insert(b);
            prop_assert!(s.contains(a) && s.contains(b));
            s.remove(a);
            if a == b {
                prop_assert!(s.is_empty());
            } else {
                prop_assert!(s.contains(b) && !s.contains(a));
                prop_assert_eq!(s.count(), 1);
            }
        }

        #[test]
        fn iter_is_sorted_and_exact(seed in 0u64..u64::MAX) {
            let mut s = SharerSet::empty();
            let mut expect = std::collections::BTreeSet::new();
            let mut x = seed | 1;
            for _ in 0..20 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let n = ((x >> 33) % 256) as u16;
                s.insert(NodeId(n));
                expect.insert(n);
            }
            let got: Vec<u16> = s.iter().map(|n| n.0).collect();
            let want: Vec<u16> = expect.into_iter().collect();
            prop_assert_eq!(got, want);
            prop_assert_eq!(s.count(), s.iter().count());
        }
    }
}
