//! MESI directory coherence with the WritersBlock extension.
//!
//! This crate implements the memory-system half of the paper:
//!
//! - [`PrivateCache`]: the per-core private L1+L2 hierarchy, its MSHRs
//!   (with one entry reserved for SoS loads, Section 3.5.2), write
//!   permission management for the store buffer, silent/non-silent
//!   evictions (Section 3.8) and the core-facing interface;
//! - [`Directory`]: an LLC/directory bank implementing a GEMS-style MESI
//!   directory protocol with 3-hop read transactions and Unblock, extended
//!   with the **WritersBlock** transient state (Section 3.3): invalidation
//!   Nacks put the entry into WritersBlock, which *blocks all writes but
//!   admits reads* by serving uncacheable tear-off copies (Section 3.4),
//!   and redirects the eventual lockdown Acks to the blocked writer;
//! - [`ProtoMsg`]: the protocol message vocabulary carried by the mesh.
//!
//! The *core side* of the mechanism (load queues, S bits, lockdown
//! lifetimes, the LDT) lives in `wb-cpu`; the two halves meet at the
//! [`CoreSide`] trait and the [`Completion`] event stream.

pub mod array;
pub mod directory;
pub mod messages;
pub mod mshr;
pub mod private;
pub mod sharers;

pub use directory::Directory;
pub use messages::{ProtoMsg, ReadKind};
pub use mshr::MshrFile;
pub use private::{Completion, LoadAccess, PrivateCache, ReadTag};
pub use sharers::SharerSet;

use wb_mem::LineAddr;

/// A protocol component reached an "impossible" state.
///
/// Instead of panicking (which aborts a whole torture suite and leaves
/// no usable diagnosis), directory banks and private caches record the
/// first violation they see and drop the offending message; the system
/// watchdog surfaces it as `RunOutcome::Fault` with a full wedge report
/// and a reproducer line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError {
    /// Component that detected the violation, e.g. `"dir2"`, `"cache0"`.
    pub at: String,
    /// Cache line involved.
    pub line: u64,
    /// What was being processed (message or internal event name).
    pub context: String,
    /// Why the state was impossible.
    pub detail: String,
}

impl wb_kernel::Snap for ProtocolError {
    fn snap(&self, w: &mut wb_kernel::SnapWriter) {
        w.str(&self.at);
        w.u64(self.line);
        w.str(&self.context);
        w.str(&self.detail);
    }
    fn unsnap(r: &mut wb_kernel::SnapReader) -> wb_kernel::SnapResult<Self> {
        Ok(ProtocolError {
            at: r.str()?,
            line: r.u64()?,
            context: r.str()?,
            detail: r.str()?,
        })
    }
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} for line {:#x}: {}",
            self.at, self.context, self.line, self.detail
        )
    }
}

/// One transient or parked directory entry, for wedge diagnosis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirWait {
    pub line: u64,
    /// Stable state name (`"BusyWrite.wb"`, `"Evicting"`, …).
    pub state: &'static str,
    /// The node the transaction is waiting on (writer / requester /
    /// owner), when one is identifiable.
    pub waiting_on: Option<u16>,
    /// Requesters with messages queued behind this entry.
    pub queued: Vec<u16>,
}

/// One outstanding MSHR, for wedge diagnosis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MshrWait {
    pub line: u64,
    pub kind: &'static str,
    /// A write currently blocked by WritersBlock (got a hint).
    pub blocked: bool,
    pub issued_at: u64,
}

/// How a core answers an invalidation that was delivered to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvalResponse {
    /// Acknowledge immediately (no matching lockdown; in the base
    /// protocol this is always the answer — after squashing any
    /// M-speculative loads that match).
    Ack,
    /// Withhold the acknowledgement: a matching load is in lockdown
    /// (WritersBlock protocol only). The core promises to call
    /// [`PrivateCache::release_lockdown`] for this line exactly once,
    /// when the last matching lockdown is lifted.
    Nack,
}

/// The core-facing hook the private cache uses to deliver invalidations.
///
/// Implemented by the load/store unit of `wb-cpu`. Invalidation delivery
/// is synchronous within the cycle (the LQ CAM search is modelled as part
/// of the invalidation processing latency).
pub trait CoreSide {
    /// An invalidation for `line` (write- or eviction-initiated) reached
    /// this core. The implementation must search its LQ/LDT:
    ///
    /// - base protocol: squash M-speculative loads matching `line` and
    ///   return [`InvalResponse::Ack`];
    /// - WritersBlock protocol: if a matching load is in lockdown, set the
    ///   "seen" bit on the youngest match and return
    ///   [`InvalResponse::Nack`]; otherwise `Ack`.
    fn on_invalidation(&mut self, now: wb_kernel::Cycle, line: LineAddr) -> InvalResponse;

    /// Does the core currently hold an M-speculative (lockdown) load bound
    /// to `line`? Used by the private cache to pin such lines against
    /// eviction under the WritersBlock protocol (Section 3.8).
    fn has_mspec(&self, line: LineAddr) -> bool;

    /// A non-silent eviction is removing `line` from the directory's view
    /// of this cache. In the base protocol the core must squash any
    /// M-speculative loads bound to it (Section 3.8): future writes will
    /// no longer be announced to this core.
    fn on_eviction(&mut self, now: wb_kernel::Cycle, line: LineAddr);
}

/// A trivially Ack-ing [`CoreSide`] for tests and warm-up traffic.
#[derive(Debug, Default, Clone, Copy)]
pub struct AlwaysAck;

impl CoreSide for AlwaysAck {
    fn on_invalidation(&mut self, _now: wb_kernel::Cycle, _line: LineAddr) -> InvalResponse {
        InvalResponse::Ack
    }
    fn has_mspec(&self, _line: LineAddr) -> bool {
        false
    }
    fn on_eviction(&mut self, _now: wb_kernel::Cycle, _line: LineAddr) {}
}
