//! Protocol message vocabulary.
//!
//! Messages travel on three virtual networks (see `wb-mesh`):
//!
//! | vnet      | messages |
//! |-----------|----------|
//! | Request   | `GetS`, `GetX`, `PutM` |
//! | Forward   | `Inv`, `FwdGetS`, `FwdGetX`, `Recall`, `AuditProbe` |
//! | Response  | `Data`, `InvAck`, `Nack`, `LockdownAck`, `RedirAck`, `Unblock`, `PutAck`, `WbHint`, `DataWb`, `AuditReply` |
//!
//! Compared to a textbook MESI directory protocol, the WritersBlock
//! extension adds exactly the red arrows of Figure 3/4 of the paper:
//! `Nack` (invalidation refused by a lockdown, optionally carrying the
//! dirty data to refresh the LLC), `LockdownAck` (the deferred
//! acknowledgement sent when the lockdown lifts), `RedirAck` (the
//! directory forwarding that acknowledgement to the writer, whose identity
//! only the directory knows), tear-off `Data` (the `cacheable: false`
//! flavor) and `WbHint` (the blocked-write hint of Section 3.5.2).

use wb_kernel::NodeId;
use wb_mem::{LineAddr, LineData};
use wb_mesh::VNet;

/// Message destination: each tile hosts both a private cache and an
/// LLC/directory bank, so routing needs the component as well as the node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dest {
    /// The private cache of a tile.
    Cache(NodeId),
    /// The LLC/directory bank of a tile.
    Dir(NodeId),
}

impl Dest {
    /// The tile the destination component lives on.
    pub fn node(self) -> NodeId {
        match self {
            Dest::Cache(n) | Dest::Dir(n) => n,
        }
    }
}

/// Why a read was issued — governs whether the reply may be cached.
/// `Hash` so the mesh's reliable sublayer can checksum frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReadKind {
    /// Normal cacheable read (GetS).
    Cacheable,
    /// Explicit tear-off request: the reply must be an uncacheable copy
    /// and the requester is never registered as a sharer. Used by SoS
    /// loads bypassing blocked MSHRs and by reads that cannot allocate
    /// (Section 3.5).
    TearOff,
}

/// A coherence protocol message.
/// `Hash` so the mesh's reliable sublayer can checksum frames.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ProtoMsg {
    // ------------------------------------------------------ requests (vnet0)
    /// Read request for a line.
    GetS { line: LineAddr, requester: NodeId, kind: ReadKind },
    /// Write-permission request (also used for upgrades from S; the reply
    /// always carries data).
    GetX { line: LineAddr, requester: NodeId },
    /// Owner eviction: write the line back. Sent for both M (dirty) and E
    /// (clean) lines; data always travels.
    PutM { line: LineAddr, requester: NodeId, data: LineData },
    /// Non-silent eviction of a shared line (ablation of Section 3.8; the
    /// paper's chosen baseline keeps shared evictions silent).
    PutS { line: LineAddr, requester: NodeId },

    // ------------------------------------------------------ forwards (vnet1)
    /// Invalidate a shared copy. `writer` is who collects the InvAck
    /// (`None` for eviction-invalidations, whose Acks return to the
    /// directory).
    Inv { line: LineAddr, writer: Option<NodeId> },
    /// Forward of a read to the exclusive owner: send data to `requester`
    /// and a copy back to the directory, downgrade to S. With
    /// `kind == TearOff` the owner only sends an uncacheable copy and
    /// keeps its state.
    FwdGetS { line: LineAddr, requester: NodeId, kind: ReadKind },
    /// Forward of a write to the exclusive owner: send data to
    /// `requester`, invalidate own copy (or Nack under a lockdown).
    FwdGetX { line: LineAddr, requester: NodeId },
    /// Directory-eviction recall of the exclusive copy: send data to the
    /// directory and invalidate (or Nack under a lockdown).
    Recall { line: LineAddr },
    /// Soft-error recovery: a directory bank that detected corruption in
    /// one of its entries asks a cache what it actually holds for `line`.
    /// Forward vnet like the other home-to-cache messages; answered
    /// immediately (no cache state changes), so it cannot deadlock.
    AuditProbe { line: LineAddr },

    // ----------------------------------------------------- responses (vnet2)
    /// Line data. `acks_expected` tells a writer how many invalidation
    /// acknowledgements to await; `exclusive` grants E to a reader;
    /// `cacheable: false` makes this a tear-off copy (use once, do not
    /// cache).
    Data {
        line: LineAddr,
        data: LineData,
        acks_expected: u32,
        exclusive: bool,
        cacheable: bool,
        /// True when this reply answers a write request (GetX/FwdGetX):
        /// it must be consumed by the requester's *write* MSHR even if a
        /// read to the same line is also outstanding. (Real protocols use
        /// distinct GETS_DATA / GETX_DATA message types.)
        for_write: bool,
    },
    /// Invalidation acknowledgement, sharer -> writer.
    InvAck { line: LineAddr, from: NodeId },
    /// Invalidation refused by a lockdown, sharer -> directory. Puts the
    /// directory entry into WritersBlock. Carries the line data when the
    /// Nacking cache held the line exclusively (Figure 3.B step 3:
    /// Nack+Data) so the LLC can serve subsequent reads.
    Nack { line: LineAddr, from: NodeId, data: Option<LineData> },
    /// Deferred acknowledgement: the last lockdown for `line` at `from`
    /// was lifted. Routed to the directory (which knows the writer).
    LockdownAck { line: LineAddr, from: NodeId },
    /// The directory redirecting a LockdownAck to the blocked writer
    /// (Figure 3.B steps 4-5).
    RedirAck { line: LineAddr },
    /// Transaction complete, requester -> directory.
    Unblock { line: LineAddr, from: NodeId },
    /// Directory acknowledging a PutM.
    PutAck { line: LineAddr },
    /// Hint to a writer that its write request is blocked in WritersBlock
    /// (Section 3.5.2), so SoS loads stop piggybacking on its MSHR.
    WbHint { line: LineAddr },
    /// Owner's copy of the data sent back to the directory on a FwdGetS
    /// downgrade (keeps the LLC up to date).
    DataWb { line: LineAddr, from: NodeId, data: LineData },
    /// Answer to an [`ProtoMsg::AuditProbe`]: whether the cache holds a
    /// copy of the line (`present`) and whether that copy is writable or
    /// an in-flight writeback it still owns (`excl`). The poisoned
    /// directory entry rebuilds its sharer set / owner from these.
    AuditReply { line: LineAddr, from: NodeId, present: bool, excl: bool },
}

impl ProtoMsg {
    /// The line this message concerns.
    pub fn line(&self) -> LineAddr {
        match *self {
            ProtoMsg::GetS { line, .. }
            | ProtoMsg::GetX { line, .. }
            | ProtoMsg::PutM { line, .. }
            | ProtoMsg::PutS { line, .. }
            | ProtoMsg::Inv { line, .. }
            | ProtoMsg::FwdGetS { line, .. }
            | ProtoMsg::FwdGetX { line, .. }
            | ProtoMsg::Recall { line }
            | ProtoMsg::Data { line, .. }
            | ProtoMsg::InvAck { line, .. }
            | ProtoMsg::Nack { line, .. }
            | ProtoMsg::LockdownAck { line, .. }
            | ProtoMsg::RedirAck { line }
            | ProtoMsg::Unblock { line, .. }
            | ProtoMsg::PutAck { line }
            | ProtoMsg::WbHint { line }
            | ProtoMsg::DataWb { line, .. }
            | ProtoMsg::AuditProbe { line }
            | ProtoMsg::AuditReply { line, .. } => line,
        }
    }

    /// Which virtual network this message class uses.
    pub fn vnet(&self) -> VNet {
        match self {
            ProtoMsg::GetS { .. }
            | ProtoMsg::GetX { .. }
            | ProtoMsg::PutM { .. }
            | ProtoMsg::PutS { .. } => VNet::Request,
            ProtoMsg::Inv { .. }
            | ProtoMsg::FwdGetS { .. }
            | ProtoMsg::FwdGetX { .. }
            | ProtoMsg::Recall { .. }
            | ProtoMsg::AuditProbe { .. } => VNet::Forward,
            _ => VNet::Response,
        }
    }

    /// True when the message carries a full line of data (5 flits on the
    /// wire; control messages are 1 flit).
    pub fn carries_data(&self) -> bool {
        matches!(
            self,
            ProtoMsg::Data { .. }
                | ProtoMsg::PutM { .. }
                | ProtoMsg::DataWb { .. }
                | ProtoMsg::Nack { data: Some(_), .. }
        )
    }

    /// Message size in flits, given the configured sizes.
    pub fn flits(&self, data_flits: u32, control_flits: u32) -> u32 {
        if self.carries_data() {
            data_flits
        } else {
            control_flits
        }
    }

    /// The node whose request this message represents, when one exists —
    /// used by wedge diagnosis to attribute queued directory messages.
    pub fn requester(&self) -> Option<NodeId> {
        match *self {
            ProtoMsg::GetS { requester, .. }
            | ProtoMsg::GetX { requester, .. }
            | ProtoMsg::PutM { requester, .. }
            | ProtoMsg::PutS { requester, .. }
            | ProtoMsg::FwdGetS { requester, .. }
            | ProtoMsg::FwdGetX { requester, .. } => Some(requester),
            _ => None,
        }
    }

    /// Short mnemonic for traces.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            ProtoMsg::GetS { kind: ReadKind::Cacheable, .. } => "GetS",
            ProtoMsg::GetS { kind: ReadKind::TearOff, .. } => "GetS.to",
            ProtoMsg::GetX { .. } => "GetX",
            ProtoMsg::PutM { .. } => "PutM",
            ProtoMsg::PutS { .. } => "PutS",
            ProtoMsg::Inv { .. } => "Inv",
            ProtoMsg::FwdGetS { .. } => "FwdGetS",
            ProtoMsg::FwdGetX { .. } => "FwdGetX",
            ProtoMsg::Recall { .. } => "Recall",
            ProtoMsg::Data { cacheable: false, .. } => "Data.to",
            ProtoMsg::Data { .. } => "Data",
            ProtoMsg::InvAck { .. } => "InvAck",
            ProtoMsg::Nack { .. } => "Nack",
            ProtoMsg::LockdownAck { .. } => "LockdownAck",
            ProtoMsg::RedirAck { .. } => "RedirAck",
            ProtoMsg::Unblock { .. } => "Unblock",
            ProtoMsg::PutAck { .. } => "PutAck",
            ProtoMsg::WbHint { .. } => "WbHint",
            ProtoMsg::DataWb { .. } => "DataWb",
            ProtoMsg::AuditProbe { .. } => "AuditProbe",
            ProtoMsg::AuditReply { .. } => "AuditReply",
        }
    }
}

impl wb_kernel::Snap for Dest {
    fn snap(&self, w: &mut wb_kernel::SnapWriter) {
        match self {
            Dest::Cache(n) => {
                w.u8(0);
                n.snap(w);
            }
            Dest::Dir(n) => {
                w.u8(1);
                n.snap(w);
            }
        }
    }

    fn unsnap(r: &mut wb_kernel::SnapReader) -> wb_kernel::SnapResult<Self> {
        match r.u8()? {
            0 => Ok(Dest::Cache(NodeId::unsnap(r)?)),
            1 => Ok(Dest::Dir(NodeId::unsnap(r)?)),
            t => Err(wb_kernel::SnapError::new(format!("bad Dest tag {t:#x}"))),
        }
    }
}

impl wb_kernel::Snap for ReadKind {
    fn snap(&self, w: &mut wb_kernel::SnapWriter) {
        w.u8(match self {
            ReadKind::Cacheable => 0,
            ReadKind::TearOff => 1,
        });
    }

    fn unsnap(r: &mut wb_kernel::SnapReader) -> wb_kernel::SnapResult<Self> {
        match r.u8()? {
            0 => Ok(ReadKind::Cacheable),
            1 => Ok(ReadKind::TearOff),
            t => Err(wb_kernel::SnapError::new(format!("bad ReadKind tag {t:#x}"))),
        }
    }
}

impl wb_kernel::Snap for ProtoMsg {
    /// Tags are frozen at their declaration order; adding a variant
    /// means appending a tag and bumping `wb_kernel::snap::FORMAT_VERSION`.
    fn snap(&self, w: &mut wb_kernel::SnapWriter) {
        match self {
            ProtoMsg::GetS { line, requester, kind } => {
                w.u8(0);
                line.snap(w);
                requester.snap(w);
                kind.snap(w);
            }
            ProtoMsg::GetX { line, requester } => {
                w.u8(1);
                line.snap(w);
                requester.snap(w);
            }
            ProtoMsg::PutM { line, requester, data } => {
                w.u8(2);
                line.snap(w);
                requester.snap(w);
                data.snap(w);
            }
            ProtoMsg::PutS { line, requester } => {
                w.u8(3);
                line.snap(w);
                requester.snap(w);
            }
            ProtoMsg::Inv { line, writer } => {
                w.u8(4);
                line.snap(w);
                writer.snap(w);
            }
            ProtoMsg::FwdGetS { line, requester, kind } => {
                w.u8(5);
                line.snap(w);
                requester.snap(w);
                kind.snap(w);
            }
            ProtoMsg::FwdGetX { line, requester } => {
                w.u8(6);
                line.snap(w);
                requester.snap(w);
            }
            ProtoMsg::Recall { line } => {
                w.u8(7);
                line.snap(w);
            }
            ProtoMsg::Data { line, data, acks_expected, exclusive, cacheable, for_write } => {
                w.u8(8);
                line.snap(w);
                data.snap(w);
                w.u32(*acks_expected);
                w.bool(*exclusive);
                w.bool(*cacheable);
                w.bool(*for_write);
            }
            ProtoMsg::InvAck { line, from } => {
                w.u8(9);
                line.snap(w);
                from.snap(w);
            }
            ProtoMsg::Nack { line, from, data } => {
                w.u8(10);
                line.snap(w);
                from.snap(w);
                data.snap(w);
            }
            ProtoMsg::LockdownAck { line, from } => {
                w.u8(11);
                line.snap(w);
                from.snap(w);
            }
            ProtoMsg::RedirAck { line } => {
                w.u8(12);
                line.snap(w);
            }
            ProtoMsg::Unblock { line, from } => {
                w.u8(13);
                line.snap(w);
                from.snap(w);
            }
            ProtoMsg::PutAck { line } => {
                w.u8(14);
                line.snap(w);
            }
            ProtoMsg::WbHint { line } => {
                w.u8(15);
                line.snap(w);
            }
            ProtoMsg::DataWb { line, from, data } => {
                w.u8(16);
                line.snap(w);
                from.snap(w);
                data.snap(w);
            }
            ProtoMsg::AuditProbe { line } => {
                w.u8(17);
                line.snap(w);
            }
            ProtoMsg::AuditReply { line, from, present, excl } => {
                w.u8(18);
                line.snap(w);
                from.snap(w);
                w.bool(*present);
                w.bool(*excl);
            }
        }
    }

    fn unsnap(r: &mut wb_kernel::SnapReader) -> wb_kernel::SnapResult<Self> {
        let tag = r.u8()?;
        let line = LineAddr::unsnap(r)?;
        Ok(match tag {
            0 => ProtoMsg::GetS {
                line,
                requester: NodeId::unsnap(r)?,
                kind: ReadKind::unsnap(r)?,
            },
            1 => ProtoMsg::GetX { line, requester: NodeId::unsnap(r)? },
            2 => ProtoMsg::PutM {
                line,
                requester: NodeId::unsnap(r)?,
                data: LineData::unsnap(r)?,
            },
            3 => ProtoMsg::PutS { line, requester: NodeId::unsnap(r)? },
            4 => ProtoMsg::Inv { line, writer: Option::unsnap(r)? },
            5 => ProtoMsg::FwdGetS {
                line,
                requester: NodeId::unsnap(r)?,
                kind: ReadKind::unsnap(r)?,
            },
            6 => ProtoMsg::FwdGetX { line, requester: NodeId::unsnap(r)? },
            7 => ProtoMsg::Recall { line },
            8 => ProtoMsg::Data {
                line,
                data: LineData::unsnap(r)?,
                acks_expected: r.u32()?,
                exclusive: r.bool()?,
                cacheable: r.bool()?,
                for_write: r.bool()?,
            },
            9 => ProtoMsg::InvAck { line, from: NodeId::unsnap(r)? },
            10 => ProtoMsg::Nack { line, from: NodeId::unsnap(r)?, data: Option::unsnap(r)? },
            11 => ProtoMsg::LockdownAck { line, from: NodeId::unsnap(r)? },
            12 => ProtoMsg::RedirAck { line },
            13 => ProtoMsg::Unblock { line, from: NodeId::unsnap(r)? },
            14 => ProtoMsg::PutAck { line },
            15 => ProtoMsg::WbHint { line },
            16 => ProtoMsg::DataWb { line, from: NodeId::unsnap(r)?, data: LineData::unsnap(r)? },
            17 => ProtoMsg::AuditProbe { line },
            18 => ProtoMsg::AuditReply {
                line,
                from: NodeId::unsnap(r)?,
                present: r.bool()?,
                excl: r.bool()?,
            },
            t => return Err(wb_kernel::SnapError::new(format!("bad ProtoMsg tag {t:#x}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line() -> LineAddr {
        LineAddr(42)
    }

    #[test]
    fn vnet_classes() {
        assert_eq!(ProtoMsg::GetS { line: line(), requester: NodeId(0), kind: ReadKind::Cacheable }.vnet(), VNet::Request);
        assert_eq!(ProtoMsg::Inv { line: line(), writer: None }.vnet(), VNet::Forward);
        assert_eq!(ProtoMsg::InvAck { line: line(), from: NodeId(1) }.vnet(), VNet::Response);
        assert_eq!(ProtoMsg::Recall { line: line() }.vnet(), VNet::Forward);
        assert_eq!(ProtoMsg::Unblock { line: line(), from: NodeId(0) }.vnet(), VNet::Response);
        assert_eq!(ProtoMsg::AuditProbe { line: line() }.vnet(), VNet::Forward);
        let reply = ProtoMsg::AuditReply { line: line(), from: NodeId(3), present: true, excl: false };
        assert_eq!(reply.vnet(), VNet::Response);
        assert!(!reply.carries_data(), "probe replies are control-sized");
        assert_eq!(reply.requester(), None);
        assert_eq!(reply.mnemonic(), "AuditReply");
        assert_eq!(ProtoMsg::AuditProbe { line: line() }.mnemonic(), "AuditProbe");
    }

    #[test]
    fn data_sizes() {
        let d = ProtoMsg::Data { line: line(), data: LineData::new(), acks_expected: 0, exclusive: false, cacheable: true, for_write: false };
        assert!(d.carries_data());
        assert_eq!(d.flits(5, 1), 5);
        let a = ProtoMsg::InvAck { line: line(), from: NodeId(2) };
        assert!(!a.carries_data());
        assert_eq!(a.flits(5, 1), 1);
    }

    #[test]
    fn nack_with_data_is_data_sized() {
        let n = ProtoMsg::Nack { line: line(), from: NodeId(0), data: Some(LineData::new()) };
        assert!(n.carries_data());
        let n0 = ProtoMsg::Nack { line: line(), from: NodeId(0), data: None };
        assert!(!n0.carries_data());
    }

    #[test]
    fn line_extraction() {
        for m in [
            ProtoMsg::GetX { line: line(), requester: NodeId(0) },
            ProtoMsg::RedirAck { line: line() },
            ProtoMsg::WbHint { line: line() },
        ] {
            assert_eq!(m.line(), line());
        }
    }

    #[test]
    fn mnemonics_distinguish_tearoff() {
        let to = ProtoMsg::GetS { line: line(), requester: NodeId(0), kind: ReadKind::TearOff };
        assert_eq!(to.mnemonic(), "GetS.to");
        let d = ProtoMsg::Data { line: line(), data: LineData::new(), acks_expected: 0, exclusive: false, cacheable: false, for_write: false };
        assert_eq!(d.mnemonic(), "Data.to");
    }
}
