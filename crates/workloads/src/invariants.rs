//! End-of-run data-integrity invariants.
//!
//! Parallel executions are nondeterministic, but several kernels maintain
//! quantities that are *interleaving-independent* — lock-protected
//! counters, atomic histograms, task tickets. Checking them after a
//! simulated run validates the whole machine (pipeline + speculation +
//! commit policy + coherence) end to end: a lost update, a doubled
//! replay, or a stale read anywhere breaks the count.

use crate::codegen::layout;
use crate::Scale;
use wb_mem::Addr;

/// Check the invariant of workload `name` (as produced by
/// [`crate::suite`] with the same `cores`/`scale`), reading final memory
/// through `read`. Returns `Ok(())` for kernels without an
/// interleaving-independent invariant.
///
/// # Errors
///
/// A human-readable description of the violated invariant.
pub fn check(
    name: &str,
    cores: usize,
    scale: Scale,
    read: impl Fn(Addr) -> u64,
) -> Result<(), String> {
    let f = scale.factor();
    match name {
        "radix" => {
            // One fetch-add per 4 iterations per core, over 16 buckets.
            let iters = 60 * f;
            let expected = (iters).div_ceil(4) * cores as u64;
            let total: u64 =
                (0..16).map(|i| read(Addr::new(layout::SHARED2 + i * 0x40))).sum();
            if total != expected {
                return Err(format!("radix histogram: {total} != expected {expected}"));
            }
            Ok(())
        }
        "barnes" => {
            // Each core performs `iters` lock-protected payload
            // increments; the payloads (word 1 of each 16-byte node)
            // start at zero.
            let iters = 30 * f;
            let expected = iters * cores as u64;
            let total: u64 =
                (0..256).map(|i| read(Addr::new(layout::SHARED + i * 16 + 8))).sum();
            if total != expected {
                return Err(format!("barnes payload sum: {total} != expected {expected}"));
            }
            Ok(())
        }
        "fluidanimate" => {
            // Word 1 and word 3 of every cell are incremented by exactly
            // one per lock-protected visit; total visits = cores x iters x 8.
            let iters = 20 * f;
            let expected = cores as u64 * iters * 8;
            let count_at = |off: u64| -> u64 {
                (0..64).map(|c| read(Addr::new(layout::SHARED + c * 32 + off))).sum()
            };
            let (w1, w3) = (count_at(8), count_at(24));
            if w1 != expected || w3 != expected {
                return Err(format!(
                    "fluidanimate visit counters: {w1}/{w3} != expected {expected}"
                ));
            }
            Ok(())
        }
        "bodytrack" => {
            // The ticket counter ends at >= the task count (each worker
            // that sees an exhausted queue still bumps it once).
            let tasks = 32 * f;
            let got = read(Addr::new(layout::SHARED2 + 0x1000));
            if got < tasks {
                return Err(format!("bodytrack tickets: {got} < task count {tasks}"));
            }
            // And at most tasks + cores (one overshoot per worker exit).
            let max = tasks + cores as u64;
            if got > max {
                return Err(format!("bodytrack tickets: {got} > maximum {max}"));
            }
            Ok(())
        }
        "raytrace" => {
            // Batches of 4 task ids; each core keeps grabbing until its
            // iteration budget: exactly iters batches per core.
            let iters = 40 * f;
            let expected = 4 * iters * cores as u64;
            let got = read(Addr::new(layout::SHARED2 + 0x800));
            if got != expected {
                return Err(format!("raytrace task counter: {got} != expected {expected}"));
            }
            Ok(())
        }
        "fft" | "lu" | "ocean" => {
            // Barrier-structured kernels: the barrier counter must equal
            // cores x barrier-crossings.
            let crossings = match name {
                "fft" => 2 * f,
                "lu" => 2 * 3 * f,
                _ => 2 * f, // ocean: one barrier per sweep
            };
            let expected = cores as u64 * crossings;
            let got = read(Addr::new(layout::BARRIER));
            if got != expected {
                return Err(format!("{name} barrier count: {got} != expected {expected}"));
            }
            Ok(())
        }
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wb_isa::ArchState;
    use wb_mem::MainMemory;

    /// Run every suite kernel single-core on the *interpreter* and check
    /// its invariant — validates the invariant formulas themselves.
    #[test]
    fn invariants_hold_on_interpreter() {
        for w in crate::suite(1, Scale::Test) {
            let mut st = ArchState::new();
            let mut mem = MainMemory::new();
            st.run(&w.programs[0], &mut mem, 10_000_000)
                .unwrap_or_else(|| panic!("{} did not halt", w.name));
            check(&w.name, 1, Scale::Test, |a| mem.read_word(a))
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        }
    }

    /// Same for two interleaved cores.
    #[test]
    fn invariants_hold_on_two_interleaved_cores() {
        for w in crate::suite(2, Scale::Test) {
            let mut mem = MainMemory::new();
            let mut harts: Vec<ArchState> = (0..2).map(|_| ArchState::new()).collect();
            let mut steps = 0u64;
            while !harts.iter().all(|h| h.halted()) {
                for (i, h) in harts.iter_mut().enumerate() {
                    h.step(&w.programs[i], &mut mem);
                }
                steps += 1;
                assert!(steps < 30_000_000, "{} stuck", w.name);
            }
            check(&w.name, 2, Scale::Test, |a| mem.read_word(a))
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        }
    }

    #[test]
    fn unknown_names_pass() {
        assert!(check("nonexistent", 4, Scale::Test, |_| 0).is_ok());
    }
}
