//! Code-generation helpers shared by the workload kernels.
//!
//! A thin layer over [`ProgramBuilder`] providing counted loops,
//! spinlocks, sense-free central barriers, and a register-resident LCG
//! for pseudo-random access patterns — the building blocks of every
//! synthetic kernel.

use wb_isa::{AluOp, Cond, ProgramBuilder, Reg};

/// Register conventions: r1-r15 are kernel scratch, the rest is reserved
/// by the helpers below.
pub mod regs {
    use wb_isa::Reg;
    /// Constant 1.
    pub const ONE: Reg = Reg(20);
    /// Number of cores.
    pub const NCORES: Reg = Reg(21);
    /// Barrier counter address.
    pub const BAR_ADDR: Reg = Reg(22);
    /// Barrier target (grows by NCORES each barrier).
    pub const BAR_TARGET: Reg = Reg(23);
    /// Sync scratch.
    pub const SYNC_T0: Reg = Reg(24);
    /// Sync scratch.
    pub const SYNC_T1: Reg = Reg(25);
    /// This core's id.
    pub const CORE_ID: Reg = Reg(28);
    /// LCG state.
    pub const LCG: Reg = Reg(29);
    /// Loop counters (nestable).
    pub const LOOP0: Reg = Reg(30);
    /// Inner loop counter.
    pub const LOOP1: Reg = Reg(31);
}

/// Shared memory layout used by every kernel. All bases are line- and
/// bank-spread so traffic distributes across the 16 directory banks.
pub mod layout {
    /// Central barrier counter.
    pub const BARRIER: u64 = 0x8000;
    /// Lock array: lock `i` lives at `LOCKS + i * 0x40` (one per line).
    pub const LOCKS: u64 = 0x9000;
    /// Shared data region.
    pub const SHARED: u64 = 0x100_000;
    /// Second shared region (histograms, accumulators).
    pub const SHARED2: u64 = 0x200_000;
    /// Per-core private region (64 KiB apart).
    pub fn private(core: usize) -> u64 {
        0x1_000_000 + (core as u64) * 0x10_000
    }
    /// Address of lock `i`.
    pub fn lock(i: u64) -> u64 {
        LOCKS + i * 0x40
    }
}

/// A per-core program generator.
pub struct Gen {
    /// The underlying builder (escape hatch for kernel-specific code).
    pub p: ProgramBuilder,
    core: usize,
    ncores: usize,
}

impl Gen {
    /// Start a program for `core` of `ncores`, with the helper registers
    /// initialized (constants, barrier bookkeeping, LCG seed).
    pub fn new(core: usize, ncores: usize, seed: u64) -> Self {
        let mut p = ProgramBuilder::new();
        p.imm(regs::ONE, 1);
        p.imm(regs::NCORES, ncores as u64);
        p.imm(regs::BAR_ADDR, layout::BARRIER);
        p.imm(regs::BAR_TARGET, 0);
        p.imm(regs::CORE_ID, core as u64);
        p.imm(regs::LCG, seed | 1);
        Gen { p, core, ncores }
    }

    /// This program's core index.
    pub fn core(&self) -> usize {
        self.core
    }

    /// Core count of the workload.
    pub fn ncores(&self) -> usize {
        self.ncores
    }

    /// Emit a counted loop running `body` `n` times, using `counter` as
    /// the induction register (starts at 0, increments by 1).
    pub fn loop_n(&mut self, counter: Reg, n: u64, body: impl FnOnce(&mut Gen)) {
        self.p.imm(counter, 0);
        let top = self.p.here();
        body(self);
        self.p.alui(AluOp::Add, counter, counter, 1);
        let limit = regs::SYNC_T1;
        self.p.imm(limit, n);
        self.p.branch(Cond::Lt, counter, limit, top);
    }

    /// Emit a central barrier: `fetch_add(barrier, 1)`, then spin until
    /// the counter reaches the next multiple of `ncores`.
    pub fn barrier(&mut self) {
        let (t0, _t1) = (regs::SYNC_T0, regs::SYNC_T1);
        self.p.alu(AluOp::Add, regs::BAR_TARGET, regs::BAR_TARGET, regs::NCORES);
        self.p.amo_add(t0, regs::BAR_ADDR, 0, regs::ONE);
        let spin = self.p.here();
        self.p.load(t0, regs::BAR_ADDR, 0);
        self.p.branch(Cond::Lt, t0, regs::BAR_TARGET, spin);
    }

    /// Acquire the spinlock whose address is in `addr_reg`.
    ///
    /// Test-and-test-and-set: spin on a plain load (keeping the line
    /// shared among waiters) and only attempt the atomic swap when the
    /// lock was observed free — the standard contention-friendly idiom,
    /// and the one that exercises the paper's mechanism (spinning *loads*
    /// racing the releaser's *store*).
    pub fn lock(&mut self, addr_reg: Reg) {
        let t = regs::SYNC_T0;
        let spin = self.p.here();
        self.p.load(t, addr_reg, 0);
        self.p.branch(Cond::Ne, t, Reg::ZERO, spin);
        self.p.amo_swap(t, addr_reg, 0, regs::ONE);
        self.p.branch(Cond::Ne, t, Reg::ZERO, spin);
    }

    /// Release the spinlock at `addr_reg`.
    pub fn unlock(&mut self, addr_reg: Reg) {
        self.p.store(Reg::ZERO, addr_reg, 0);
    }

    /// Advance the LCG and leave a pseudo-random value in
    /// [`regs::LCG`].
    pub fn lcg_next(&mut self) {
        self.p.alui(AluOp::Mul, regs::LCG, regs::LCG, 6364136223846793005);
        self.p.alui(AluOp::Add, regs::LCG, regs::LCG, 1442695040888963407);
    }

    /// Compute a pseudo-random word address `base + 8 * (lcg_bits &
    /// (slots-1))` into `dst`. `slots` must be a power of two.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is not a power of two.
    pub fn random_addr(&mut self, dst: Reg, base: u64, slots: u64) {
        assert!(slots.is_power_of_two(), "slots must be a power of two");
        self.lcg_next();
        self.p.alui(AluOp::Shr, dst, regs::LCG, 33);
        self.p.alui(AluOp::And, dst, dst, slots - 1);
        self.p.alui(AluOp::Shl, dst, dst, 3);
        self.p.alui(AluOp::Add, dst, dst, base);
    }

    /// `dst = base + 8 * (index_reg & (slots-1))` — strided/indexed word
    /// address.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is not a power of two.
    pub fn indexed_addr(&mut self, dst: Reg, base: u64, index_reg: Reg, slots: u64) {
        assert!(slots.is_power_of_two(), "slots must be a power of two");
        self.p.alui(AluOp::And, dst, index_reg, slots - 1);
        self.p.alui(AluOp::Shl, dst, dst, 3);
        self.p.alui(AluOp::Add, dst, dst, base);
    }

    /// A short chain of dependent ALU work (models computation between
    /// memory accesses); result accumulates into `acc`.
    pub fn compute(&mut self, acc: Reg, chain: usize) {
        for i in 0..chain {
            if i % 3 == 2 {
                self.p.alui(AluOp::Mul, acc, acc, 0x9e37);
            } else {
                self.p.alui(AluOp::Add, acc, acc, 0x5bd1e995 + i as u64);
            }
        }
    }

    /// Finish the program.
    pub fn build(mut self) -> wb_isa::Program {
        self.p.halt();
        self.p.build()
    }
}

/// Build one program per core with `f(core)` and wrap them in a named
/// workload.
pub fn make_workload(
    name: &str,
    ncores: usize,
    f: impl Fn(usize) -> wb_isa::Program,
) -> wb_isa::Workload {
    wb_isa::Workload::new(name, (0..ncores).map(f).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use wb_isa::{ArchState, Workload};
    use wb_mem::MainMemory;

    /// The generated sync primitives must be architecturally correct: run
    /// them single-core on the interpreter.
    #[test]
    fn loop_and_compute_run() {
        let mut g = Gen::new(0, 1, 42);
        g.p.imm(Reg(1), 0);
        g.loop_n(regs::LOOP0, 10, |g| {
            g.p.alui(AluOp::Add, Reg(1), Reg(1), 2);
        });
        let prog = g.build();
        let mut st = ArchState::new();
        let mut mem = MainMemory::new();
        st.run(&prog, &mut mem, 100_000).expect("halts");
        assert_eq!(st.reg(Reg(1)), 20);
    }

    #[test]
    fn barrier_single_core_passes() {
        let mut g = Gen::new(0, 1, 1);
        g.barrier();
        g.barrier();
        let prog = g.build();
        let mut st = ArchState::new();
        let mut mem = MainMemory::new();
        st.run(&prog, &mut mem, 100_000).expect("halts");
        assert_eq!(mem.read_word(wb_mem::Addr::new(layout::BARRIER)), 2);
    }

    #[test]
    fn lock_unlock_single_core() {
        let mut g = Gen::new(0, 1, 1);
        g.p.imm(Reg(1), layout::lock(0));
        g.lock(Reg(1));
        g.p.imm(Reg(2), 0x100_000).imm(Reg(3), 5).store(Reg(3), Reg(2), 0);
        g.unlock(Reg(1));
        let prog = g.build();
        let mut st = ArchState::new();
        let mut mem = MainMemory::new();
        st.run(&prog, &mut mem, 100_000).expect("halts");
        assert_eq!(mem.read_word(wb_mem::Addr::new(0x100_000)), 5);
        assert_eq!(mem.read_word(wb_mem::Addr::new(layout::lock(0))), 0, "lock released");
    }

    #[test]
    fn random_addr_in_range() {
        let mut g = Gen::new(0, 1, 7);
        // Store 3 random-address values and capture the addresses.
        for r in [Reg(1), Reg(2), Reg(3)] {
            g.random_addr(r, layout::SHARED, 64);
        }
        let prog = g.build();
        let mut st = ArchState::new();
        let mut mem = MainMemory::new();
        st.run(&prog, &mut mem, 100_000).expect("halts");
        for r in [Reg(1), Reg(2), Reg(3)] {
            let a = st.reg(r);
            assert!(a >= layout::SHARED && a < layout::SHARED + 64 * 8);
            assert_eq!(a % 8, 0);
        }
    }

    #[test]
    fn two_core_barrier_on_interpreter_interleaved() {
        // Round-robin interpretation of two barrier programs must
        // terminate and leave the counter at 2.
        let mk = |core| {
            let mut g = Gen::new(core, 2, 1);
            g.barrier();
            g.build()
        };
        let w = Workload::new("bar", vec![mk(0), mk(1)]);
        let mut mem = MainMemory::new();
        let mut harts: Vec<ArchState> = vec![ArchState::new(), ArchState::new()];
        for _ in 0..10_000 {
            for (i, h) in harts.iter_mut().enumerate() {
                h.step(&w.programs[i], &mut mem);
            }
            if harts.iter().all(|h| h.halted()) {
                break;
            }
        }
        assert!(harts.iter().all(|h| h.halted()), "barrier deadlocked");
        assert_eq!(mem.read_word(wb_mem::Addr::new(layout::BARRIER)), 2);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn random_addr_rejects_non_pow2() {
        let mut g = Gen::new(0, 1, 1);
        g.random_addr(Reg(1), 0, 3);
    }
}
