//! Synthetic SPLASH-3 / PARSEC 3.0 surrogate workloads.
//!
//! The paper evaluates on SPLASH-3 and PARSEC (simsmall). Those binaries
//! cannot run on this simulator, so each benchmark is replaced by a
//! synthetic kernel that reproduces its *coherence-visible* structure —
//! sharing pattern, invalidation rate, lock/barrier behaviour, miss
//! regime — which is what drives the paper's per-benchmark variation
//! (see DESIGN.md for the substitution rationale).
//!
//! All kernels are parameterized by a [`Scale`] so tests run in
//! milliseconds while benches use larger iteration counts.
//!
//! # Example
//!
//! ```
//! use wb_workloads::{suite, Scale};
//! let all = suite(4, Scale::Test);
//! assert_eq!(all.len(), 12);
//! assert!(all.iter().any(|w| w.name == "fft"));
//! ```

pub mod codegen;
pub mod invariants;
pub mod parsec;
pub mod splash;

use wb_isa::Workload;

/// Iteration-count preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny runs for unit/integration tests.
    Test,
    /// The default evaluation size for benches (roughly "simsmall" in
    /// spirit: big enough for steady-state behaviour).
    Small,
}

impl Scale {
    /// Multiplier applied to each kernel's base iteration count.
    pub fn factor(self) -> u64 {
        match self {
            Scale::Test => 1,
            Scale::Small => 8,
        }
    }
}

/// The full 12-benchmark suite for `cores` cores: six SPLASH-3 surrogates
/// and six PARSEC surrogates, in the order the paper plots them.
pub fn suite(cores: usize, scale: Scale) -> Vec<Workload> {
    vec![
        splash::fft(cores, scale),
        splash::lu(cores, scale),
        splash::ocean(cores, scale),
        splash::radix(cores, scale),
        splash::barnes(cores, scale),
        splash::raytrace(cores, scale),
        parsec::blackscholes(cores, scale),
        parsec::bodytrack(cores, scale),
        parsec::canneal(cores, scale),
        parsec::fluidanimate(cores, scale),
        parsec::freqmine(cores, scale),
        parsec::streamcluster(cores, scale),
    ]
}

/// `rounds` central barriers and nothing else: the pure serialized
/// fetch-add storm. The longest *legal* per-core stall any kernel
/// produces — the last core through each barrier waits for every other
/// core's fetch-add to serialize through the counter's home bank — so
/// this is the scaling stress for watchdog windows and directory-bank
/// contention, at any core count.
pub fn barrier_storm(cores: usize, rounds: u64) -> Workload {
    let programs = (0..cores)
        .map(|c| {
            let mut g = codegen::Gen::new(c, cores, 1 + c as u64);
            for _ in 0..rounds {
                g.barrier();
            }
            g.p.halt();
            g.p.build()
        })
        .collect();
    Workload::new(format!("barrier-storm-{cores}x{rounds}"), programs)
}

/// Benchmark names, in suite order.
pub fn suite_names() -> Vec<&'static str> {
    vec![
        "fft",
        "lu",
        "ocean",
        "radix",
        "barnes",
        "raytrace",
        "blackscholes",
        "bodytrack",
        "canneal",
        "fluidanimate",
        "freqmine",
        "streamcluster",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_twelve_named_workloads() {
        let s = suite(4, Scale::Test);
        assert_eq!(s.len(), 12);
        let names: Vec<&str> = s.iter().map(|w| w.name.as_str()).collect();
        assert_eq!(names, suite_names());
    }

    #[test]
    fn all_programs_nonempty() {
        for w in suite(2, Scale::Test) {
            assert_eq!(w.cores(), 2, "{}", w.name);
            for (i, p) in w.programs.iter().enumerate() {
                assert!(p.len() > 4, "{} core {i} program too small", w.name);
            }
        }
    }

    #[test]
    fn scale_grows_iterations() {
        assert!(Scale::Small.factor() > Scale::Test.factor());
    }
}
