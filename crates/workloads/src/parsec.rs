//! PARSEC 3.0 surrogate kernels.
//!
//! Same philosophy as [`crate::splash`]: each kernel mimics the
//! coherence-visible behaviour and memory-level parallelism of its
//! namesake, not its algorithm.

use crate::codegen::{layout, make_workload, regs, Gen};
use crate::Scale;
use wb_isa::{AluOp, Cond, Reg, Workload};

const A0: Reg = Reg(1);
const A1: Reg = Reg(2);
const A2: Reg = Reg(3);
const A3: Reg = Reg(4);
const V0: Reg = Reg(5);
const V1: Reg = Reg(6);
const V2: Reg = Reg(7);
const V3: Reg = Reg(8);
const ACC: Reg = Reg(9);
const BASE: Reg = Reg(10);
const TMP: Reg = Reg(11);
const TMP2: Reg = Reg(12);
/// Warm (always-cached) private base pointer.
const WARM: Reg = Reg(16);

/// Derive 4 independent pseudo-random word addresses from one LCG step,
/// using disjoint bit slices (strand registers A0..A3).
fn random_addr4(g: &mut Gen, base: u64, slots: u64) {
    assert!(slots.is_power_of_two());
    g.lcg_next();
    for (i, a) in [A0, A1, A2, A3].iter().enumerate() {
        g.p.alui(AluOp::Shr, *a, regs::LCG, 10 + 11 * i as u64);
        g.p.alui(AluOp::And, *a, *a, slots - 1);
        g.p.alui(AluOp::Shl, *a, *a, 3);
        g.p.alui(AluOp::Add, *a, *a, base);
    }
}

/// Blackscholes-like: embarrassingly parallel option pricing — 4
/// independent private load/compute/store strands per iteration, almost
/// no sharing. The "low coherence traffic" end of the spectrum.
pub fn blackscholes(cores: usize, scale: Scale) -> Workload {
    let iters = 60 * scale.factor();
    make_workload("blackscholes", cores, |core| {
        let mut g = Gen::new(core, cores, 0xb1ac + core as u64);
        let base = layout::private(core);
        for v in [V0, V1, V2, V3] {
            g.p.imm(v, core as u64 * 3 + 1);
        }
        g.loop_n(regs::LOOP0, iters, |g| {
            // 4 independent strands over disjoint 8 KiB private slices.
            let strands = [(A0, V0), (A1, V1), (A2, V2), (A3, V3)];
            for (i, (a, v)) in strands.iter().enumerate() {
                g.p.alui(AluOp::Mul, *a, regs::LOOP0, 4);
                g.p.alui(AluOp::Add, *a, *a, i as u64);
                g.p.alui(AluOp::And, *a, *a, 1023);
                g.p.alui(AluOp::Shl, *a, *a, 3);
                g.p.alui(AluOp::Add, *a, *a, base + 0x2000 * i as u64);
                g.p.load(TMP2, *a, 0);
                g.p.alu(AluOp::Add, *v, *v, TMP2);
                g.compute(*v, 4);
                g.p.store(*v, *a, 0);
            }
        });
        g.build()
    })
}

/// Bodytrack-like: a lock-protected shared task queue; workers pull task
/// ids and do 8 independent irregular shared reads plus private writes.
/// Queue-head misses block the ROB — the benchmark where the paper's OoO
/// commit gains the most (41.9%).
pub fn bodytrack(cores: usize, scale: Scale) -> Workload {
    let tasks = 32 * scale.factor();
    make_workload("bodytrack", cores, |core| {
        let mut g = Gen::new(core, cores, 0xb0d7 + core as u64);
        let (vlock, vqueue, vtask) = (Reg(13), Reg(14), Reg(15));
        g.p.imm(WARM, layout::private(core));
        g.p.imm(vlock, layout::lock(2));
        g.p.imm(vqueue, layout::SHARED2 + 0x1000);
        g.p.imm(ACC, 0);
        let done = g.p.new_label();
        let top = g.p.here();
        // Pull a task under the lock.
        g.lock(vlock);
        g.p.load(vtask, vqueue, 0);
        g.p.alui(AluOp::Add, TMP, vtask, 1);
        g.p.store(TMP, vqueue, 0);
        g.unlock(vlock);
        g.p.imm(TMP, tasks);
        g.p.branch(Cond::Ge, vtask, TMP, done);
        // Process: four rounds of [1 scattered shared read (miss-prone)
        // + 3 warm private reads] — hit-under-miss.
        for round in 0..24u64 {
            g.p.alui(AluOp::Add, A0, vtask, round);
            g.p.alui(AluOp::Mul, A0, A0, 0x85eb_ca6b);
            g.p.alui(AluOp::Shr, A0, A0, 24);
            g.p.alui(AluOp::And, A0, A0, 1023);
            g.p.alui(AluOp::Shl, A0, A0, 3);
            g.p.alui(AluOp::Add, A0, A0, layout::SHARED);
            g.p.load(V0, A0, 0);
            let warm = [(A1, V1), (A2, V2), (A3, V3)];
            for (i, (a, v)) in warm.iter().enumerate() {
                let _ = a;
                g.p.load(*v, WARM, (round as i64 * 24 + 8 * i as i64) % 1000);
            }
            for v in [V0, V1, V2, V3] {
                g.p.alu(AluOp::Add, ACC, ACC, v);
            }
            g.compute(ACC, 1);
        }
        g.indexed_addr(TMP, layout::private(g.core()), vtask, 512);
        g.p.store(ACC, TMP, 0);
        g.p.jump(top);
        g.p.bind(done);
        g.build()
    })
}

/// Canneal-like: random element swaps in a large shared array under
/// per-region locks — migratory sharing with high invalidation rates.
pub fn canneal(cores: usize, scale: Scale) -> Workload {
    let iters = 25 * scale.factor();
    make_workload("canneal", cores, |core| {
        let mut g = Gen::new(core, cores, 0xca2e + core as u64 * 13);
        let vlock = Reg(13);
        g.loop_n(regs::LOOP0, iters, |g| {
            // Pick four random elements; lock the region of the first.
            random_addr4(g, layout::SHARED, 512);
            g.p.alui(AluOp::Shr, TMP, A0, 6);
            g.p.alui(AluOp::And, TMP, TMP, 7);
            g.p.alui(AluOp::Shl, TMP, TMP, 6);
            g.p.alui(AluOp::Add, vlock, TMP, layout::LOCKS + 0x400);
            g.lock(vlock);
            // Two independent swaps (a<->b, c<->d).
            g.p.load(V0, A0, 0);
            g.p.load(V1, A1, 0);
            g.p.load(V2, A2, 0);
            g.p.load(V3, A3, 0);
            g.compute(V0, 2);
            g.compute(V2, 2);
            g.p.store(V1, A0, 0);
            g.p.store(V0, A1, 0);
            g.p.store(V3, A2, 0);
            g.p.store(V2, A3, 0);
            g.unlock(vlock);
        });
        g.build()
    })
}

/// Fluidanimate-like: grid cells protected by fine-grained locks;
/// neighbour updates cross core partitions. Many short critical sections
/// on distinct lock lines.
pub fn fluidanimate(cores: usize, scale: Scale) -> Workload {
    let iters = 20 * scale.factor();
    let cells: u64 = 64;
    make_workload("fluidanimate", cores, |core| {
        let mut g = Gen::new(core, cores, 0xf1 + core as u64 * 3);
        let (vcell, vlock) = (Reg(13), Reg(14));
        g.p.imm(ACC, core as u64 + 2);
        g.loop_n(regs::LOOP0, iters, |g| {
            g.loop_n(regs::LOOP1, 8, |g| {
                // cell = (core*8 + i + iter) % cells — overlapping
                // partitions so neighbours contend.
                g.p.alui(AluOp::Mul, vcell, regs::CORE_ID, 8);
                g.p.alu(AluOp::Add, vcell, vcell, regs::LOOP1);
                g.p.alu(AluOp::Add, vcell, vcell, regs::LOOP0);
                g.p.alui(AluOp::And, vcell, vcell, cells - 1);
                // lock cell, update its four words (independent pairs).
                g.p.alui(AluOp::Shl, TMP, vcell, 6);
                g.p.alui(AluOp::Add, vlock, TMP, layout::LOCKS + 0x800);
                g.lock(vlock);
                g.p.alui(AluOp::Shl, BASE, vcell, 5);
                g.p.alui(AluOp::Add, BASE, BASE, layout::SHARED);
                g.p.load(V0, BASE, 0);
                g.p.load(V1, BASE, 8);
                g.p.load(V2, BASE, 16);
                g.p.load(V3, BASE, 24);
                g.p.alu(AluOp::Add, V0, V0, ACC);
                g.p.alui(AluOp::Add, V1, V1, 1);
                g.p.alu(AluOp::Add, V2, V2, ACC);
                g.p.alui(AluOp::Add, V3, V3, 1);
                g.p.store(V0, BASE, 0);
                g.p.store(V1, BASE, 8);
                g.p.store(V2, BASE, 16);
                g.p.store(V3, BASE, 24);
                g.unlock(vlock);
                g.compute(ACC, 2);
            });
        });
        g.build()
    })
}

/// Freqmine-like: long read traversals of a shared prefix tree with rare
/// shared-counter writes — reads racing rare writes, the paper's highest
/// uncacheable-read benchmark.
pub fn freqmine(cores: usize, scale: Scale) -> Workload {
    let iters = 12 * scale.factor();
    make_workload("freqmine", cores, |core| {
        let mut g = Gen::new(core, cores, 0xf4ee + core as u64 * 11);
        let vcnt = Reg(13);
        g.p.imm(WARM, layout::private(core));
        g.p.imm(ACC, 1);
        g.p.imm(vcnt, layout::SHARED2 + 0x2000);
        g.loop_n(regs::LOOP0, iters, |g| {
            // Three rounds of [1 random tree read (cold) + 3 warm private
            // reads] — hit-under-miss over the traversal.
            for r in 0..8i64 {
                random_addr4(g, layout::SHARED, 2048);
                g.p.load(V0, A0, 0);
                g.p.load(V1, WARM, (r * 24) % 1000);
                g.p.load(V2, WARM, (r * 24 + 8) % 1000);
                g.p.load(V3, WARM, (r * 24 + 16) % 1000);
                g.p.alu(AluOp::Add, V0, V0, V1);
                g.p.alu(AluOp::Add, V2, V2, V3);
                g.p.alu(AluOp::Add, ACC, ACC, V0);
                g.p.alu(AluOp::Add, ACC, ACC, V2);
                g.compute(ACC, 1);
            }
            // Rare shared write: every 8th iteration bump a hot counter.
            g.p.alui(AluOp::And, TMP, regs::LOOP0, 7);
            let skip = g.p.new_label();
            g.p.branch(Cond::Ne, TMP, Reg::ZERO, skip);
            g.p.load(TMP2, vcnt, 0);
            g.p.alu(AluOp::Add, TMP2, TMP2, ACC);
            g.p.store(TMP2, vcnt, 0);
            g.p.bind(skip);
        });
        g.build()
    })
}

/// Streamcluster-like: all cores read a shared block with independent
/// strands then update a handful of hot accumulators — the paper's worst
/// case for blocked writes (stores racing many concurrent readers).
pub fn streamcluster(cores: usize, scale: Scale) -> Workload {
    let iters = 15 * scale.factor();
    make_workload("streamcluster", cores, |core| {
        let mut g = Gen::new(core, cores, 0x57c1 + core as u64 * 5);
        let vhot = Reg(13);
        g.p.imm(WARM, layout::private(core));
        for v in [V0, V1, V2, V3] {
            g.p.imm(v, 0);
        }
        g.p.imm(ACC, 0);
        g.loop_n(regs::LOOP0, iters, |g| {
            // Read the shared "point block": each contended read is
            // overlapped with 3 warm private reads (hit-under-miss).
            g.p.imm(BASE, layout::SHARED);
            for b in 0..12i64 {
                g.p.load(A0, BASE, 8 * (4 * (b % 4)));
                g.p.alu(AluOp::Add, V0, V0, A0);
                let warm = [(A1, V1), (A2, V2), (A3, V3)];
                for (i, (a, v)) in warm.iter().enumerate() {
                    let _ = a;
                    g.p.load(TMP2, WARM, (b * 24 + 8 * i as i64) % 1000);
                    g.p.alu(AluOp::Add, *v, *v, TMP2);
                }
            }
            for v in [V0, V1, V2, V3] {
                g.p.alu(AluOp::Add, ACC, ACC, v);
            }
            // Update one of 4 hot accumulators with plain load/store under
            // contention (racy by design: invalidations sweep the readers).
            g.p.alui(AluOp::And, TMP, regs::LOOP0, 3);
            g.p.alui(AluOp::Shl, TMP, TMP, 6);
            g.p.alui(AluOp::Add, vhot, TMP, layout::SHARED2 + 0x3000);
            g.p.load(TMP2, vhot, 0);
            g.p.alu(AluOp::Add, TMP2, TMP2, ACC);
            g.p.store(TMP2, vhot, 0);
            // And occasionally write INTO the shared block others read.
            g.p.alui(AluOp::And, TMP, regs::LOOP0, 7);
            let skip = g.p.new_label();
            g.p.branch(Cond::Ne, TMP, regs::CORE_ID, skip);
            g.p.alui(AluOp::Shl, TMP2, regs::LOOP0, 3);
            g.p.alui(AluOp::And, TMP2, TMP2, 127);
            g.p.alui(AluOp::Add, TMP2, TMP2, layout::SHARED);
            g.p.store(ACC, TMP2, 0);
            g.p.bind(skip);
        });
        g.build()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wb_isa::ArchState;
    use wb_mem::MainMemory;

    #[test]
    fn kernels_terminate_single_core() {
        for w in [
            blackscholes(1, Scale::Test),
            bodytrack(1, Scale::Test),
            canneal(1, Scale::Test),
            fluidanimate(1, Scale::Test),
            freqmine(1, Scale::Test),
            streamcluster(1, Scale::Test),
        ] {
            let mut st = ArchState::new();
            let mut mem = MainMemory::new();
            st.run(&w.programs[0], &mut mem, 5_000_000)
                .unwrap_or_else(|| panic!("{} did not terminate", w.name));
        }
    }

    #[test]
    fn kernels_terminate_two_cores_interleaved() {
        for w in [
            blackscholes(2, Scale::Test),
            bodytrack(2, Scale::Test),
            canneal(2, Scale::Test),
            fluidanimate(2, Scale::Test),
            freqmine(2, Scale::Test),
            streamcluster(2, Scale::Test),
        ] {
            let mut mem = MainMemory::new();
            let mut harts: Vec<ArchState> = (0..2).map(|_| ArchState::new()).collect();
            let mut steps = 0u64;
            while !harts.iter().all(|h| h.halted()) {
                for (i, h) in harts.iter_mut().enumerate() {
                    h.step(&w.programs[i], &mut mem);
                }
                steps += 1;
                assert!(steps < 20_000_000, "{} deadlocked", w.name);
            }
        }
    }

    #[test]
    fn bodytrack_all_tasks_processed() {
        let w = bodytrack(1, Scale::Test);
        let mut st = ArchState::new();
        let mut mem = MainMemory::new();
        st.run(&w.programs[0], &mut mem, 5_000_000).expect("halts");
        let q = mem.read_word(wb_mem::Addr::new(layout::SHARED2 + 0x1000));
        assert!(q >= 32, "only {q} tasks pulled");
    }
}
