//! SPLASH-3 surrogate kernels.
//!
//! Each kernel reproduces the coherence-visible behaviour of its
//! namesake: sharing pattern, synchronization style, miss regime and —
//! critically for the commit-policy comparison of Figure 10 — the
//! *memory-level parallelism* of loop iterations: inner loops are written
//! as several independent load/compute strands, the way compiled
//! array code behaves, so a long-latency miss does not serialize the
//! whole window. They are *not* the original algorithms — see DESIGN.md.

use crate::codegen::{layout, make_workload, regs, Gen};
use crate::Scale;
use wb_isa::{AluOp, Reg, Workload};

/// Strand registers for 4-wide independent inner loops.
const A0: Reg = Reg(1);
const A1: Reg = Reg(2);
const A2: Reg = Reg(3);
const A3: Reg = Reg(4);
const V0: Reg = Reg(5);
const V1: Reg = Reg(6);
const V2: Reg = Reg(7);
const V3: Reg = Reg(8);
const ACC: Reg = Reg(9);
const BASE: Reg = Reg(10);
const TMP: Reg = Reg(11);
const TMP2: Reg = Reg(12);
/// Warm (always-cached) private base pointer.
const WARM: Reg = Reg(16);

/// The hit-under-miss idiom of Section 2: one read of a *contended
/// shared* word (often a miss — the line is re-written by other cores)
/// followed in program order by three reads of *warm private* words
/// (near-certain hits). The younger hits perform while the older miss is
/// outstanding, becoming M-speculative — exactly the loads whose commit
/// the paper's mechanism unblocks. `WARM` must hold the private base.
fn mixed_burst(g: &mut Gen, shared_base: Reg, off: i64, warm_off: i64) {
    g.p.load(A0, shared_base, off);
    g.p.alu(AluOp::Add, V0, V0, A0);
    let strands = [(A1, V1), (A2, V2), (A3, V3)];
    for (i, (a, v)) in strands.iter().enumerate() {
        g.p.load(*a, WARM, (warm_off + 8 * i as i64) % 2040);
        g.p.alu(AluOp::Add, *v, *v, *a);
    }
}

/// FFT-like: all-to-all butterfly exchange. Each phase reads the
/// partner's segment with independent strided loads, combines, writes
/// the own segment, and barriers. Heavy read-sharing of freshly written
/// lines; high MLP.
pub fn fft(cores: usize, scale: Scale) -> Workload {
    let seg_words: i64 = 64;
    let phases = 2 * scale.factor();
    make_workload("fft", cores, |core| {
        let mut g = Gen::new(core, cores, 0x0f0f + core as u64);
        let myseg = layout::SHARED + core as u64 * seg_words as u64 * 8;
        g.p.imm(WARM, layout::private(core));
        for v in [V0, V1, V2, V3] {
            g.p.imm(v, core as u64 + 1);
        }
        g.loop_n(regs::LOOP0, phases, |g| {
            // partner segment base: rotate by loop counter.
            let mask = (cores.next_power_of_two() - 1) as u64;
            g.p.alu(AluOp::Add, TMP, regs::CORE_ID, regs::LOOP0);
            g.p.alui(AluOp::Add, TMP, TMP, 1);
            g.p.alui(AluOp::And, TMP, TMP, mask);
            g.p.alui(AluOp::Mul, TMP, TMP, seg_words as u64 * 8);
            g.p.alui(AluOp::Add, BASE, TMP, layout::SHARED);
            // Read the partner segment: 4 shared reads, each overlapped
            // with 3 warm private reads (hit-under-miss).
            for b in 0..16i64 {
                mixed_burst(g, BASE, b * 4 * 8, b * 24);
            }
            // Write back our own segment (independent stores).
            g.p.imm(BASE, myseg);
            for (i, v) in [V0, V1, V2, V3].iter().enumerate() {
                g.compute(*v, 2);
                g.p.store(*v, BASE, 8 * i as i64);
                g.p.store(*v, BASE, 8 * (i as i64 + 4));
            }
            g.barrier();
        });
        g.build()
    })
}

/// LU-like: a rotating pivot owner writes a shared row; everyone reads
/// it with independent loads and updates private blocks — producer-to-
/// all-consumers broadcast (the Table 1 pattern at scale).
pub fn lu(cores: usize, scale: Scale) -> Workload {
    let row_words: i64 = 32;
    let phases = 3 * scale.factor();
    make_workload("lu", cores, |core| {
        let mut g = Gen::new(core, cores, 0x10 + core as u64);
        let priv_base = layout::private(core);
        g.p.imm(WARM, priv_base + 0x4000);
        for v in [V0, V1, V2, V3] {
            g.p.imm(v, core as u64 + 1);
        }
        g.loop_n(regs::LOOP0, phases, |g| {
            let mask = (cores.next_power_of_two() - 1) as u64;
            g.p.alui(AluOp::And, TMP, regs::LOOP0, mask);
            let not_owner = g.p.new_label();
            g.p.branch(wb_isa::Cond::Ne, TMP, regs::CORE_ID, not_owner);
            // Owner writes the pivot row (independent stores).
            g.p.imm(BASE, layout::SHARED);
            for i in 0..row_words {
                g.p.alu(AluOp::Add, TMP2, V0, regs::LOOP0);
                g.p.store(TMP2, BASE, 8 * i);
            }
            g.p.bind(not_owner);
            g.barrier();
            // Everyone reads the pivot row, overlapping each shared read
            // with warm private reads.
            g.p.imm(BASE, layout::SHARED);
            for b in 0..12i64 {
                mixed_burst(g, BASE, (b % 4) * 8 * 8, b * 24);
            }
            g.p.imm(BASE, priv_base);
            for (i, v) in [V0, V1, V2, V3].iter().enumerate() {
                g.compute(*v, 2);
                g.p.store(*v, BASE, 8 * i as i64);
            }
            g.barrier();
        });
        g.build()
    })
}

/// Ocean-like: row-partitioned stencil sweeps; halo rows shared between
/// neighbours, 4 independent column strands per step, barrier per sweep.
pub fn ocean(cores: usize, scale: Scale) -> Workload {
    let row_words: i64 = 32;
    let sweeps = 2 * scale.factor();
    make_workload("ocean", cores, |core| {
        let mut g = Gen::new(core, cores, 0x0cea + core as u64);
        g.p.imm(WARM, layout::private(core));
        let row = |c: usize| layout::SHARED + (c as u64) * row_words as u64 * 8;
        let mine = row(core);
        let up = row(if core == 0 { cores - 1 } else { core - 1 });
        let down = row((core + 1) % cores);
        for v in [V0, V1, V2, V3] {
            g.p.imm(v, 17 * (core as u64 + 1));
        }
        g.loop_n(regs::LOOP0, sweeps, |g| {
            g.loop_n(regs::LOOP1, 12, |g| {
                // 4 independent stencil columns: up[i] + down[i] -> mine[i].
                g.p.alui(AluOp::Shl, TMP, regs::LOOP1, 6); // 8 words apart
                // Halo reads (contended) overlapped with interior reads
                // (warm private).
                g.p.imm(BASE, up);
                g.p.alu(AluOp::Add, BASE, BASE, TMP);
                mixed_burst(g, BASE, 0, 0);
                g.p.imm(BASE, down);
                g.p.alu(AluOp::Add, BASE, BASE, TMP);
                mixed_burst(g, BASE, 0, 64);
                g.p.imm(BASE, mine);
                g.p.alu(AluOp::Add, BASE, BASE, TMP);
                for (i, v) in [V0, V1, V2, V3].iter().enumerate() {
                    g.compute(*v, 1);
                    g.p.store(*v, BASE, 8 * i as i64);
                }
            });
            g.barrier();
        });
        g.build()
    })
}

/// Radix-like: scatter writes to pseudo-random slots of a big shared
/// array plus fetch-add histogram updates. Write-heavy, migratory lines,
/// atomic contention; two independent scatter strands per LCG step.
pub fn radix(cores: usize, scale: Scale) -> Workload {
    let iters = 60 * scale.factor();
    make_workload("radix", cores, |core| {
        let mut g = Gen::new(core, cores, 0x5eed_0000 + core as u64 * 0x101);
        g.p.imm(V0, (core as u64) << 32);
        g.loop_n(regs::LOOP0, iters, |g| {
            g.lcg_next();
            // Two independent scatter targets from disjoint LCG bits.
            g.p.alui(AluOp::Shr, A0, regs::LCG, 33);
            g.p.alui(AluOp::And, A0, A0, 1023);
            g.p.alui(AluOp::Shl, A0, A0, 3);
            g.p.alui(AluOp::Add, A0, A0, layout::SHARED);
            g.p.alui(AluOp::Shr, A1, regs::LCG, 13);
            g.p.alui(AluOp::And, A1, A1, 1023);
            g.p.alui(AluOp::Shl, A1, A1, 3);
            g.p.alui(AluOp::Add, A1, A1, layout::SHARED);
            g.p.alui(AluOp::Add, V0, V0, 1);
            g.p.store(V0, A0, 0);
            g.p.alui(AluOp::Add, V0, V0, 1);
            g.p.store(V0, A1, 0);
            // Histogram bucket (one of 16 lines) via fetch-add, every
            // 4th iteration (atomics serialize the pipeline).
            g.p.alui(AluOp::And, TMP, regs::LOOP0, 3);
            let skip = g.p.new_label();
            g.p.branch(wb_isa::Cond::Ne, TMP, wb_isa::Reg::ZERO, skip);
            g.p.alui(AluOp::Shr, TMP, regs::LCG, 40);
            g.p.alui(AluOp::And, TMP, TMP, 15);
            g.p.alui(AluOp::Shl, TMP, TMP, 6);
            g.p.alui(AluOp::Add, A2, TMP, layout::SHARED2);
            g.p.amo_add(TMP, A2, 0, regs::ONE);
            g.p.bind(skip);
        });
        g.barrier();
        g.build()
    })
}

/// Barnes-like: pointer chasing over a shared linked structure — the
/// inherently *serial* kernel (low MLP by nature) — with two independent
/// chase chains and occasional fine-grained-lock updates.
pub fn barnes(cores: usize, scale: Scale) -> Workload {
    let nodes: u64 = 256;
    let iters = 30 * scale.factor();
    make_workload("barnes", cores, |core| {
        let mut g = Gen::new(core, cores, 0xba0 + core as u64 * 7);
        // Core 0 builds the linked structure: node i -> node (i*17+1)%n.
        if core == 0 {
            g.loop_n(regs::LOOP0, nodes, |g| {
                g.p.alui(AluOp::Mul, TMP, regs::LOOP0, 17);
                g.p.alui(AluOp::Add, TMP, TMP, 1);
                g.p.alui(AluOp::And, TMP, TMP, nodes - 1);
                g.p.alui(AluOp::Shl, TMP, TMP, 4);
                g.p.alui(AluOp::Add, TMP2, TMP, layout::SHARED);
                g.p.alui(AluOp::Shl, A0, regs::LOOP0, 4);
                g.p.alui(AluOp::Add, A0, A0, layout::SHARED);
                g.p.store(TMP2, A0, 0);
            });
        }
        g.barrier();
        // Two independent chases from different starting nodes.
        g.p.imm(A0, layout::SHARED + (core as u64 % nodes) * 16);
        g.p.imm(A1, layout::SHARED + ((core as u64 + nodes / 2) % nodes) * 16);
        g.p.imm(ACC, 0);
        g.loop_n(regs::LOOP0, iters, |g| {
            g.loop_n(regs::LOOP1, 6, |g| {
                g.p.load(A0, A0, 0);
                g.p.load(A1, A1, 0);
                g.compute(ACC, 1);
            });
            // Fine-grained lock keyed by the current node.
            g.p.alui(AluOp::Shr, TMP, A0, 4);
            g.p.alui(AluOp::And, TMP, TMP, 7);
            g.p.alui(AluOp::Shl, TMP, TMP, 6);
            g.p.alui(AluOp::Add, TMP, TMP, layout::LOCKS + 0xc00);
            g.lock(TMP);
            g.p.load(TMP2, A0, 8);
            g.p.alui(AluOp::Add, TMP2, TMP2, 1);
            g.p.store(TMP2, A0, 8);
            g.unlock(TMP);
        });
        g.build()
    })
}

/// Raytrace-like: read-only shared scene, dynamic load balancing via a
/// fetch-add task counter, 4 independent scene reads per bounce.
pub fn raytrace(cores: usize, scale: Scale) -> Workload {
    let iters = 40 * scale.factor();
    make_workload("raytrace", cores, |core| {
        let mut g = Gen::new(core, cores, 0x42a7 + core as u64);
        let task_ctr = layout::SHARED2 + 0x800;
        g.p.imm(ACC, 0);
        g.loop_n(regs::LOOP0, iters, |g| {
            g.p.imm(TMP, task_ctr);
            g.p.imm(TMP2, 4);
            g.p.amo_add(TMP2, TMP, 0, TMP2); // grab a batch of 4 tasks
            // 4 independent scene reads derived from the task id.
            let strands = [(A0, V0), (A1, V1), (A2, V2), (A3, V3)];
            for (i, (a, v)) in strands.iter().enumerate() {
                g.p.alui(AluOp::Add, *a, TMP2, i as u64 * 7 + 1);
                g.p.alui(AluOp::Mul, *a, *a, 0x9e3779b9);
                g.p.alui(AluOp::Shr, *a, *a, 20);
                g.p.alui(AluOp::And, *a, *a, 16383);
                g.p.alui(AluOp::Shl, *a, *a, 3);
                g.p.alui(AluOp::Add, *a, *a, layout::SHARED);
                g.p.load(*v, *a, 0);
            }
            for v in [V0, V1, V2, V3] {
                g.compute(v, 2);
                g.p.alu(AluOp::Add, ACC, ACC, v);
            }
            // Private result write.
            g.indexed_addr(TMP, layout::private(g.core()), regs::LOOP0, 512);
            g.p.store(ACC, TMP, 0);
        });
        g.build()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wb_isa::ArchState;
    use wb_mem::MainMemory;

    /// Single-core versions of every kernel must terminate on the
    /// interpreter (golden model) — this validates the generated control
    /// flow and sync primitives.
    #[test]
    fn kernels_terminate_single_core() {
        for w in [
            fft(1, Scale::Test),
            lu(1, Scale::Test),
            ocean(1, Scale::Test),
            radix(1, Scale::Test),
            barnes(1, Scale::Test),
            raytrace(1, Scale::Test),
        ] {
            let mut st = ArchState::new();
            let mut mem = MainMemory::new();
            st.run(&w.programs[0], &mut mem, 5_000_000)
                .unwrap_or_else(|| panic!("{} did not terminate", w.name));
        }
    }

    /// Multi-core versions must terminate under round-robin
    /// interpretation (checks barrier/lock codegen for deadlocks).
    #[test]
    fn kernels_terminate_two_cores_interleaved() {
        for w in [
            fft(2, Scale::Test),
            lu(2, Scale::Test),
            ocean(2, Scale::Test),
            radix(2, Scale::Test),
            barnes(2, Scale::Test),
            raytrace(2, Scale::Test),
        ] {
            let mut mem = MainMemory::new();
            let mut harts: Vec<ArchState> = (0..2).map(|_| ArchState::new()).collect();
            let mut steps = 0u64;
            while !harts.iter().all(|h| h.halted()) {
                for (i, h) in harts.iter_mut().enumerate() {
                    h.step(&w.programs[i], &mut mem);
                }
                steps += 1;
                assert!(steps < 20_000_000, "{} deadlocked", w.name);
            }
        }
    }

    #[test]
    fn radix_histogram_totals() {
        // Single core, Test scale: 60 iterations -> 60 fetch-adds spread
        // over 16 buckets; the bucket sum must equal the iteration count.
        let w = radix(1, Scale::Test);
        let mut st = ArchState::new();
        let mut mem = MainMemory::new();
        st.run(&w.programs[0], &mut mem, 5_000_000).expect("halts");
        let total: u64 =
            (0..16).map(|i| mem.read_word(wb_mem::Addr::new(layout::SHARED2 + i * 0x40))).sum();
        assert_eq!(total, 15, "one fetch-add per 4 iterations");
    }
}
