//! Wall-clock benches: one measurement per table/figure of the paper.
//!
//! These measure the *simulator's throughput* on the configurations each
//! figure sweeps; the figure data itself (cycles, rates, speedups) is
//! produced by the `src/bin/` binaries, which print the paper-shaped
//! rows. Both run on the in-tree [`wb_bench::timing`] harness, so
//! `cargo bench` exercises every experiment end to end and emits
//! `BENCH_figures.json` with the per-run simulator counters attached —
//! including the latency histograms (`cache_*_miss_cycles`,
//! `cache_lockdown_cycles`, `dir_wb_cycles`, `mesh_msg_cycles`) that
//! the merged system [`wb_kernel::Stats`] now carries.

use wb_bench::{eval_config, run_one, BenchGroup};
use wb_kernel::config::{CommitMode, CoreClass, SystemConfig};
use wb_workloads::{splash, Scale};
use writersblock::run_litmus;

/// Table 1/2/3 machinery: a full litmus campaign (simulate + oracle +
/// TSO check) per iteration.
fn bench_litmus_tables(g: &mut BenchGroup) {
    g.sample_size(10);
    for t in [wb_tso::litmus::mp(), wb_tso::litmus::mp_warm()] {
        g.bench(&format!("campaign/{}", t.name), || {
            let cfg = SystemConfig::new(CoreClass::Slm)
                .with_cores(2)
                .with_commit(CommitMode::OutOfOrderWb);
            run_litmus(&t, &cfg, 0..5, 300_000).expect("litmus")
        });
    }
    g.bench("table2_oracle", || {
        let t = wb_tso::litmus::mp();
        wb_tso::oracle::tso_outcomes(&t.workload, &t.observed).expect("oracle")
    });
}

/// Figure 8: OoO+WB runs per core class (the sweep axis of the figure).
fn bench_fig8(g: &mut BenchGroup) {
    g.sample_size(10);
    for class in CoreClass::ALL {
        g.bench_with_stats(&format!("fig8_fft_ooowb/{}", class.label()), || {
            let w = splash::fft(16, Scale::Test);
            run_one(&w, eval_config(class, CommitMode::OutOfOrderWb, false)).report.stats
        });
    }
}

/// Figure 9: base MESI vs WritersBlock protocol on in-order commit.
fn bench_fig9(g: &mut BenchGroup) {
    g.sample_size(10);
    for (label, wb) in [("mesi", false), ("writersblock", true)] {
        g.bench_with_stats(&format!("fig9_fft_inorder/{label}"), || {
            let w = splash::fft(16, Scale::Test);
            run_one(&w, eval_config(CoreClass::Slm, CommitMode::InOrder, wb)).report.stats
        });
    }
}

/// Figure 10: the three commit policies.
fn bench_fig10(g: &mut BenchGroup) {
    g.sample_size(10);
    for mode in [CommitMode::InOrder, CommitMode::OutOfOrder, CommitMode::OutOfOrderWb] {
        g.bench_with_stats(&format!("fig10_ocean/{}", mode.label()), || {
            let w = splash::ocean(16, Scale::Test);
            run_one(&w, eval_config(CoreClass::Slm, mode, false)).report.stats
        });
    }
}

fn main() {
    let mut g = BenchGroup::new("figures");
    bench_litmus_tables(&mut g);
    bench_fig8(&mut g);
    bench_fig9(&mut g);
    bench_fig10(&mut g);
    g.finish();
}
