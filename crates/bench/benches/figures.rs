//! Criterion benches: one measurement per table/figure of the paper.
//!
//! Criterion measures the *simulator's wall-clock throughput* on the
//! configurations each figure sweeps; the figure data itself (cycles,
//! rates, speedups) is produced by the `src/bin/` binaries, which print
//! the paper-shaped rows. Keeping both wired to the same `wb_bench`
//! harness means `cargo bench` exercises every experiment end to end.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wb_bench::{eval_config, run_one};
use wb_kernel::config::{CommitMode, CoreClass, SystemConfig};
use wb_workloads::{splash, Scale};
use writersblock::run_litmus;

/// Table 1/2/3 machinery: a full litmus campaign (simulate + oracle +
/// TSO check) per iteration.
fn bench_litmus_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables_litmus");
    g.sample_size(10);
    for t in [wb_tso::litmus::mp(), wb_tso::litmus::mp_warm()] {
        g.bench_function(BenchmarkId::new("campaign", t.name), |b| {
            b.iter(|| {
                let cfg = SystemConfig::new(CoreClass::Slm)
                    .with_cores(2)
                    .with_commit(CommitMode::OutOfOrderWb);
                run_litmus(&t, &cfg, 0..5, 300_000).expect("litmus")
            })
        });
    }
    g.bench_function("table2_oracle", |b| {
        let t = wb_tso::litmus::mp();
        b.iter(|| wb_tso::oracle::tso_outcomes(&t.workload, &t.observed).expect("oracle"))
    });
    g.finish();
}

/// Figure 8: OoO+WB runs per core class (the sweep axis of the figure).
fn bench_fig8(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_wb_rates");
    g.sample_size(10);
    for class in CoreClass::ALL {
        g.bench_function(BenchmarkId::new("fft_ooowb", class.label()), |b| {
            let w = splash::fft(16, Scale::Test);
            b.iter(|| run_one(&w, eval_config(class, CommitMode::OutOfOrderWb, false)))
        });
    }
    g.finish();
}

/// Figure 9: base MESI vs WritersBlock protocol on in-order commit.
fn bench_fig9(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_overheads");
    g.sample_size(10);
    for (label, wb) in [("mesi", false), ("writersblock", true)] {
        g.bench_function(BenchmarkId::new("fft_inorder", label), |b| {
            let w = splash::fft(16, Scale::Test);
            b.iter(|| run_one(&w, eval_config(CoreClass::Slm, CommitMode::InOrder, wb)))
        });
    }
    g.finish();
}

/// Figure 10: the three commit policies.
fn bench_fig10(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_commit_modes");
    g.sample_size(10);
    for mode in [CommitMode::InOrder, CommitMode::OutOfOrder, CommitMode::OutOfOrderWb] {
        g.bench_function(BenchmarkId::new("ocean", mode.label()), |b| {
            let w = splash::ocean(16, Scale::Test);
            b.iter(|| run_one(&w, eval_config(CoreClass::Slm, mode, false)))
        });
    }
    g.finish();
}

criterion_group!(figures, bench_litmus_tables, bench_fig8, bench_fig9, bench_fig10);
criterion_main!(figures);
