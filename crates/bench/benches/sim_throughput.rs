//! Simulator throughput: dense ticking vs the event-driven
//! cycle-skipping engine vs the activity-tracked sparse engine, and
//! serial vs parallel sweep execution.
//!
//! Emits `BENCH_sim_throughput.json`. Three families of entries:
//!
//! - `engine/<cell>/<dense|skip|sparse>` — wall-clock per full run of
//!   one cell under each engine, with the run's merged counters
//!   (including a synthetic `sim_cycles` = final cycle) attached, so
//!   simulated cycles per wall-second and the dense/skip/sparse
//!   speedups fall out of the JSON. All engines are cycle-exact
//!   (pinned by the `engine_equivalence` integration suite), so the
//!   speedup is free. The two 256-core scaling cells (`fft256`,
//!   `barrier256`) are where the sparse engine earns its keep: the
//!   machine is never globally quiescent, so skip barely helps, but
//!   most components are individually asleep on any given cycle.
//! - `sweep/fault_matrix/<n>threads` — the fault-torture matrix (every
//!   standard fault plan on the paper's WritersBlock OoO configuration)
//!   on 1 vs 4 worker threads through `wb_bench::sweep`.
//!
//! The quiescence-heavy cells are RTO-bound fault runs: lossy links
//! with a 12000-cycle retransmission timeout park the whole machine on
//! future deadlines, exactly the shape dense ticking wastes cycles on.
//! `fft16` is the busy-dominated control (barrier spins hit in cache
//! every cycle — nothing to skip, so it measures probe overhead).

use wb_bench::{sweep, BenchGroup, RUN_BUDGET};
use wb_isa::{AluOp, Program, Reg, Workload};
use wb_kernel::config::{CommitMode, CoreClass, EngineMode, ProtocolKind, SystemConfig};
use wb_kernel::fault::FaultPlan;
use wb_kernel::{SimRng, Stats};
use wb_workloads::{barrier_storm, splash, Scale};
use writersblock::System;

/// The torture random-program recipe (globally unique store values).
fn random_program(core: usize, rng: &mut SimRng, ops: usize, lines: &[u64]) -> Program {
    let mut p = Program::builder();
    let (addr_reg, val_reg, dst) = (Reg(1), Reg(2), Reg(3));
    let mut k: u64 = 1;
    for _ in 0..ops {
        let a = *rng.choose(lines).expect("non-empty");
        let word = rng.below(8) * 8;
        p.imm(addr_reg, a + word);
        match rng.below(10) {
            0..=4 => {
                p.load(dst, addr_reg, 0);
            }
            5..=8 => {
                p.imm(val_reg, ((core as u64) << 32) | k);
                k += 1;
                p.store(val_reg, addr_reg, 0);
            }
            _ => {
                p.imm(val_reg, ((core as u64) << 32) | k);
                k += 1;
                p.amo_swap(dst, addr_reg, 0, val_reg);
            }
        }
        if rng.chance(1, 4) {
            p.alui(AluOp::Add, Reg(4), Reg(4), 1);
        }
    }
    p.halt();
    p.build()
}

fn torture_workload(cores: usize, seed: u64, ops: usize) -> Workload {
    let lines: Vec<u64> = (0..6).map(|i| 0x1000 + i * 0x440).collect();
    let mut rng = SimRng::new(seed);
    let programs = (0..cores).map(|c| random_program(c, &mut rng, ops, &lines)).collect();
    Workload::new(format!("torture-{seed}"), programs)
}

/// Run `w` on `cfg` under `engine`; returns merged counters plus two
/// synthetic ones for throughput math: `sim_cycles` (final cycle) and
/// `engine_skipped_cycles` (cycles fast-forwarded, 0 under dense).
fn run_engine(engine: EngineMode, cfg: &SystemConfig, w: &Workload) -> Stats {
    let mut sys = System::new(cfg.clone().with_engine(engine), w);
    let out = sys.run(RUN_BUDGET);
    assert!(out.is_done(), "{}: {out}", w.name);
    let mut stats = sys.report().stats;
    stats.add("sim_cycles", sys.now());
    stats.add("engine_skipped_cycles", sys.skipped_cycles());
    stats
}

/// An RTO-bound cell: lossy links with a long fixed retransmission
/// timeout, so most of the simulated time is the machine parked on a
/// retransmission deadline. Cycle-exactness of exactly these cells is
/// pinned by `engine_equivalence::rto_bound_bench_cells_are_cycle_exact`.
fn rto_bound_cfg(protocol: ProtocolKind, mode: CommitMode, drop_1_in: u64) -> SystemConfig {
    let mut cfg = SystemConfig::new(CoreClass::Slm)
        .with_cores(4)
        .with_commit(mode)
        .with_protocol(protocol)
        .with_seed(7)
        .with_jitter(25)
        .with_fault(FaultPlan::drop_everywhere(1, drop_1_in))
        .without_event_log();
    cfg.network.link.rto_min = 12_000;
    cfg.network.link.rto_max = 12_000;
    cfg
}

fn bench_engines(g: &mut BenchGroup) {
    g.sample_size(10);
    let torture = torture_workload(4, 7, 30);
    let fft16 = splash::fft(16, Scale::Test);
    let cells: Vec<(&str, SystemConfig, &Workload)> = vec![
        // Headline: nothing polls while parked, so nearly every parked
        // cycle is skippable.
        ("rto_bound_mesi", rto_bound_cfg(ProtocolKind::BaseMesi, CommitMode::InOrder, 6), &torture),
        // The paper configuration under the same faults: SoS retry
        // polling keeps cores active through part of each RTO window,
        // so the win is smaller — skipping never skips observable work.
        (
            "rto_bound_wb",
            rto_bound_cfg(ProtocolKind::WritersBlock, CommitMode::OutOfOrderWb, 10),
            &torture,
        ),
        // Busy-dominated control: barrier spins hit in cache every
        // cycle, so there is almost nothing to skip and the probe
        // throttle must hold overhead near zero.
        (
            "fft16",
            SystemConfig::new(CoreClass::Hsw).with_commit(CommitMode::OutOfOrderWb).without_event_log(),
            &fft16,
        ),
    ];
    let engines = [
        ("dense", EngineMode::Dense),
        ("skip", EngineMode::Skip),
        ("sparse", EngineMode::Sparse),
    ];
    for (name, cfg, w) in &cells {
        for (label, engine) in engines {
            g.bench_with_stats(&format!("engine/{name}/{label}"), || run_engine(engine, cfg, w));
        }
    }
    // The two 256-core scaling anchors. One dense run of fft at this
    // size costs ~40 s of wall-clock, so these cells are single-sample
    // (the simulator is deterministic; repeats only re-measure the
    // allocator) — the scaling bin's serial mode remains the clean
    // source for ratios.
    g.sample_size(1);
    let fft256 = splash::fft(256, Scale::Test);
    let storm256 = barrier_storm(256, 1);
    let big = SystemConfig::new(CoreClass::Slm)
        .with_cores(256)
        .with_commit(CommitMode::OutOfOrderWb)
        .without_event_log();
    for (name, w) in [("fft256", &fft256), ("barrier256", &storm256)] {
        for (label, engine) in engines {
            g.bench_with_stats(&format!("engine/{name}/{label}"), || run_engine(engine, &big, w));
        }
    }
}

/// The full fault-plan matrix on the paper's configuration, as one
/// sweep: serial baseline vs 4 worker threads. Results are asserted
/// identical, so the scaling number comes with a determinism proof.
fn bench_sweep_scaling(g: &mut BenchGroup) {
    g.sample_size(5);
    let jobs: Vec<(FaultPlan, u64)> = FaultPlan::matrix()
        .into_iter()
        .flat_map(|p| (0..4u64).map(move |s| (p.clone(), s)))
        .collect();
    let run_cell = |(plan, seed): (FaultPlan, u64)| -> u64 {
        let w = torture_workload(4, 7 + seed, 20);
        let cfg = SystemConfig::new(CoreClass::Slm)
            .with_cores(4)
            .with_commit(CommitMode::OutOfOrderWb)
            .with_protocol(ProtocolKind::WritersBlock)
            .with_seed(7 + seed)
            .with_jitter(25)
            .with_fault(plan)
            .with_engine(EngineMode::Skip)
            .without_event_log();
        let mut sys = System::new(cfg, &w);
        let out = sys.run(RUN_BUDGET);
        assert!(out.is_done(), "{out}");
        sys.now()
    };
    let mut outputs: Vec<Vec<u64>> = Vec::new();
    for threads in [1usize, 4] {
        g.bench(&format!("sweep/fault_matrix/{threads}threads"), || {
            let r = sweep::run_on(threads, jobs.clone(), run_cell);
            outputs.push(r.clone());
            r
        });
    }
    let first = &outputs[0];
    assert!(
        outputs.iter().all(|o| o == first),
        "sweep output depends on thread count — determinism broken"
    );
}

fn main() {
    let mut g = BenchGroup::new("sim_throughput");
    bench_engines(&mut g);
    bench_sweep_scaling(&mut g);
    g.finish();
}
