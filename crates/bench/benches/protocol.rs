//! Micro-benches of the simulator's substrates: mesh throughput,
//! TSO checker, and the operational oracle — on the in-tree
//! [`wb_bench::timing`] harness (emits `BENCH_protocol.json`).

use wb_bench::BenchGroup;
use wb_kernel::NodeId;
use wb_mem::Addr;
use wb_mesh::{Mesh, MeshMsg, VNet};
use wb_tso::{ExecutionLog, MemEvent, MemOp, TsoChecker};

fn bench_mesh(g: &mut BenchGroup) {
    // `bench_with_stats` embeds the mesh counters — including the
    // `mesh_msg_cycles` latency histogram — in `BENCH_protocol.json`.
    g.bench_with_stats("mesh_1k_messages", || {
        let mut m: Mesh<u32> = Mesh::new(4, 4, 16, 6, 0, 1);
        for i in 0..1000u32 {
            m.send(
                (i / 16) as u64,
                MeshMsg {
                    src: NodeId((i % 16) as u16),
                    dst: NodeId(((i * 7) % 16) as u16),
                    vnet: VNet::Request,
                    flits: 1 + (i % 5),
                    payload: i,
                },
            );
        }
        let mut delivered = 0;
        for now in 0..5000u64 {
            m.tick(now);
            for n in 0..16 {
                delivered += m.drain_arrived(NodeId(n)).len();
            }
            if delivered == 1000 {
                break;
            }
        }
        assert_eq!(delivered, 1000);
        m.stats().clone()
    });
}

fn bench_checker(g: &mut BenchGroup) {
    // A synthetic 4-core log with unique store values.
    let mut log = ExecutionLog::new();
    let mut value = 1u64;
    for core in 0..4usize {
        for i in 0..200u64 {
            let addr = Addr::new(0x1000 + 8 * (i % 16));
            if i % 3 == 0 {
                log.push(MemEvent {
                    core,
                    seq: i,
                    addr,
                    op: MemOp::Store { value, performed_at: (core as u64) * 10_000 + i * 10 },
                });
                value += 1;
            } else {
                log.push(MemEvent { core, seq: i, addr, op: MemOp::Load { value: 0 } });
            }
        }
    }
    g.bench("tso_checker_800_events", || {
        // The loads read 0 (init), which is legal only if no store of 0
        // exists; the checker runs fully regardless of verdict.
        let _ = TsoChecker::new(&log).check();
    });
}

fn bench_oracle(g: &mut BenchGroup) {
    g.bench("oracle_iriw", || {
        let t = wb_tso::litmus::iriw();
        wb_tso::oracle::tso_outcomes(&t.workload, &t.observed).expect("oracle")
    });
}

fn main() {
    let mut g = BenchGroup::new("protocol");
    bench_mesh(&mut g);
    bench_checker(&mut g);
    bench_oracle(&mut g);
    g.finish();
}
