//! Criterion micro-benches of the simulator's substrates: mesh
//! throughput, directory transaction processing, TSO checker, and the
//! operational oracle.

use criterion::{criterion_group, criterion_main, Criterion};
use wb_kernel::NodeId;
use wb_mem::Addr;
use wb_mesh::{Mesh, MeshMsg, VNet};
use wb_tso::{ExecutionLog, MemEvent, MemOp, TsoChecker};

fn bench_mesh(c: &mut Criterion) {
    c.bench_function("mesh_1k_messages", |b| {
        b.iter(|| {
            let mut m: Mesh<u32> = Mesh::new(4, 4, 16, 6, 0, 1);
            for i in 0..1000u32 {
                m.send(
                    (i / 16) as u64,
                    MeshMsg {
                        src: NodeId((i % 16) as u16),
                        dst: NodeId(((i * 7) % 16) as u16),
                        vnet: VNet::Request,
                        flits: 1 + (i % 5),
                        payload: i,
                    },
                );
            }
            let mut delivered = 0;
            for now in 0..5000u64 {
                m.tick(now);
                for n in 0..16 {
                    delivered += m.drain_arrived(NodeId(n)).len();
                }
                if delivered == 1000 {
                    break;
                }
            }
            assert_eq!(delivered, 1000);
        })
    });
}

fn bench_checker(c: &mut Criterion) {
    // A synthetic 4-core log with unique store values.
    let mut log = ExecutionLog::new();
    let mut value = 1u64;
    for core in 0..4usize {
        for i in 0..200u64 {
            let addr = Addr::new(0x1000 + 8 * (i % 16));
            if i % 3 == 0 {
                log.push(MemEvent {
                    core,
                    seq: i,
                    addr,
                    op: MemOp::Store { value, performed_at: (core as u64) * 10_000 + i * 10 },
                });
                value += 1;
            } else {
                log.push(MemEvent { core, seq: i, addr, op: MemOp::Load { value: 0 } });
            }
        }
    }
    // Make every load read the initial value so the log is consistent.
    c.bench_function("tso_checker_800_events", |b| {
        b.iter(|| {
            // The loads read 0 (init), which is legal only if no store of 0
            // exists; the checker runs fully regardless of verdict.
            let _ = TsoChecker::new(&log).check();
        })
    });
}

fn bench_oracle(c: &mut Criterion) {
    c.bench_function("oracle_iriw", |b| {
        let t = wb_tso::litmus::iriw();
        b.iter(|| wb_tso::oracle::tso_outcomes(&t.workload, &t.observed).expect("oracle"))
    });
}

criterion_group!(protocol, bench_mesh, bench_checker, bench_oracle);
criterion_main!(protocol);
