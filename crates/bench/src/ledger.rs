//! The perf-regression ledger: an append-only `results/ledger.jsonl`
//! of benchmark runs plus the noise-aware comparison that gates CI.
//!
//! Each run of the `ledger` binary appends one [`LedgerEntry`] per
//! bench group: the git revision, a digest of the exact configuration
//! swept, and a flat metric map (simulated cycles, key counters,
//! histogram percentiles, wall-clock medians). Before appending, the
//! run is compared against the most recent committed entry with the
//! *same* config digest — so a config change starts a fresh baseline
//! instead of tripping a false alarm.
//!
//! The comparison is deliberately two-tier:
//!
//! - **Deterministic metrics** (simulated cycles, counters,
//!   percentiles) are byte-reproducible on a given revision — the
//!   engine-equivalence suite pins that — so they gate with a tight
//!   threshold: any drift beyond [`DETERMINISTIC_THRESHOLD_PCT`] is a
//!   real behavioural change someone must own.
//! - **Wall-clock metrics** (`wall_` prefix, `_ns` / `_per_sec`
//!   suffixes) carry scheduler and allocator noise; they are reported
//!   as *advisory* and never fail the gate.
//!
//! Higher is worse for every gated metric the ledger records (cycles,
//! stall counters, latency percentiles); improvements are reported but
//! never fail.

use std::collections::BTreeMap;
use wb_kernel::json::{self, Json};

/// Gated (deterministic) metrics may grow this much before the verdict
/// flips to `REGRESSED`. Nonzero to tolerate metrics that round (e.g.
/// histogram percentiles snapping between log-2 bucket bounds).
pub const DETERMINISTIC_THRESHOLD_PCT: f64 = 2.0;

/// Advisory threshold for wall-clock metrics: exceeding it is flagged
/// in the table (`noisy?`) but never fails the run.
pub const WALL_CLOCK_THRESHOLD_PCT: f64 = 25.0;

/// One appended ledger record: a bench group measured at one revision
/// under one configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LedgerEntry {
    /// Git revision the run was taken at (short hash, or `unknown`).
    pub rev: String,
    /// Digest of the swept configuration (cells, budgets, engine
    /// modes). Entries only compare against baselines with an equal
    /// digest.
    pub config_digest: String,
    /// Bench group name (e.g. `ledger-smoke`).
    pub group: String,
    /// Flat metric map. Keys sorted for stable JSON output.
    pub metrics: BTreeMap<String, u64>,
}

impl LedgerEntry {
    /// Render as a single JSONL line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut out = format!(
            "{{\"rev\":\"{}\",\"config_digest\":\"{}\",\"group\":\"{}\",\"metrics\":{{",
            self.rev, self.config_digest, self.group
        );
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{k}\":{v}"));
        }
        out.push_str("}}");
        out
    }

    /// Parse one JSONL line back into an entry (strict: every field
    /// required, metrics must be non-negative integers).
    pub fn parse_line(line: &str) -> Result<LedgerEntry, String> {
        let doc = json::parse(line)?;
        let field = |k: &str| -> Result<String, String> {
            doc.get(k)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("ledger line missing string field {k:?}"))
        };
        let mut metrics = BTreeMap::new();
        for (k, v) in doc
            .get("metrics")
            .and_then(Json::as_obj)
            .ok_or_else(|| "ledger line missing metrics object".to_owned())?
        {
            let n = v.as_u64().ok_or_else(|| format!("metric {k:?} is not a u64"))?;
            metrics.insert(k.clone(), n);
        }
        Ok(LedgerEntry {
            rev: field("rev")?,
            config_digest: field("config_digest")?,
            group: field("group")?,
            metrics,
        })
    }
}

/// Parse a whole ledger file (blank lines ignored), oldest first.
pub fn parse_ledger(src: &str) -> Result<Vec<LedgerEntry>, String> {
    src.lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(i, l)| LedgerEntry::parse_line(l).map_err(|e| format!("line {}: {e}", i + 1)))
        .collect()
}

/// The newest entry matching `group` and `config_digest`, if any — the
/// baseline a fresh run compares against.
pub fn baseline_for<'a>(
    entries: &'a [LedgerEntry],
    group: &str,
    config_digest: &str,
) -> Option<&'a LedgerEntry> {
    entries.iter().rev().find(|e| e.group == group && e.config_digest == config_digest)
}

/// Per-metric verdict of one baseline/current comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Metric name.
    pub metric: String,
    /// Baseline value.
    pub base: u64,
    /// Current value.
    pub cur: u64,
    /// Relative change in percent (positive = grew = worse).
    pub delta_pct: f64,
    /// Threshold applied to this metric.
    pub threshold_pct: f64,
    /// Whether this metric can fail the gate (deterministic metrics
    /// gate; wall-clock metrics are advisory).
    pub gated: bool,
    /// `true` when a gated metric exceeded its threshold.
    pub regressed: bool,
}

impl Comparison {
    /// Short verdict string for the table.
    pub fn verdict(&self) -> &'static str {
        if self.regressed {
            "REGRESSED"
        } else if !self.gated && self.delta_pct.abs() > self.threshold_pct {
            "noisy?"
        } else if self.delta_pct < -self.threshold_pct {
            "improved"
        } else {
            "ok"
        }
    }
}

/// Is `metric` wall-clock (noisy, advisory) rather than deterministic?
pub fn is_wall_clock(metric: &str) -> bool {
    metric.starts_with("wall_")
        || metric.contains("_wall_")
        || metric.ends_with("_ns")
        || metric.ends_with("_per_sec")
}

/// Compare `cur` against `base` metric by metric. Metrics present on
/// only one side are skipped (a new metric has no baseline; a removed
/// one has no current value) — renames therefore reset their history.
pub fn compare(base: &LedgerEntry, cur: &LedgerEntry) -> Vec<Comparison> {
    let mut out = Vec::new();
    for (k, &b) in &base.metrics {
        let Some(&c) = cur.metrics.get(k) else { continue };
        let delta_pct = if b == 0 {
            if c == 0 {
                0.0
            } else {
                100.0
            }
        } else {
            (c as f64 - b as f64) * 100.0 / b as f64
        };
        let gated = !is_wall_clock(k);
        let threshold_pct =
            if gated { DETERMINISTIC_THRESHOLD_PCT } else { WALL_CLOCK_THRESHOLD_PCT };
        out.push(Comparison {
            metric: k.clone(),
            base: b,
            cur: c,
            delta_pct,
            threshold_pct,
            gated,
            regressed: gated && delta_pct > threshold_pct,
        });
    }
    out
}

/// Did any gated metric regress?
pub fn has_regression(comparisons: &[Comparison]) -> bool {
    comparisons.iter().any(|c| c.regressed)
}

/// Fixed-width verdict table, one row per metric.
pub fn render_comparison(base_rev: &str, cur_rev: &str, comparisons: &[Comparison]) -> String {
    let mut out = format!("== ledger: {cur_rev} vs baseline {base_rev} ==\n");
    out.push_str(&format!(
        "{:<36} {:>14} {:>14} {:>9} {:>7}  verdict\n",
        "metric", "base", "current", "delta%", "gate%"
    ));
    for c in comparisons {
        out.push_str(&format!(
            "{:<36} {:>14} {:>14} {:>+9.2} {:>7}  {}\n",
            c.metric,
            c.base,
            c.cur,
            c.delta_pct,
            if c.gated { format!("{:.1}", c.threshold_pct) } else { "adv".to_owned() },
            c.verdict()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(rev: &str, metrics: &[(&str, u64)]) -> LedgerEntry {
        LedgerEntry {
            rev: rev.to_owned(),
            config_digest: "cfg0".to_owned(),
            group: "g".to_owned(),
            metrics: metrics.iter().map(|(k, v)| ((*k).to_owned(), *v)).collect(),
        }
    }

    #[test]
    fn json_line_round_trips() {
        let e = entry("abc123", &[("mp_sim_cycles", 1234), ("mp_wall_ns", 99)]);
        let line = e.to_json_line();
        assert_eq!(LedgerEntry::parse_line(&line).expect("parse"), e);
        // And the emitted line is strict JSON by the in-tree parser.
        json::parse(&line).expect("valid JSON");
    }

    #[test]
    fn ledger_file_round_trips_and_rejects_garbage() {
        let a = entry("a", &[("x", 1)]);
        let b = entry("b", &[("x", 2)]);
        let file = format!("{}\n{}\n\n", a.to_json_line(), b.to_json_line());
        let parsed = parse_ledger(&file).expect("parse");
        assert_eq!(parsed, vec![a.clone(), b.clone()]);
        assert!(parse_ledger("not json\n").is_err());
        assert!(baseline_for(&parsed, "g", "cfg0") == Some(&b));
        assert!(baseline_for(&parsed, "g", "other").is_none());
    }

    #[test]
    fn self_comparison_is_clean() {
        let e = entry("same", &[("cycles", 5000), ("wall_ns", 777)]);
        let cmp = compare(&e, &e);
        assert_eq!(cmp.len(), 2);
        assert!(!has_regression(&cmp));
        assert!(cmp.iter().all(|c| c.delta_pct == 0.0 && c.verdict() == "ok"));
    }

    #[test]
    fn synthetic_twenty_percent_slowdown_gates() {
        // The acceptance scenario: a 20% jump in a deterministic metric
        // must exit nonzero; the same jump in wall-clock must not.
        let base = entry("old", &[("fft_sim_cycles", 1000), ("fft_wall_ns", 1000)]);
        let cur = entry("new", &[("fft_sim_cycles", 1200), ("fft_wall_ns", 1200)]);
        let cmp = compare(&base, &cur);
        assert!(has_regression(&cmp));
        let cycles = cmp.iter().find(|c| c.metric == "fft_sim_cycles").expect("cycles row");
        assert!(cycles.regressed && cycles.gated);
        assert_eq!(cycles.verdict(), "REGRESSED");
        let wall = cmp.iter().find(|c| c.metric == "fft_wall_ns").expect("wall row");
        assert!(!wall.regressed && !wall.gated);
        let table = render_comparison("old", "new", &cmp);
        assert!(table.contains("REGRESSED"), "{table}");
    }

    #[test]
    fn small_drift_and_improvements_pass() {
        let base = entry("old", &[("cycles", 10_000), ("retries", 50)]);
        let cur = entry("new", &[("cycles", 10_100), ("retries", 10)]);
        let cmp = compare(&base, &cur);
        assert!(!has_regression(&cmp), "1% drift and an improvement must pass");
        assert_eq!(
            cmp.iter().find(|c| c.metric == "retries").expect("retries").verdict(),
            "improved"
        );
    }

    #[test]
    fn disjoint_metrics_are_skipped_and_zero_base_guarded() {
        let base = entry("old", &[("gone", 5), ("zero", 0)]);
        let cur = entry("new", &[("fresh", 9), ("zero", 3)]);
        let cmp = compare(&base, &cur);
        assert_eq!(cmp.len(), 1, "only the shared metric compares");
        assert_eq!(cmp[0].metric, "zero");
        assert!(cmp[0].regressed, "0 -> 3 counts as 100% growth");
    }

    #[test]
    fn wall_clock_classifier() {
        assert!(is_wall_clock("wall_ns"));
        assert!(is_wall_clock("fft_wall_ns"));
        assert!(is_wall_clock("sim_cycles_per_sec"));
        assert!(!is_wall_clock("sim_cycles"));
        assert!(!is_wall_clock("mesh_msg_p99"));
    }
}
