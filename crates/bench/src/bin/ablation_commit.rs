//! Ablation: commit width and commit depth (Section 4.1 discusses the
//! Bell-Lipasti design space; the paper uses depth = ROB size).

use wb_bench::{eval_config, geomean, run_one};
use wb_kernel::config::{CommitMode, CoreClass};
use wb_workloads::{suite, Scale};

fn main() {
    let scale =
        if std::env::args().any(|a| a == "--small") { Scale::Small } else { Scale::Test };
    let mut base = Vec::new();
    for w in suite(16, scale) {
        base.push(run_one(&w, eval_config(CoreClass::Slm, CommitMode::InOrder, false)).report.cycles);
    }
    println!("Commit-depth sweep (OoO+WB, SLM-class, width 4), speedup over in-order:\n");
    for depth in [1usize, 4, 8, 16, 32] {
        let mut speedups = Vec::new();
        for (i, w) in suite(16, scale).into_iter().enumerate() {
            let mut cfg = eval_config(CoreClass::Slm, CommitMode::OutOfOrderWb, false);
            cfg.core.commit_depth = depth;
            let r = run_one(&w, cfg);
            speedups.push(base[i] as f64 / r.report.cycles as f64);
        }
        println!("depth={depth:<3} geomean speedup {:+.2}%", (geomean(&speedups) - 1.0) * 100.0);
    }
    println!("\nWrite-permission prefetch timing (OoO+WB):\n");
    for at_resolve in [false, true] {
        let mut speedups = Vec::new();
        for (i, w) in suite(16, scale).into_iter().enumerate() {
            let mut cfg = eval_config(CoreClass::Slm, CommitMode::OutOfOrderWb, false);
            cfg.core.write_prefetch_at_resolve = at_resolve;
            let r = run_one(&w, cfg);
            speedups.push(base[i] as f64 / r.report.cycles as f64);
        }
        println!(
            "{:<26} geomean speedup {:+.2}%",
            if at_resolve { "prefetch at addr-resolve" } else { "prefetch at SB entry" },
            (geomean(&speedups) - 1.0) * 100.0
        );
    }

    println!("\nCommit-width sweep (depth = ROB):\n");
    for width in [1usize, 2, 4, 8] {
        let mut speedups = Vec::new();
        for (i, w) in suite(16, scale).into_iter().enumerate() {
            let mut cfg = eval_config(CoreClass::Slm, CommitMode::OutOfOrderWb, false);
            cfg.core.width = width;
            let r = run_one(&w, cfg);
            speedups.push(base[i] as f64 / r.report.cycles as f64);
        }
        println!("width={width:<3} geomean speedup {:+.2}%", (geomean(&speedups) - 1.0) * 100.0);
    }
}
