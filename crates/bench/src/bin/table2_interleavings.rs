//! Table 2: the legal TSO interleavings of the Table 1 example.
//!
//! The operational TSO oracle exhaustively enumerates the outcome set of
//! the message-passing program: exactly {old,old}, {old,new}, {new,new}.
//! The illegal interleaving ⑥ ({new, old}) is absent. The simulator's
//! observed outcomes (200 seeds, OoO+WB) are then shown to be a subset.

use std::collections::BTreeMap;
use wb_bench::sweep;
use wb_kernel::config::{CommitMode, CoreClass, SystemConfig};
use wb_tso::oracle::tso_outcomes;
use writersblock::run_litmus;

fn name_of(o: &[u64]) -> &'static str {
    match (o[0], o[1]) {
        (0, 0) => "{old, old}  (interleavings 1,2,4 reordered / 1)",
        (0, 1) => "{old, new}  (interleavings 2,3,4)",
        (1, 1) => "{new, new}  (interleaving 5)",
        (1, 0) => "{new, old}  (interleaving 6 -- ILLEGAL)",
        _ => "other",
    }
}

fn main() {
    let t = wb_tso::litmus::mp();
    println!("Table 2: interleavings of (ld y; ld x) vs (st x; st y)\n");
    for row in wb_tso::interleavings::table2() {
        let order: Vec<String> = row.order.iter().map(|o| o.to_string()).collect();
        println!(
            "  ({}) {:<11} {}  {}",
            row.index,
            format!("{{{}}}", row.label()),
            order.join(" -> "),
            if row.legal { "" } else { "  <- ILLEGAL: ld y cycles to ld x" }
        );
    }
    println!();
    let legal = tso_outcomes(&t.workload, &t.observed).expect("oracle");
    println!("operational-oracle legal set ({} outcomes):", legal.len());
    for o in &legal {
        println!("  (ra, rb) = {o:?}  {}", name_of(o));
    }
    assert!(!legal.contains(&vec![1, 0]), "oracle must exclude interleaving 6");
    println!("  (ra, rb) = [1, 0]  {}   -- correctly absent\n", name_of(&[1, 0]));

    let cfg = SystemConfig::new(CoreClass::Slm)
        .with_cores(2)
        .with_commit(CommitMode::OutOfOrderWb);
    // 200 seeds in parallel chunks; per-seed runs are independent and
    // deterministic, and the chunks come back in input order, so the
    // merged histogram is identical to the serial campaign's.
    let chunks: Vec<std::ops::Range<u64>> = (0..8u64).map(|i| i * 25..(i + 1) * 25).collect();
    let partials = sweep::run(chunks, |seeds| run_litmus(&t, &cfg, seeds, 500_000));
    let mut outcomes: BTreeMap<Vec<u64>, usize> = BTreeMap::new();
    let mut runs = 0;
    for partial in partials {
        let partial = partial.expect("litmus campaign");
        runs += partial.runs;
        for (o, n) in partial.outcomes {
            *outcomes.entry(o).or_insert(0) += n;
        }
    }
    assert_eq!(runs, 200);
    println!("simulator (OoO+WB, 200 seeds) observed:");
    for (o, n) in &outcomes {
        assert!(legal.contains(o), "observed outcome {o:?} not TSO-legal!");
        println!("  (ra, rb) = {o:?}  x{n}");
    }
    println!("\nobserved ⊆ legal: Table 2 reproduced");
}
