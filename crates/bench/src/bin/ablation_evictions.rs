//! Ablation: silent vs. non-silent evictions of shared lines (Section
//! 3.8). The paper chose silent shared evictions for its baseline,
//! citing ~9.6% lower traffic. This reproduces the traffic comparison.

use wb_bench::{eval_config, geomean, run_one};
use wb_kernel::config::{CommitMode, CoreClass};
use wb_workloads::{suite, Scale};

fn main() {
    let scale =
        if std::env::args().any(|a| a == "--small") { Scale::Small } else { Scale::Test };
    println!("Eviction policy ablation (in-order commit, base MESI).");
    println!("The private caches are shrunk (L2 = 2 KiB) so shared lines actually evict\n");
    println!("{:<14} {:>12} {:>12} {:>9}", "bench", "silent", "non-silent", "traffic");
    let mut ratios = Vec::new();
    for w in suite(16, scale) {
        let mut cfg = eval_config(CoreClass::Slm, CommitMode::InOrder, false);
        cfg.memory.l2_bytes = 2 * 1024;
        cfg.memory.l1_bytes = 1024;
        let silent = run_one(&w, cfg.clone());
        cfg.memory.silent_shared_evictions = false;
        let loud = run_one(&w, cfg);
        let ratio = loud.report.network_flits() as f64 / silent.report.network_flits().max(1) as f64;
        ratios.push(ratio);
        println!(
            "{:<14} {:>12} {:>12} {:>8.3}x",
            w.name,
            silent.report.network_flits(),
            loud.report.network_flits(),
            ratio
        );
    }
    println!(
        "\nnon-silent / silent traffic geomean: {:.3}x (paper: silent saves ~9.6%)",
        geomean(&ratios)
    );
}
