//! Machine-scaling sweep: 16 / 64 / 256 cores (4x4, 8x8, 16x16).
//!
//! The fig8/fig10 counterpart for machine size instead of core
//! aggressiveness: how the WritersBlock rates, Nack retry traffic and
//! directory-bank contention evolve as the machine grows, and what the
//! simulator itself sustains (simulated cycles per wall-second, dense
//! vs skip vs sparse) at each size.
//!
//! Two workloads anchor the sweep: `fft` (the barrier-heavy fig-8
//! flagship) and `barrier-storm` (nothing but serialized fetch-adds —
//! the worst case for the barrier counter's home bank). Each cell's
//! stats embed, besides the usual run counters:
//!
//! - `sim_cycles`, `wall_ns`, `sim_cycles_per_sec` — the throughput
//!   headline;
//! - the merged `dir_bank_occupancy` histogram plus per-bank re-keyed
//!   copies (`dir_bank007_occupancy`) and per-bank request counts
//!   (`dir_bank007_requests`), so bank imbalance is visible per size.
//!
//! Cells run on the parallel sweep runner; each cell times itself, so
//! with concurrent workers the wall numbers carry scheduler noise. Set
//! `WB_SCALING_SERIAL=1` for clean serial timing, `--smoke` for the
//! 64-core skip-only cell `scripts/verify.sh` gates on.

use wb_bench::sweep;
use wb_isa::Workload;
use wb_kernel::config::{CommitMode, CoreClass, EngineMode, SystemConfig};
use wb_kernel::Stats;
use wb_workloads::{barrier_storm, parsec, splash, Scale};
use writersblock::{RunOutcome, System};

const RUN_BUDGET: u64 = 200_000_000;
/// The `--full` kernels converge slower at 256 cores; cap them tighter
/// so a wedged cell fails fast instead of burning the whole budget.
const FULL_BUDGET: u64 = 400_000_000;
const MAX_BANKS: usize = wb_kernel::MAX_NODES * 2;

#[derive(Clone, Copy)]
struct Cell {
    workload: &'static str,
    cores: usize,
    engine: EngineMode,
    banks_per_node: usize,
    budget: u64,
}

struct CellResult {
    name: String,
    wall_ns: u128,
    stats: Stats,
}

fn workload_for(cell: Cell) -> Workload {
    match cell.workload {
        "fft" => splash::fft(cell.cores, Scale::Test),
        "barrier" => barrier_storm(cell.cores, 1),
        "radix" => splash::radix(cell.cores, Scale::Test),
        "stream" => parsec::streamcluster(cell.cores, Scale::Test),
        other => panic!("unknown scaling workload {other}"), // allow(panic): bench driver
    }
}

fn engine_label(e: EngineMode) -> &'static str {
    match e {
        EngineMode::Dense => "dense",
        EngineMode::Skip => "skip",
        EngineMode::SkipVerify => "skip-verify",
        EngineMode::Sparse => "sparse",
        EngineMode::SparseVerify => "sparse-verify",
    }
}

/// Run one cell and collect its annotated stats.
fn run_cell(cell: Cell, bank_keys: &BankKeys) -> CellResult {
    let w = workload_for(cell);
    let mut cfg = SystemConfig::new(CoreClass::Slm)
        .with_cores(cell.cores)
        .with_commit(CommitMode::OutOfOrderWb)
        .with_engine(cell.engine)
        .without_event_log();
    cfg.memory.dir_banks_per_node = cell.banks_per_node;
    let name = format!(
        "{}/c{:03}/b{}/{}",
        cell.workload,
        cell.cores,
        cell.banks_per_node,
        engine_label(cell.engine)
    );
    let t0 = std::time::Instant::now();
    let mut sys = System::new(cfg, &w);
    let outcome = sys.run(cell.budget);
    let wall_ns = t0.elapsed().as_nanos();
    assert_eq!(outcome, RunOutcome::Done, "{name} ended with {outcome} at cycle {}", sys.now());

    let mut stats = sys.report().stats;
    let cycles = sys.now();
    stats.set("sim_cycles", cycles);
    stats.set("wall_ns", wall_ns as u64);
    stats.set("sim_cycles_per_sec", (cycles as u128 * 1_000_000_000 / wall_ns.max(1)) as u64);
    stats.set("engine_skipped_cycles", sys.skipped_cycles());
    stats.set("engine_skip_windows", sys.skip_windows());
    stats.set("engine_visits", sys.engine_visits());
    for (bank, s) in sys.dir_stats() {
        let requests = s.get("dir_gets") + s.get("dir_getx");
        if requests > 0 {
            stats.set(bank_keys.requests[bank], requests);
        }
        if let Some(h) = s.hist("dir_bank_occupancy") {
            stats.merge_hist(bank_keys.occupancy[bank], h);
        }
    }
    CellResult { name, wall_ns, stats }
}

/// Per-bank counter names. `Stats` keys are `&'static str`, so the
/// names for every possible bank index are leaked once up front.
struct BankKeys {
    occupancy: Vec<&'static str>,
    requests: Vec<&'static str>,
}

impl BankKeys {
    fn new() -> Self {
        let leak = |s: String| -> &'static str { Box::leak(s.into_boxed_str()) };
        BankKeys {
            occupancy: (0..MAX_BANKS).map(|b| leak(format!("dir_bank{b:03}_occupancy"))).collect(),
            requests: (0..MAX_BANKS).map(|b| leak(format!("dir_bank{b:03}_requests"))).collect(),
        }
    }
}

/// `BENCH_scaling.json` in the `BenchGroup` schema (single-sample
/// cells: the simulator is deterministic, so repeat samples only
/// re-measure the allocator).
fn to_json(results: &[CellResult]) -> String {
    let mut out = String::from("{\"group\":\"scaling\",\"benches\":[");
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"median_ns\":{},\"mean_ns\":{},\"samples_ns\":[{}],\"stats\":{}}}",
            r.name,
            r.wall_ns,
            r.wall_ns,
            r.wall_ns,
            r.stats.to_json()
        ));
    }
    out.push_str("]}");
    out
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let full = std::env::args().any(|a| a == "--full");
    let cells: Vec<Cell> = if smoke {
        vec![Cell {
            workload: "fft",
            cores: 64,
            engine: EngineMode::Skip,
            banks_per_node: 2,
            budget: RUN_BUDGET,
        }]
    } else {
        let mut v = Vec::new();
        for workload in ["fft", "barrier"] {
            for cores in [16usize, 64, 256] {
                for engine in [EngineMode::Dense, EngineMode::Skip, EngineMode::Sparse] {
                    v.push(Cell { workload, cores, engine, banks_per_node: 1, budget: RUN_BUDGET });
                }
            }
        }
        // One sharded point: does splitting each home node into two
        // banks relieve the barrier line's port pressure at 256 cores?
        for engine in [EngineMode::Skip, EngineMode::Sparse] {
            v.push(Cell { workload: "barrier", cores: 256, engine, banks_per_node: 2, budget: RUN_BUDGET });
        }
        if full {
            // Two more kernel shapes: radix (all-to-all permutation
            // traffic) and streamcluster (read-mostly sharing with hot
            // medoid lines). Dense ticking at 256 cores costs minutes of
            // wall-clock for no extra information — the equivalence
            // suite already pins dense==skip==sparse — so the largest
            // size runs without the dense column.
            for workload in ["radix", "stream"] {
                for cores in [16usize, 64, 256] {
                    for engine in [EngineMode::Dense, EngineMode::Skip, EngineMode::Sparse] {
                        if cores == 256 && engine == EngineMode::Dense {
                            continue;
                        }
                        v.push(Cell { workload, cores, engine, banks_per_node: 1, budget: FULL_BUDGET });
                    }
                }
            }
        }
        v
    };

    let bank_keys = BankKeys::new();
    let serial = std::env::var("WB_SCALING_SERIAL").is_ok_and(|v| v == "1");
    let threads = if serial {
        1
    } else {
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4)
    };
    let results = sweep::run_on(threads, cells, |cell| run_cell(cell, &bank_keys));

    for r in &results {
        let s = &r.stats;
        eprintln!(
            "{:<28} {:>10} cycles {:>12} cyc/s  nack_retries={:<6} occ_p99={}",
            r.name,
            s.get("sim_cycles"),
            s.get("sim_cycles_per_sec"),
            s.get("dir_nack_retries"),
            s.hist("dir_bank_occupancy").map_or(0, |h| h.p99()),
        );
    }

    let json = to_json(&results);
    wb_kernel::json::parse(&json).unwrap_or_else(|e| panic!("scaling JSON invalid: {e}")); // allow(panic): bench driver
    let dir = std::env::var("WB_BENCH_DIR").unwrap_or_else(|_| ".".to_owned());
    let path = format!("{dir}/BENCH_scaling.json");
    std::fs::write(&path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}")); // allow(panic): bench driver
    eprintln!("wrote {path}");
}
