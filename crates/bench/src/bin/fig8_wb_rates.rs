//! Figure 8: how often the WritersBlock machinery actually fires.
//!
//! Top panel: write requests blocked in WritersBlock per thousand
//! committed stores. Bottom panel: uncacheable tear-off data responses
//! per thousand committed loads. Both per benchmark, for the SLM-, NHM-
//! and HSW-class cores (bigger LQs hold more lockdowns, so rates grow
//! with core aggressiveness — but stay well below 1 per kilo-op).

use wb_bench::{eval_config, render_table, run_one, sweep};
use wb_kernel::config::{CommitMode, CoreClass};
use wb_workloads::{suite, Scale};

fn main() {
    let scale =
        if std::env::args().any(|a| a == "--small") { Scale::Small } else { Scale::Test };

    let mut blocked_rows = Vec::new();
    let mut tearoff_rows = Vec::new();
    let mut totals = [(0.0, 0usize); 3];

    let jobs: Vec<(wb_isa::Workload, CoreClass)> = suite(16, scale)
        .into_iter()
        .flat_map(|w| CoreClass::ALL.into_iter().map(move |c| (w.clone(), c)))
        .collect();
    let results =
        sweep::run(jobs, |(w, class)| run_one(&w, eval_config(class, CommitMode::OutOfOrderWb, false)));
    for chunk in results.chunks(CoreClass::ALL.len()) {
        let mut blocked = Vec::new();
        let mut tearoff = Vec::new();
        for (i, r) in chunk.iter().enumerate() {
            let b = r.report.blocked_writes_per_kilostore();
            let t = r.report.uncacheable_reads_per_kiloload();
            blocked.push(format!("{b:.3}"));
            tearoff.push(format!("{t:.3}"));
            totals[i].0 += b;
            totals[i].1 += 1;
        }
        blocked_rows.push((chunk[0].bench.clone(), blocked));
        tearoff_rows.push((chunk[0].bench.clone(), tearoff));
    }

    let headers: Vec<&str> = CoreClass::ALL.iter().map(|c| c.label()).collect();
    println!(
        "{}",
        render_table(
            "Figure 8 (top): writes blocked in WritersBlock per kilo-store",
            &headers,
            &blocked_rows
        )
    );
    println!(
        "{}",
        render_table(
            "Figure 8 (bottom): uncacheable tear-off reads per kilo-load",
            &headers,
            &tearoff_rows
        )
    );
    for (i, class) in CoreClass::ALL.into_iter().enumerate() {
        println!(
            "{} mean blocked writes/kstore: {:.3} (paper: well under 1, growing with LQ size)",
            class.label(),
            totals[i].0 / totals[i].1 as f64
        );
    }
}
