//! Table 1: the message-passing litmus whose `{new, old}` outcome TSO
//! forbids.
//!
//! Runs the litmus (plus the hit-under-miss variant of Section 2) across
//! many seeds on all three commit modes. Every run is checked three
//! ways: it must complete (deadlock freedom), its outcome must not be
//! forbidden, and the memory-event log must pass the axiomatic TSO
//! checker. The outcome histogram shows the legal combinations of
//! Table 2 appearing — and only those.

use wb_kernel::config::{CommitMode, CoreClass, SystemConfig};
use writersblock::run_litmus;

fn main() {
    let seeds = 0..200u64;
    println!("Table 1 litmus (forbidden: ra==1 && rb==0), {} seeds per config\n", seeds.end);
    for t in [wb_tso::litmus::mp(), wb_tso::litmus::mp_warm()] {
        for mode in [CommitMode::InOrder, CommitMode::OutOfOrder, CommitMode::OutOfOrderWb] {
            let cfg = SystemConfig::new(CoreClass::Slm).with_cores(2).with_commit(mode);
            let report = run_litmus(&t, &cfg, seeds.clone(), 500_000)
                .unwrap_or_else(|e| panic!("{} {mode:?}: {e}", t.name));
            let hist: Vec<String> =
                report.outcomes.iter().map(|(o, n)| format!("{o:?}x{n}")).collect();
            println!("{:<8} {:<8} outcomes: {}", t.name, mode.label(), hist.join("  "));
        }
    }
    println!("\nforbidden outcome [1, 0] never observed; all runs TSO-checked");
}
