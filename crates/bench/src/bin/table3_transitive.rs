//! Table 3: transitive happens-before across three cores.
//!
//! `st x` (core 1) and `st y` (core 2) live on different cores but are
//! ordered by core 2's spin on `x`. Delaying `st x` through a lockdown
//! must transitively delay `st y` — the reader may still never observe
//! `{new, old}`.

use wb_kernel::config::{CommitMode, CoreClass, SystemConfig};
use writersblock::run_litmus;

fn main() {
    let t = wb_tso::litmus::mp_transitive();
    println!("Table 3: 3-core transitive message passing (forbidden: ra==1 && rb==0)\n");
    for mode in [CommitMode::InOrder, CommitMode::OutOfOrder, CommitMode::OutOfOrderWb] {
        let cfg = SystemConfig::new(CoreClass::Slm).with_cores(3).with_commit(mode);
        let report = run_litmus(&t, &cfg, 0..200, 1_000_000)
            .unwrap_or_else(|e| panic!("{mode:?}: {e}"));
        let hist: Vec<String> = report.outcomes.iter().map(|(o, n)| format!("{o:?}x{n}")).collect();
        println!("{:<8} outcomes: {}", mode.label(), hist.join("  "));
    }
    println!("\nforbidden outcome [1, 0] never observed across 600 checked runs");
}
