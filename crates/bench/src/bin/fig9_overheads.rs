//! Figure 9: WritersBlock protocol overheads on an in-order-commit core.
//!
//! The paper's claim: switching the coherence protocol from base MESI to
//! WritersBlock changes neither execution time nor network traffic
//! perceptibly when the core does not exploit it (in-order commit).
//! Top panel: normalized execution time; bottom: normalized traffic
//! (flits).

use wb_bench::{eval_config, geomean, render_table, run_one};
use wb_kernel::config::{CommitMode, CoreClass};
use wb_workloads::{suite, Scale};

fn main() {
    let scale =
        if std::env::args().any(|a| a == "--small") { Scale::Small } else { Scale::Test };

    let mut time_rows = Vec::new();
    let mut traffic_rows = Vec::new();
    let mut time_ratio = Vec::new();
    let mut traffic_ratio = Vec::new();

    for w in suite(16, scale) {
        let base = run_one(&w, eval_config(CoreClass::Slm, CommitMode::InOrder, false));
        let wb = run_one(&w, eval_config(CoreClass::Slm, CommitMode::InOrder, true));
        let t = wb.report.cycles as f64 / base.report.cycles as f64;
        let f = wb.report.network_flits() as f64 / base.report.network_flits().max(1) as f64;
        time_ratio.push(t);
        traffic_ratio.push(f);
        time_rows.push((w.name.clone(), vec![format!("{:.3}", 1.0), format!("{t:.3}")]));
        traffic_rows.push((w.name.clone(), vec![format!("{:.3}", 1.0), format!("{f:.3}")]));
    }

    println!(
        "{}",
        render_table(
            "Figure 9 (top): normalized execution time, in-order commit",
            &["MESI", "WritersBlock"],
            &time_rows
        )
    );
    println!(
        "{}",
        render_table(
            "Figure 9 (bottom): normalized network traffic (flits)",
            &["MESI", "WritersBlock"],
            &traffic_rows
        )
    );
    println!(
        "geomean: time {:+.2}%, traffic {:+.2}% (paper: imperceptible overhead)",
        (geomean(&time_ratio) - 1.0) * 100.0,
        (geomean(&traffic_ratio) - 1.0) * 100.0
    );
}
