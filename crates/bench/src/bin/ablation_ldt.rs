//! Ablation: LDT capacity sweep (the paper uses 32 entries).
//!
//! The lockdown table bounds how many M-speculative loads may be
//! committed out of order at once; when it fills, relaxed commit stops
//! (Section 4.2). This sweep shows performance saturating well below the
//! paper's 32 entries — the design point is conservative.

use wb_bench::{eval_config, geomean, run_one};
use wb_kernel::config::{CommitMode, CoreClass};
use wb_workloads::{suite, Scale};

fn main() {
    let scale =
        if std::env::args().any(|a| a == "--small") { Scale::Small } else { Scale::Test };
    println!("LDT capacity sweep, OoO+WB on SLM-class, speedup over in-order commit\n");
    // Baseline: in-order.
    let mut base = Vec::new();
    for w in suite(16, scale) {
        base.push(run_one(&w, eval_config(CoreClass::Slm, CommitMode::InOrder, false)).report.cycles);
    }
    for ldt in [1usize, 2, 4, 8, 16, 32, 64] {
        let mut speedups = Vec::new();
        let mut exports = 0u64;
        for (i, w) in suite(16, scale).into_iter().enumerate() {
            let mut cfg = eval_config(CoreClass::Slm, CommitMode::OutOfOrderWb, false);
            cfg.core.ldt_entries = ldt;
            let r = run_one(&w, cfg);
            speedups.push(base[i] as f64 / r.report.cycles as f64);
            exports += r.report.ooo_load_commits();
        }
        println!(
            "LDT={ldt:<3} geomean speedup {:+.2}%   ooo-committed loads {exports}",
            (geomean(&speedups) - 1.0) * 100.0
        );
    }
}
