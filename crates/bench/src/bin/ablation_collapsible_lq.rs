//! Ablation: collapsible vs. non-collapsible (FIFO) load queue
//! (Section 4.2 / footnote 8 of the paper).
//!
//! With a FIFO LQ, loads committed out of order keep occupying their
//! entry (holding their own lockdown, footnote 10) until they drain from
//! the head, so the *effective* LQ size is smaller — the paper prefers
//! the collapsible design for exactly this reason.

use wb_bench::{eval_config, geomean, run_one};
use wb_kernel::config::{CommitMode, CoreClass};
use wb_workloads::{suite, Scale};

fn main() {
    let scale =
        if std::env::args().any(|a| a == "--small") { Scale::Small } else { Scale::Test };
    println!("Collapsible vs FIFO LQ (OoO+WB, SLM-class), speedup over in-order:\n");
    let mut base = Vec::new();
    for w in suite(16, scale) {
        base.push(run_one(&w, eval_config(CoreClass::Slm, CommitMode::InOrder, false)).report.cycles);
    }
    for collapsible in [true, false] {
        let mut speedups = Vec::new();
        for (i, w) in suite(16, scale).into_iter().enumerate() {
            let mut cfg = eval_config(CoreClass::Slm, CommitMode::OutOfOrderWb, false);
            cfg.core.collapsible_lq = collapsible;
            let r = run_one(&w, cfg);
            speedups.push(base[i] as f64 / r.report.cycles as f64);
        }
        println!(
            "{:<22} geomean speedup {:+.2}%",
            if collapsible { "collapsible LQ (paper)" } else { "FIFO LQ" },
            (geomean(&speedups) - 1.0) * 100.0
        );
    }
    println!("\nThe collapsible LQ frees entries of OoO-committed loads (via the LDT),");
    println!("raising the effective LQ size — footnote 8's argument.");
}
