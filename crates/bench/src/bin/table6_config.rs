//! Table 6: the simulated system configuration.

use wb_bench::render_table;
use wb_kernel::config::{CoreClass, CoreConfig, MemoryConfig, NetworkConfig};

fn main() {
    let rows: Vec<(String, Vec<String>)> = vec![
        ("issue/commit".to_string(), CoreClass::ALL.iter().map(|c| CoreConfig::for_class(*c).width.to_string()).collect()),
        ("IQ entries".to_string(), CoreClass::ALL.iter().map(|c| CoreConfig::for_class(*c).iq_entries.to_string()).collect()),
        ("ROB entries".to_string(), CoreClass::ALL.iter().map(|c| CoreConfig::for_class(*c).rob_entries.to_string()).collect()),
        ("LQ entries".to_string(), CoreClass::ALL.iter().map(|c| CoreConfig::for_class(*c).lq_entries.to_string()).collect()),
        ("SQ/SB entries".to_string(), CoreClass::ALL.iter().map(|c| CoreConfig::for_class(*c).sq_entries.to_string()).collect()),
        ("LDT entries".to_string(), CoreClass::ALL.iter().map(|c| CoreConfig::for_class(*c).ldt_entries.to_string()).collect()),
    ];
    let headers: Vec<&str> = CoreClass::ALL.iter().map(|c| c.label()).collect();
    println!("{}", render_table("Table 6: processor", &headers, &rows));

    let m = MemoryConfig::default();
    let mem_rows = vec![
        ("L1".to_string(), vec![format!("{}KB/{}-way/{}cyc", m.l1_bytes / 1024, m.l1_ways, m.l1_hit_cycles)]),
        ("L2".to_string(), vec![format!("{}KB/{}-way/{}cyc", m.l2_bytes / 1024, m.l2_ways, m.l2_hit_cycles)]),
        ("L3 per bank".to_string(), vec![format!("{}MB/{}-way/{}cyc", m.l3_bank_bytes / (1024 * 1024), m.l3_ways, m.l3_hit_cycles)]),
        ("memory".to_string(), vec![format!("{} cycles", m.mem_cycles)]),
    ];
    println!("{}", render_table("Table 6: memory", &["value"], &mem_rows));

    let n = NetworkConfig::default();
    let net_rows = vec![
        ("topology".to_string(), vec![format!("{}x{} mesh, X-Y routing", n.mesh_width, n.mesh_height)]),
        ("msg size".to_string(), vec![format!("{} / {} flits", n.data_flits, n.control_flits)]),
        ("hop latency".to_string(), vec![format!("{} cycles", n.hop_cycles)]),
    ];
    println!("{}", render_table("Table 6: network", &["value"], &net_rows));
}
