//! Extension: early commit of loads (ECL) on an in-order-commit core —
//! the paper's Section 1 motivation (DEC Alpha 21164 stall-on-use, DeSC
//! decoupling). WritersBlock makes the irrevocably bound loads safe; this
//! binary measures what that buys an in-order-commit machine.

use wb_bench::{eval_config, geomean, run_one};
use wb_kernel::config::{CommitMode, CoreClass};
use wb_workloads::{suite, Scale};

fn main() {
    let scale =
        if std::env::args().any(|a| a == "--small") { Scale::Small } else { Scale::Test };
    println!("ECL extension (SLM-class, 16 cores): speedup over plain in-order commit\n");
    println!("{:<14} {:>9} {:>9} {:>8} {:>10}", "bench", "inorder", "ecl+wb", "speedup", "early-cmts");
    let mut speedups = Vec::new();
    for w in suite(16, scale) {
        let base = run_one(&w, eval_config(CoreClass::Slm, CommitMode::InOrder, false));
        let ecl = run_one(&w, eval_config(CoreClass::Slm, CommitMode::InOrderEcl, false));
        let sp = base.report.cycles as f64 / ecl.report.cycles as f64;
        speedups.push(sp);
        println!(
            "{:<14} {:>9} {:>9} {:>7.3}x {:>10}",
            w.name,
            base.report.cycles,
            ecl.report.cycles,
            sp,
            ecl.report.stats.get("core_ecl_loads_committed"),
        );
    }
    println!("\ngeomean speedup: {:+.2}%", (geomean(&speedups) - 1.0) * 100.0);
    println!("(the paper's OoO-commit result generalizes: early irrevocable binding of loads");
    println!("helps any core that would otherwise stall — Section 1's ECL/DeSC cases)");
}
