//! Ablation: "Option 1" of Section 3.4 — serving *cacheable* copies from
//! a WritersBlock directory entry and re-invalidating the newcomers.
//!
//! The paper rejects this option because readers spinning on the blocked
//! location force the directory into perpetual re-invalidation rounds,
//! starving the write. This binary constructs the scenario — a lockdown
//! over a pointer-chased (two dependent misses) load delays a write
//! while other cores spin-read the same line — and compares both
//! options across seeds.

use wb_isa::{AluOp, Cond, Program, Reg, Workload};
use wb_kernel::config::{CommitMode, CoreClass, SystemConfig};
use wb_mem::Addr;
use writersblock::System;

const X: u64 = 0x1000;
const Y: u64 = 0x2040;
const Z1: u64 = 0x3080; // start of the pointer chain ending at &y
const Z2: u64 = 0x4100;
const Z3: u64 = 0x5140;

/// Core 0 reorders `ld x` (warm hit, lockdown) over a pointer-chased
/// load that stays non-performed for four dependent miss latencies;
/// core 1 writes `x` then `y` after a delay; cores 2..n spin-read `x`.
fn workload(cores: usize, spin_iters: u64) -> Workload {
    let mut progs = Vec::new();

    let mut p0 = Program::builder();
    p0.imm(Reg(1), X).imm(Reg(2), Z1).imm(Reg(6), 1);
    p0.load(Reg(5), Reg(1), 0); // warm x (~memory latency)
    // Let the warm-up settle: a dependent chain of ~70 multiplies.
    for _ in 0..70 {
        p0.alui(AluOp::Mul, Reg(6), Reg(6), 1);
    }
    p0.load(Reg(9), Reg(2), 0); // chase: z1 -> z2 -> z3 -> &y (4 misses)
    p0.load(Reg(9), Reg(9), 0);
    p0.load(Reg(9), Reg(9), 0);
    p0.load(Reg(3), Reg(9), 0); // ld y, non-performed for ~4 miss latencies
    p0.load(Reg(4), Reg(1), 0); // ld x: warm hit; long-lived lockdown
    p0.halt();
    progs.push(p0.build());

    // The writer delays so its invalidation lands inside the window.
    let mut p1 = Program::builder();
    p1.imm(Reg(1), X).imm(Reg(2), Y).imm(Reg(3), 1).imm(Reg(6), 1);
    for _ in 0..110 {
        p1.alui(AluOp::Mul, Reg(6), Reg(6), 1);
    }
    p1.alu(AluOp::Add, Reg(3), Reg(3), Reg(6)); // data depends on the delay
    p1.store(Reg(3), Reg(1), 0).store(Reg(3), Reg(2), 0).halt();
    progs.push(p1.build());

    for _ in 2..cores {
        let mut p = Program::builder();
        p.imm(Reg(1), X).imm(Reg(2), 0).imm(Reg(3), spin_iters);
        let top = p.here();
        p.load(Reg(4), Reg(1), 0);
        p.alui(AluOp::Add, Reg(2), Reg(2), 1);
        p.branch(Cond::Lt, Reg(2), Reg(3), top);
        p.halt();
        progs.push(p.build());
    }
    Workload::new("option1_livelock", progs)
        .with_init(Addr::new(Z1), Z2)
        .with_init(Addr::new(Z2), Z3)
        .with_init(Addr::new(Z3), Y)
}

fn main() {
    let cores = 8;
    let seeds = 0..24u64;
    let w = workload(cores, 4_000);
    println!(
        "Option 1 vs Option 2 under a blocked write with {} spin-readers, {} seeds\n",
        cores - 2,
        seeds.end
    );
    for option1 in [false, true] {
        let (mut blocked_runs, mut cycles_sum, mut reinv, mut cacheable) = (0u64, 0u64, 0u64, 0u64);
        for seed in seeds.clone() {
            let mut cfg = SystemConfig::new(CoreClass::Slm)
                .with_cores(cores)
                .with_commit(CommitMode::OutOfOrderWb)
                .with_seed(seed)
                .with_jitter(20)
                .without_event_log();
            cfg.wb_cacheable_reads = option1;
            let mut sys = System::new(cfg, &w);
            let out = sys.run(3_000_000);
            let r = sys.report();
            if r.stats.get("dir_writes_blocked") > 0 {
                blocked_runs += 1;
                cycles_sum += sys.now();
            }
            reinv += r.stats.get("dir_option1_reinvalidations");
            cacheable += r.stats.get("dir_option1_cacheable_reads");
            assert!(out == writersblock::RunOutcome::Done, "seed {seed} option1={option1}: {out:?}");
        }
        let total = seeds.end;
        println!(
            "{:<42} blocked-write runs {blocked_runs:>2}/{total}, avg cycles of those {:>7}, cacheable WB reads {cacheable}, re-invalidations {reinv}",
            if option1 {
                "Option 1 (cacheable + re-invalidate):"
            } else {
                "Option 2 (tear-off, the paper's choice):"
            },
            cycles_sum.checked_div(blocked_runs).unwrap_or(0),
        );
    }
    println!("\nOption 1's re-invalidation rounds delay the blocked write while readers spin (Section 3.4);");
    println!("with unbounded spin loops this becomes livelock, which is why the paper chooses Option 2.");
}
