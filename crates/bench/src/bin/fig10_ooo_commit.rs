//! Figure 10: commit-policy comparison on the SLM-class core.
//!
//! Top panel: per-core stall-cycle breakdown (ROB / LQ / SQ full) for
//! in-order commit, safe out-of-order commit, and out-of-order commit
//! with WritersBlock. Bottom panel: normalized execution time. Also
//! prints the paper's headline numbers (improvement of OoO+WB over
//! in-order and over plain OoO).
//!
//! Run with `--small` for the full evaluation size (slower); default is
//! the quick Test scale. `--class NHM` / `--class HSW` switch the core
//! class (the paper's Figure 10 uses SLM).

use wb_bench::{eval_config, geomean, render_table, run_one};
use wb_kernel::config::{CommitMode, CoreClass};
use wb_workloads::{suite, Scale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = if args.iter().any(|a| a == "--small") { Scale::Small } else { Scale::Test };
    let class = match args.iter().position(|a| a == "--class").and_then(|i| args.get(i + 1)) {
        Some(c) if c.eq_ignore_ascii_case("nhm") => CoreClass::Nhm,
        Some(c) if c.eq_ignore_ascii_case("hsw") => CoreClass::Hsw,
        _ => CoreClass::Slm,
    };
    println!("core class: {}\n", class.label());
    let modes = [CommitMode::InOrder, CommitMode::OutOfOrder, CommitMode::OutOfOrderWb];

    let mut stall_rows = Vec::new();
    let mut time_rows = Vec::new();
    let mut sp_ooo = Vec::new();
    let mut sp_wb = Vec::new();
    let mut sp_wb_over_ooo = Vec::new();

    // One independent simulation per (workload, mode): run in parallel.
    let jobs: Vec<(wb_isa::Workload, CommitMode)> = suite(16, scale)
        .into_iter()
        .flat_map(|w| modes.into_iter().map(move |m| (w.clone(), m)))
        .collect();
    let results = wb_bench::par_map(jobs, |(w, mode)| run_one(&w, eval_config(class, mode, false)));
    for chunk in results.chunks(modes.len()) {
        let w_name = chunk[0].bench.clone();
        let mut cycles = Vec::new();
        let mut stalls = Vec::new();
        for r in chunk {
            let (rob, lq, sq) = r.report.stall_fractions();
            stalls.push(format!("{:.0}/{:.0}/{:.0}", rob * 100.0, lq * 100.0, sq * 100.0));
            cycles.push(r.report.cycles);
        }
        let base = cycles[0] as f64;
        sp_ooo.push(base / cycles[1] as f64);
        sp_wb.push(base / cycles[2] as f64);
        sp_wb_over_ooo.push(cycles[1] as f64 / cycles[2] as f64);
        stall_rows.push((w_name.clone(), stalls));
        time_rows.push((
            w_name,
            cycles.iter().map(|c| format!("{:.3}", *c as f64 / base)).collect(),
        ));
    }

    println!(
        "{}",
        render_table(
            "Figure 10 (top): stall cycles %% of total, rob/lq/sq",
            &["InOrder", "OoO", "OoO+WB"],
            &stall_rows
        )
    );
    println!(
        "{}",
        render_table(
            "Figure 10 (bottom): normalized execution time (InOrder = 1.0)",
            &["InOrder", "OoO", "OoO+WB"],
            &time_rows
        )
    );

    let max_wb = sp_wb.iter().cloned().fold(f64::MIN, f64::max);
    let max_over_ooo = sp_wb_over_ooo.iter().cloned().fold(f64::MIN, f64::max);
    println!("== Headline (paper: 15.4% avg / 41.9% max over in-order; 10.2% avg / 28.3% max over OoO) ==");
    println!(
        "OoO+WB over InOrder : {:+.1}% avg, {:+.1}% max",
        (geomean(&sp_wb) - 1.0) * 100.0,
        (max_wb - 1.0) * 100.0
    );
    println!(
        "OoO    over InOrder : {:+.1}% avg",
        (geomean(&sp_ooo) - 1.0) * 100.0
    );
    println!(
        "OoO+WB over OoO     : {:+.1}% avg, {:+.1}% max",
        (geomean(&sp_wb_over_ooo) - 1.0) * 100.0,
        (max_over_ooo - 1.0) * 100.0
    );
}
