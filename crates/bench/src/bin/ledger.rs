//! The perf-regression gate: run a small fixed bench suite, append the
//! result to `results/ledger.jsonl`, and fail if any deterministic
//! metric regressed against the committed baseline.
//!
//! Four cheap cells anchor the suite — the `mp` litmus race (the
//! paper's core reordering scenario), a 4-core `fft` (barrier-heavy
//! kernel), a 4-core barrier storm (directory-bank pressure) and the
//! same `fft` under accelerated background soft-error radiation
//! (detection/recovery and audit overhead) — all on the cycle-skipping
//! engine, so every simulated metric is byte-reproducible on a given
//! revision. Wall-clock medians ride
//! along as advisory rows (see [`wb_bench::ledger`] for the gating
//! policy).
//!
//! | variable         | effect                                        |
//! |------------------|-----------------------------------------------|
//! | `WB_LEDGER_PATH` | ledger file (default `results/ledger.jsonl`)  |
//!
//! Exit status: 0 when clean (or when there is no baseline for this
//! configuration yet), 1 when a gated metric regressed.

use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};
use wb_bench::campaign::{self, CampaignSpec};
use wb_bench::ledger::{self, LedgerEntry};
use wb_bench::timing::BenchResult;
use wb_isa::Workload;
use wb_kernel::config::{CommitMode, CoreClass, EngineMode, SystemConfig};
use wb_kernel::soft::SoftPlan;
use wb_workloads::{barrier_storm, splash, Scale};
use writersblock::{RunOutcome, System};

const GROUP: &str = "ledger-smoke";
const RUN_BUDGET: u64 = 50_000_000;
const WALL_SAMPLES: usize = 3;

/// Second metric group: the campaign farm itself. A small fixed
/// campaign runs fresh and then resumes as a no-op, yielding
/// throughput (cells/sec), resume overhead and checkpoint size — the
/// knobs a farm regression would move. Simulated totals and snapshot
/// bytes are deterministic and gated; wall rows are advisory.
const CAMPAIGN_GROUP: &str = "campaign";

/// Third metric group: the sparse engine's economics. The same anchor
/// cells re-run under `EngineMode::Sparse`, recording how many
/// component visits the activity scheduler actually paid for and how
/// many cycles it fast-forwarded. Both counters are deterministic and
/// gate at the tight tier: a visits regression means components stopped
/// sleeping (the O(active) win eroded silently) even while outcomes —
/// pinned byte-identical by the equivalence suite — stay green.
const ENGINE_GROUP: &str = "engine";
const CAMPAIGN_SPEC: &str = r#"{
  "name": "ledger-campaign", "cores": 2, "engine": "skip", "budget": 50000000,
  "workloads": ["mp", "sb", "fft"], "arms": ["wb-ooo"],
  "chaos": ["off"], "faults": ["off"], "seeds": [1, 2]
}"#;

struct Cell {
    name: &'static str,
    workload: Workload,
    cfg: SystemConfig,
}

fn cells() -> Vec<Cell> {
    let smoke_cfg = |cores: usize| {
        SystemConfig::new(CoreClass::Slm)
            .with_cores(cores)
            .with_commit(CommitMode::OutOfOrderWb)
            .with_engine(EngineMode::Skip)
            .without_event_log()
    };
    vec![
        Cell { name: "mp", workload: wb_tso::litmus::mp().workload, cfg: smoke_cfg(2) },
        Cell { name: "fft4", workload: splash::fft(4, Scale::Test), cfg: smoke_cfg(4) },
        Cell { name: "barrier4", workload: barrier_storm(4, 2), cfg: smoke_cfg(4) },
        // Soft-error anchor: fft under accelerated background radiation.
        // Gates the detection/recovery counters and the audit overhead —
        // a regression here means flips started escaping or the scrub
        // got slower.
        Cell {
            name: "soft4",
            workload: splash::fft(4, Scale::Test),
            cfg: smoke_cfg(4).with_soft(SoftPlan::background_radiation().accelerated(10)),
        },
    ]
}

/// Deterministic digest of the swept configuration: the cells, their
/// configs and the budget. `DefaultHasher::new()` uses fixed keys, so
/// the digest is stable across runs of the same build.
fn config_digest(cells: &[Cell]) -> String {
    let mut h = std::hash::DefaultHasher::new();
    RUN_BUDGET.hash(&mut h);
    for c in cells {
        c.name.hash(&mut h);
        c.workload.name.hash(&mut h);
        format!("{:?}", c.cfg).hash(&mut h);
    }
    format!("{:016x}", h.finish())
}

fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned())
}

/// Run one cell `WALL_SAMPLES` times: deterministic metrics from the
/// last run, wall-clock median via the timing harness's estimator.
fn run_cell(cell: &Cell, metrics: &mut BTreeMap<String, u64>) {
    let mut samples_ns = Vec::with_capacity(WALL_SAMPLES);
    let mut last: Option<System> = None;
    for _ in 0..WALL_SAMPLES {
        let t0 = std::time::Instant::now();
        let mut sys = System::new(cell.cfg.clone(), &cell.workload);
        let outcome = sys.run(RUN_BUDGET);
        samples_ns.push(t0.elapsed().as_nanos());
        assert_eq!(
            outcome,
            RunOutcome::Done,
            "ledger cell {} ended with {outcome} at cycle {}", // allow(panic): bench driver
            cell.name,
            sys.now()
        );
        last = Some(sys);
    }
    let mut sys = last.expect("at least one sample"); // allow(panic): bench driver
    // Soft cells scrub latent wounds with a final audit before metrics
    // are read, so `soft_silent` gates at a hard zero.
    if cell.cfg.soft.is_some() {
        sys.run_audit(true).assert_clean(cell.name);
    }
    let r = BenchResult { name: cell.name.to_owned(), samples_ns, stats: None };
    let report = sys.report();
    let key = |k: &str| format!("{}_{k}", cell.name);
    for (k, v) in [
        (key("sim_cycles"), sys.now()),
        (key("retired"), sys.total_retired()),
        (key("mesh_flits"), report.stats.get("mesh_flits")),
        (key("mesh_msg_p99"), report.stats.hist("mesh_msg_cycles").map_or(0, |h| h.p99())),
        (key("read_miss_p90"), report.stats.hist("cache_read_miss_cycles").map_or(0, |h| h.p90())),
        (key("engine_skipped_cycles"), sys.skipped_cycles()),
        (key("engine_skip_windows"), sys.skip_windows()),
        (key("wall_ns"), r.median_ns() as u64),
    ] {
        metrics.insert(k, v);
    }
    if cell.cfg.soft.is_some() {
        let (injected, _) = sys.soft_injected();
        for (k, v) in [
            (key("soft_injected"), injected),
            (key("soft_detected"), report.stats.get("soft_detected")),
            (key("soft_recovered"), report.stats.get("soft_recovered")),
            (key("soft_silent"), sys.soft_silent()),
            (key("audit_runs"), report.stats.get("audit_runs")),
            (key("audit_violations"), report.stats.get("audit_violations")),
            (
                key("soft_detect_p90"),
                report.stats.hist("soft_detect_latency").map_or(0, |h| h.p90()),
            ),
        ] {
            metrics.insert(k, v);
        }
    }
    eprintln!(
        "{:<10} {:>10} cycles   {:>12} ns median",
        cell.name,
        sys.now(),
        r.median_ns()
    );
}

/// Run every anchor cell once under the sparse engine and collect its
/// scheduler economics. Single runs: the counters are byte-reproducible
/// on a given revision, so wall sampling would add nothing.
fn engine_metrics(cells: &[Cell]) -> BTreeMap<String, u64> {
    let mut metrics = BTreeMap::new();
    for cell in cells {
        let cfg = cell.cfg.clone().with_engine(EngineMode::Sparse);
        let mut sys = System::new(cfg, &cell.workload);
        let outcome = sys.run(RUN_BUDGET);
        assert_eq!(
            outcome,
            RunOutcome::Done,
            "engine cell {} ended with {outcome} at cycle {}", // allow(panic): bench driver
            cell.name,
            sys.now()
        );
        let key = |k: &str| format!("{}_{k}", cell.name);
        metrics.insert(key("engine_visits"), sys.engine_visits());
        metrics.insert(key("engine_skipped_cycles"), sys.skipped_cycles());
        metrics.insert(key("sim_cycles"), sys.now());
    }
    metrics
}

/// Run the fixed ledger campaign fresh, then resume it as a no-op, and
/// report the farm's metric group.
fn campaign_metrics() -> BTreeMap<String, u64> {
    let spec = CampaignSpec::parse(CAMPAIGN_SPEC)
        .unwrap_or_else(|e| panic!("ledger campaign spec: {e}")); // allow(panic): bench driver
    let dir = std::env::temp_dir().join(format!("wb-ledger-campaign-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let threads = std::thread::available_parallelism().map(std::num::NonZero::get).unwrap_or(4);
    let run = |label: &str| {
        let t0 = std::time::Instant::now();
        let rep = campaign::run_campaign(&spec, &dir, threads, None)
            .unwrap_or_else(|e| panic!("ledger campaign ({label}): {e}")); // allow(panic): bench driver
        (rep, t0.elapsed().as_nanos() as u64)
    };
    let (fresh, fresh_ns) = run("fresh");
    assert_eq!(fresh.ran, fresh.total, "fresh run executes every cell"); // allow(panic): bench driver
    let (resumed, resume_ns) = run("resume");
    assert_eq!(resumed.ran, 0, "no-op resume re-runs nothing"); // allow(panic): bench driver

    let merged = std::fs::read_to_string(dir.join("merged.jsonl"))
        .unwrap_or_else(|e| panic!("reading merged.jsonl: {e}")); // allow(panic): bench driver
    let sim_cycles: u64 = merged
        .lines()
        .map(|l| {
            campaign::CellResult::parse_line(l)
                .unwrap_or_else(|e| panic!("merged.jsonl line: {e}")) // allow(panic): bench driver
                .cycles
        })
        .sum();
    let _ = std::fs::remove_dir_all(&dir);

    // Checkpoint size of a warmed 4-core fft — the representative
    // mid-run snapshot a warm-start farm would fork. Deterministic, so
    // gated: unnoticed snapshot bloat is a real regression.
    let w = splash::fft(4, Scale::Test);
    let cfg = SystemConfig::new(CoreClass::Slm)
        .with_cores(4)
        .with_commit(CommitMode::OutOfOrderWb)
        .with_engine(EngineMode::Skip)
        .without_event_log();
    let mut sys = System::new(cfg, &w);
    let _ = sys.run(2_000);
    let snapshot_bytes = sys.snapshot().len() as u64;

    let cells = fresh.total as u64;
    BTreeMap::from([
        ("campaign_cells".to_owned(), cells),
        ("campaign_sim_cycles".to_owned(), sim_cycles),
        ("campaign_snapshot_bytes".to_owned(), snapshot_bytes),
        ("campaign_wall_ns".to_owned(), fresh_ns),
        ("campaign_resume_wall_ns".to_owned(), resume_ns),
        ("campaign_cells_per_sec".to_owned(), cells.saturating_mul(1_000_000_000) / fresh_ns.max(1)),
    ])
}

fn main() {
    let cells = cells();
    let rev = git_rev();

    let mut metrics = BTreeMap::new();
    for cell in &cells {
        run_cell(cell, &mut metrics);
    }
    let smoke = LedgerEntry {
        rev: rev.clone(),
        config_digest: config_digest(&cells),
        group: GROUP.to_owned(),
        metrics,
    };
    let farm = {
        let mut h = std::hash::DefaultHasher::new();
        CAMPAIGN_SPEC.hash(&mut h);
        LedgerEntry {
            rev: rev.clone(),
            config_digest: format!("{:016x}", h.finish()),
            group: CAMPAIGN_GROUP.to_owned(),
            metrics: campaign_metrics(),
        }
    };
    let engine = {
        // Same cells, different engine: fold the mode into the digest so
        // the group re-baselines if the anchor matrix itself changes.
        let mut h = std::hash::DefaultHasher::new();
        config_digest(&cells).hash(&mut h);
        "sparse".hash(&mut h);
        LedgerEntry {
            rev: rev.clone(),
            config_digest: format!("{:016x}", h.finish()),
            group: ENGINE_GROUP.to_owned(),
            metrics: engine_metrics(&cells),
        }
    };
    let entries = [smoke, farm, engine];

    let path =
        std::env::var("WB_LEDGER_PATH").unwrap_or_else(|_| "results/ledger.jsonl".to_owned());
    let existing = match std::fs::read_to_string(&path) {
        Ok(s) => ledger::parse_ledger(&s)
            .unwrap_or_else(|e| panic!("{path} is corrupt: {e}")), // allow(panic): bench driver
        Err(_) => Vec::new(),
    };

    let mut regressed = false;
    for entry in &entries {
        match ledger::baseline_for(&existing, &entry.group, &entry.config_digest) {
            Some(base) => {
                let cmp = ledger::compare(base, entry);
                print!("{}", ledger::render_comparison(&base.rev, &rev, &cmp));
                regressed |= ledger::has_regression(&cmp);
            }
            None => eprintln!(
                "no baseline for {} config {} in {path}; recording a fresh one",
                entry.group, entry.config_digest
            ),
        }
    }

    // Self-validate the emitted lines through the in-tree parser before
    // they land in the file — a malformed line would poison every later
    // comparison.
    if let Some(dir) = std::path::Path::new(&path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)
                .unwrap_or_else(|e| panic!("creating {}: {e}", dir.display())); // allow(panic): bench driver
        }
    }
    let mut file = existing.iter().map(LedgerEntry::to_json_line).collect::<Vec<_>>().join("\n");
    if !file.is_empty() {
        file.push('\n');
    }
    for entry in &entries {
        let line = entry.to_json_line();
        LedgerEntry::parse_line(&line)
            .unwrap_or_else(|e| panic!("emitted ledger line invalid: {e}")); // allow(panic): bench driver
        file.push_str(&line);
        file.push('\n');
    }
    std::fs::write(&path, file).unwrap_or_else(|e| panic!("writing {path}: {e}")); // allow(panic): bench driver
    eprintln!("appended {rev} to {path} ({} entries)", existing.len() + entries.len());

    if regressed {
        eprintln!("ledger: REGRESSION — a deterministic metric exceeded its gate");
        std::process::exit(1);
    }
}
