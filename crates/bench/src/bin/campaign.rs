//! Crash-resumable campaign farm driver.
//!
//! ```text
//! campaign <spec.json> --out DIR [--threads N]     run/resume a campaign
//! campaign --fuzz --out DIR [--rounds N] [--seed0 S] [--threads N]
//! ```
//!
//! A campaign run streams per-cell results to `<out>/results.jsonl`
//! and appends each completed cell id to `<out>/manifest`; re-running
//! the same spec into the same directory executes only the missing
//! cells and rewrites `<out>/merged.jsonl` (spec order, byte-identical
//! to an uninterrupted run). Fuzz mode mines chaos/fault/litmus cells
//! and dedupes failures by wedge signature into `<out>/wedges.jsonl`.
//!
//! | variable                 | effect                                  |
//! |--------------------------|-----------------------------------------|
//! | `WB_CAMPAIGN_KILL_AFTER` | abort the process after N completed     |
//! |                          | cells (crash-resume smoke-test hook)    |
//!
//! Exit status: 0 on a completed campaign, 2 on a spec or I/O error.

use std::path::PathBuf;
use std::process::exit;
use wb_bench::campaign::{self, CampaignSpec};

fn usage() -> ! {
    eprintln!(
        "usage: campaign <spec.json> --out DIR [--threads N]\n\
         \x20      campaign --fuzz --out DIR [--rounds N] [--seed0 S] [--threads N]"
    );
    exit(2);
}

fn parse_num<T: std::str::FromStr>(args: &mut std::slice::Iter<String>, flag: &str) -> T {
    args.next()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            eprintln!("{flag} needs a numeric argument");
            exit(2);
        })
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut spec_path: Option<PathBuf> = None;
    let mut out: Option<PathBuf> = None;
    let mut threads =
        std::thread::available_parallelism().map(std::num::NonZero::get).unwrap_or(4);
    let mut fuzz = false;
    let mut rounds = 4usize;
    let mut seed0 = 1u64;
    let mut args = argv.iter();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--threads" => threads = parse_num(&mut args, "--threads"),
            "--fuzz" => fuzz = true,
            "--rounds" => rounds = parse_num(&mut args, "--rounds"),
            "--seed0" => seed0 = parse_num(&mut args, "--seed0"),
            "--help" | "-h" => usage(),
            other if !other.starts_with('-') && spec_path.is_none() => {
                spec_path = Some(PathBuf::from(other));
            }
            other => {
                eprintln!("unknown argument `{other}`");
                usage();
            }
        }
    }
    let Some(out) = out else { usage() };
    let kill_after = std::env::var("WB_CAMPAIGN_KILL_AFTER")
        .ok()
        .and_then(|v| v.parse::<usize>().ok());

    if fuzz {
        if spec_path.is_some() {
            usage();
        }
        match campaign::run_fuzz(&out, threads, rounds, seed0) {
            Ok(rep) => {
                for sig in &rep.fresh {
                    println!("new signature: {sig}");
                }
                println!(
                    "fuzz: {} cells, {} hits, {} new signatures -> {}",
                    rep.cells,
                    rep.hits,
                    rep.fresh.len(),
                    out.join("wedges.jsonl").display()
                );
            }
            Err(e) => {
                eprintln!("fuzz: {e}");
                exit(2);
            }
        }
        return;
    }

    let Some(spec_path) = spec_path else { usage() };
    let src = std::fs::read_to_string(&spec_path).unwrap_or_else(|e| {
        eprintln!("reading {}: {e}", spec_path.display());
        exit(2);
    });
    let spec = CampaignSpec::parse(&src).unwrap_or_else(|e| {
        eprintln!("{}: {e}", spec_path.display());
        exit(2);
    });
    match campaign::run_campaign(&spec, &out, threads, kill_after) {
        Ok(rep) => println!(
            "campaign `{}`: {} cells ({} ran, {} resumed), {} wedges, {} faults -> {}",
            spec.name,
            rep.total,
            rep.ran,
            rep.resumed,
            rep.wedges,
            rep.faults,
            out.join("merged.jsonl").display()
        ),
        Err(e) => {
            eprintln!("campaign: {e}");
            exit(2);
        }
    }
}
