//! Crash-resumable campaign farm.
//!
//! A *campaign* is a matrix of simulation cells — workload × protocol
//! arm × chaos plan × fault plan × soft-error plan × seed — described
//! by a JSON spec
//! (parsed with the in-tree [`wb_kernel::json`] parser) and executed on
//! the deterministic sweep runner ([`crate::sweep`]). Results stream to
//! `<out>/results.jsonl` in completion order; after every flushed
//! result line the cell's id is appended to `<out>/manifest`, so a
//! `kill -9` at any instant loses at most the cell in flight. Re-running
//! the same campaign into the same directory reads the manifest, runs
//! only the missing cells, and writes `<out>/merged.jsonl` in spec
//! order — byte-identical to an uninterrupted run, because every cell
//! result is a pure function of the spec (no wall-clock, no host state;
//! `scripts/verify.sh` greps this module to keep host-time reads out).
//!
//! Two extra modes ride on the snapshot subsystem:
//!
//! * **Warm-start forking** (`"warmup": N` in the spec): each
//!   (workload, arm, chaos, fault) group is run once for `N` cycles
//!   under a fixed warm seed, snapshotted, and every seed cell restores
//!   that one snapshot and [`writersblock::System::reseed`]s itself —
//!   thousands of seeds for the price of one warm-up.
//! * **Fuzzing** ([`run_fuzz`]): mines torture/litmus cells under the
//!   chaos, fault and soft-error matrices with a tightened watchdog,
//!   and dedupes any wedge or fault by [`WedgeReport::signature`] into
//!   `<out>/wedges.jsonl` — each line a distinct failure mode with its
//!   one-command reproducer. Soft cells that *complete* still pass
//!   through a corruption oracle (final coherence audit +
//!   silent-flip accounting), so an undetected bit flip is mined as a
//!   `silent-corruption|…` signature instead of slipping through as a
//!   clean run.

use std::collections::{BTreeMap, BTreeSet};
use std::fs::{self, OpenOptions};
use std::io::Write as _;
use std::path::Path;
use std::sync::Mutex;

use crate::sweep;
use wb_isa::{Program, Reg, Workload};
use wb_kernel::chaos::ChaosPlan;
use wb_kernel::config::{CommitMode, CoreClass, EngineMode, ProtocolKind, SystemConfig};
use wb_kernel::fault::FaultPlan;
use wb_kernel::json::{self, Json};
use wb_kernel::soft::SoftPlan;
use wb_kernel::SimRng;
use writersblock::{RunOutcome, System};

/// Fixed seed every warm-start snapshot is taken under; forks restore
/// it and immediately reseed to their own cell seed.
pub const WARM_SEED: u64 = 0x5eed_0001;

/// Per-cell budget for fuzz-mined cells: long enough for the tightened
/// watchdog (stall window 2500) to classify a wedge, short enough to
/// mine hundreds of cells per round.
pub const FUZZ_BUDGET: u64 = 2_000_000;

// ---------------------------------------------------------------------------
// Spec
// ---------------------------------------------------------------------------

/// A parsed campaign spec: the full cell matrix plus execution knobs.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    pub name: String,
    /// Core count used when *generating* suite workloads; each cell's
    /// machine is sized to its workload's own core count.
    pub cores: usize,
    pub class: CoreClass,
    pub engine: EngineMode,
    pub jitter: u64,
    /// Default per-cell cycle budget.
    pub budget: u64,
    /// Per-workload budget overrides (e.g. radix/streamcluster need 2x).
    pub budgets: BTreeMap<String, u64>,
    /// Warm-start cycles (0 = run every cell from reset).
    pub warmup: u64,
    pub workloads: Vec<String>,
    pub arms: Vec<String>,
    pub chaos: Vec<String>,
    pub faults: Vec<String>,
    pub softs: Vec<String>,
    pub seeds: Vec<u64>,
}

fn want_str(v: &Json, key: &str) -> Result<String, String> {
    v.as_str().map(str::to_owned).ok_or_else(|| format!("spec key `{key}` must be a string"))
}

fn want_u64(v: &Json, key: &str) -> Result<u64, String> {
    v.as_u64().ok_or_else(|| format!("spec key `{key}` must be an unsigned integer"))
}

fn want_str_list(v: &Json, key: &str) -> Result<Vec<String>, String> {
    let arr = v.as_arr().ok_or_else(|| format!("spec key `{key}` must be an array"))?;
    if arr.is_empty() {
        return Err(format!("spec key `{key}` must not be empty"));
    }
    arr.iter().map(|e| want_str(e, key)).collect()
}

impl CampaignSpec {
    /// Parse and validate a spec. Every workload/arm/chaos/fault name is
    /// resolved against the registries here, so a typo fails before any
    /// cell runs rather than mid-campaign.
    pub fn parse(src: &str) -> Result<CampaignSpec, String> {
        let doc = json::parse(src).map_err(|e| format!("campaign spec: {e}"))?;
        let obj = doc.as_obj().ok_or("campaign spec must be a JSON object")?;
        let mut spec = CampaignSpec {
            name: "campaign".to_owned(),
            cores: 4,
            class: CoreClass::Slm,
            engine: EngineMode::Skip,
            jitter: 0,
            budget: crate::RUN_BUDGET,
            budgets: BTreeMap::new(),
            warmup: 0,
            workloads: vec![],
            arms: vec!["wb-ooo".to_owned()],
            chaos: vec!["off".to_owned()],
            faults: vec!["off".to_owned()],
            softs: vec!["off".to_owned()],
            seeds: vec![1],
        };
        for (k, v) in obj {
            match k.as_str() {
                "name" => spec.name = want_str(v, k)?,
                "cores" => spec.cores = want_u64(v, k)? as usize,
                "class" => {
                    spec.class = match want_str(v, k)?.as_str() {
                        "slm" => CoreClass::Slm,
                        "nhm" => CoreClass::Nhm,
                        "hsw" => CoreClass::Hsw,
                        other => return Err(format!("unknown core class `{other}`")),
                    }
                }
                "engine" => {
                    spec.engine = match want_str(v, k)?.as_str() {
                        "dense" => EngineMode::Dense,
                        "skip" => EngineMode::Skip,
                        "skip-verify" => EngineMode::SkipVerify,
                        "sparse" => EngineMode::Sparse,
                        "sparse-verify" => EngineMode::SparseVerify,
                        other => return Err(format!("unknown engine `{other}`")),
                    }
                }
                "jitter" => spec.jitter = want_u64(v, k)?,
                "budget" => spec.budget = want_u64(v, k)?,
                "budgets" => {
                    let o = v.as_obj().ok_or("spec key `budgets` must be an object")?;
                    for (w, b) in o {
                        spec.budgets.insert(w.clone(), want_u64(b, "budgets")?);
                    }
                }
                "warmup" => spec.warmup = want_u64(v, k)?,
                "workloads" => spec.workloads = want_str_list(v, k)?,
                "arms" => spec.arms = want_str_list(v, k)?,
                "chaos" => spec.chaos = want_str_list(v, k)?,
                "faults" => spec.faults = want_str_list(v, k)?,
                "softs" => spec.softs = want_str_list(v, k)?,
                "seeds" => {
                    // Either an explicit list, or {"first": F, "count": N}
                    // for warm-start fleets of thousands.
                    if let Some(arr) = v.as_arr() {
                        spec.seeds = arr.iter().map(|e| want_u64(e, k)).collect::<Result<_, _>>()?;
                        if spec.seeds.is_empty() {
                            return Err("spec key `seeds` must not be empty".to_owned());
                        }
                    } else if v.as_obj().is_some() {
                        let first = want_u64(
                            v.get("first").ok_or("seeds object needs `first`")?,
                            "seeds.first",
                        )?;
                        let count = want_u64(
                            v.get("count").ok_or("seeds object needs `count`")?,
                            "seeds.count",
                        )?;
                        if count == 0 {
                            return Err("seeds.count must be positive".to_owned());
                        }
                        spec.seeds = (0..count).map(|i| first.wrapping_add(i)).collect();
                    } else {
                        return Err("spec key `seeds` must be an array or object".to_owned());
                    }
                }
                other => return Err(format!("unknown spec key `{other}`")),
            }
        }
        if spec.workloads.is_empty() {
            return Err("spec key `workloads` is required".to_owned());
        }
        for w in &spec.workloads {
            workload_by_name(w, spec.cores)?;
        }
        for a in &spec.arms {
            arm_by_name(a)?;
        }
        for c in &spec.chaos {
            chaos_by_name(c)?;
        }
        for f in &spec.faults {
            fault_by_name(f)?;
        }
        for s in &spec.softs {
            soft_by_name(s)?;
        }
        for w in spec.budgets.keys() {
            if !spec.workloads.contains(w) {
                return Err(format!("budget override for `{w}` which is not in `workloads`"));
            }
        }
        Ok(spec)
    }
}

// ---------------------------------------------------------------------------
// Registries
// ---------------------------------------------------------------------------

/// Resolve a workload name: litmus tests, the barrier storm, or any of
/// the 12 suite kernels (generated at `cores` cores, `Scale::Test`).
pub fn workload_by_name(name: &str, cores: usize) -> Result<Workload, String> {
    use wb_tso::litmus;
    match name {
        "mp" => return Ok(litmus::mp().workload),
        "mp-warm" => return Ok(litmus::mp_warm().workload),
        "sb" => return Ok(litmus::sb().workload),
        "lb" => return Ok(litmus::lb().workload),
        "corr" => return Ok(litmus::corr().workload),
        "iriw" => return Ok(litmus::iriw().workload),
        "mp-transitive" => return Ok(litmus::mp_transitive().workload),
        "two-plus-two-w" => return Ok(litmus::two_plus_two_w().workload),
        "barrier-storm" => return Ok(wb_workloads::barrier_storm(cores, 4)),
        _ => {}
    }
    wb_workloads::suite(cores, wb_workloads::Scale::Test)
        .into_iter()
        .find(|w| w.name == name)
        .ok_or_else(|| format!("unknown workload `{name}`"))
}

/// Resolve a protocol arm name to (protocol, commit mode).
pub fn arm_by_name(name: &str) -> Result<(ProtocolKind, CommitMode), String> {
    Ok(match name {
        "mesi-inorder" => (ProtocolKind::BaseMesi, CommitMode::InOrder),
        "mesi-ooo" => (ProtocolKind::BaseMesi, CommitMode::OutOfOrder),
        "wb-inorder" => (ProtocolKind::WritersBlock, CommitMode::InOrder),
        "wb-ooo" => (ProtocolKind::WritersBlock, CommitMode::OutOfOrderWb),
        "wb-ecl" => (ProtocolKind::WritersBlock, CommitMode::InOrderEcl),
        other => return Err(format!("unknown arm `{other}`")),
    })
}

/// Resolve a chaos plan name (`"off"` = none).
pub fn chaos_by_name(name: &str) -> Result<Option<ChaosPlan>, String> {
    Ok(Some(match name {
        "off" => return Ok(None),
        "delay-storm" => ChaosPlan::delay_storm(),
        "request-storm" => ChaosPlan::request_storm(),
        "forward-storm" => ChaosPlan::forward_storm(),
        "response-storm" => ChaosPlan::response_storm(),
        "reorder-amplify" => ChaosPlan::reorder_amplify(),
        "wb-entry-squeeze" => ChaosPlan::wb_entry_squeeze(),
        "hotspot" => ChaosPlan::hotspot(0),
        other => return Err(format!("unknown chaos plan `{other}`")),
    }))
}

/// Resolve a fault plan name (`"off"` = none; `"drop-N-M"` drops N/M of
/// all hops).
pub fn fault_by_name(name: &str) -> Result<Option<FaultPlan>, String> {
    Ok(Some(match name {
        "off" => return Ok(None),
        "drop-response" => FaultPlan::drop_response(),
        "drop-forward" => FaultPlan::drop_forward(),
        "duplicate-storm" => FaultPlan::duplicate_storm(),
        "corrupt-everywhere" => FaultPlan::corrupt_everywhere(),
        "mixed-misery" => FaultPlan::mixed_misery(),
        other => {
            let parts: Vec<&str> = other.split('-').collect();
            match parts.as_slice() {
                ["drop", num, den] => match (num.parse(), den.parse()) {
                    (Ok(n), Ok(d)) if d > 0u64 => FaultPlan::drop_everywhere(n, d),
                    _ => return Err(format!("bad drop rate in `{other}`")),
                },
                _ => return Err(format!("unknown fault plan `{other}`")),
            }
        }
    }))
}

/// Resolve a soft-error plan name (`"off"` = none). A `-xN` suffix
/// accelerates every clause rate `N`-fold (mean gaps divided) — e.g.
/// `"background-radiation-x20"` — because the standard matrix rates
/// are soak-tuned and short campaign cells would otherwise finish
/// before a single strike lands.
pub fn soft_by_name(name: &str) -> Result<Option<SoftPlan>, String> {
    if name == "off" {
        return Ok(None);
    }
    let (base, accel) = match name.rsplit_once("-x") {
        Some((b, n)) if !n.is_empty() && n.bytes().all(|c| c.is_ascii_digit()) => {
            let n: u64 = n.parse().map_err(|_| format!("bad acceleration in `{name}`"))?;
            if n == 0 {
                return Err(format!("zero acceleration in `{name}`"));
            }
            (b, n)
        }
        _ => (name, 1),
    };
    let plan = match base {
        "none" => SoftPlan::none(),
        "cache-state-storm" => SoftPlan::cache_state_storm(),
        "tag-flips" => SoftPlan::tag_flips(),
        "dir-state-storm" => SoftPlan::dir_state_storm(),
        "sharer-bits" => SoftPlan::sharer_bits(),
        "mshr-fields" => SoftPlan::mshr_fields(),
        "background-radiation" => SoftPlan::background_radiation(),
        "double-entry" => SoftPlan::double_entry(),
        other => return Err(format!("unknown soft plan `{other}`")),
    };
    Ok(Some(if accel > 1 { plan.accelerated(accel) } else { plan }))
}

// ---------------------------------------------------------------------------
// Cells
// ---------------------------------------------------------------------------

/// One point of the campaign matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Stable id, unique within the campaign; the manifest key.
    pub id: String,
    pub workload: String,
    pub arm: String,
    pub chaos: String,
    pub fault: String,
    pub soft: String,
    pub seed: u64,
    pub budget: u64,
}

impl Cell {
    /// Warm-start group key: everything but the seed.
    fn group(&self) -> String {
        format!("{}+{}+{}+{}+{}", self.workload, self.arm, self.chaos, self.fault, self.soft)
    }
}

/// Expand the spec into its cell matrix, in spec order (workload
/// outermost, seed innermost). Ids are stable across runs — they key
/// the resume manifest.
pub fn cells(spec: &CampaignSpec) -> Vec<Cell> {
    let mut out = Vec::new();
    for w in &spec.workloads {
        let budget = spec.budgets.get(w).copied().unwrap_or(spec.budget);
        for arm in &spec.arms {
            for chaos in &spec.chaos {
                for fault in &spec.faults {
                    for soft in &spec.softs {
                        for &seed in &spec.seeds {
                            out.push(Cell {
                                id: format!("{w}+{arm}+{chaos}+{fault}+{soft}+s{seed}"),
                                workload: w.clone(),
                                arm: arm.clone(),
                                chaos: chaos.clone(),
                                fault: fault.clone(),
                                soft: soft.clone(),
                                seed,
                                budget,
                            });
                        }
                    }
                }
            }
        }
    }
    out
}

/// Build the system configuration for one cell (machine sized to the
/// workload's own core count; `seed` may be overridden for warm-starts).
pub fn cell_config(spec: &CampaignSpec, cell: &Cell, cores: usize, seed: u64) -> SystemConfig {
    // Names were validated at parse time; resolution cannot fail here.
    let (protocol, commit) = arm_by_name(&cell.arm).expect("arm validated at parse");
    let mut cfg = SystemConfig::new(spec.class)
        .with_cores(cores)
        .with_commit(commit)
        .with_protocol(protocol)
        .with_engine(spec.engine)
        .with_seed(seed)
        .with_jitter(spec.jitter)
        .without_event_log();
    if let Some(p) = chaos_by_name(&cell.chaos).expect("chaos validated at parse") {
        cfg = cfg.with_chaos(p);
    }
    if let Some(p) = fault_by_name(&cell.fault).expect("fault validated at parse") {
        cfg = cfg.with_fault(p);
    }
    if let Some(p) = soft_by_name(&cell.soft).expect("soft validated at parse") {
        cfg = cfg.with_soft(p);
    }
    cfg
}

// ---------------------------------------------------------------------------
// Results
// ---------------------------------------------------------------------------

/// The deterministic outcome of one cell. Contains nothing derived from
/// the host (no wall time, no hostname): the merged campaign output
/// must be byte-identical however many times the run was interrupted.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    pub id: String,
    /// `done` | `budget` | `wedge` | `fault`
    pub outcome: String,
    pub cycles: u64,
    pub retired: u64,
    /// Wedge-signature (dedup key), empty unless wedged/faulted.
    pub signature: String,
    /// One-command reproducer, empty unless wedged/faulted.
    pub reproducer: String,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl CellResult {
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"cell\":\"{}\",\"outcome\":\"{}\",\"cycles\":{},\"retired\":{},\"sig\":\"{}\",\"repro\":\"{}\"}}",
            json_escape(&self.id),
            self.outcome,
            self.cycles,
            self.retired,
            json_escape(&self.signature),
            json_escape(&self.reproducer),
        )
    }

    pub fn parse_line(line: &str) -> Result<CellResult, String> {
        let doc = json::parse(line)?;
        let field = |k: &str| -> Result<String, String> {
            doc.get(k)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("result line missing `{k}`"))
        };
        let num = |k: &str| -> Result<u64, String> {
            doc.get(k).and_then(Json::as_u64).ok_or_else(|| format!("result line missing `{k}`"))
        };
        Ok(CellResult {
            id: field("cell")?,
            outcome: field("outcome")?,
            cycles: num("cycles")?,
            retired: num("retired")?,
            signature: field("sig")?,
            reproducer: field("repro")?,
        })
    }
}

/// Run one cell from reset (or from a warm snapshot) and summarize.
fn run_cell(spec: &CampaignSpec, cell: &Cell, warm: Option<&[u8]>) -> CellResult {
    let w = workload_by_name(&cell.workload, spec.cores).expect("workload validated at parse");
    let cores = w.cores();
    let mut sys = match warm {
        Some(bytes) => {
            let mut sys = System::new(cell_config(spec, cell, cores, WARM_SEED), &w);
            sys.restore(bytes).expect("warm snapshot restores into its own configuration");
            sys.reseed(cell.seed);
            sys
        }
        None => System::new(cell_config(spec, cell, cores, cell.seed), &w),
    };
    let outcome = sys.run(cell.budget);
    let (outcome, signature, reproducer) = match outcome {
        RunOutcome::Done => ("done", String::new(), String::new()),
        RunOutcome::Budget => ("budget", String::new(), String::new()),
        RunOutcome::Wedge(r) => ("wedge", r.signature(), r.reproducer.clone()),
        RunOutcome::Fault(r) => ("fault", r.signature(), r.reproducer.clone()),
    };
    CellResult {
        id: cell.id.clone(),
        outcome: outcome.to_owned(),
        cycles: sys.now(),
        retired: sys.total_retired(),
        signature,
        reproducer,
    }
}

/// Compute the warm snapshot for one cell group: run the group's
/// configuration for `spec.warmup` cycles under [`WARM_SEED`].
fn warm_snapshot(spec: &CampaignSpec, cell: &Cell) -> Vec<u8> {
    let w = workload_by_name(&cell.workload, spec.cores).expect("workload validated at parse");
    let cores = w.cores();
    let mut sys = System::new(cell_config(spec, cell, cores, WARM_SEED), &w);
    let _ = sys.run(spec.warmup);
    sys.snapshot()
}

// ---------------------------------------------------------------------------
// The farm
// ---------------------------------------------------------------------------

/// What a [`run_campaign`] call did.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Total cells in the spec matrix.
    pub total: usize,
    /// Cells executed by this invocation.
    pub ran: usize,
    /// Cells skipped because the manifest already had them.
    pub resumed: usize,
    pub wedges: usize,
    pub faults: usize,
}

fn read_lines(path: &Path) -> Vec<String> {
    match fs::read_to_string(path) {
        Ok(s) => s.lines().map(str::to_owned).collect(),
        Err(_) => Vec::new(),
    }
}

/// Run (or resume) a campaign into `out`.
///
/// Crash-safety protocol: each worker appends its result line to
/// `results.jsonl` and syncs it *before* appending the cell id to
/// `manifest`. A cell is therefore only ever marked complete once its
/// result is durable; a kill between the two writes re-runs the cell on
/// resume (its duplicate result line is deduplicated at merge time —
/// harmless, since cell results are deterministic). `kill_after`
/// hard-aborts the process after that many completions — the hook the
/// crash-resume smoke test uses to die at a deterministic point, with
/// exactly the file state a `kill -9` would leave.
pub fn run_campaign(
    spec: &CampaignSpec,
    out: &Path,
    threads: usize,
    kill_after: Option<usize>,
) -> Result<CampaignReport, String> {
    fs::create_dir_all(out).map_err(|e| format!("creating {}: {e}", out.display()))?;
    let all = cells(spec);
    {
        let mut seen = BTreeSet::new();
        for c in &all {
            if !seen.insert(&c.id) {
                return Err(format!("duplicate cell id `{}` in spec matrix", c.id));
            }
        }
    }

    // Resume state: the manifest is the source of truth; result lines
    // without a manifest entry (torn writes, killed pre-manifest) are
    // dropped and their cells re-run.
    let done: BTreeSet<String> = read_lines(&out.join("manifest")).into_iter().collect();
    let mut by_id: BTreeMap<String, String> = BTreeMap::new();
    for line in read_lines(&out.join("results.jsonl")) {
        if let Ok(r) = CellResult::parse_line(&line) {
            if done.contains(&r.id) {
                by_id.insert(r.id, line);
            }
        }
    }
    let todo: Vec<Cell> = all.iter().filter(|c| !by_id.contains_key(&c.id)).cloned().collect();
    let resumed = all.len() - todo.len();

    // Warm-start: one snapshot per (workload, arm, chaos, fault) group,
    // computed up front on the same worker pool. Deterministic, so a
    // resumed campaign recomputes byte-identical snapshots.
    let warm: BTreeMap<String, Vec<u8>> = if spec.warmup > 0 {
        let groups: Vec<Cell> = {
            let mut seen = BTreeSet::new();
            todo.iter().filter(|c| seen.insert(c.group())).cloned().collect()
        };
        let keys: Vec<String> = groups.iter().map(Cell::group).collect();
        let snaps = sweep::run_on(threads, groups, |c| warm_snapshot(spec, &c));
        keys.into_iter().zip(snaps).collect()
    } else {
        BTreeMap::new()
    };

    let open_append = |name: &str| {
        OpenOptions::new()
            .create(true)
            .append(true)
            .open(out.join(name))
            .map_err(|e| format!("opening {}/{name}: {e}", out.display()))
    };
    let mut results_file = open_append("results.jsonl")?;
    // A kill mid-write can leave a torn final line with no newline; seal
    // it so the first fresh append starts on its own line. (The torn
    // line's cell has no manifest entry, so it re-runs regardless.)
    if let Ok(s) = fs::read_to_string(out.join("results.jsonl")) {
        if !s.is_empty() && !s.ends_with('\n') {
            writeln!(results_file).map_err(|e| format!("sealing results.jsonl: {e}"))?;
        }
    }
    let sink = Mutex::new((results_file, open_append("manifest")?, 0usize));

    let fresh: Vec<CellResult> = sweep::run_on(threads, todo, |cell| {
        let r = run_cell(spec, &cell, warm.get(&cell.group()).map(Vec::as_slice));
        let line = r.to_json_line();
        let mut s = sink.lock().expect("campaign sink");
        let (results, manifest, completed) = &mut *s;
        // Result first, durable, then the manifest entry that marks it
        // complete — the order the resume protocol depends on.
        writeln!(results, "{line}").and_then(|()| results.sync_data()).expect("writing results");
        writeln!(manifest, "{}", r.id).and_then(|()| manifest.sync_data()).expect("writing manifest");
        *completed += 1;
        if kill_after.is_some_and(|k| *completed >= k) {
            // Simulated power-cut for the crash-resume smoke: no
            // destructors, no flushes beyond what is already durable.
            std::process::abort();
        }
        r
    });

    for r in &fresh {
        by_id.insert(r.id.clone(), r.to_json_line());
    }
    let mut merged = String::new();
    for c in &all {
        let line = by_id.get(&c.id).ok_or_else(|| format!("cell `{}` produced no result", c.id))?;
        merged.push_str(line);
        merged.push('\n');
    }
    fs::write(out.join("merged.jsonl"), &merged)
        .map_err(|e| format!("writing {}/merged.jsonl: {e}", out.display()))?;

    let count = |kind: &str| {
        by_id.values().filter(|l| l.contains(&format!("\"outcome\":\"{kind}\""))).count()
    };
    Ok(CampaignReport {
        total: all.len(),
        ran: fresh.len(),
        resumed,
        wedges: count("wedge"),
        faults: count("fault"),
    })
}

// ---------------------------------------------------------------------------
// Fuzzing
// ---------------------------------------------------------------------------

/// What a [`run_fuzz`] call found.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzReport {
    /// Cells executed across all rounds.
    pub cells: usize,
    /// Cells that wedged or faulted.
    pub hits: usize,
    /// Signatures not previously present in `wedges.jsonl`.
    pub fresh: Vec<String>,
}

/// Random contended straight-line program — the fuzz corpus generator
/// (same recipe as the engine-equivalence torture cells: store values
/// globally unique so the TSO checker stays sound).
fn fuzz_program(core: usize, rng: &mut SimRng, ops: usize, lines: &[u64]) -> Program {
    let mut p = Program::builder();
    let mut k: u64 = 1;
    for _ in 0..ops {
        let a = *rng.choose(lines).expect("non-empty");
        let word = rng.below(8) * 8;
        p.imm(Reg(1), a + word);
        match rng.below(10) {
            0..=4 => {
                p.load(Reg(3), Reg(1), 0);
            }
            5..=8 => {
                p.imm(Reg(2), ((core as u64) << 32) | k);
                k += 1;
                p.store(Reg(2), Reg(1), 0);
            }
            _ => {
                p.imm(Reg(2), ((core as u64) << 32) | k);
                k += 1;
                p.amo_swap(Reg(3), Reg(1), 0, Reg(2));
            }
        }
    }
    p.halt();
    p.build()
}

fn fuzz_workload(cores: usize, seed: u64, ops: usize) -> Workload {
    let lines: Vec<u64> = (0..6).map(|i| 0x1000 + i * 0x440).collect();
    let mut rng = SimRng::new(seed);
    let programs = (0..cores).map(|c| fuzz_program(c, &mut rng, ops, &lines)).collect();
    Workload::new(format!("fuzz-{seed}"), programs)
}

/// Aggressive watchdog/retransmit settings so marginal cells classify
/// as wedges inside [`FUZZ_BUDGET`] instead of limping to completion.
fn fuzz_config(seed: u64) -> SystemConfig {
    let mut cfg = SystemConfig::new(CoreClass::Slm)
        .with_cores(2)
        .with_commit(CommitMode::OutOfOrderWb)
        .with_protocol(ProtocolKind::WritersBlock)
        .with_seed(seed)
        .with_jitter(25)
        .without_event_log();
    cfg.network.link.rto_min = 4000;
    cfg.network.link.rto_max = 4000;
    cfg.watchdog.stall_window = 2500;
    cfg.watchdog.fault_scale = 1;
    cfg
}

/// Mine chaos/fault/soft/litmus cells for failures and dedupe them by
/// wedge signature into `<out>/wedges.jsonl`. Each round draws a fresh
/// seed (`seed0 + round`) and sweeps the full chaos, fault and
/// accelerated soft-error matrices over a torture workload plus the
/// `mp`/`sb` litmus races; any wedge or fault whose
/// [`WedgeReport::signature`] has not been seen before is appended
/// with its reproducer.
///
/// Soft cells get a second oracle: a *completed* run is still a
/// failure if the final coherence audit finds violations or any
/// injected flip was never detected (`soft_silent > 0`). Those mine a
/// normalized `silent-corruption|<plan>|<violation kinds>` signature,
/// keyed by plan and violation class — not by seed — so each
/// corruption mode dedupes to one line.
///
/// [`WedgeReport::signature`]: wb_kernel::wedge::WedgeReport::signature
pub fn run_fuzz(
    out: &Path,
    threads: usize,
    rounds: usize,
    seed0: u64,
) -> Result<FuzzReport, String> {
    fs::create_dir_all(out).map_err(|e| format!("creating {}: {e}", out.display()))?;
    let wedges_path = out.join("wedges.jsonl");
    let mut known: BTreeSet<String> = read_lines(&wedges_path)
        .iter()
        .filter_map(|l| json::parse(l).ok())
        .filter_map(|d| d.get("sig").and_then(Json::as_str).map(str::to_owned))
        .collect();
    let mut wedges = OpenOptions::new()
        .create(true)
        .append(true)
        .open(&wedges_path)
        .map_err(|e| format!("opening {}: {e}", wedges_path.display()))?;

    let mut report = FuzzReport { cells: 0, hits: 0, fresh: Vec::new() };
    for round in 0..rounds {
        let seed = seed0.wrapping_add(round as u64);
        let mut jobs: Vec<(String, SystemConfig, Workload)> = Vec::new();
        for (i, fp) in FaultPlan::matrix().into_iter().enumerate() {
            let label = format!("fault:{fp}");
            jobs.push((label, fuzz_config(seed).with_fault(fp), fuzz_workload(2, seed ^ (i as u64), 15)));
        }
        for (i, cp) in ChaosPlan::matrix().into_iter().enumerate() {
            let label = format!("chaos:{cp}");
            let w = fuzz_workload(2, seed ^ (0x1000 + i as u64), 15);
            jobs.push((label, fuzz_config(seed).with_chaos(cp), w));
        }
        for name in ["mp", "sb"] {
            let w = workload_by_name(name, 2).expect("litmus names resolve");
            let cfg = fuzz_config(seed).with_fault(FaultPlan::drop_everywhere(1, 12));
            jobs.push((format!("litmus:{name}"), cfg, w));
        }
        for (i, sp) in SoftPlan::matrix().into_iter().filter(|p| !p.is_none()).enumerate() {
            // Matrix rates are soak-tuned; accelerate so every fuzz
            // cell takes a real barrage inside FUZZ_BUDGET.
            let sp = sp.accelerated(20);
            let label = format!("soft:{sp}");
            let w = fuzz_workload(2, seed ^ (0x2000 + i as u64), 15);
            jobs.push((label, fuzz_config(seed).with_soft(sp), w));
        }
        report.cells += jobs.len();
        let hits = sweep::run_on(threads, jobs, |(label, cfg, w)| {
            let soft_plan = cfg.soft.clone();
            let cfg_seed = cfg.seed;
            let mut sys = System::new(cfg, &w);
            match sys.run(FUZZ_BUDGET) {
                RunOutcome::Wedge(r) | RunOutcome::Fault(r) => {
                    Some((label, r.signature(), r.reproducer.clone()))
                }
                _ => {
                    // Corruption oracle: a run that *finishes* under
                    // soft errors must also audit clean and account
                    // for every flip, or it mined a real failure.
                    let plan = soft_plan?;
                    let audit = sys.run_audit(true);
                    if audit.clean() && sys.soft_silent() == 0 {
                        return None;
                    }
                    let mut kinds: Vec<&str> =
                        audit.violations.iter().map(|v| v.kind.label()).collect();
                    if sys.soft_silent() > 0 {
                        kinds.push("silent-flip");
                    }
                    kinds.sort_unstable();
                    kinds.dedup();
                    let sig = format!("silent-corruption|{}|{}", plan.name, kinds.join(","));
                    let repro = format!(
                        "workload={} seed={cfg_seed:#x} cores={} soft={plan}",
                        w.name,
                        w.cores(),
                    );
                    Some((label, sig, repro))
                }
            }
        });
        for (label, sig, repro) in hits.into_iter().flatten() {
            report.hits += 1;
            if known.insert(sig.clone()) {
                let line = format!(
                    "{{\"sig\":\"{}\",\"cell\":\"{}\",\"repro\":\"{}\"}}",
                    json_escape(&sig),
                    json_escape(&label),
                    json_escape(&repro),
                );
                writeln!(wedges, "{line}")
                    .and_then(|()| wedges.sync_data())
                    .map_err(|e| format!("writing wedges.jsonl: {e}"))?;
                report.fresh.push(sig);
            }
        }
    }
    Ok(report)
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir()
            .join(format!("wb-campaign-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    const TINY: &str = r#"{
        "name": "tiny", "cores": 2, "engine": "skip", "budget": 20000000,
        "workloads": ["mp", "sb"], "arms": ["wb-ooo"],
        "chaos": ["off", "delay-storm"], "faults": ["off"], "seeds": [1, 2]
    }"#;

    #[test]
    fn spec_parses_with_defaults_and_rejects_junk() {
        let spec = CampaignSpec::parse(TINY).expect("tiny spec parses");
        assert_eq!(spec.name, "tiny");
        assert_eq!(spec.arms, ["wb-ooo"]);
        assert_eq!(cells(&spec).len(), 2 * 2 * 2);
        for (src, needle) in [
            (r#"{"workloads":["nope"]}"#, "unknown workload"),
            (r#"{"workloads":["mp"],"arms":["x"]}"#, "unknown arm"),
            (r#"{"workloads":["mp"],"chaos":["x"]}"#, "unknown chaos"),
            (r#"{"workloads":["mp"],"faults":["drop-1-0"]}"#, "bad drop rate"),
            (r#"{"workloads":["mp"],"softs":["x"]}"#, "unknown soft plan"),
            (r#"{"workloads":["mp"],"softs":["tag-flips-x0"]}"#, "zero acceleration"),
            (r#"{"workloads":["mp"],"frobnicate":1}"#, "unknown spec key"),
            (r#"{"workloads":["mp"],"budgets":{"fft":1}}"#, "not in `workloads`"),
            (r#"{}"#, "`workloads` is required"),
        ] {
            let e = CampaignSpec::parse(src).expect_err(src);
            assert!(e.contains(needle), "{src}: got {e}");
        }
    }

    #[test]
    fn seed_ranges_and_budget_overrides_expand() {
        let spec = CampaignSpec::parse(
            r#"{"workloads":["mp","sb"],"seeds":{"first":10,"count":3},
                "budget":500,"budgets":{"sb":900}}"#,
        )
        .expect("parses");
        let cs = cells(&spec);
        assert_eq!(cs.len(), 6);
        assert_eq!(cs[0].seed, 10);
        assert_eq!(cs[2].seed, 12);
        assert_eq!(cs[0].budget, 500);
        assert_eq!(cs[5].budget, 900);
        assert_eq!(cs[0].id, "mp+wb-ooo+off+off+off+s10");
    }

    /// The soft axis expands like chaos/faults, resolves accelerated
    /// names, and lands in the cell configuration.
    #[test]
    fn soft_axis_expands_and_resolves() {
        let spec = CampaignSpec::parse(
            r#"{"workloads":["mp"],"softs":["off","background-radiation-x20"],"seeds":[3]}"#,
        )
        .expect("parses");
        let cs = cells(&spec);
        assert_eq!(cs.len(), 2);
        assert_eq!(cs[0].id, "mp+wb-ooo+off+off+off+s3");
        assert_eq!(cs[1].id, "mp+wb-ooo+off+off+background-radiation-x20+s3");
        assert!(cell_config(&spec, &cs[0], 2, 3).soft.is_none());
        let plan = cell_config(&spec, &cs[1], 2, 3).soft.expect("soft plan installed");
        assert_eq!(plan.name, "background_radiation");
        assert_eq!(plan.clauses[0].mean_gap, 400, "x20 acceleration applied");
        assert!(soft_by_name("tag-flips").expect("known").is_some());
        assert!(soft_by_name("off").expect("off").is_none());
    }

    /// The committed standard campaign spec stays valid, covers the
    /// full 12-kernel suite, and carries the 2x budgets the scaling
    /// sweep established for radix and streamcluster.
    #[test]
    fn standard_spec_parses() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../campaigns/standard.json");
        let src = fs::read_to_string(path).expect("campaigns/standard.json exists");
        let spec = CampaignSpec::parse(&src).expect("standard spec parses");
        assert_eq!(spec.workloads.len(), 12, "full suite");
        assert_eq!(spec.budgets.get("radix"), Some(&400_000_000));
        assert_eq!(spec.budgets.get("streamcluster"), Some(&400_000_000));
        assert_eq!(spec.budget, 200_000_000);
        assert_eq!(cells(&spec).len(), 12 * 4);
    }

    #[test]
    fn result_lines_roundtrip() {
        let r = CellResult {
            id: "mp+wb-ooo+off+off+s1".to_owned(),
            outcome: "wedge".to_owned(),
            cycles: 123,
            retired: 4,
            signature: "deadlock|core0|a->b:c|".to_owned(),
            reproducer: "cargo run \"x\"".to_owned(),
        };
        assert_eq!(CellResult::parse_line(&r.to_json_line()).expect("roundtrips"), r);
        assert!(CellResult::parse_line("{\"cell\":\"x\"").is_err(), "torn line rejected");
    }

    /// An interrupted campaign — manifest truncated mid-run, with both a
    /// torn half-line and an unconfirmed (flushed-but-unmanifested)
    /// result — resumes to a merged output byte-identical to an
    /// uninterrupted run.
    #[test]
    fn resume_after_simulated_crash_is_byte_identical() {
        let spec = CampaignSpec::parse(TINY).expect("parses");
        let reference = tmp_dir("ref");
        let rep = run_campaign(&spec, &reference, 2, None).expect("reference run");
        assert_eq!((rep.total, rep.ran, rep.resumed), (8, 8, 0));
        let merged = fs::read(reference.join("merged.jsonl")).expect("merged exists");

        // Forge the crash: keep 3 completed cells, plus one result line
        // whose manifest entry never landed, plus a torn final line.
        let crashed = tmp_dir("crash");
        fs::create_dir_all(&crashed).expect("mkdir");
        let results = fs::read_to_string(reference.join("results.jsonl")).expect("results");
        let manifest = fs::read_to_string(reference.join("manifest")).expect("manifest");
        let keep = |s: &str, n: usize| {
            s.lines().take(n).map(|l| format!("{l}\n")).collect::<String>()
        };
        let mut partial = keep(&results, 4);
        partial.push_str("{\"cell\":\"torn");
        fs::write(crashed.join("results.jsonl"), partial).expect("write");
        fs::write(crashed.join("manifest"), keep(&manifest, 3)).expect("write");

        let rep = run_campaign(&spec, &crashed, 2, None).expect("resumed run");
        assert_eq!(rep.resumed, 3, "three cells were durable");
        assert_eq!(rep.ran, 5, "five cells re-ran (incl. the unconfirmed one)");
        assert_eq!(
            fs::read(crashed.join("merged.jsonl")).expect("merged"),
            merged,
            "resumed merge must be byte-identical to the uninterrupted run"
        );
        // Fully-resumed rerun is a no-op that still rewrites merged.jsonl.
        let rep = run_campaign(&spec, &crashed, 2, None).expect("no-op rerun");
        assert_eq!((rep.ran, rep.resumed), (0, 8));
        let _ = fs::remove_dir_all(&reference);
        let _ = fs::remove_dir_all(&crashed);
    }

    /// Warm-start campaigns are deterministic across independent runs
    /// and record post-warmup cycles (warm cycles included in `cycles`).
    #[test]
    fn warm_start_campaign_is_deterministic() {
        let spec = CampaignSpec::parse(
            r#"{"name":"warm","cores":2,"budget":20000000,"warmup":2000,"jitter":25,
                "workloads":["fft"],"arms":["wb-ooo"],
                "seeds":{"first":1,"count":4}}"#,
        )
        .expect("parses");
        let a = tmp_dir("warm-a");
        let b = tmp_dir("warm-b");
        run_campaign(&spec, &a, 2, None).expect("run a");
        run_campaign(&spec, &b, 1, None).expect("run b");
        let ma = fs::read(a.join("merged.jsonl")).expect("a merged");
        assert_eq!(ma, fs::read(b.join("merged.jsonl")).expect("b merged"));
        let first = CellResult::parse_line(
            String::from_utf8(ma).expect("utf8").lines().next().expect("one line"),
        )
        .expect("parses");
        assert!(first.cycles >= 2000, "cycles include the warm-up prefix");
        let _ = fs::remove_dir_all(&a);
        let _ = fs::remove_dir_all(&b);
    }

    /// The fuzz miner finds at least one wedge signature on the lossy
    /// litmus cells and never records the same signature twice.
    #[test]
    fn fuzz_dedupes_by_signature() {
        let out = tmp_dir("fuzz");
        let rep = run_fuzz(&out, 2, 2, 7).expect("fuzz runs");
        assert!(rep.cells > 0);
        let lines = read_lines(&out.join("wedges.jsonl"));
        assert_eq!(lines.len(), rep.fresh.len());
        let sigs: BTreeSet<String> = lines
            .iter()
            .map(|l| {
                json::parse(l)
                    .expect("wedge line parses")
                    .get("sig")
                    .and_then(Json::as_str)
                    .expect("has sig")
                    .to_owned()
            })
            .collect();
        assert_eq!(sigs.len(), lines.len(), "signatures are unique");
        // A second pass over the same seeds adds nothing new.
        let rep2 = run_fuzz(&out, 2, 2, 7).expect("fuzz reruns");
        assert!(rep2.fresh.is_empty(), "rerun re-mined only known signatures");
        let _ = fs::remove_dir_all(&out);
    }
}
