//! A lightweight, dependency-free timing harness: the in-tree
//! replacement for criterion (the workspace builds with an empty cargo
//! registry; see DESIGN.md, "zero external dependencies").
//!
//! Each `[[bench]]` target declares `harness = false` and drives a
//! [`BenchGroup`] from `main`: one warmup iteration, then `sample_size`
//! timed iterations, reporting the median. `finish()` prints a
//! fixed-width table and writes `BENCH_<group>.json` next to the
//! working directory (override with `WB_BENCH_DIR`), with per-run
//! simulator counters embedded via [`Stats::to_json`].
//!
//! # Environment knobs
//!
//! | variable           | effect                                    |
//! |--------------------|-------------------------------------------|
//! | `WB_BENCH_SAMPLES` | override every group's sample size        |
//! | `WB_BENCH_DIR`     | directory for the `BENCH_*.json` files    |

use std::hint::black_box;
use std::time::Instant;
use wb_kernel::Stats;

/// One measured benchmark: its samples and optional attached counters.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark id within the group (e.g. `"campaign/MP"`).
    pub name: String,
    /// Wall-clock nanoseconds of each timed iteration.
    pub samples_ns: Vec<u128>,
    /// Simulator counters from the last iteration, when the closure
    /// exposes them (see [`BenchGroup::bench_with_stats`]).
    pub stats: Option<Stats>,
}

impl BenchResult {
    /// Median of the timed samples, in nanoseconds.
    pub fn median_ns(&self) -> u128 {
        let mut s = self.samples_ns.clone();
        s.sort_unstable();
        s[s.len() / 2]
    }

    /// Arithmetic mean of the timed samples, in nanoseconds.
    pub fn mean_ns(&self) -> u128 {
        self.samples_ns.iter().sum::<u128>() / self.samples_ns.len() as u128
    }
}

/// A named group of benchmarks measured with the same sample count.
#[derive(Debug)]
pub struct BenchGroup {
    group: String,
    sample_size: usize,
    results: Vec<BenchResult>,
}

impl BenchGroup {
    /// A group with the default sample size of 10 (criterion's floor),
    /// unless `WB_BENCH_SAMPLES` overrides it.
    pub fn new(group: &str) -> Self {
        let sample_size = std::env::var("WB_BENCH_SAMPLES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(10);
        BenchGroup { group: group.to_owned(), sample_size, results: Vec::new() }
    }

    /// Set the timed-iteration count for subsequent `bench` calls
    /// (ignored when `WB_BENCH_SAMPLES` is set).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if std::env::var("WB_BENCH_SAMPLES").is_err() {
            self.sample_size = n.max(1);
        }
        self
    }

    /// Measure `f`: one warmup iteration, then `sample_size` timed ones.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) {
        self.run(name, &mut || {
            black_box(f());
            None
        });
    }

    /// Like [`bench`](Self::bench), for workloads that yield simulator
    /// counters: the last iteration's [`Stats`] are embedded in the JSON
    /// report, tying wall-clock throughput to what was simulated.
    pub fn bench_with_stats(&mut self, name: &str, mut f: impl FnMut() -> Stats) {
        self.run(name, &mut || Some(black_box(f())));
    }

    fn run(&mut self, name: &str, f: &mut dyn FnMut() -> Option<Stats>) {
        let _warmup = f();
        let mut samples_ns = Vec::with_capacity(self.sample_size);
        let mut stats = None;
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            stats = f();
            samples_ns.push(t0.elapsed().as_nanos());
        }
        let r = BenchResult { name: name.to_owned(), samples_ns, stats };
        eprintln!(
            "{:<40} median {:>12} ns   mean {:>12} ns   ({} samples)",
            format!("{}/{}", self.group, r.name),
            r.median_ns(),
            r.mean_ns(),
            r.samples_ns.len()
        );
        self.results.push(r);
    }

    /// Render the group's JSON report (the `BENCH_<group>.json` payload).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{{\"group\":\"{}\",\"benches\":[", self.group));
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"median_ns\":{},\"mean_ns\":{},\"samples_ns\":[{}]",
                r.name,
                r.median_ns(),
                r.mean_ns(),
                r.samples_ns.iter().map(|n| n.to_string()).collect::<Vec<_>>().join(",")
            ));
            if let Some(s) = &r.stats {
                out.push_str(",\"stats\":");
                out.push_str(&s.to_json());
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Print the summary table and write `BENCH_<group>.json`.
    ///
    /// # Panics
    ///
    /// Panics if the rendered report is not valid JSON (a bench name
    /// with an unescaped quote, say — caught here rather than by
    /// whatever later tries to read the file), or if it cannot be
    /// written.
    pub fn finish(self) {
        let json = self.to_json();
        wb_kernel::json::parse(&json)
            .unwrap_or_else(|e| panic!("BENCH_{} JSON invalid: {e}", self.group));
        let dir = std::env::var("WB_BENCH_DIR").unwrap_or_else(|_| ".".to_owned());
        let path = format!("{dir}/BENCH_{}.json", self.group);
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!("wrote {path}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn medians_and_means() {
        let r = BenchResult { name: "x".into(), samples_ns: vec![5, 1, 9], stats: None };
        assert_eq!(r.median_ns(), 5);
        assert_eq!(r.mean_ns(), 5);
    }

    #[test]
    fn bench_records_requested_samples() {
        let mut g = BenchGroup::new("unit");
        g.sample_size(3);
        let mut calls = 0u32;
        g.bench("count", || calls += 1);
        // one warmup + three timed
        assert_eq!(calls, 4);
        assert_eq!(g.results[0].samples_ns.len(), 3);
    }

    #[test]
    fn reports_are_valid_json_and_breakage_is_detectable() {
        let mut g = BenchGroup::new("unit");
        g.sample_size(1);
        g.bench("clean", || ());
        wb_kernel::json::parse(&g.to_json()).expect("report must be strict JSON");
        // A name that breaks the hand-rolled emitter must be *caught*:
        // the same parse `finish()` runs rejects the rendered report.
        let mut bad = BenchGroup::new("unit");
        bad.sample_size(1);
        bad.bench("evil\"name", || ());
        assert!(wb_kernel::json::parse(&bad.to_json()).is_err());
    }

    #[test]
    fn json_embeds_stats() {
        let mut g = BenchGroup::new("unit");
        g.sample_size(1);
        g.bench_with_stats("with_stats", || {
            let mut s = Stats::new();
            s.add("cycles", 42);
            s
        });
        let json = g.to_json();
        assert!(json.contains("\"group\":\"unit\""), "{json}");
        assert!(json.contains("\"name\":\"with_stats\""), "{json}");
        assert!(json.contains("\"stats\":{\"cycles\":42}"), "{json}");
        assert!(json.contains("\"median_ns\":"), "{json}");
    }
}
