//! Experiment harness shared by the per-table/per-figure binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper; this library holds the configuration sweep, run and
//! text-rendering machinery they share. See DESIGN.md for the experiment
//! index and EXPERIMENTS.md for paper-vs-measured results.

pub mod campaign;
pub mod ledger;
pub mod sweep;
pub mod timing;

use wb_isa::Workload;
use wb_kernel::config::{CommitMode, CoreClass, EngineMode, ProtocolKind, SystemConfig};
use writersblock::{Report, RunOutcome, System};

pub use timing::{BenchGroup, BenchResult};

/// Default per-run cycle budget for evaluation runs.
pub const RUN_BUDGET: u64 = 200_000_000;

/// A single evaluation point: one workload on one configuration.
#[derive(Debug, Clone)]
pub struct RunResult {
    pub bench: String,
    pub class: CoreClass,
    pub commit: CommitMode,
    pub protocol: ProtocolKind,
    pub report: Report,
}

/// Build the evaluation configuration for 16 cores of `class` with the
/// given commit mode (protocol inferred: WritersBlock for the relaxed
/// mode and for in-order/OoO when `wb_protocol` is set).
pub fn eval_config(class: CoreClass, commit: CommitMode, wb_protocol: bool) -> SystemConfig {
    // Evaluation sweeps run on the cycle-skipping engine: cycle-exact
    // by construction (see DESIGN.md "Performance engineering") and
    // much faster through barriers and other quiescent phases.
    let mut cfg = SystemConfig::new(class)
        .with_commit(commit)
        .with_engine(EngineMode::Skip)
        .without_event_log();
    if wb_protocol {
        cfg = cfg.with_protocol(ProtocolKind::WritersBlock);
    }
    cfg
}

/// Run one workload to completion and return its report.
///
/// # Panics
///
/// Panics if the run deadlocks or exhausts [`RUN_BUDGET`] — both indicate
/// simulator bugs, not measurement noise.
pub fn run_one(workload: &Workload, cfg: SystemConfig) -> RunResult {
    let class = match cfg.core.rob_entries {
        32 => CoreClass::Slm,
        128 => CoreClass::Nhm,
        _ => CoreClass::Hsw,
    };
    let commit = cfg.core.commit_mode;
    let protocol = cfg.protocol;
    let mut sys = System::new(cfg, workload);
    let outcome = sys.run(RUN_BUDGET);
    assert_eq!(
        outcome,
        RunOutcome::Done,
        "{} on {class}/{commit} ended with {outcome:?} at cycle {}",
        workload.name,
        sys.now()
    );
    RunResult { bench: workload.name.clone(), class, commit, protocol, report: sys.report() }
}

/// Render a simple fixed-width table: `rows` of (label, values).
pub fn render_table(title: &str, headers: &[&str], rows: &[(String, Vec<String>)]) -> String {
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    out.push_str(&format!("{:<16}", ""));
    for h in headers {
        out.push_str(&format!("{h:>14}"));
    }
    out.push('\n');
    for (label, vals) in rows {
        out.push_str(&format!("{label:<16}"));
        for v in vals {
            out.push_str(&format!("{v:>14}"));
        }
        out.push('\n');
    }
    out
}

/// Run `f` over `items` on all available cores, preserving order.
/// Thin alias for [`sweep::run`], kept for existing call sites.
pub fn par_map<T: Send, R: Send>(items: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R> {
    sweep::run(items, f)
}

/// Geometric mean of a slice (1.0 for empty input).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_math() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-9);
        assert_eq!(geomean(&[]), 1.0);
    }

    #[test]
    fn render_table_contains_everything() {
        let t = render_table(
            "T",
            &["a", "b"],
            &[("row1".into(), vec!["1".into(), "2".into()])],
        );
        assert!(t.contains("T") && t.contains("row1") && t.contains('2'));
    }

    #[test]
    fn eval_config_protocols() {
        let c = eval_config(CoreClass::Slm, CommitMode::OutOfOrderWb, false);
        assert_eq!(c.protocol, ProtocolKind::WritersBlock);
        let c = eval_config(CoreClass::Slm, CommitMode::InOrder, true);
        assert_eq!(c.protocol, ProtocolKind::WritersBlock);
        let c = eval_config(CoreClass::Slm, CommitMode::InOrder, false);
        assert_eq!(c.protocol, ProtocolKind::BaseMesi);
        assert!(!c.record_events);
    }

    #[test]
    fn par_map_preserves_order() {
        let out = par_map((0..50).collect::<Vec<i32>>(), |x| x * 2);
        assert_eq!(out, (0..50).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn run_one_smoke() {
        let w = wb_workloads::splash::fft(4, wb_workloads::Scale::Test);
        let cfg = eval_config(CoreClass::Slm, CommitMode::OutOfOrderWb, false).with_cores(4);
        let r = run_one(&w, cfg);
        assert!(r.report.cycles > 0);
        assert_eq!(r.bench, "fft");
    }
}
