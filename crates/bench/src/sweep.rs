//! Deterministic parallel sweep runner.
//!
//! Every simulation in this repo is single-threaded and fully
//! deterministic, so a sweep over (workload, config, seed) cells is
//! embarrassingly parallel: cells share nothing, and the only ordering
//! requirement is that results come back in input order so merged
//! output (tables, litmus histograms, JSON) is byte-identical no matter
//! how many workers ran. The runner is a plain work queue on
//! `std::thread::scope` — no external dependencies.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Run `f` over `items` on exactly `threads` worker threads (clamped to
/// at least 1), returning results in input order. With `threads == 1`
/// the items run inline on the calling thread — the serial baseline the
/// scaling benchmark compares against.
pub fn run_on<T: Send, R: Send>(
    threads: usize,
    items: Vec<T>,
    f: impl Fn(T) -> R + Sync,
) -> Vec<R> {
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let work: Mutex<VecDeque<(usize, T)>> = Mutex::new(items.into_iter().enumerate().collect());
    let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let job = work.lock().expect("work queue").pop_front();
                let Some((i, item)) = job else { break };
                let r = f(item);
                results.lock().expect("results").push((i, r));
            });
        }
    });
    let mut out = results.into_inner().expect("results");
    out.sort_by_key(|(i, _)| *i);
    out.into_iter().map(|(_, r)| r).collect()
}

/// [`run_on`] with one worker per available hardware thread.
pub fn run<T: Send, R: Send>(items: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R> {
    let n = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4);
    run_on(n, items, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_across_thread_counts() {
        let items: Vec<u64> = (0..64).collect();
        let serial = run_on(1, items.clone(), |x| x * x);
        for threads in [2, 4, 7] {
            assert_eq!(run_on(threads, items.clone(), |x| x * x), serial);
        }
    }

    #[test]
    fn single_thread_runs_inline() {
        let tid = std::thread::current().id();
        let seen = run_on(1, vec![(), ()], |()| std::thread::current().id());
        assert!(seen.iter().all(|&t| t == tid));
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u32> = run(Vec::<u32>::new(), |x| x);
        assert!(out.is_empty());
    }
}
