//! Programs: immutable instruction sequences.

use crate::builder::ProgramBuilder;
use crate::inst::Inst;

/// An immutable program for one core.
///
/// Construct with [`Program::builder`] (label-resolving) or directly
/// [`Program::from_insts`] when targets are already absolute.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    insts: Vec<Inst>,
}

impl Program {
    /// Start building a program with labels.
    pub fn builder() -> ProgramBuilder {
        ProgramBuilder::new()
    }

    /// Wrap a raw instruction vector.
    ///
    /// # Panics
    ///
    /// Panics if any branch or jump target is out of range.
    pub fn from_insts(insts: Vec<Inst>) -> Self {
        for (i, inst) in insts.iter().enumerate() {
            let target = match inst {
                Inst::Branch { target, .. } | Inst::Jump { target, .. } => Some(*target),
                _ => None,
            };
            if let Some(t) = target {
                assert!(
                    (t as usize) < insts.len(),
                    "instruction {i} targets {t}, beyond program length {}",
                    insts.len()
                );
            }
        }
        Program { insts }
    }

    /// The instruction at `pc`, or `None` past the end (treated as an
    /// implicit halt by the fetch unit).
    #[inline]
    pub fn fetch(&self, pc: u32) -> Option<Inst> {
        self.insts.get(pc as usize).copied()
    }

    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True for an empty program.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Iterate over the instructions.
    pub fn iter(&self) -> impl Iterator<Item = &Inst> {
        self.insts.iter()
    }
}

impl std::fmt::Display for Program {
    /// A numbered listing (disassembly).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (pc, inst) in self.insts.iter().enumerate() {
            writeln!(f, "{pc:>4}: {inst}")?;
        }
        Ok(())
    }
}

impl From<Vec<Inst>> for Program {
    fn from(insts: Vec<Inst>) -> Self {
        Program::from_insts(insts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{Cond, Reg};

    #[test]
    fn fetch_in_and_out_of_range() {
        let p = Program::from_insts(vec![Inst::Nop, Inst::Halt]);
        assert_eq!(p.fetch(0), Some(Inst::Nop));
        assert_eq!(p.fetch(1), Some(Inst::Halt));
        assert_eq!(p.fetch(2), None);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }

    #[test]
    #[should_panic(expected = "targets")]
    fn rejects_out_of_range_target() {
        let _ = Program::from_insts(vec![Inst::Branch {
            cond: Cond::Eq,
            rs1: Reg(0),
            rs2: Reg(0),
            target: 5,
        }]);
    }

    #[test]
    fn listing_contains_every_pc() {
        let p = Program::from_insts(vec![Inst::Nop, Inst::Halt]);
        let text = p.to_string();
        assert!(text.contains("0: nop"));
        assert!(text.contains("1: halt"));
    }

    #[test]
    fn empty_program() {
        let p = Program::default();
        assert!(p.is_empty());
        assert_eq!(p.fetch(0), None);
    }
}
