//! A small assembler: emit instructions, create and bind labels, build a
//! [`Program`] with all branch targets resolved.

use crate::inst::{AluOp, AmoOp, Cond, Inst, Reg};
use crate::program::Program;

/// A forward- or backward-referenced code label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Builder for [`Program`]s.
///
/// # Example
///
/// ```
/// use wb_isa::{ProgramBuilder, Reg, Cond};
///
/// // spin: ld r1,[r2]; beq r1,r0,spin   (spin until non-zero)
/// let mut b = ProgramBuilder::new();
/// b.imm(Reg(2), 0x80);
/// let spin = b.here();
/// b.load(Reg(1), Reg(2), 0);
/// b.branch(Cond::Eq, Reg(1), Reg(0), spin);
/// b.halt();
/// let p = b.build();
/// assert_eq!(p.len(), 4);
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    insts: Vec<Inst>,
    /// label id -> bound pc
    bound: Vec<Option<u32>>,
    /// (inst index, label) pairs awaiting resolution
    fixups: Vec<(usize, Label)>,
}

impl ProgramBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        ProgramBuilder::default()
    }

    /// Current instruction index (where the next emitted instruction goes).
    pub fn pc(&self) -> u32 {
        self.insts.len() as u32
    }

    /// Create an unbound label for forward references.
    pub fn new_label(&mut self) -> Label {
        self.bound.push(None);
        Label(self.bound.len() - 1)
    }

    /// Bind `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) {
        assert!(self.bound[label.0].is_none(), "label bound twice");
        self.bound[label.0] = Some(self.pc());
    }

    /// Create a label already bound to the current position (for backward
    /// branches).
    pub fn here(&mut self) -> Label {
        let l = self.new_label();
        self.bind(l);
        l
    }

    /// Emit a raw instruction.
    pub fn push(&mut self, inst: Inst) -> &mut Self {
        self.insts.push(inst);
        self
    }

    /// `rd = value`
    pub fn imm(&mut self, rd: Reg, value: u64) -> &mut Self {
        self.push(Inst::Imm { rd, value })
    }

    /// `rd = rs1 <op> rs2`
    pub fn alu(&mut self, op: AluOp, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.push(Inst::Alu { op, rd, rs1, rs2 })
    }

    /// `rd = rs1 <op> imm`
    pub fn alui(&mut self, op: AluOp, rd: Reg, rs1: Reg, imm: u64) -> &mut Self {
        self.push(Inst::AluImm { op, rd, rs1, imm })
    }

    /// `rd = rs1 + rs2`
    pub fn add(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.alu(AluOp::Add, rd, rs1, rs2)
    }

    /// `rd = rs1 + imm`
    pub fn addi(&mut self, rd: Reg, rs1: Reg, imm: u64) -> &mut Self {
        self.alui(AluOp::Add, rd, rs1, imm)
    }

    /// `rd = mem[base + offset]`
    pub fn load(&mut self, rd: Reg, base: Reg, offset: i64) -> &mut Self {
        self.push(Inst::Load { rd, base, offset })
    }

    /// `mem[base + offset] = src`
    pub fn store(&mut self, src: Reg, base: Reg, offset: i64) -> &mut Self {
        self.push(Inst::Store { src, base, offset })
    }

    /// Atomic swap: `rd = mem[base+offset]; mem[base+offset] = src`.
    pub fn amo_swap(&mut self, rd: Reg, base: Reg, offset: i64, src: Reg) -> &mut Self {
        self.push(Inst::Amo { op: AmoOp::Swap, rd, base, offset, src, cmp: Reg::ZERO })
    }

    /// Atomic fetch-add: `rd = mem[..]; mem[..] += src`.
    pub fn amo_add(&mut self, rd: Reg, base: Reg, offset: i64, src: Reg) -> &mut Self {
        self.push(Inst::Amo { op: AmoOp::Add, rd, base, offset, src, cmp: Reg::ZERO })
    }

    /// Atomic compare-and-swap: `rd = mem[..]; if rd == cmp { mem[..] = src }`.
    pub fn amo_cas(&mut self, rd: Reg, base: Reg, offset: i64, cmp: Reg, src: Reg) -> &mut Self {
        self.push(Inst::Amo { op: AmoOp::Cas, rd, base, offset, src, cmp })
    }

    /// Conditional branch to `label`.
    pub fn branch(&mut self, cond: Cond, rs1: Reg, rs2: Reg, label: Label) -> &mut Self {
        self.fixups.push((self.insts.len(), label));
        self.push(Inst::Branch { cond, rs1, rs2, target: u32::MAX })
    }

    /// Unconditional jump to `label`.
    pub fn jump(&mut self, label: Label) -> &mut Self {
        self.fixups.push((self.insts.len(), label));
        self.push(Inst::Jump { target: u32::MAX })
    }

    /// Emit a `Nop`.
    pub fn nop(&mut self) -> &mut Self {
        self.push(Inst::Nop)
    }

    /// Emit `n` `Nop`s (useful to pad distance between interesting ops).
    pub fn nops(&mut self, n: usize) -> &mut Self {
        for _ in 0..n {
            self.nop();
        }
        self
    }

    /// Emit a `Halt`.
    pub fn halt(&mut self) -> &mut Self {
        self.push(Inst::Halt)
    }

    /// Resolve labels and produce the program.
    ///
    /// # Panics
    ///
    /// Panics if any referenced label was never bound.
    pub fn build(mut self) -> Program {
        for (idx, label) in std::mem::take(&mut self.fixups) {
            let target = self.bound[label.0].unwrap_or_else(|| panic!("label {label:?} never bound"));
            match &mut self.insts[idx] {
                Inst::Branch { target: t, .. } | Inst::Jump { target: t } => *t = target,
                other => unreachable!("fixup on non-branch {other:?}"),
            }
        }
        Program::from_insts(self.insts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backward_branch_resolves() {
        let mut b = ProgramBuilder::new();
        let top = b.here();
        b.nop();
        b.branch(Cond::Eq, Reg(0), Reg(0), top);
        let p = b.build();
        assert_eq!(p.fetch(1), Some(Inst::Branch { cond: Cond::Eq, rs1: Reg(0), rs2: Reg(0), target: 0 }));
    }

    #[test]
    fn forward_branch_resolves() {
        let mut b = ProgramBuilder::new();
        let out = b.new_label();
        b.branch(Cond::Ne, Reg(1), Reg(0), out);
        b.nop();
        b.bind(out);
        b.halt();
        let p = b.build();
        match p.fetch(0) {
            Some(Inst::Branch { target, .. }) => assert_eq!(target, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn jump_resolves() {
        let mut b = ProgramBuilder::new();
        let end = b.new_label();
        b.jump(end);
        b.nop();
        b.bind(end);
        b.halt();
        let p = b.build();
        assert_eq!(p.fetch(0), Some(Inst::Jump { target: 2 }));
    }

    #[test]
    #[should_panic(expected = "never bound")]
    fn unbound_label_panics() {
        let mut b = ProgramBuilder::new();
        let l = b.new_label();
        b.jump(l);
        let _ = b.build();
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut b = ProgramBuilder::new();
        let l = b.here();
        b.bind(l);
    }

    #[test]
    fn emit_helpers() {
        let mut b = ProgramBuilder::new();
        b.imm(Reg(1), 5)
            .addi(Reg(2), Reg(1), 3)
            .add(Reg(3), Reg(1), Reg(2))
            .load(Reg(4), Reg(3), 8)
            .store(Reg(4), Reg(3), 16)
            .amo_swap(Reg(5), Reg(3), 0, Reg(4))
            .amo_add(Reg(5), Reg(3), 0, Reg(4))
            .amo_cas(Reg(5), Reg(3), 0, Reg(1), Reg(4))
            .nops(2)
            .halt();
        assert_eq!(b.build().len(), 11);
    }
}
