//! The simulator's mini instruction set.
//!
//! Both the litmus tests of the paper's tables and the synthetic
//! SPLASH/PARSEC-like workloads are expressed as small programs in this ISA,
//! executed for real (with register renaming, speculation and a coherent
//! memory system) by the out-of-order core model in `wb-cpu`.
//!
//! The ISA is deliberately tiny but sufficient:
//!
//! - 32 integer registers, `r0` hardwired to zero;
//! - 8-byte loads/stores with base+offset addressing (so *unresolved
//!   addresses* arise naturally from data dependences);
//! - atomic read-modify-writes (swap / fetch-add / compare-and-swap) to
//!   build spinlocks and barriers;
//! - conditional branches, which make spin loops — the protagonist of the
//!   paper's livelock discussion — real control flow.
//!
//! # Example
//!
//! ```
//! use wb_isa::{Program, Reg};
//!
//! // Table 1, core 0:   ld ra,y ; ld rb,x
//! let mut p = Program::builder();
//! let (ra, rb, ry, rx) = (Reg(1), Reg(2), Reg(3), Reg(4));
//! p.imm(ry, 0x100); // &y
//! p.imm(rx, 0x200); // &x
//! p.load(ra, ry, 0);
//! p.load(rb, rx, 0);
//! p.halt();
//! let prog = p.build();
//! assert_eq!(prog.len(), 5);
//! ```

pub mod asm;
pub mod builder;
pub mod inst;
pub mod interp;
pub mod program;
pub mod workload;

pub use asm::{parse_program, ParseAsmError};
pub use builder::{Label, ProgramBuilder};
pub use inst::{AluOp, AmoOp, Cond, Inst, Reg};
pub use interp::{ArchState, InterpOutcome};
pub use program::Program;
pub use workload::Workload;
