//! A small assembler: parse the textual instruction syntax produced by
//! the [`std::fmt::Display`] implementations back into a [`Program`].
//!
//! The format is exactly what [`Program`]'s listing prints, so
//! `parse_program(&prog.to_string())` round-trips. Lines may carry an
//! optional `N:` prefix (ignored — targets are the absolute indices in
//! branch operands), blank lines, and `;`/`#` comments.
//!
//! # Example
//!
//! ```
//! use wb_isa::asm::parse_program;
//!
//! let p = parse_program(
//!     "imm r1, 0x40
//!      ld r2, [r1+0]
//!      b.ne r2, r0, @1
//!      halt",
//! ).unwrap();
//! assert_eq!(p.len(), 4);
//! ```

use crate::inst::{AluOp, AmoOp, Cond, Inst, Reg};
use crate::program::Program;

/// A parse failure, with the offending line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAsmError {
    /// 1-based source line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseAsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseAsmError {}

fn err(line: usize, message: impl Into<String>) -> ParseAsmError {
    ParseAsmError { line, message: message.into() }
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, ParseAsmError> {
    let t = tok.trim().trim_end_matches(',');
    let num = t.strip_prefix('r').ok_or_else(|| err(line, format!("expected register, got '{t}'")))?;
    let n: u8 = num.parse().map_err(|_| err(line, format!("bad register '{t}'")))?;
    if (n as usize) < Reg::COUNT {
        Ok(Reg(n))
    } else {
        Err(err(line, format!("register {t} out of range")))
    }
}

fn parse_u64(tok: &str, line: usize) -> Result<u64, ParseAsmError> {
    let t = tok.trim().trim_end_matches(',');
    let r = if let Some(hex) = t.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        t.parse()
    };
    r.map_err(|_| err(line, format!("bad number '{t}'")))
}

fn parse_target(tok: &str, line: usize) -> Result<u32, ParseAsmError> {
    let t = tok.trim().trim_end_matches(',');
    let n = t.strip_prefix('@').ok_or_else(|| err(line, format!("expected @target, got '{t}'")))?;
    n.parse().map_err(|_| err(line, format!("bad target '{t}'")))
}

/// Parse `[rN+off]` / `[rN-off]`.
fn parse_mem(tok: &str, line: usize) -> Result<(Reg, i64), ParseAsmError> {
    let t = tok.trim().trim_end_matches(',');
    let inner = t
        .strip_prefix('[')
        .and_then(|x| x.strip_suffix(']'))
        .ok_or_else(|| err(line, format!("expected [reg+off], got '{t}'")))?;
    let split = inner
        .char_indices()
        .find(|(i, c)| *i > 0 && (*c == '+' || *c == '-'))
        .map(|(i, _)| i)
        .ok_or_else(|| err(line, format!("missing offset in '{t}'")))?;
    let base = parse_reg(&inner[..split], line)?;
    let off: i64 =
        inner[split..].parse().map_err(|_| err(line, format!("bad offset in '{t}'")))?;
    Ok((base, off))
}

fn parse_alu_op(name: &str) -> Option<AluOp> {
    Some(match name {
        "add" => AluOp::Add,
        "sub" => AluOp::Sub,
        "and" => AluOp::And,
        "or" => AluOp::Or,
        "xor" => AluOp::Xor,
        "mul" => AluOp::Mul,
        "shl" => AluOp::Shl,
        "shr" => AluOp::Shr,
        _ => return None,
    })
}

fn parse_inst(text: &str, line: usize) -> Result<Inst, ParseAsmError> {
    let mut parts = text.split_whitespace();
    let mnemonic = parts.next().ok_or_else(|| err(line, "empty instruction"))?;
    let rest: Vec<&str> = parts.collect();
    let need = |n: usize| -> Result<(), ParseAsmError> {
        if rest.len() == n {
            Ok(())
        } else {
            Err(err(line, format!("'{mnemonic}' expects {n} operands, got {}", rest.len())))
        }
    };
    match mnemonic {
        "nop" => {
            need(0)?;
            Ok(Inst::Nop)
        }
        "halt" => {
            need(0)?;
            Ok(Inst::Halt)
        }
        "imm" => {
            need(2)?;
            Ok(Inst::Imm { rd: parse_reg(rest[0], line)?, value: parse_u64(rest[1], line)? })
        }
        "ld" => {
            need(2)?;
            let (base, offset) = parse_mem(rest[1], line)?;
            Ok(Inst::Load { rd: parse_reg(rest[0], line)?, base, offset })
        }
        "st" => {
            need(2)?;
            let (base, offset) = parse_mem(rest[1], line)?;
            Ok(Inst::Store { src: parse_reg(rest[0], line)?, base, offset })
        }
        "j" => {
            need(1)?;
            Ok(Inst::Jump { target: parse_target(rest[0], line)? })
        }
        m if m.starts_with("b.") => {
            need(3)?;
            let cond = match &m[2..] {
                "eq" => Cond::Eq,
                "ne" => Cond::Ne,
                "lt" => Cond::Lt,
                "ge" => Cond::Ge,
                other => return Err(err(line, format!("unknown condition '{other}'"))),
            };
            Ok(Inst::Branch {
                cond,
                rs1: parse_reg(rest[0], line)?,
                rs2: parse_reg(rest[1], line)?,
                target: parse_target(rest[2], line)?,
            })
        }
        m if m.starts_with("amo.") => {
            need(3)?;
            let rd = parse_reg(rest[0], line)?;
            let (base, offset) = parse_mem(rest[1], line)?;
            match &m[4..] {
                "swap" | "add" => {
                    let op = if &m[4..] == "swap" { AmoOp::Swap } else { AmoOp::Add };
                    Ok(Inst::Amo { op, rd, base, offset, src: parse_reg(rest[2], line)?, cmp: Reg::ZERO })
                }
                "cas" => {
                    let (cmp_s, src_s) = rest[2]
                        .split_once("=>")
                        .ok_or_else(|| err(line, "amo.cas expects 'cmp=>src'"))?;
                    Ok(Inst::Amo {
                        op: AmoOp::Cas,
                        rd,
                        base,
                        offset,
                        src: parse_reg(src_s, line)?,
                        cmp: parse_reg(cmp_s, line)?,
                    })
                }
                other => Err(err(line, format!("unknown atomic '{other}'"))),
            }
        }
        m => {
            // ALU forms: "add r1, r2, r3" or "addi r1, r2, 0x5".
            if let Some(op_name) = m.strip_suffix('i') {
                if let Some(op) = parse_alu_op(op_name) {
                    need(3)?;
                    return Ok(Inst::AluImm {
                        op,
                        rd: parse_reg(rest[0], line)?,
                        rs1: parse_reg(rest[1], line)?,
                        imm: parse_u64(rest[2], line)?,
                    });
                }
            }
            if let Some(op) = parse_alu_op(m) {
                need(3)?;
                return Ok(Inst::Alu {
                    op,
                    rd: parse_reg(rest[0], line)?,
                    rs1: parse_reg(rest[1], line)?,
                    rs2: parse_reg(rest[2], line)?,
                });
            }
            Err(err(line, format!("unknown mnemonic '{m}'")))
        }
    }
}

/// Parse a program listing (the format [`Program`]'s `Display` prints).
///
/// # Errors
///
/// Returns the first syntax error with its line number; also rejects
/// out-of-range branch targets (via [`Program::from_insts`]'s contract,
/// reported as an error instead of a panic).
pub fn parse_program(text: &str) -> Result<Program, ParseAsmError> {
    let mut insts = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        // Strip comments and the optional "N:" prefix.
        let mut s = raw;
        if let Some(pos) = s.find([';', '#']) {
            s = &s[..pos];
        }
        let s = s.trim();
        if s.is_empty() {
            continue;
        }
        let s = match s.split_once(':') {
            Some((prefix, rest)) if prefix.trim().chars().all(|c| c.is_ascii_digit()) => rest.trim(),
            _ => s,
        };
        if s.is_empty() {
            continue;
        }
        insts.push(parse_inst(s, line_no)?);
    }
    let len = insts.len();
    for (i, inst) in insts.iter().enumerate() {
        let target = match inst {
            Inst::Branch { target, .. } | Inst::Jump { target } => Some(*target),
            _ => None,
        };
        if let Some(t) = target {
            if t as usize >= len {
                return Err(err(i + 1, format!("target @{t} beyond program length {len}")));
            }
        }
    }
    Ok(Program::from_insts(insts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wb_kernel::check::prelude::*;

    #[test]
    fn parses_all_forms() {
        let text = "
            ; a comment
            imm r1, 0x40        # another comment
            ld r2, [r1+0]
            st r2, [r1+8]
            add r3, r1, r2
            subi r4, r3, 5
            amo.swap r5, [r1+0], r2
            amo.add r5, [r1+0], r2
            amo.cas r5, [r1+0], r2=>r3
            b.lt r3, r4, @1
            j @0
            nop
            halt
        ";
        let p = parse_program(text).expect("parses");
        assert_eq!(p.len(), 12);
    }

    #[test]
    fn display_roundtrip_of_listing() {
        let mut b = Program::builder();
        b.imm(Reg(1), 0x1000).load(Reg(2), Reg(1), 8);
        let spin = b.here();
        b.load(Reg(3), Reg(1), 0);
        b.branch(Cond::Eq, Reg(3), Reg(0), spin);
        b.amo_cas(Reg(4), Reg(1), 16, Reg(2), Reg(3));
        b.halt();
        let p = b.build();
        let reparsed = parse_program(&p.to_string()).expect("roundtrip");
        assert_eq!(p, reparsed);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_program("imm r1, 1\nbogus r2").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));
        assert!(e.to_string().contains("line 2"));
    }

    #[test]
    fn rejects_bad_targets() {
        let e = parse_program("j @9").unwrap_err();
        assert!(e.message.contains("beyond"));
    }

    #[test]
    fn rejects_bad_registers() {
        assert!(parse_program("imm r99, 1").is_err());
        assert!(parse_program("imm x1, 1").is_err());
    }

    fn reg_strategy() -> Gen<Reg> {
        (0u8..32).prop_map(Reg)
    }

    fn inst_strategy() -> Gen<Inst> {
        let alu = prop_oneof![
            Just(AluOp::Add),
            Just(AluOp::Sub),
            Just(AluOp::And),
            Just(AluOp::Or),
            Just(AluOp::Xor),
            Just(AluOp::Mul),
            Just(AluOp::Shl),
            Just(AluOp::Shr)
        ];
        let cond = prop_oneof![Just(Cond::Eq), Just(Cond::Ne), Just(Cond::Lt), Just(Cond::Ge)];
        prop_oneof![
            (reg_strategy(), any::<u64>()).prop_map(|(rd, value)| Inst::Imm { rd, value }),
            (alu.clone(), reg_strategy(), reg_strategy(), reg_strategy())
                .prop_map(|(op, rd, rs1, rs2)| Inst::Alu { op, rd, rs1, rs2 }),
            (alu, reg_strategy(), reg_strategy(), any::<u64>())
                .prop_map(|(op, rd, rs1, imm)| Inst::AluImm { op, rd, rs1, imm }),
            (reg_strategy(), reg_strategy(), -64i64..64)
                .prop_map(|(rd, base, offset)| Inst::Load { rd, base, offset: offset * 8 }),
            (reg_strategy(), reg_strategy(), -64i64..64)
                .prop_map(|(src, base, offset)| Inst::Store { src, base, offset: offset * 8 }),
            (reg_strategy(), reg_strategy(), reg_strategy(), 0i64..64).prop_map(
                |(rd, base, src, off)| Inst::Amo { op: AmoOp::Swap, rd, base, offset: off * 8, src, cmp: Reg::ZERO }
            ),
            (reg_strategy(), reg_strategy(), reg_strategy(), reg_strategy()).prop_map(
                |(rd, base, src, cmp)| Inst::Amo { op: AmoOp::Cas, rd, base, offset: 0, src, cmp }
            ),
            (cond, reg_strategy(), reg_strategy()).prop_map(|(cond, rs1, rs2)| Inst::Branch {
                cond,
                rs1,
                rs2,
                target: 0
            }),
            Just(Inst::Jump { target: 0 }),
            Just(Inst::Nop),
            Just(Inst::Halt),
        ]
    }

    wb_proptest! {
        /// display -> parse round-trips every instruction form.
        #[test]
        fn display_parse_roundtrip(insts in vec_of(inst_strategy(), 1..30)) {
            let p = Program::from_insts(insts);
            let text = p.to_string();
            let reparsed = parse_program(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
            prop_assert_eq!(p, reparsed);
        }
    }
}
