//! Architectural interpreter — the golden model.
//!
//! Executes a [`Program`] one instruction at a time against a
//! [`MainMemory`]. Used to cross-check the out-of-order core (a single-core
//! OoO execution must produce the same architectural result as this
//! interpreter) and by the TSO interleaving enumerator for Table 2.

use crate::inst::{AmoOp, Inst, Reg};
use crate::program::Program;
use wb_mem::{Addr, MainMemory};

/// Architectural register + PC state of one hart.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchState {
    regs: [u64; Reg::COUNT],
    pc: u32,
    halted: bool,
    retired: u64,
}

/// What a single [`ArchState::step`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterpOutcome {
    /// Executed one instruction.
    Stepped,
    /// The hart is halted (explicit `Halt` or fell off the program end).
    Halted,
}

impl Default for ArchState {
    fn default() -> Self {
        ArchState::new()
    }
}

impl ArchState {
    /// Fresh state: all registers zero, PC at 0.
    pub fn new() -> Self {
        ArchState { regs: [0; Reg::COUNT], pc: 0, halted: false, retired: 0 }
    }

    /// Read an architectural register (`r0` reads zero).
    pub fn reg(&self, r: Reg) -> u64 {
        if r.is_zero() {
            0
        } else {
            self.regs[r.index()]
        }
    }

    /// Write an architectural register (writes to `r0` are dropped).
    pub fn set_reg(&mut self, r: Reg, v: u64) {
        if !r.is_zero() {
            self.regs[r.index()] = v;
        }
    }

    /// Current program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Has the hart halted?
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Dynamic instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// The effective address of a base+offset access.
    fn ea(&self, base: Reg, offset: i64) -> Addr {
        Addr::new(self.reg(base).wrapping_add(offset as u64))
    }

    /// Execute one instruction.
    ///
    /// # Panics
    ///
    /// Panics on an unaligned effective address (programs in this ISA must
    /// keep all accesses 8-byte aligned).
    pub fn step(&mut self, prog: &Program, mem: &mut MainMemory) -> InterpOutcome {
        if self.halted {
            return InterpOutcome::Halted;
        }
        let Some(inst) = prog.fetch(self.pc) else {
            self.halted = true;
            return InterpOutcome::Halted;
        };
        let mut next_pc = self.pc + 1;
        match inst {
            Inst::Imm { rd, value } => self.set_reg(rd, value),
            Inst::Alu { op, rd, rs1, rs2 } => {
                let v = op.apply(self.reg(rs1), self.reg(rs2));
                self.set_reg(rd, v);
            }
            Inst::AluImm { op, rd, rs1, imm } => {
                let v = op.apply(self.reg(rs1), imm);
                self.set_reg(rd, v);
            }
            Inst::Load { rd, base, offset } => {
                let v = mem.read_word(self.ea(base, offset));
                self.set_reg(rd, v);
            }
            Inst::Store { src, base, offset } => {
                mem.write_word(self.ea(base, offset), self.reg(src));
            }
            Inst::Amo { op, rd, base, offset, src, cmp } => {
                let a = self.ea(base, offset);
                let old = mem.read_word(a);
                let new = match op {
                    AmoOp::Swap => Some(self.reg(src)),
                    AmoOp::Add => Some(old.wrapping_add(self.reg(src))),
                    AmoOp::Cas => (old == self.reg(cmp)).then(|| self.reg(src)),
                };
                if let Some(n) = new {
                    mem.write_word(a, n);
                }
                self.set_reg(rd, old);
            }
            Inst::Branch { cond, rs1, rs2, target } => {
                if cond.eval(self.reg(rs1), self.reg(rs2)) {
                    next_pc = target;
                }
            }
            Inst::Jump { target } => next_pc = target,
            Inst::Nop => {}
            Inst::Halt => {
                self.halted = true;
                self.retired += 1;
                return InterpOutcome::Halted;
            }
        }
        self.pc = next_pc;
        self.retired += 1;
        InterpOutcome::Stepped
    }

    /// Run to completion (or until `max_steps` is hit, to guard against
    /// non-terminating spin loops). Returns the number of retired
    /// instructions, or `None` if the budget ran out first.
    pub fn run(&mut self, prog: &Program, mem: &mut MainMemory, max_steps: u64) -> Option<u64> {
        for _ in 0..max_steps {
            if self.step(prog, mem) == InterpOutcome::Halted {
                return Some(self.retired);
            }
        }
        if self.halted {
            Some(self.retired)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::inst::{AluOp, Cond};

    fn run_prog(b: ProgramBuilder) -> (ArchState, MainMemory) {
        let p = b.build();
        let mut st = ArchState::new();
        let mut mem = MainMemory::new();
        st.run(&p, &mut mem, 100_000).expect("program did not halt");
        (st, mem)
    }

    #[test]
    fn arithmetic_chain() {
        let mut b = ProgramBuilder::new();
        b.imm(Reg(1), 10).addi(Reg(2), Reg(1), 5).alu(AluOp::Mul, Reg(3), Reg(1), Reg(2)).halt();
        let (st, _) = run_prog(b);
        assert_eq!(st.reg(Reg(3)), 150);
    }

    #[test]
    fn load_store_roundtrip() {
        let mut b = ProgramBuilder::new();
        b.imm(Reg(1), 0x100).imm(Reg(2), 77).store(Reg(2), Reg(1), 8).load(Reg(3), Reg(1), 8).halt();
        let (st, mem) = run_prog(b);
        assert_eq!(st.reg(Reg(3)), 77);
        assert_eq!(mem.read_word(Addr::new(0x108)), 77);
    }

    #[test]
    fn loop_counts() {
        // for r1 in 0..10 { r2 += 2 }
        let mut b = ProgramBuilder::new();
        b.imm(Reg(3), 10);
        let top = b.here();
        b.addi(Reg(2), Reg(2), 2);
        b.addi(Reg(1), Reg(1), 1);
        b.branch(Cond::Lt, Reg(1), Reg(3), top);
        b.halt();
        let (st, _) = run_prog(b);
        assert_eq!(st.reg(Reg(2)), 20);
    }

    #[test]
    fn amo_swap_and_add() {
        let mut b = ProgramBuilder::new();
        b.imm(Reg(1), 0x40)
            .imm(Reg(2), 5)
            .amo_swap(Reg(3), Reg(1), 0, Reg(2)) // r3 = 0, mem = 5
            .amo_add(Reg(4), Reg(1), 0, Reg(2)) // r4 = 5, mem = 10
            .load(Reg(5), Reg(1), 0)
            .halt();
        let (st, _) = run_prog(b);
        assert_eq!(st.reg(Reg(3)), 0);
        assert_eq!(st.reg(Reg(4)), 5);
        assert_eq!(st.reg(Reg(5)), 10);
    }

    #[test]
    fn amo_cas_success_and_failure() {
        let mut b = ProgramBuilder::new();
        b.imm(Reg(1), 0x40)
            .imm(Reg(2), 9)
            .amo_cas(Reg(3), Reg(1), 0, Reg(0), Reg(2)) // cmp 0: succeeds, mem=9
            .amo_cas(Reg(4), Reg(1), 0, Reg(0), Reg(2)) // cmp 0 vs 9: fails
            .load(Reg(5), Reg(1), 0)
            .halt();
        let (st, _) = run_prog(b);
        assert_eq!(st.reg(Reg(3)), 0);
        assert_eq!(st.reg(Reg(4)), 9);
        assert_eq!(st.reg(Reg(5)), 9);
    }

    #[test]
    fn falls_off_end_halts() {
        let p = Program::from_insts(vec![Inst::Nop]);
        let mut st = ArchState::new();
        let mut mem = MainMemory::new();
        assert_eq!(st.step(&p, &mut mem), InterpOutcome::Stepped);
        assert_eq!(st.step(&p, &mut mem), InterpOutcome::Halted);
        assert!(st.halted());
    }

    #[test]
    fn spin_loop_budget_exhausts() {
        let mut b = ProgramBuilder::new();
        let top = b.here();
        b.jump(top);
        let p = b.build();
        let mut st = ArchState::new();
        let mut mem = MainMemory::new();
        assert_eq!(st.run(&p, &mut mem, 100), None);
    }

    #[test]
    fn r0_always_zero() {
        let mut b = ProgramBuilder::new();
        b.imm(Reg(0), 42).addi(Reg(1), Reg(0), 1).halt();
        let (st, _) = run_prog(b);
        assert_eq!(st.reg(Reg(0)), 0);
        assert_eq!(st.reg(Reg(1)), 1);
    }
}
