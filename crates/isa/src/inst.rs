//! Instruction and operand definitions.

/// An architectural register, `r0`..`r31`. `r0` always reads zero and
/// writes to it are discarded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Reg(pub u8);

impl Reg {
    /// Number of architectural registers.
    pub const COUNT: usize = 32;
    /// The hardwired zero register.
    pub const ZERO: Reg = Reg(0);

    /// Index for array addressing.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the register number is out of range.
    #[inline]
    pub fn index(self) -> usize {
        debug_assert!((self.0 as usize) < Reg::COUNT);
        self.0 as usize
    }

    /// True for `r0`.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl std::fmt::Display for Reg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl wb_kernel::Snap for Reg {
    fn snap(&self, w: &mut wb_kernel::SnapWriter) {
        w.u8(self.0);
    }
    fn unsnap(r: &mut wb_kernel::SnapReader) -> wb_kernel::SnapResult<Self> {
        let n = r.u8()?;
        if (n as usize) >= Reg::COUNT {
            return Err(wb_kernel::SnapError::new(format!("register number {n} out of range")));
        }
        Ok(Reg(n))
    }
}

/// Arithmetic/logic operations. `Mul` models a multi-cycle unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    Add,
    Sub,
    And,
    Or,
    Xor,
    Mul,
    Shl,
    Shr,
}

impl AluOp {
    /// Execution latency in cycles.
    pub fn latency(self) -> u64 {
        match self {
            AluOp::Mul => 3,
            _ => 1,
        }
    }

    /// Apply the operation (wrapping semantics; shifts masked to 6 bits).
    pub fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Shl => a.wrapping_shl((b & 63) as u32),
            AluOp::Shr => a.wrapping_shr((b & 63) as u32),
        }
    }
}

/// Branch conditions (unsigned comparisons).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    Eq,
    Ne,
    Lt,
    Ge,
}

impl Cond {
    /// Evaluate the condition.
    pub fn eval(self, a: u64, b: u64) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => a < b,
            Cond::Ge => a >= b,
        }
    }
}

/// Atomic read-modify-write flavors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AmoOp {
    /// `rd = mem; mem = src` — an unconditional exchange (test-and-set
    /// spinlocks use this).
    Swap,
    /// `rd = mem; mem = mem + src` — fetch-and-add (ticket locks,
    /// barrier counters).
    Add,
    /// `rd = mem; if mem == cmp { mem = src }` — compare-and-swap. The
    /// compare value rides in `cmp`.
    Cas,
}

/// One instruction. Branch targets are absolute instruction indices,
/// resolved by [`crate::ProgramBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Inst {
    /// `rd = value`
    Imm { rd: Reg, value: u64 },
    /// `rd = rs1 <op> rs2`
    Alu { op: AluOp, rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = rs1 <op> imm` — immediate-operand ALU, keeps programs compact.
    AluImm { op: AluOp, rd: Reg, rs1: Reg, imm: u64 },
    /// `rd = mem[rs_base + offset]` (8-byte load)
    Load { rd: Reg, base: Reg, offset: i64 },
    /// `mem[rs_base + offset] = src` (8-byte store)
    Store { src: Reg, base: Reg, offset: i64 },
    /// Atomic RMW on `mem[base + offset]`; old value returned in `rd`.
    Amo { op: AmoOp, rd: Reg, base: Reg, offset: i64, src: Reg, cmp: Reg },
    /// Conditional branch to `target` when `cond(rs1, rs2)` holds.
    Branch { cond: Cond, rs1: Reg, rs2: Reg, target: u32 },
    /// Unconditional jump.
    Jump { target: u32 },
    /// No operation (also used as a squash-friendly filler).
    Nop,
    /// Stop fetching on this core.
    Halt,
}

impl Inst {
    /// Is this a memory operation (load, store or atomic)?
    pub fn is_mem(&self) -> bool {
        matches!(self, Inst::Load { .. } | Inst::Store { .. } | Inst::Amo { .. })
    }

    /// Is this a control-flow instruction?
    pub fn is_control(&self) -> bool {
        matches!(self, Inst::Branch { .. } | Inst::Jump { .. })
    }

    /// Destination register, if the instruction writes one (writes to `r0`
    /// are reported as `None`).
    pub fn dest(&self) -> Option<Reg> {
        let rd = match *self {
            Inst::Imm { rd, .. }
            | Inst::Alu { rd, .. }
            | Inst::AluImm { rd, .. }
            | Inst::Load { rd, .. }
            | Inst::Amo { rd, .. } => rd,
            _ => return None,
        };
        if rd.is_zero() {
            None
        } else {
            Some(rd)
        }
    }

    /// Source registers read by the instruction (excluding `r0`).
    pub fn sources(&self) -> Vec<Reg> {
        let mut out = Vec::with_capacity(3);
        let mut push = |r: Reg| {
            if !r.is_zero() {
                out.push(r);
            }
        };
        match *self {
            Inst::Alu { rs1, rs2, .. } => {
                push(rs1);
                push(rs2);
            }
            Inst::AluImm { rs1, .. } => push(rs1),
            Inst::Load { base, .. } => push(base),
            Inst::Store { src, base, .. } => {
                push(src);
                push(base);
            }
            Inst::Amo { base, src, cmp, op, .. } => {
                push(base);
                push(src);
                if op == AmoOp::Cas {
                    push(cmp);
                }
            }
            Inst::Branch { rs1, rs2, .. } => {
                push(rs1);
                push(rs2);
            }
            _ => {}
        }
        out
    }
}

impl std::fmt::Display for AluOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Mul => "mul",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
        })
    }
}

impl std::fmt::Display for Cond {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Lt => "lt",
            Cond::Ge => "ge",
        })
    }
}

impl std::fmt::Display for AmoOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            AmoOp::Swap => "swap",
            AmoOp::Add => "add",
            AmoOp::Cas => "cas",
        })
    }
}

impl std::fmt::Display for Inst {
    /// Assembly-like rendering, e.g. `ld r3, [r1+8]` or `b.ne r1, r2, @5`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Inst::Imm { rd, value } => write!(f, "imm {rd}, {value:#x}"),
            Inst::Alu { op, rd, rs1, rs2 } => write!(f, "{op} {rd}, {rs1}, {rs2}"),
            Inst::AluImm { op, rd, rs1, imm } => write!(f, "{op}i {rd}, {rs1}, {imm:#x}"),
            Inst::Load { rd, base, offset } => write!(f, "ld {rd}, [{base}{offset:+}]"),
            Inst::Store { src, base, offset } => write!(f, "st {src}, [{base}{offset:+}]"),
            Inst::Amo { op, rd, base, offset, src, cmp } => {
                if op == AmoOp::Cas {
                    write!(f, "amo.{op} {rd}, [{base}{offset:+}], {cmp}=>{src}")
                } else {
                    write!(f, "amo.{op} {rd}, [{base}{offset:+}], {src}")
                }
            }
            Inst::Branch { cond, rs1, rs2, target } => write!(f, "b.{cond} {rs1}, {rs2}, @{target}"),
            Inst::Jump { target } => write!(f, "j @{target}"),
            Inst::Nop => f.write_str("nop"),
            Inst::Halt => f.write_str("halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_zero() {
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg(5).is_zero());
        assert_eq!(Reg(3).index(), 3);
        assert_eq!(Reg(3).to_string(), "r3");
    }

    #[test]
    fn alu_semantics() {
        assert_eq!(AluOp::Add.apply(2, 3), 5);
        assert_eq!(AluOp::Sub.apply(2, 3), u64::MAX);
        assert_eq!(AluOp::And.apply(0b1100, 0b1010), 0b1000);
        assert_eq!(AluOp::Or.apply(0b1100, 0b1010), 0b1110);
        assert_eq!(AluOp::Xor.apply(0b1100, 0b1010), 0b0110);
        assert_eq!(AluOp::Mul.apply(6, 7), 42);
        assert_eq!(AluOp::Shl.apply(1, 4), 16);
        assert_eq!(AluOp::Shr.apply(16, 4), 1);
        assert_eq!(AluOp::Shl.apply(1, 64), 1, "shift masked to 6 bits");
    }

    #[test]
    fn alu_latency() {
        assert_eq!(AluOp::Mul.latency(), 3);
        assert_eq!(AluOp::Add.latency(), 1);
    }

    #[test]
    fn cond_semantics() {
        assert!(Cond::Eq.eval(1, 1));
        assert!(Cond::Ne.eval(1, 2));
        assert!(Cond::Lt.eval(1, 2));
        assert!(Cond::Ge.eval(2, 2));
        assert!(!Cond::Lt.eval(2, 1));
    }

    #[test]
    fn dest_and_sources() {
        let i = Inst::Alu { op: AluOp::Add, rd: Reg(1), rs1: Reg(2), rs2: Reg(3) };
        assert_eq!(i.dest(), Some(Reg(1)));
        assert_eq!(i.sources(), vec![Reg(2), Reg(3)]);

        let st = Inst::Store { src: Reg(4), base: Reg(5), offset: 8 };
        assert_eq!(st.dest(), None);
        assert_eq!(st.sources(), vec![Reg(4), Reg(5)]);

        let amo_cas =
            Inst::Amo { op: AmoOp::Cas, rd: Reg(1), base: Reg(2), offset: 0, src: Reg(3), cmp: Reg(4) };
        assert_eq!(amo_cas.sources(), vec![Reg(2), Reg(3), Reg(4)]);

        let amo_swap =
            Inst::Amo { op: AmoOp::Swap, rd: Reg(1), base: Reg(2), offset: 0, src: Reg(3), cmp: Reg(0) };
        assert_eq!(amo_swap.sources(), vec![Reg(2), Reg(3)]);
    }

    #[test]
    fn zero_register_filtered() {
        let i = Inst::Imm { rd: Reg(0), value: 7 };
        assert_eq!(i.dest(), None);
        let b = Inst::Branch { cond: Cond::Eq, rs1: Reg(0), rs2: Reg(0), target: 0 };
        assert!(b.sources().is_empty());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Inst::Imm { rd: Reg(1), value: 16 }.to_string(), "imm r1, 0x10");
        assert_eq!(
            Inst::Alu { op: AluOp::Mul, rd: Reg(1), rs1: Reg(2), rs2: Reg(3) }.to_string(),
            "mul r1, r2, r3"
        );
        assert_eq!(Inst::Load { rd: Reg(4), base: Reg(5), offset: 8 }.to_string(), "ld r4, [r5+8]");
        assert_eq!(Inst::Store { src: Reg(4), base: Reg(5), offset: -8 }.to_string(), "st r4, [r5-8]");
        assert_eq!(
            Inst::Amo { op: AmoOp::Cas, rd: Reg(1), base: Reg(2), offset: 0, src: Reg(3), cmp: Reg(4) }
                .to_string(),
            "amo.cas r1, [r2+0], r4=>r3"
        );
        assert_eq!(
            Inst::Branch { cond: Cond::Ne, rs1: Reg(1), rs2: Reg(0), target: 5 }.to_string(),
            "b.ne r1, r0, @5"
        );
        assert_eq!(Inst::Jump { target: 2 }.to_string(), "j @2");
        assert_eq!(Inst::Nop.to_string(), "nop");
        assert_eq!(Inst::Halt.to_string(), "halt");
    }

    #[test]
    fn classification() {
        assert!(Inst::Load { rd: Reg(1), base: Reg(2), offset: 0 }.is_mem());
        assert!(Inst::Jump { target: 0 }.is_control());
        assert!(!Inst::Nop.is_mem());
        assert!(!Inst::Halt.is_control());
    }
}
