//! A multi-core workload: one program per core plus initial memory.

use crate::program::Program;
use wb_mem::Addr;

/// Programs for every core plus initial memory contents and a name used in
/// reports.
#[derive(Debug, Clone, Default)]
pub struct Workload {
    /// Human-readable name ("fft", "mp_table1", ...).
    pub name: String,
    /// One program per core. Cores beyond `programs.len()` idle.
    pub programs: Vec<Program>,
    /// Initial `(address, value)` pairs written to memory before cycle 0.
    pub init_mem: Vec<(Addr, u64)>,
}

impl Workload {
    /// A named workload with the given per-core programs.
    pub fn new(name: impl Into<String>, programs: Vec<Program>) -> Self {
        Workload { name: name.into(), programs, init_mem: Vec::new() }
    }

    /// Builder-style: add an initial memory word.
    pub fn with_init(mut self, addr: Addr, value: u64) -> Self {
        self.init_mem.push((addr, value));
        self
    }

    /// Number of participating cores.
    pub fn cores(&self) -> usize {
        self.programs.len()
    }

    /// Total static instructions across all cores.
    pub fn static_insts(&self) -> usize {
        self.programs.iter().map(|p| p.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Inst;

    #[test]
    fn construction() {
        let w = Workload::new("t", vec![Program::from_insts(vec![Inst::Halt]); 2])
            .with_init(Addr::new(0x40), 1);
        assert_eq!(w.cores(), 2);
        assert_eq!(w.static_insts(), 2);
        assert_eq!(w.init_mem.len(), 1);
        assert_eq!(w.name, "t");
    }
}
