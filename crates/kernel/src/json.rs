//! A minimal JSON parser for in-tree validation.
//!
//! The workspace *emits* JSON in several places (`Stats::to_json`,
//! `Hist::to_json`, the Chrome-trace exporter, `BENCH_*.json`) but has
//! no external dependency to *read* it back. This module closes the
//! loop: a ~150-line recursive-descent parser, used by round-trip
//! tests and by the `protocol_trace` example to self-validate the
//! Chrome trace it writes. It accepts strict JSON (RFC 8259) and
//! nothing more; it is a checker, not a general-purpose library.

/// A parsed JSON value. Numbers are kept as `f64` (every number the
/// workspace emits is a u64 well inside the 2^53 exact range).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys kept as-is).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member `key` of an object (first occurrence), else `None`.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object members, if it is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// Parse a complete JSON document (trailing garbage is an error).
pub fn parse(src: &str) -> Result<Json, String> {
    let bytes = src.as_bytes();
    let mut pos = 0;
    let v = value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", c as char, *pos))
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => Ok(Json::Str(string(b, pos)?)),
        Some(b't') => literal(b, pos, "true", Json::Bool(true)),
        Some(b'f') => literal(b, pos, "false", Json::Bool(false)),
        Some(b'n') => literal(b, pos, "null", Json::Null),
        Some(_) => number(b, pos),
    }
}

fn literal(b: &[u8], pos: &mut usize, word: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(b, pos);
        let key = string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let v = value(b, pos)?;
        members.push((key, v));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .ok_or("truncated \\u escape")
                            .and_then(|h| std::str::from_utf8(h).map_err(|_| "bad \\u escape"))?;
                        let cp =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape hex")?;
                        *pos += 4;
                        // Surrogates are rejected: the workspace never
                        // emits them and a checker should be strict.
                        out.push(char::from_u32(cp).ok_or("\\u escape is a surrogate")?);
                    }
                    c => return Err(format!("bad escape `\\{}`", *c as char)),
                }
            }
            Some(&c) if c < 0x20 => return Err("raw control character in string".into()),
            Some(_) => {
                // Copy one UTF-8 scalar (possibly multi-byte).
                let start = *pos;
                *pos += 1;
                while *pos < b.len() && b[*pos] & 0xc0 == 0x80 {
                    *pos += 1;
                }
                out.push_str(
                    std::str::from_utf8(&b[start..*pos]).map_err(|_| "invalid UTF-8")?,
                );
            }
        }
    }
}

fn number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && b[*pos].is_ascii_digit() {
        *pos += 1;
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        while *pos < b.len() && b[*pos].is_ascii_digit() {
            *pos += 1;
        }
    }
    if matches!(b.get(*pos), Some(b'e') | Some(b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+') | Some(b'-')) {
            *pos += 1;
        }
        while *pos < b.len() && b[*pos].is_ascii_digit() {
            *pos += 1;
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| "invalid number")?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number `{text}` at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(parse(r#""hi\nA""#).unwrap(), Json::Str("hi\nA".into()));
    }

    #[test]
    fn nested_structures() {
        let v = parse(r#"{"a":[1,2,{"b":"x"}],"c":{}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2].get("b").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("c").unwrap().as_obj().unwrap().len(), 0);
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn u64_accessor() {
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(parse("7.5").unwrap().as_u64(), None);
        assert_eq!(parse("-7").unwrap().as_u64(), None);
        assert_eq!(parse(r#""7""#).unwrap().as_u64(), None);
    }

    #[test]
    fn rejects_malformed() {
        for bad in ["", "{", "[1,", r#"{"a"}"#, "tru", "1 2", r#""\x""#, "{,}", "[1,]"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn unicode_passthrough() {
        assert_eq!(parse(r#""héllo→""#).unwrap().as_str(), Some("héllo→"));
    }
}
