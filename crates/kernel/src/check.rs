//! In-tree property-based testing, built on [`SimRng`].
//!
//! The workspace compiles with an **empty cargo registry** (see
//! DESIGN.md, "zero external dependencies"), so instead of `proptest`
//! this module provides the small subset the test suites actually use:
//!
//! - [`Gen<T>`]: a composable value generator (proptest's `Strategy`),
//!   with [`GenExt::prop_map`], [`one_of`], [`vec_of`], [`just`] and
//!   [`any`] as combinators;
//! - [`wb_proptest!`](crate::wb_proptest): a test-writing macro mirroring
//!   `proptest! { #[test] fn name(x in gen) { .. } }`, including the
//!   `#![cases = N]` suite-level override;
//! - [`prop_assert!`](crate::prop_assert) /
//!   [`prop_assert_eq!`](crate::prop_assert_eq) /
//!   [`prop_assert_ne!`](crate::prop_assert_ne) assertions that carry
//!   formatted context into the failure report;
//! - deterministic seeding with **failure-seed reporting**: every case
//!   runs from a seed derived from the test name, and a failing case
//!   prints `WB_CHECK_SEED=0x...` which re-runs exactly that case.
//!
//! # Environment knobs
//!
//! | variable         | effect                                          |
//! |------------------|-------------------------------------------------|
//! | `WB_CHECK_CASES` | override the number of cases for every property |
//! | `WB_CHECK_SEED`  | run only the one case with this seed            |
//!
//! # Example
//!
//! ```
//! use wb_kernel::check::prelude::*;
//!
//! wb_proptest! {
//!     // add #[test] here in a real test module
//!     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! addition_commutes();
//! ```

use crate::SimRng;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;

/// Default number of cases per property (override with `WB_CHECK_CASES`
/// or a `#![cases = N]` header inside [`wb_proptest!`](crate::wb_proptest)).
pub const DEFAULT_CASES: u32 = 64;

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

/// A composable generator of values of type `T`, driven by [`SimRng`].
pub struct Gen<T> {
    f: Rc<dyn Fn(&mut SimRng) -> T>,
}

impl<T> Clone for Gen<T> {
    fn clone(&self) -> Self {
        Gen { f: Rc::clone(&self.f) }
    }
}

impl<T: 'static> Gen<T> {
    /// Wrap a sampling function.
    pub fn new(f: impl Fn(&mut SimRng) -> T + 'static) -> Self {
        Gen { f: Rc::new(f) }
    }

    /// Draw one value.
    pub fn sample(&self, rng: &mut SimRng) -> T {
        (self.f)(rng)
    }
}

/// Conversion into a [`Gen`]: implemented for `Gen` itself, integer
/// ranges, [`Just`] and tuples of generators, so the expressions used in
/// `x in EXPR` positions of [`wb_proptest!`](crate::wb_proptest) mirror
/// proptest's.
pub trait IntoGen {
    /// The generated value type.
    type Value: 'static;
    /// Build the generator.
    fn into_gen(self) -> Gen<Self::Value>;
}

impl<T: 'static> IntoGen for Gen<T> {
    type Value = T;
    fn into_gen(self) -> Gen<T> {
        self
    }
}

/// A generator that always yields a clone of the given value
/// (proptest's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + 'static> IntoGen for Just<T> {
    type Value = T;
    fn into_gen(self) -> Gen<T> {
        let v = self.0;
        Gen::new(move |_| v.clone())
    }
}

macro_rules! impl_into_gen_for_uint_range {
    ($($t:ty),*) => {$(
        impl IntoGen for std::ops::Range<$t> {
            type Value = $t;
            fn into_gen(self) -> Gen<$t> {
                assert!(self.start < self.end, "empty range");
                let (lo, hi) = (self.start, self.end);
                Gen::new(move |rng| lo + rng.below((hi - lo) as u64) as $t)
            }
        }
    )*};
}
impl_into_gen_for_uint_range!(u8, u16, u32, u64, usize);

macro_rules! impl_into_gen_for_int_range {
    ($($t:ty),*) => {$(
        impl IntoGen for std::ops::Range<$t> {
            type Value = $t;
            fn into_gen(self) -> Gen<$t> {
                assert!(self.start < self.end, "empty range");
                let (lo, hi) = (self.start, self.end);
                let span = (hi as i128 - lo as i128) as u64;
                Gen::new(move |rng| (lo as i128 + rng.below(span) as i128) as $t)
            }
        }
    )*};
}
impl_into_gen_for_int_range!(i8, i16, i32, i64, isize);

macro_rules! impl_into_gen_for_tuple {
    ($($g:ident . $idx:tt),+) => {
        impl<$($g: IntoGen),+> IntoGen for ($($g,)+) {
            type Value = ($($g::Value,)+);
            fn into_gen(self) -> Gen<Self::Value> {
                let gens = ($(self.$idx.into_gen(),)+);
                Gen::new(move |rng| ($(gens.$idx.sample(rng),)+))
            }
        }
    };
}
impl_into_gen_for_tuple!(A.0);
impl_into_gen_for_tuple!(A.0, B.1);
impl_into_gen_for_tuple!(A.0, B.1, C.2);
impl_into_gen_for_tuple!(A.0, B.1, C.2, D.3);
impl_into_gen_for_tuple!(A.0, B.1, C.2, D.3, E.4);

/// Extension combinators available on anything convertible to a [`Gen`].
pub trait GenExt: IntoGen + Sized {
    /// Map generated values through `f` (proptest's `prop_map`).
    fn prop_map<U: 'static>(self, f: impl Fn(Self::Value) -> U + 'static) -> Gen<U> {
        let g = self.into_gen();
        Gen::new(move |rng| f(g.sample(rng)))
    }
}

impl<T: IntoGen> GenExt for T {}

/// Types with a canonical full-domain generator (proptest's `Arbitrary`).
pub trait Arb: Sized + 'static {
    /// The full-domain generator for this type.
    fn arb() -> Gen<Self>;
}

impl Arb for u64 {
    fn arb() -> Gen<u64> {
        Gen::new(|rng| rng.next_u64())
    }
}
impl Arb for u32 {
    fn arb() -> Gen<u32> {
        Gen::new(|rng| rng.next_u64() as u32)
    }
}
impl Arb for u16 {
    fn arb() -> Gen<u16> {
        Gen::new(|rng| rng.next_u64() as u16)
    }
}
impl Arb for u8 {
    fn arb() -> Gen<u8> {
        Gen::new(|rng| rng.next_u64() as u8)
    }
}
impl Arb for i64 {
    fn arb() -> Gen<i64> {
        Gen::new(|rng| rng.next_u64() as i64)
    }
}
impl Arb for bool {
    fn arb() -> Gen<bool> {
        Gen::new(|rng| rng.next_u64() & 1 == 1)
    }
}

/// The full-domain generator for `T` (proptest's `any::<T>()`).
pub fn any<T: Arb>() -> Gen<T> {
    T::arb()
}

/// A generator yielding a clone of `v` every time.
pub fn just<T: Clone + 'static>(v: T) -> Gen<T> {
    Just(v).into_gen()
}

/// Choose uniformly among the given generators
/// (the engine behind [`prop_oneof!`](crate::prop_oneof)).
pub fn one_of<T: 'static>(gens: Vec<Gen<T>>) -> Gen<T> {
    assert!(!gens.is_empty(), "one_of needs at least one generator");
    Gen::new(move |rng| {
        let i = rng.below_usize(gens.len());
        gens[i].sample(rng)
    })
}

/// A vector with length drawn from `len` and elements from `g`
/// (proptest's `collection::vec`).
pub fn vec_of<G: IntoGen>(g: G, len: std::ops::Range<usize>) -> Gen<Vec<G::Value>> {
    let g = g.into_gen();
    let len = len.into_gen();
    Gen::new(move |rng| {
        let n = len.sample(rng);
        (0..n).map(|_| g.sample(rng)).collect()
    })
}

// ---------------------------------------------------------------------------
// Case runner
// ---------------------------------------------------------------------------

/// A single failed case's explanation (produced by the `prop_assert*`
/// macros or an early `return Err(..)` in a property body).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseError {
    msg: String,
}

impl CaseError {
    /// Wrap a failure message.
    pub fn new(msg: impl Into<String>) -> Self {
        CaseError { msg: msg.into() }
    }
}

impl std::fmt::Display for CaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

/// What a property body returns per case.
pub type CaseResult = Result<(), CaseError>;

/// A property failure with everything needed to reproduce it.
#[derive(Debug, Clone)]
pub struct Failure {
    /// The [`SimRng`] seed of the failing case.
    pub seed: u64,
    /// Zero-based index of the failing case within this run.
    pub case: u32,
    /// Total cases requested.
    pub cases: u32,
    /// The assertion or panic message.
    pub message: String,
}

impl Failure {
    /// The human-readable report, including the reproduction recipe.
    pub fn render(&self, test: &str) -> String {
        format!(
            "property `{test}` failed at case {}/{} (seed {:#018x})\n  {}\n\
             reproduce with: WB_CHECK_SEED={:#x} cargo test {}",
            self.case + 1,
            self.cases,
            self.seed,
            self.message,
            self.seed,
            test.rsplit("::").next().unwrap_or(test),
        )
    }
}

/// FNV-1a, for deriving a stable per-test base seed from its name.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The seed of case `i` of the test with base seed `base`.
fn case_seed(base: u64, i: u32) -> u64 {
    base.wrapping_add((i as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

fn run_case<F>(f: &mut F, seed: u64) -> Result<(), String>
where
    F: FnMut(&mut SimRng) -> CaseResult,
{
    let mut rng = SimRng::new(seed);
    match catch_unwind(AssertUnwindSafe(|| f(&mut rng))) {
        Ok(Ok(())) => Ok(()),
        Ok(Err(e)) => Err(e.msg),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic payload>");
            Err(format!("panicked: {msg}"))
        }
    }
}

/// Run `cases` cases of property `f`, returning the first [`Failure`].
///
/// `seed_override` runs exactly one case with that seed — the
/// reproduction path behind `WB_CHECK_SEED`.
pub fn run_collect<F>(
    test: &str,
    cases: u32,
    seed_override: Option<u64>,
    f: &mut F,
) -> Result<(), Failure>
where
    F: FnMut(&mut SimRng) -> CaseResult,
{
    if let Some(seed) = seed_override {
        return run_case(f, seed)
            .map_err(|message| Failure { seed, case: 0, cases: 1, message });
    }
    let base = fnv1a(test);
    for i in 0..cases {
        let seed = case_seed(base, i);
        if let Err(message) = run_case(f, seed) {
            return Err(Failure { seed, case: i, cases, message });
        }
    }
    Ok(())
}

/// Test-harness entry point used by [`wb_proptest!`](crate::wb_proptest):
/// applies the `WB_CHECK_CASES` / `WB_CHECK_SEED` environment overrides
/// and panics with a reproduction recipe on the first failing case.
///
/// # Panics
///
/// Panics when a case fails, with the failing seed in the message.
pub fn run<F>(test: &str, default_cases: u32, mut f: F)
where
    F: FnMut(&mut SimRng) -> CaseResult,
{
    let seed_override = std::env::var("WB_CHECK_SEED").ok().map(|s| {
        let t = s.trim();
        let parsed = match t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
            Some(hex) => u64::from_str_radix(hex, 16),
            None => t.parse(),
        };
        parsed.unwrap_or_else(|_| panic!("WB_CHECK_SEED `{s}` is not a number"))
    });
    let cases = std::env::var("WB_CHECK_CASES")
        .ok()
        .map(|s| s.parse().unwrap_or_else(|_| panic!("WB_CHECK_CASES `{s}` is not a number")))
        .unwrap_or(default_cases);
    if let Err(fail) = run_collect(test, cases, seed_override, &mut f) {
        panic!("{}", fail.render(test));
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Define property tests: the in-tree replacement for `proptest!`.
///
/// ```
/// use wb_kernel::check::prelude::*;
///
/// wb_proptest! {
///     #![cases = 32]
///     // add #[test] here in a real test module
///     fn doubling_is_even(x in 0u32..1000) {
///         prop_assert_eq!((x * 2) % 2, 0);
///     }
/// }
/// # doubling_is_even();
/// ```
#[macro_export]
macro_rules! wb_proptest {
    (#![cases = $cases:expr] $($rest:tt)*) => {
        $crate::__wb_proptest_items! { ($cases) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__wb_proptest_items! { ($crate::check::DEFAULT_CASES) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __wb_proptest_items {
    (($cases:expr)) => {};
    (($cases:expr)
     $(#[$attr:meta])*
     fn $name:ident($($arg:ident in $gen:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            $crate::check::run(
                concat!(module_path!(), "::", stringify!($name)),
                ($cases) as u32,
                |__wb_rng| {
                    $(let $arg = $crate::check::IntoGen::into_gen($gen).sample(__wb_rng);)+
                    $body
                    Ok(())
                },
            );
        }
        $crate::__wb_proptest_items! { ($cases) $($rest)* }
    };
}

/// Assert inside a property body; on failure the case's seed is reported.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::check::CaseError::new(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n  {}",
            stringify!($left), stringify!($right), l, r, format!($($fmt)+)
        );
    }};
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}\n  {}",
            stringify!($left), stringify!($right), l, format!($($fmt)+)
        );
    }};
}

/// Choose uniformly among generator expressions (proptest's `prop_oneof!`).
#[macro_export]
macro_rules! prop_oneof {
    ($($gen:expr),+ $(,)?) => {
        $crate::check::one_of(vec![
            $($crate::check::IntoGen::into_gen($gen)),+
        ])
    };
}

/// Everything a property-test file needs: `use wb_kernel::check::prelude::*;`.
pub mod prelude {
    pub use super::{any, just, one_of, vec_of, Arb, CaseError, CaseResult, Gen, GenExt, IntoGen, Just};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, wb_proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SimRng::new(1);
        let g = (10u64..20).into_gen();
        for _ in 0..1000 {
            let v = g.sample(&mut rng);
            assert!((10..20).contains(&v));
        }
        let g = (-64i64..64).into_gen();
        let mut seen_neg = false;
        for _ in 0..1000 {
            let v = g.sample(&mut rng);
            assert!((-64..64).contains(&v));
            seen_neg |= v < 0;
        }
        assert!(seen_neg, "signed range never went negative");
    }

    #[test]
    fn one_of_covers_all_alternatives() {
        let mut rng = SimRng::new(2);
        let g = prop_oneof![Just(1u32), Just(2u32), Just(3u32)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[g.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn vec_of_respects_length_range() {
        let mut rng = SimRng::new(3);
        let g = vec_of(0u8..10, 1..5);
        for _ in 0..200 {
            let v = g.sample(&mut rng);
            assert!((1..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn prop_map_and_tuples_compose() {
        let mut rng = SimRng::new(4);
        let g = (0u64..5, any::<bool>()).prop_map(|(n, b)| if b { n + 100 } else { n });
        for _ in 0..200 {
            let v = g.sample(&mut rng);
            assert!(v < 5 || (100..105).contains(&v));
        }
    }

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0u32;
        run_collect("check::count", 64, None, &mut |_rng| {
            count += 1;
            Ok(())
        })
        .expect("trivially true property");
        assert_eq!(count, 64);
    }

    /// The deliberately-failing property of the harness's own acceptance
    /// test: it must report a reproduction seed, and re-running with
    /// exactly that seed must reproduce the failure deterministically.
    #[test]
    fn failing_property_reports_reproducible_seed() {
        fn property(rng: &mut SimRng) -> CaseResult {
            let v = rng.below(100);
            if v >= 50 {
                return Err(CaseError::new(format!("drew {v}, expected < 50")));
            }
            Ok(())
        }
        let fail = run_collect("check::deliberate", 64, None, &mut property)
            .expect_err("property fails with ~2^-64 probability of survival");
        assert!(fail.message.contains("expected < 50"));
        assert!(fail.case < 64);

        // Reproduction: the reported seed alone replays the failure.
        let replay = run_collect("check::deliberate", 64, Some(fail.seed), &mut property)
            .expect_err("reported seed must reproduce the failure");
        assert_eq!(replay.message, fail.message);
        assert_eq!(replay.seed, fail.seed);

        // And the render names the seed so a human can copy it.
        let report = fail.render("check::deliberate");
        assert!(report.contains(&format!("{:#x}", fail.seed)));
        assert!(report.contains("WB_CHECK_SEED"));
    }

    /// Panics (not just `Err` returns) are also caught and attributed to
    /// their seed.
    #[test]
    fn panicking_property_reports_seed() {
        let mut f = |rng: &mut SimRng| -> CaseResult {
            assert!(rng.below(10) < 8, "panic path");
            Ok(())
        };
        let fail =
            run_collect("check::panics", 256, None, &mut f).expect_err("panics eventually");
        assert!(fail.message.contains("panic"), "got: {}", fail.message);
        let replay = run_collect("check::panics", 256, Some(fail.seed), &mut f)
            .expect_err("seed reproduces the panic");
        assert_eq!(replay.message, fail.message);
    }

    #[test]
    fn distinct_tests_get_distinct_seed_streams() {
        assert_ne!(fnv1a("a::test_one"), fnv1a("a::test_two"));
        assert_ne!(case_seed(1, 0), case_seed(1, 1));
    }

    wb_proptest! {
        #![cases = 32]
        /// The macro end-to-end: bindings, early return, assertions.
        #[test]
        fn macro_smoke(xs in vec_of(0u64..100, 1..10), flag in any::<bool>()) {
            if xs.is_empty() {
                return Ok(()); // unreachable, but exercises early return
            }
            let doubled: Vec<u64> = xs.iter().map(|x| x * 2).collect();
            prop_assert_eq!(doubled.len(), xs.len());
            for (d, x) in doubled.iter().zip(&xs) {
                prop_assert_eq!(*d, x * 2, "flag={}", flag);
                prop_assert!(*d % 2 == 0);
                prop_assert_ne!(*d, x * 2 + 1);
            }
        }
    }
}
