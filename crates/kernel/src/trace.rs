//! Cycle-stamped event tracing with bounded ring buffers.
//!
//! Every simulated component (core, private cache, directory, mesh,
//! and the system glue itself) owns a [`Tracer`]: a bounded ring
//! buffer of typed, cycle-stamped [`TraceEvent`]s behind a
//! category/severity/line [`TraceFilter`]. Tracing is **off by
//! default** — a disabled tracer's `record` is a single integer
//! compare, touches no heap, and bumps no counters — so the simulation
//! hot path pays nothing unless a run opts in.
//!
//! Two sinks turn recorded events back into bytes:
//!
//! * [`render_text`] / the [`Record`] `Display` impl — the
//!   human-readable dump (what the old `System::trace_line`
//!   `eprintln!` produced, now routed through a swappable
//!   [`TraceSink`] so tests can capture it);
//! * [`chrome_trace_json`] — a Chrome trace-event JSON exporter whose
//!   output loads directly in `chrome://tracing` or
//!   <https://ui.perfetto.dev>, rendering a litmus run as a
//!   per-core/per-directory timeline (lockdowns and WritersBlock
//!   windows as spans, messages and MSHR traffic as instants).
//!
//! This module deliberately speaks only primitive types (`u64` line
//! numbers, `u16` node indices, `&'static str` mnemonics): `wb_kernel`
//! sits below `wb_mem`/`wb_protocol` in the crate DAG, so richer types
//! are flattened by the callers.

use crate::Cycle;
use std::collections::VecDeque;

/// Default ring-buffer capacity per component. At ~48 bytes per record
/// this caps a fully-traced 16-core system (16 cores + 16 caches +
/// 16 dirs + mesh + system) around 10 MB — and litmus runs, the usual
/// tracing subject, stay far below the cap.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

// ---------------------------------------------------------------------------
// Filtering
// ---------------------------------------------------------------------------

/// Coarse event category — one bit each, filterable as a mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Category {
    /// Protocol message send/receive at the system boundary.
    Protocol,
    /// Directory state transitions, incl. WritersBlock entry/exit.
    Directory,
    /// MSHR allocate/free at private caches.
    Mshr,
    /// Core-side lockdown begin/end.
    Lockdown,
    /// LSQ load bind/commit (with the reordered flag).
    Lsq,
    /// Mesh per-hop forwarding (high volume; `Level::Debug`).
    Mesh,
}

impl Category {
    /// Every category, in bit order.
    pub const ALL: [Category; 6] = [
        Category::Protocol,
        Category::Directory,
        Category::Mshr,
        Category::Lockdown,
        Category::Lsq,
        Category::Mesh,
    ];

    /// This category's bit in a [`TraceFilter`] mask.
    #[inline]
    pub fn bit(self) -> u32 {
        1 << (self as u32)
    }

    /// Short lowercase label (used as the Chrome-trace `cat` field).
    pub fn label(self) -> &'static str {
        match self {
            Category::Protocol => "protocol",
            Category::Directory => "directory",
            Category::Mshr => "mshr",
            Category::Lockdown => "lockdown",
            Category::Lsq => "lsq",
            Category::Mesh => "mesh",
        }
    }
}

/// Event severity. `Debug` marks high-volume events (per-hop mesh
/// forwarding) that an `Info` filter drops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// High-volume detail.
    Debug,
    /// Protocol-level milestones.
    Info,
}

/// What a [`Tracer`] records: a category mask, a minimum severity and
/// an optional cache-line filter. `TraceFilter::OFF` (the default)
/// records nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceFilter {
    /// Bitmask of enabled [`Category`] bits; 0 disables the tracer.
    pub mask: u32,
    /// Minimum severity recorded.
    pub level: Level,
    /// When set, only events touching this line (see
    /// [`TraceEvent::line`]) are recorded; events with no line
    /// association (e.g. mesh hops) are dropped.
    pub line: Option<u64>,
}

impl Default for TraceFilter {
    fn default() -> Self {
        TraceFilter::OFF
    }
}

impl TraceFilter {
    /// Record nothing (the default).
    pub const OFF: TraceFilter = TraceFilter { mask: 0, level: Level::Info, line: None };

    /// Record every category at every severity.
    pub fn all() -> Self {
        let mut mask = 0;
        for c in Category::ALL {
            mask |= c.bit();
        }
        TraceFilter { mask, level: Level::Debug, line: None }
    }

    /// Record every category at `Info` severity (drops mesh hops).
    pub fn info() -> Self {
        TraceFilter { level: Level::Info, ..TraceFilter::all() }
    }

    /// Record only the given categories (at `Debug` severity).
    pub fn only(cats: &[Category]) -> Self {
        let mut mask = 0;
        for c in cats {
            mask |= c.bit();
        }
        TraceFilter { mask, level: Level::Debug, line: None }
    }

    /// Restrict to events touching cache line `line`.
    pub fn with_line(self, line: u64) -> Self {
        TraceFilter { line: Some(line), ..self }
    }

    /// Raise the minimum severity.
    pub fn with_level(self, level: Level) -> Self {
        TraceFilter { level, ..self }
    }

    /// True when this filter can record anything at all.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.mask != 0
    }

    /// Does `event` pass this filter?
    pub fn admits(&self, event: &TraceEvent) -> bool {
        if self.mask & event.category().bit() == 0 || event.level() < self.level {
            return false;
        }
        match self.line {
            None => true,
            Some(l) => event.line() == Some(l),
        }
    }
}

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// Which component recorded (or is named by) an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CompId {
    /// A CPU core.
    Core(u16),
    /// A private cache.
    Cache(u16),
    /// A directory slice.
    Dir(u16),
    /// The interconnect.
    Mesh,
    /// The system glue (message delivery/injection).
    System,
}

impl std::fmt::Display for CompId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompId::Core(i) => write!(f, "core{i}"),
            CompId::Cache(i) => write!(f, "cache{i}"),
            CompId::Dir(i) => write!(f, "dir{i}"),
            CompId::Mesh => write!(f, "mesh"),
            CompId::System => write!(f, "system"),
        }
    }
}

/// One typed, cycle-stamped observation. Payloads are primitives only
/// (see the module docs): `line` fields are cache-line numbers
/// (`LineAddr.0` upstream), node/core indices are `u16`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A protocol message was injected into the mesh.
    MsgSend {
        /// Message mnemonic, e.g. `"GetS.to"` or `"Nack"`.
        msg: &'static str,
        /// Sending component.
        from: CompId,
        /// Receiving component.
        to: CompId,
        /// Cache line the message concerns.
        line: u64,
        /// Virtual network (0 = request, 1 = forward, 2 = response).
        vnet: u8,
        /// Message size in flits.
        flits: u32,
    },
    /// A protocol message arrived at its destination.
    MsgRecv {
        /// Message mnemonic.
        msg: &'static str,
        /// Source node index.
        src: u16,
        /// Receiving component.
        to: CompId,
        /// Cache line the message concerns.
        line: u64,
    },
    /// A directory entry changed state.
    DirTransition {
        /// Cache line.
        line: u64,
        /// State name before.
        from: &'static str,
        /// State name after.
        to: &'static str,
    },
    /// A write hit a lockdown Nack and entered WritersBlock.
    WritersBlockBegin {
        /// Blocked cache line.
        line: u64,
        /// Node index of the blocked writer.
        writer: u16,
    },
    /// A WritersBlock window closed (write finally performed).
    WritersBlockEnd {
        /// Unblocked cache line.
        line: u64,
    },
    /// A miss-status holding register was allocated.
    MshrAlloc {
        /// Cache line.
        line: u64,
        /// `"Read"`, `"Write"` or `"TearOff"`.
        kind: &'static str,
    },
    /// A miss-status holding register was freed (miss completed).
    MshrFree {
        /// Cache line.
        line: u64,
        /// `"Read"`, `"Write"` or `"TearOff"`.
        kind: &'static str,
        /// Cycles the MSHR was live (miss latency).
        latency: u64,
    },
    /// A core began refusing invalidations for a line (lockdown).
    LockdownBegin {
        /// Locked-down cache line.
        line: u64,
    },
    /// A core released a lockdown (all bound loads committed).
    LockdownEnd {
        /// Released cache line.
        line: u64,
        /// Cycles the lockdown was held.
        held: u64,
    },
    /// A load bound its value (possibly out of program order).
    LoadBind {
        /// Program-order sequence number.
        seq: u64,
        /// Cache line read.
        line: u64,
        /// True when an older load was still unbound (reordering).
        reordered: bool,
    },
    /// A load committed.
    LoadCommit {
        /// Program-order sequence number.
        seq: u64,
        /// Cache line read.
        line: u64,
        /// True when the load had bound out of order (mspec in the
        /// paper's terms — committed non-speculatively under WB).
        reordered: bool,
    },
    /// A mesh message advanced one hop (`Level::Debug`).
    MeshHop {
        /// Source node index.
        src: u16,
        /// Destination node index.
        dst: u16,
        /// Hops still to travel after this one.
        hops_left: u32,
        /// Virtual network.
        vnet: u8,
    },
    /// A link-level frame was lost: dropped mid-flight by a fault plan,
    /// or discarded at the receiver because its checksum failed.
    LinkDrop {
        /// Source node index.
        src: u16,
        /// Destination node index.
        dst: u16,
        /// Virtual network.
        vnet: u8,
        /// Per-flow sequence number of the lost frame.
        seq: u64,
        /// True when a receiver-side checksum failure (not a plan drop)
        /// discarded the frame.
        corrupt: bool,
    },
    /// The reliable sublayer retransmitted an unacknowledged frame.
    LinkRetx {
        /// Source node index.
        src: u16,
        /// Destination node index.
        dst: u16,
        /// Virtual network.
        vnet: u8,
        /// Per-flow sequence number being retransmitted.
        seq: u64,
        /// Retransmission attempt (1 = first retransmit).
        attempt: u32,
    },
    /// The receiver squashed a duplicate frame (dedup window hit).
    LinkDupSquashed {
        /// Source node index.
        src: u16,
        /// Destination node index.
        dst: u16,
        /// Virtual network.
        vnet: u8,
        /// Per-flow sequence number of the squashed duplicate.
        seq: u64,
    },
}

impl TraceEvent {
    /// This event's [`Category`].
    pub fn category(&self) -> Category {
        match self {
            TraceEvent::MsgSend { .. } | TraceEvent::MsgRecv { .. } => Category::Protocol,
            TraceEvent::DirTransition { .. }
            | TraceEvent::WritersBlockBegin { .. }
            | TraceEvent::WritersBlockEnd { .. } => Category::Directory,
            TraceEvent::MshrAlloc { .. } | TraceEvent::MshrFree { .. } => Category::Mshr,
            TraceEvent::LockdownBegin { .. } | TraceEvent::LockdownEnd { .. } => {
                Category::Lockdown
            }
            TraceEvent::LoadBind { .. } | TraceEvent::LoadCommit { .. } => Category::Lsq,
            TraceEvent::MeshHop { .. }
            | TraceEvent::LinkDrop { .. }
            | TraceEvent::LinkRetx { .. }
            | TraceEvent::LinkDupSquashed { .. } => Category::Mesh,
        }
    }

    /// This event's severity ([`Level::Debug`] only for mesh hops).
    pub fn level(&self) -> Level {
        match self {
            TraceEvent::MeshHop { .. } => Level::Debug,
            _ => Level::Info,
        }
    }

    /// The cache line this event concerns, if any.
    pub fn line(&self) -> Option<u64> {
        match *self {
            TraceEvent::MsgSend { line, .. }
            | TraceEvent::MsgRecv { line, .. }
            | TraceEvent::DirTransition { line, .. }
            | TraceEvent::WritersBlockBegin { line, .. }
            | TraceEvent::WritersBlockEnd { line }
            | TraceEvent::MshrAlloc { line, .. }
            | TraceEvent::MshrFree { line, .. }
            | TraceEvent::LockdownBegin { line }
            | TraceEvent::LockdownEnd { line, .. }
            | TraceEvent::LoadBind { line, .. }
            | TraceEvent::LoadCommit { line, .. } => Some(line),
            TraceEvent::MeshHop { .. }
            | TraceEvent::LinkDrop { .. }
            | TraceEvent::LinkRetx { .. }
            | TraceEvent::LinkDupSquashed { .. } => None,
        }
    }
}

impl std::fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceEvent::MsgSend { msg, from, to, line, vnet, flits } => {
                write!(f, "send {msg} {from} -> {to} line {line:#x} vnet{vnet} ({flits}f)")
            }
            TraceEvent::MsgRecv { msg, src, to, line } => {
                write!(f, "recv {msg} n{src} -> {to} line {line:#x}")
            }
            TraceEvent::DirTransition { line, from, to } => {
                write!(f, "dir line {line:#x}: {from} -> {to}")
            }
            TraceEvent::WritersBlockBegin { line, writer } => {
                write!(f, "writersblock BEGIN line {line:#x} writer n{writer}")
            }
            TraceEvent::WritersBlockEnd { line } => {
                write!(f, "writersblock END line {line:#x}")
            }
            TraceEvent::MshrAlloc { line, kind } => {
                write!(f, "mshr+ {kind} line {line:#x}")
            }
            TraceEvent::MshrFree { line, kind, latency } => {
                write!(f, "mshr- {kind} line {line:#x} ({latency} cyc)")
            }
            TraceEvent::LockdownBegin { line } => {
                write!(f, "lockdown BEGIN line {line:#x}")
            }
            TraceEvent::LockdownEnd { line, held } => {
                write!(f, "lockdown END line {line:#x} ({held} cyc)")
            }
            TraceEvent::LoadBind { seq, line, reordered } => {
                write!(
                    f,
                    "load bind seq={seq} line {line:#x}{}",
                    if *reordered { " [reordered]" } else { "" }
                )
            }
            TraceEvent::LoadCommit { seq, line, reordered } => {
                write!(
                    f,
                    "load commit seq={seq} line {line:#x}{}",
                    if *reordered { " [reordered]" } else { "" }
                )
            }
            TraceEvent::MeshHop { src, dst, hops_left, vnet } => {
                write!(f, "hop n{src} -> n{dst} ({hops_left} left) vnet{vnet}")
            }
            TraceEvent::LinkDrop { src, dst, vnet, seq, corrupt } => {
                write!(
                    f,
                    "link drop n{src} -> n{dst} vnet{vnet} seq={seq}{}",
                    if *corrupt { " [checksum]" } else { "" }
                )
            }
            TraceEvent::LinkRetx { src, dst, vnet, seq, attempt } => {
                write!(f, "link retx n{src} -> n{dst} vnet{vnet} seq={seq} attempt={attempt}")
            }
            TraceEvent::LinkDupSquashed { src, dst, vnet, seq } => {
                write!(f, "link dup-squash n{src} -> n{dst} vnet{vnet} seq={seq}")
            }
        }
    }
}

/// A [`TraceEvent`] plus where and when it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Simulation cycle of the observation.
    pub cycle: Cycle,
    /// Component that recorded it.
    pub comp: CompId,
    /// The observation itself.
    pub event: TraceEvent,
}

impl std::fmt::Display for Record {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{:>8}] {:<8} {}", self.cycle, self.comp.to_string(), self.event)
    }
}

// ---------------------------------------------------------------------------
// Ring buffer
// ---------------------------------------------------------------------------

/// A per-component bounded ring buffer of [`Record`]s.
///
/// Disabled (the default) it is free: `record` bails on a single mask
/// compare before constructing anything. Enabled, the buffer keeps the
/// most recent [`DEFAULT_RING_CAPACITY`] admitted records and counts
/// the overwritten ones in [`Tracer::dropped`].
#[derive(Debug, Clone)]
pub struct Tracer {
    comp: CompId,
    filter: TraceFilter,
    cap: usize,
    buf: VecDeque<Record>,
    dropped: u64,
}

impl Tracer {
    /// A disabled tracer for component `comp` with the default ring
    /// capacity.
    pub fn new(comp: CompId) -> Self {
        Tracer::with_capacity(comp, DEFAULT_RING_CAPACITY)
    }

    /// A disabled tracer with an explicit ring capacity.
    pub fn with_capacity(comp: CompId, cap: usize) -> Self {
        Tracer {
            comp,
            filter: TraceFilter::OFF,
            cap: cap.max(1),
            buf: VecDeque::new(),
            dropped: 0,
        }
    }

    /// The component this tracer belongs to.
    pub fn comp(&self) -> CompId {
        self.comp
    }

    /// Replace the filter (buffer contents are kept).
    pub fn set_filter(&mut self, filter: TraceFilter) {
        self.filter = filter;
    }

    /// The active filter.
    pub fn filter(&self) -> TraceFilter {
        self.filter
    }

    /// Cheap pre-check: is `cat` enabled at all? Call this before
    /// doing any work to *construct* an event payload.
    #[inline]
    pub fn wants(&self, cat: Category) -> bool {
        self.filter.mask & cat.bit() != 0
    }

    /// Record an event at `cycle` if the filter admits it.
    #[inline]
    pub fn record(&mut self, cycle: Cycle, event: TraceEvent) {
        if self.filter.mask == 0 {
            return;
        }
        self.push(cycle, event);
    }

    #[cold]
    fn push(&mut self, cycle: Cycle, event: TraceEvent) {
        if !self.filter.admits(&event) {
            return;
        }
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(Record { cycle, comp: self.comp, event });
    }

    /// Records currently held, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &Record> {
        self.buf.iter()
    }

    /// Number of records overwritten by ring wrap-around.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no record is held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Drop all held records (filter and drop count are kept).
    pub fn clear(&mut self) {
        self.buf.clear();
    }
}

// ---------------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------------

/// Where human-readable trace lines go. `Stderr` preserves the old
/// `System::trace_line` behaviour; `Capture` makes output testable.
#[derive(Debug, Default)]
pub enum TraceSink {
    /// Print each line to stderr (the default, matching the historic
    /// `eprintln!` behaviour). This arm is the one sanctioned
    /// `eprintln!` call site in `crates/*/src`.
    #[default]
    Stderr,
    /// Collect lines in memory; retrieve with [`TraceSink::take_lines`].
    Capture(Vec<String>),
    /// Discard everything.
    Null,
}

impl TraceSink {
    /// Emit one line.
    pub fn emit(&mut self, line: &str) {
        match self {
            TraceSink::Stderr => eprintln!("{line}"),
            TraceSink::Capture(buf) => buf.push(line.to_string()),
            TraceSink::Null => {}
        }
    }

    /// Take captured lines (empty for non-capture sinks).
    pub fn take_lines(&mut self) -> Vec<String> {
        match self {
            TraceSink::Capture(buf) => std::mem::take(buf),
            _ => Vec::new(),
        }
    }
}

/// Print a debug line to stderr. The escape hatch for env-gated debug
/// output (e.g. `WB_ECL_DEBUG`) so component code stays free of bare
/// `eprintln!` (enforced by the `scripts/verify.sh` grep guard).
pub fn stderr_line(line: &str) {
    eprintln!("{line}");
}

/// Render records as the human-readable dump, one line per record.
pub fn render_text(records: &[Record]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&r.to_string());
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------------------
// Chrome trace-event export
// ---------------------------------------------------------------------------

/// `(pid, tid)` for a component: one process row per component class,
/// one thread row per node — the shape Perfetto renders as grouped
/// per-class swim lanes.
fn pid_tid(comp: CompId) -> (u32, u32) {
    match comp {
        CompId::Core(i) => (1, i as u32),
        CompId::Cache(i) => (2, i as u32),
        CompId::Dir(i) => (3, i as u32),
        CompId::Mesh => (4, 0),
        CompId::System => (5, 0),
    }
}

fn push_meta(out: &mut String, pid: u32, tid: Option<u32>, name: &str) {
    match tid {
        None => out.push_str(&format!(
            r#"{{"ph":"M","pid":{pid},"name":"process_name","args":{{"name":"{name}"}}}}"#
        )),
        Some(tid) => out.push_str(&format!(
            r#"{{"ph":"M","pid":{pid},"tid":{tid},"name":"thread_name","args":{{"name":"{name}"}}}}"#
        )),
    }
}

/// One Chrome trace event object. `ph` is the phase; span events
/// (`"b"`/`"e"`, async nestable) carry an `id` so overlapping windows
/// on one track pair up correctly.
fn push_event(
    out: &mut String,
    ph: char,
    name: &str,
    cat: &str,
    comp: CompId,
    ts: Cycle,
    id: Option<u64>,
    args: &str,
) {
    let (pid, tid) = pid_tid(comp);
    out.push_str(&format!(
        r#"{{"ph":"{ph}","name":"{name}","cat":"{cat}","pid":{pid},"tid":{tid},"ts":{ts}"#
    ));
    if let Some(id) = id {
        out.push_str(&format!(r#","id":"{id:#x}""#));
    }
    if ph == 'i' {
        out.push_str(r#","s":"t""#);
    }
    if !args.is_empty() {
        out.push_str(&format!(r#","args":{{{args}}}"#));
    }
    out.push('}');
}

/// One point on a Perfetto counter track: at `cycle`, counter `track`
/// had `value`. Produced by the timeline sampler (one sample per
/// counter per window) and rendered as a `"ph":"C"` event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSample<'a> {
    /// Simulation cycle of the sample (the window's end cycle).
    pub cycle: Cycle,
    /// Counter name; becomes the Perfetto track name. Must be a plain
    /// identifier (no quotes/control characters) — counter keys are.
    pub track: &'a str,
    /// The counter's per-window delta (or gauge value) at `cycle`.
    pub value: u64,
}

/// Export records as Chrome trace-event JSON (the `traceEvents` array
/// format), loadable in `chrome://tracing` and Perfetto.
///
/// Timestamps are simulation cycles used directly as the `ts`
/// microsecond field — absolute units don't matter for inspection.
/// Lockdown and WritersBlock windows become async nestable spans
/// (`ph:"b"`/`"e"`, id = line number) so overlapping windows on one
/// component render as parallel slices; everything else is an instant.
/// Output is deterministic: records are emitted in slice order with no
/// floats, timestamps or randomness.
pub fn chrome_trace_json(records: &[Record]) -> String {
    chrome_trace_json_ext(records, &[])
}

/// [`chrome_trace_json`] plus counter tracks: each [`CounterSample`]
/// becomes a `"ph":"C"` event under a dedicated "timeline" process row
/// (pid 6), so Perfetto plots per-window counter deltas as stacked
/// area charts alongside the event swim lanes. Samples are emitted in
/// slice order — pass them time-ordered (the timeline sampler does).
pub fn chrome_trace_json_ext(records: &[Record], counters: &[CounterSample<'_>]) -> String {
    let mut out = String::from(r#"{"displayTimeUnit":"ns","traceEvents":["#);
    let mut first = true;
    let mut sep = |out: &mut String| {
        if first {
            first = false;
        } else {
            out.push(',');
        }
    };

    // Name the process/thread rows for every component that appears.
    let mut comps: Vec<CompId> = records.iter().map(|r| r.comp).collect();
    comps.sort_unstable();
    comps.dedup();
    for &(pid, name) in
        &[(1u32, "cores"), (2, "caches"), (3, "directories"), (4, "mesh"), (5, "system")]
    {
        if comps.iter().any(|c| pid_tid(*c).0 == pid) {
            sep(&mut out);
            push_meta(&mut out, pid, None, name);
        }
    }
    for c in &comps {
        let (pid, tid) = pid_tid(*c);
        sep(&mut out);
        push_meta(&mut out, pid, Some(tid), &c.to_string());
    }
    if !counters.is_empty() {
        sep(&mut out);
        push_meta(&mut out, 6, None, "timeline");
    }

    for r in records {
        sep(&mut out);
        let cat = r.event.category().label();
        match &r.event {
            TraceEvent::MsgSend { msg, from, to, line, vnet, flits } => push_event(
                &mut out,
                'i',
                &format!("send {msg}"),
                cat,
                *from,
                r.cycle,
                None,
                &format!(
                    r#""line":"{line:#x}","to":"{to}","vnet":{vnet},"flits":{flits}"#
                ),
            ),
            TraceEvent::MsgRecv { msg, src, to, line } => push_event(
                &mut out,
                'i',
                &format!("recv {msg}"),
                cat,
                *to,
                r.cycle,
                None,
                &format!(r#""line":"{line:#x}","src":"n{src}""#),
            ),
            TraceEvent::DirTransition { line, from, to } => push_event(
                &mut out,
                'i',
                &format!("{from}->{to}"),
                cat,
                r.comp,
                r.cycle,
                None,
                &format!(r#""line":"{line:#x}""#),
            ),
            TraceEvent::WritersBlockBegin { line, writer } => push_event(
                &mut out,
                'b',
                &format!("writersblock {line:#x}"),
                cat,
                r.comp,
                r.cycle,
                Some(*line),
                &format!(r#""writer":"n{writer}""#),
            ),
            TraceEvent::WritersBlockEnd { line } => push_event(
                &mut out,
                'e',
                &format!("writersblock {line:#x}"),
                cat,
                r.comp,
                r.cycle,
                Some(*line),
                "",
            ),
            TraceEvent::MshrAlloc { line, kind } => push_event(
                &mut out,
                'i',
                &format!("mshr+ {kind}"),
                cat,
                r.comp,
                r.cycle,
                None,
                &format!(r#""line":"{line:#x}""#),
            ),
            TraceEvent::MshrFree { line, kind, latency } => push_event(
                &mut out,
                'i',
                &format!("mshr- {kind}"),
                cat,
                r.comp,
                r.cycle,
                None,
                &format!(r#""line":"{line:#x}","latency":{latency}"#),
            ),
            TraceEvent::LockdownBegin { line } => push_event(
                &mut out,
                'b',
                &format!("lockdown {line:#x}"),
                cat,
                r.comp,
                r.cycle,
                Some(*line),
                "",
            ),
            TraceEvent::LockdownEnd { line, held } => push_event(
                &mut out,
                'e',
                &format!("lockdown {line:#x}"),
                cat,
                r.comp,
                r.cycle,
                Some(*line),
                &format!(r#""held":{held}"#),
            ),
            TraceEvent::LoadBind { seq, line, reordered } => push_event(
                &mut out,
                'i',
                "load bind",
                cat,
                r.comp,
                r.cycle,
                None,
                &format!(r#""seq":{seq},"line":"{line:#x}","reordered":{reordered}"#),
            ),
            TraceEvent::LoadCommit { seq, line, reordered } => push_event(
                &mut out,
                'i',
                "load commit",
                cat,
                r.comp,
                r.cycle,
                None,
                &format!(r#""seq":{seq},"line":"{line:#x}","reordered":{reordered}"#),
            ),
            TraceEvent::MeshHop { src, dst, hops_left, vnet } => push_event(
                &mut out,
                'i',
                "hop",
                cat,
                r.comp,
                r.cycle,
                None,
                &format!(r#""src":"n{src}","dst":"n{dst}","hops_left":{hops_left},"vnet":{vnet}"#),
            ),
            TraceEvent::LinkDrop { src, dst, vnet, seq, corrupt } => push_event(
                &mut out,
                'i',
                "link drop",
                cat,
                r.comp,
                r.cycle,
                None,
                &format!(
                    r#""src":"n{src}","dst":"n{dst}","vnet":{vnet},"seq":{seq},"corrupt":{corrupt}"#
                ),
            ),
            TraceEvent::LinkRetx { src, dst, vnet, seq, attempt } => push_event(
                &mut out,
                'i',
                "link retx",
                cat,
                r.comp,
                r.cycle,
                None,
                &format!(
                    r#""src":"n{src}","dst":"n{dst}","vnet":{vnet},"seq":{seq},"attempt":{attempt}"#
                ),
            ),
            TraceEvent::LinkDupSquashed { src, dst, vnet, seq } => push_event(
                &mut out,
                'i',
                "link dup-squash",
                cat,
                r.comp,
                r.cycle,
                None,
                &format!(r#""src":"n{src}","dst":"n{dst}","vnet":{vnet},"seq":{seq}"#),
            ),
        }
    }
    for c in counters {
        sep(&mut out);
        out.push_str(&format!(
            r#"{{"ph":"C","name":"{}","pid":6,"tid":0,"ts":{},"args":{{"value":{}}}}}"#,
            c.track, c.cycle, c.value
        ));
    }
    out.push_str("]}");
    out
}

/// Merge per-component record sets into one cycle-ordered timeline.
///
/// The sort is stable, so records from the same cycle keep the order
/// of `sources` — pass components in a fixed order and the output is
/// deterministic for a deterministic simulation.
pub fn merge_records<'a>(sources: impl IntoIterator<Item = &'a Tracer>) -> Vec<Record> {
    merge_records_where(sources, |_| true)
}

/// [`merge_records`], filtering *during* the merge: records failing
/// `keep` are never cloned. Because the same stable sort runs over the
/// surviving records in the same source order, the result is exactly
/// `merge_records(sources)` post-filtered with `keep` — without first
/// materialising every ring buffer (the win when one line's events are
/// wanted out of 49 full rings).
pub fn merge_records_where<'a>(
    sources: impl IntoIterator<Item = &'a Tracer>,
    keep: impl Fn(&Record) -> bool,
) -> Vec<Record> {
    let mut all: Vec<Record> = Vec::new();
    for t in sources {
        all.extend(t.records().filter(|r| keep(r)).cloned());
    }
    all.sort_by_key(|r| r.cycle);
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(line: u64) -> TraceEvent {
        TraceEvent::LockdownBegin { line }
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::new(CompId::Core(0));
        t.record(1, ev(7));
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn filter_by_category_and_level() {
        let mut t = Tracer::new(CompId::Mesh);
        t.set_filter(TraceFilter::only(&[Category::Mesh]).with_level(Level::Info));
        // Mesh hops are Debug, so an Info filter drops them.
        t.record(1, TraceEvent::MeshHop { src: 0, dst: 1, hops_left: 2, vnet: 0 });
        assert!(t.is_empty());
        t.set_filter(TraceFilter::only(&[Category::Mesh]));
        t.record(2, TraceEvent::MeshHop { src: 0, dst: 1, hops_left: 2, vnet: 0 });
        assert_eq!(t.len(), 1);
        // Lockdown events are outside the mask.
        t.record(3, ev(1));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn filter_by_line() {
        let mut t = Tracer::new(CompId::Cache(1));
        t.set_filter(TraceFilter::all().with_line(0x10));
        t.record(1, ev(0x10));
        t.record(2, ev(0x11));
        // Line-less events are dropped by a line filter.
        t.record(3, TraceEvent::MeshHop { src: 0, dst: 1, hops_left: 0, vnet: 0 });
        assert_eq!(t.len(), 1);
        assert_eq!(t.records().next().unwrap().event.line(), Some(0x10));
    }

    #[test]
    fn ring_wraps_and_counts_drops() {
        let mut t = Tracer::with_capacity(CompId::Dir(0), 3);
        t.set_filter(TraceFilter::all());
        for c in 0..5u64 {
            t.record(c, ev(c));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let cycles: Vec<Cycle> = t.records().map(|r| r.cycle).collect();
        assert_eq!(cycles, vec![2, 3, 4]);
    }

    #[test]
    fn record_display_is_stable() {
        let r = Record { cycle: 42, comp: CompId::Dir(3), event: ev(0x2a) };
        let s = r.to_string();
        assert!(s.contains("42") && s.contains("dir3") && s.contains("0x2a"), "{s}");
    }

    #[test]
    fn capture_sink_collects() {
        let mut sink = TraceSink::Capture(Vec::new());
        sink.emit("hello");
        sink.emit("world");
        assert_eq!(sink.take_lines(), vec!["hello", "world"]);
        assert!(sink.take_lines().is_empty());
        TraceSink::Null.emit("dropped");
    }

    #[test]
    fn merge_is_cycle_ordered_and_stable() {
        let mut a = Tracer::new(CompId::Core(0));
        let mut b = Tracer::new(CompId::Core(1));
        a.set_filter(TraceFilter::all());
        b.set_filter(TraceFilter::all());
        a.record(5, ev(1));
        a.record(1, ev(2));
        b.record(5, ev(3));
        let merged = merge_records([&a, &b]);
        assert_eq!(merged.len(), 3);
        assert_eq!(merged[0].cycle, 1);
        // Same cycle: source order (a before b) is preserved.
        assert_eq!(merged[1].comp, CompId::Core(0));
        assert_eq!(merged[2].comp, CompId::Core(1));
    }

    #[test]
    fn chrome_trace_shape() {
        let mut t = Tracer::new(CompId::Cache(2));
        t.set_filter(TraceFilter::all());
        t.record(10, TraceEvent::LockdownBegin { line: 0x40 });
        t.record(25, TraceEvent::LockdownEnd { line: 0x40, held: 15 });
        let json = chrome_trace_json(&merge_records([&t]));
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains(r#""traceEvents":["#));
        assert!(json.contains(r#""ph":"b""#) && json.contains(r#""ph":"e""#));
        assert!(json.contains(r#""ph":"M""#));
        assert!(json.contains("cache2"));
        // Balanced span ids.
        assert_eq!(json.matches(r#""id":"0x40""#).count(), 2);
    }

    #[test]
    fn chrome_trace_empty_is_wellformed() {
        assert_eq!(chrome_trace_json(&[]), r#"{"displayTimeUnit":"ns","traceEvents":[]}"#);
    }

    #[test]
    fn counter_tracks_render_as_counter_events() {
        let samples = [
            CounterSample { cycle: 100, track: "dir_writes_blocked", value: 3 },
            CounterSample { cycle: 200, track: "dir_writes_blocked", value: 0 },
        ];
        let json = chrome_trace_json_ext(&[], &samples);
        assert!(json.contains(r#""ph":"C""#), "{json}");
        assert!(json.contains(r#""name":"dir_writes_blocked""#));
        assert!(json.contains(r#""ts":100"#) && json.contains(r#""ts":200"#));
        assert!(json.contains(r#""name":"timeline""#), "pid 6 must be named");
        crate::json::parse(&json).expect("well-formed");
        // No counters → byte-identical to the plain exporter.
        assert_eq!(chrome_trace_json_ext(&[], &[]), chrome_trace_json(&[]));
    }
}
