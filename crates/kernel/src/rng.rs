//! Deterministic random numbers for reproducible simulation.
//!
//! Everything random in the simulator — message jitter, workload address
//! streams, litmus seeds — flows through [`SimRng`], a small, fast,
//! splittable PRNG (xoshiro256** core) so that a run is a pure function of
//! its [`crate::config::SystemConfig`].

/// A deterministic, splittable pseudo-random number generator.
///
/// # Example
///
/// ```
/// use wb_kernel::SimRng;
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Create a generator from a seed. Different seeds give statistically
    /// independent streams (seeded through SplitMix64).
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        SimRng { s: [next(), next(), next(), next()] }
    }

    /// Derive an independent child stream, e.g. one per core.
    pub fn split(&mut self, salt: u64) -> SimRng {
        SimRng::new(self.next_u64() ^ salt.wrapping_mul(0x2545_f491_4f6c_dd1d))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`; returns 0 when `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Lemire's multiply-shift rejection-free approximation is fine for
        // simulation purposes.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `usize` in `[0, bound)`; returns 0 when `bound == 0`.
    pub fn below_usize(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Uniform value in the inclusive range `[lo, hi]`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// Bernoulli draw: true with probability `num`/`den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        debug_assert!(den > 0);
        self.below(den) < num
    }

    /// Uniform f64 in [0,1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fisher-Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below_usize(i + 1);
            xs.swap(i, j);
        }
    }

    /// Pick a reference to a uniformly random element, or `None` if empty.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        if xs.is_empty() {
            None
        } else {
            Some(&xs[self.below_usize(xs.len())])
        }
    }

    /// The raw xoshiro256** state, for checkpointing (see
    /// [`crate::snap`]). Restoring via [`SimRng::from_state`] resumes
    /// the stream exactly where [`SimRng::state`] captured it.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuild a generator from a captured [`SimRng::state`].
    pub fn from_state(s: [u64; 4]) -> Self {
        SimRng { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn split_streams_independent() {
        let mut root = SimRng::new(3);
        let mut c1 = root.split(0);
        let mut c2 = root.split(1);
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SimRng::new(11);
        for _ in 0..10_000 {
            assert!(r.below(17) < 17);
        }
        assert_eq!(r.below(0), 0);
        assert_eq!(r.below(1), 0);
    }

    #[test]
    fn range_inclusive() {
        let mut r = SimRng::new(5);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let v = r.range(3, 5);
            assert!((3..=5).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 5;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(9);
        for _ in 0..100 {
            assert!(!r.chance(0, 10));
            assert!(r.chance(10, 10));
        }
    }

    #[test]
    fn unit_f64_in_range() {
        let mut r = SimRng::new(13);
        for _ in 0..1000 {
            let v = r.unit_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(21);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_empty_and_nonempty() {
        let mut r = SimRng::new(1);
        let empty: [u8; 0] = [];
        assert!(r.choose(&empty).is_none());
        assert!(r.choose(&[1, 2, 3]).is_some());
    }

    #[test]
    fn state_round_trip_resumes_stream() {
        let mut a = SimRng::new(99);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = SimRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut r = SimRng::new(33);
        let mut buckets = [0u32; 8];
        for _ in 0..80_000 {
            buckets[r.below_usize(8)] += 1;
        }
        for &b in &buckets {
            assert!((9_000..11_000).contains(&b), "bucket {b} outside tolerance");
        }
    }
}
