//! Wedge diagnosis: structured reports for runs that stop making
//! progress.
//!
//! When the per-core watchdog trips, the system extracts a wait-for
//! graph from live component state (ROB-head stall reasons, MSHR and
//! blocked-write entries, busy/WritersBlock/Evicting directory entries,
//! queued requests, in-flight mesh messages), runs cycle detection, and
//! classifies the wedge:
//!
//! - **Deadlock** — a cycle in the wait-for graph with no retry
//!   activity: nothing is moving and nothing ever will.
//! - **Livelock** — retries/Nacks/re-invalidations accumulating while
//!   retirement is flat (§3.4's Option-1 pathology): messages still
//!   flow, so there is usually no static cycle.
//! - **Starvation** — no cycle and no retry storm; some core simply
//!   never gets serviced.
//! - **ProtocolFault** — a protocol component reached an "impossible"
//!   state and recorded a typed error instead of panicking.
//!
//! Everything here is deterministic: parties order totally, edges are
//! sorted and deduplicated, and cycle detection explores in sorted
//! order, so the same wedge always renders byte-identically.

use std::fmt;

/// A node in the wait-for graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum WaitParty {
    /// A CPU core (waits on lines; resolves lockdowns by committing).
    Core(u16),
    /// A private cache (waits on lines via MSHRs; holds lockdowns).
    Cache(u16),
    /// A directory bank (holds parked evictions).
    Dir(u16),
    /// A cache line with an in-flight transaction.
    Line(u64),
}

impl fmt::Display for WaitParty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WaitParty::Core(i) => write!(f, "core{i}"),
            WaitParty::Cache(i) => write!(f, "cache{i}"),
            WaitParty::Dir(i) => write!(f, "dir{i}"),
            WaitParty::Line(l) => write!(f, "line {l:#x}"),
        }
    }
}

/// A directed "waits on" edge with a human-readable cause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaitEdge {
    pub from: WaitParty,
    pub to: WaitParty,
    pub why: String,
}

/// Deterministic cycle detection: DFS over the edge list with
/// neighbours visited in sorted order; returns the first cycle found,
/// as the ordered list of parties around it.
pub fn find_cycle(edges: &[WaitEdge]) -> Option<Vec<WaitParty>> {
    let mut adj: Vec<(WaitParty, WaitParty)> =
        edges.iter().map(|e| (e.from, e.to)).collect();
    adj.sort();
    adj.dedup();
    let mut nodes: Vec<WaitParty> = adj.iter().flat_map(|&(a, b)| [a, b]).collect();
    nodes.sort();
    nodes.dedup();

    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    let idx = |p: WaitParty| nodes.binary_search(&p).expect("node listed");
    let mut mark = vec![Mark::White; nodes.len()];
    // Iterative DFS keeping the grey path so the cycle can be read off.
    for &start in &nodes {
        if mark[idx(start)] != Mark::White {
            continue;
        }
        let mut path: Vec<WaitParty> = Vec::new();
        let mut stack: Vec<(WaitParty, usize)> = vec![(start, 0)];
        while let Some(&(node, next)) = stack.last() {
            if next == 0 {
                mark[idx(node)] = Mark::Grey;
                path.push(node);
            }
            let succs: Vec<WaitParty> = adj
                .iter()
                .filter(|&&(a, _)| a == node)
                .map(|&(_, b)| b)
                .collect();
            if next < succs.len() {
                stack.last_mut().expect("non-empty").1 += 1;
                let succ = succs[next];
                match mark[idx(succ)] {
                    Mark::Grey => {
                        // Cycle: from succ's position in the path to the end.
                        let at = path.iter().position(|&p| p == succ).expect("grey on path");
                        return Some(path[at..].to_vec());
                    }
                    Mark::White => stack.push((succ, 0)),
                    Mark::Black => {}
                }
            } else {
                mark[idx(node)] = Mark::Black;
                path.pop();
                stack.pop();
            }
        }
    }
    None
}

/// Why the run wedged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WedgeClass {
    Deadlock,
    Livelock,
    Starvation,
    ProtocolFault,
    /// An undetected soft error (bit flip that escaped the parity
    /// guards) is the suspected cause: state or results diverged without
    /// any protocol-level fault firing.
    SilentCorruption,
}

impl fmt::Display for WedgeClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WedgeClass::Deadlock => write!(f, "deadlock (cyclic wait, no activity)"),
            WedgeClass::Livelock => {
                write!(f, "livelock (retries accumulating without retirement)")
            }
            WedgeClass::Starvation => write!(f, "starvation (no cycle, no retry storm)"),
            WedgeClass::ProtocolFault => write!(f, "protocol fault (impossible state reached)"),
            WedgeClass::SilentCorruption => {
                write!(f, "silent corruption (undetected soft error suspected)")
            }
        }
    }
}

/// The structured diagnosis returned inside `RunOutcome::Wedge` /
/// `RunOutcome::Fault`. `Display` is the actionable failure report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WedgeReport {
    pub class: WedgeClass,
    pub at_cycle: u64,
    /// One-line reproducer: workload + seed + config + chaos plan.
    pub reproducer: String,
    /// (core id, cycles since it last retired), worst first.
    pub stalled_cores: Vec<(u16, u64)>,
    /// Retry-class events (Nack retries, re-invalidation rounds,
    /// tear-off retries) observed inside the stall window.
    pub retries_in_window: u64,
    /// The extracted wait-for graph.
    pub edges: Vec<WaitEdge>,
    /// For a deadlock: the detected cycle, in order. For other classes:
    /// the parties implicated by the stalled cores' wait chains.
    pub participants: Vec<WaitParty>,
    /// Rendered `ProtocolError`, when `class == ProtocolFault`.
    pub error: Option<String>,
    /// Free-form context: in-flight message counts, trace-dump paths…
    pub notes: Vec<String>,
}

impl WedgeReport {
    pub fn involves(&self, p: WaitParty) -> bool {
        self.participants.contains(&p)
    }

    /// A stable dedup key for campaign fuzzing: two wedges with the
    /// same signature are the same underlying bug. The signature keeps
    /// what characterises the failure — the class, the (sorted)
    /// participant set, the (sorted, deduplicated) edge causes and the
    /// protocol-fault text — and normalises out everything that varies
    /// per encounter: the cycle it fired at, the seed baked into the
    /// reproducer, per-core stall counts, the retry tally, and the
    /// volatile `since cycle N` / `(seq N)` suffixes inside edge
    /// causes. A million-cell sweep thus surfaces each distinct wedge
    /// once.
    pub fn signature(&self) -> String {
        fn normalise(why: &str) -> &str {
            let mut w = why;
            for marker in [" since cycle ", " (seq ", " bit "] {
                if let Some(i) = w.find(marker) {
                    w = &w[..i];
                }
            }
            w
        }
        let class = match self.class {
            WedgeClass::Deadlock => "deadlock",
            WedgeClass::Livelock => "livelock",
            WedgeClass::Starvation => "starvation",
            WedgeClass::ProtocolFault => "fault",
            WedgeClass::SilentCorruption => "silent-corruption",
        };
        let mut parties: Vec<String> = self.participants.iter().map(|p| p.to_string()).collect();
        parties.sort();
        parties.dedup();
        let mut causes: Vec<String> =
            self.edges.iter().map(|e| format!("{}->{}:{}", e.from, e.to, normalise(&e.why))).collect();
        causes.sort();
        causes.dedup();
        let error = self.error.as_deref().unwrap_or("");
        format!("{class}|{}|{}|{error}", parties.join(","), causes.join(";"))
    }
}

impl fmt::Display for WedgeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "wedge: {} at cycle {}", self.class, self.at_cycle)?;
        writeln!(f, "  reproducer: {}", self.reproducer)?;
        if let Some(e) = &self.error {
            writeln!(f, "  error: {e}")?;
        }
        if !self.stalled_cores.is_empty() {
            write!(f, "  stalled cores:")?;
            for (c, n) in &self.stalled_cores {
                write!(f, " core{c}({n}cy)")?;
            }
            writeln!(f)?;
        }
        writeln!(f, "  retries in window: {}", self.retries_in_window)?;
        if !self.participants.is_empty() {
            write!(f, "  participants:")?;
            for (i, p) in self.participants.iter().enumerate() {
                write!(f, "{}{p}", if i == 0 { " " } else { " -> " })?;
            }
            writeln!(f)?;
        }
        if !self.edges.is_empty() {
            writeln!(f, "  wait-for graph:")?;
            for e in &self.edges {
                writeln!(f, "    {} -> {}: {}", e.from, e.to, e.why)?;
            }
        }
        for n in &self.notes {
            writeln!(f, "  note: {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use WaitParty::*;

    fn e(from: WaitParty, to: WaitParty) -> WaitEdge {
        WaitEdge {
            from,
            to,
            why: String::new(),
        }
    }

    #[test]
    fn no_edges_no_cycle() {
        assert_eq!(find_cycle(&[]), None);
    }

    #[test]
    fn chain_has_no_cycle() {
        let edges = [e(Core(0), Line(0x40)), e(Line(0x40), Cache(1)), e(Cache(1), Core(1))];
        assert_eq!(find_cycle(&edges), None);
    }

    #[test]
    fn simple_cycle_found_in_order() {
        let edges = [
            e(Core(0), Line(0x40)),
            e(Line(0x40), Cache(1)),
            e(Cache(1), Core(0)),
        ];
        let cyc = find_cycle(&edges).expect("cycle exists");
        assert_eq!(cyc.len(), 3);
        assert!(cyc.contains(&Core(0)));
        assert!(cyc.contains(&Line(0x40)));
        assert!(cyc.contains(&Cache(1)));
    }

    #[test]
    fn cycle_off_the_main_chain() {
        // A reaches a cycle it is not part of: report the cycle only.
        let edges = [
            e(Core(0), Line(0x80)),
            e(Line(0x80), Cache(2)),
            e(Cache(2), Line(0xc0)),
            e(Line(0xc0), Cache(2)),
        ];
        let cyc = find_cycle(&edges).expect("cycle exists");
        assert_eq!(cyc.len(), 2);
        assert!(cyc.contains(&Cache(2)));
        assert!(cyc.contains(&Line(0xc0)));
        assert!(!cyc.contains(&Core(0)));
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let cyc = find_cycle(&[e(Core(3), Core(3))]).expect("self loop");
        assert_eq!(cyc, vec![Core(3)]);
    }

    #[test]
    fn detection_is_deterministic() {
        let edges = [
            e(Cache(1), Core(0)),
            e(Core(0), Line(0x40)),
            e(Line(0x40), Cache(1)),
            e(Core(5), Line(0x40)),
        ];
        let a = find_cycle(&edges);
        let mut rev: Vec<WaitEdge> = edges.to_vec();
        rev.reverse();
        let b = find_cycle(&rev);
        assert_eq!(a, b, "edge order must not change the result");
    }

    #[test]
    fn report_display_names_everything() {
        let rep = WedgeReport {
            class: WedgeClass::Deadlock,
            at_cycle: 123_456,
            reproducer: "workload=t seed=0x1 cores=4".to_string(),
            stalled_cores: vec![(1, 200_001)],
            retries_in_window: 0,
            edges: vec![WaitEdge {
                from: Core(1),
                to: Line(0x40),
                why: "rob-head-load".to_string(),
            }],
            participants: vec![Core(1), Line(0x40)],
            error: None,
            notes: vec!["9 messages in flight".to_string()],
        };
        let s = rep.to_string();
        assert!(s.contains("deadlock"));
        assert!(s.contains("cycle 123456"));
        assert!(s.contains("seed=0x1"));
        assert!(s.contains("core1(200001cy)"));
        assert!(s.contains("core1 -> line 0x40: rob-head-load"));
        assert!(s.contains("note: 9 messages in flight"));
        assert!(rep.involves(Core(1)));
        assert!(!rep.involves(Core(2)));
    }

    #[test]
    fn signature_normalises_per_encounter_noise() {
        let mk = |at_cycle: u64, seed: u64, stall: u64, retries: u64| WedgeReport {
            class: WedgeClass::Livelock,
            at_cycle,
            reproducer: format!("workload=t seed={seed:#x} cores=4"),
            stalled_cores: vec![(1, stall)],
            retries_in_window: retries,
            edges: vec![
                WaitEdge { from: Core(1), to: Line(0x40), why: "rob-head-load".to_string() },
                WaitEdge { from: Line(0x40), to: Cache(0), why: "mshr".to_string() },
            ],
            participants: vec![Line(0x40), Core(1)],
            error: None,
            notes: vec![format!("{at_cycle} in flight")],
        };
        let a = mk(100, 1, 5, 2);
        let b = mk(9_999, 77, 123, 0);
        assert_eq!(a.signature(), b.signature(), "cycle/seed/stall noise must not split bugs");
        // Edge order and participant order don't matter either.
        let mut c = mk(100, 1, 5, 2);
        c.edges.reverse();
        c.participants.reverse();
        assert_eq!(a.signature(), c.signature());
        // Volatile suffixes inside edge causes normalise out too.
        let mut f = mk(100, 1, 5, 2);
        let mut g = mk(100, 1, 5, 2);
        f.edges[0].why = "rob-head-load (seq 5)".to_string();
        g.edges[0].why = "rob-head-load (seq 93)".to_string();
        f.edges[1].why = "MSHR Read since cycle 426".to_string();
        g.edges[1].why = "MSHR Read since cycle 7".to_string();
        assert_eq!(f.signature(), g.signature(), "seq/cycle suffixes must not split bugs");
        assert!(f.signature().contains("MSHR Read"), "the stable cause prefix survives");
        // But a different wait-for shape is a different bug.
        let mut d = mk(100, 1, 5, 2);
        d.edges[0].why = "sb-drain".to_string();
        assert_ne!(a.signature(), d.signature());
        let mut e = mk(100, 1, 5, 2);
        e.class = WedgeClass::Deadlock;
        assert_ne!(a.signature(), e.signature());
    }

    #[test]
    fn silent_corruption_signature_normalises_bit_positions() {
        let mk = |bit: u32| WedgeReport {
            class: WedgeClass::SilentCorruption,
            at_cycle: 500,
            reproducer: "workload=t seed=0x1 cores=4".to_string(),
            stalled_cores: vec![],
            retries_in_window: 0,
            edges: vec![WaitEdge {
                from: Core(0),
                to: Line(0x80),
                why: format!("flipped sharer bit {bit}"),
            }],
            participants: vec![Core(0), Line(0x80)],
            error: None,
            notes: vec![],
        };
        let a = mk(3);
        let b = mk(61);
        assert_eq!(a.signature(), b.signature(), "flipped-bit positions must not split bugs");
        assert!(a.signature().starts_with("silent-corruption|"));
    }
}
