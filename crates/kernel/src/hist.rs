//! Log-2-bucketed latency histograms.
//!
//! The paper's evaluation reasons about *distributions* — how long a
//! write sits blocked at the directory, how long a lockdown pins a
//! line, how many cycles a miss takes — not just totals. [`Hist`]
//! captures those distributions with 65 power-of-two buckets: O(1)
//! record, O(1) merge, no heap allocation after construction, and
//! percentile queries that are exact to within one bucket (the value
//! returned is the bucket's upper bound, clamped into `[min, max]`).
//!
//! Histograms live inside [`Stats`](crate::stats::Stats) next to the
//! flat counters and are serialised into the same JSON object, so every
//! `BENCH_*.json` gains p50/p90/p99 columns for free.

/// Number of buckets: bucket 0 holds the value 0, bucket `i >= 1` holds
/// values in `[2^(i-1), 2^i - 1]`, and bucket 64 holds `>= 2^63`.
pub const BUCKETS: usize = 65;

/// A log-2-bucketed histogram of `u64` samples (cycle counts).
///
/// # Example
///
/// ```
/// use wb_kernel::Hist;
/// let mut h = Hist::new();
/// for v in [1u64, 2, 3, 100] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.min(), 1);
/// assert_eq!(h.max(), 100);
/// assert!(h.p50() <= h.p90() && h.p90() <= h.p99());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hist {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Hist {
    fn default() -> Self {
        Hist::new()
    }
}

/// Index of the bucket holding `v`.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Largest value bucket `i` can hold.
fn bucket_hi(i: usize) -> u64 {
    match i {
        0 => 0,
        64 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

/// Smallest value bucket `i` can hold.
fn bucket_lo(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

impl Hist {
    /// An empty histogram.
    pub fn new() -> Self {
        Hist { buckets: [0; BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Record one sample. O(1), allocation-free.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Hist) {
        if other.count == 0 {
            return;
        }
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample (0 for an empty histogram).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample (0 for an empty histogram).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the samples (0.0 for an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `p`-th percentile (0 < p <= 100), exact to one log-2 bucket:
    /// the upper bound of the bucket holding the rank-`ceil(p/100 * n)`
    /// sample, clamped into `[min, max]`. Returns 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            cum += b;
            if cum >= rank {
                return bucket_hi(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median (50th percentile).
    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.percentile(90.0)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }

    /// True when no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The samples recorded since `prev` was snapshotted, as a
    /// histogram of their own. `prev` must be an earlier state of this
    /// same histogram (bucketwise `self >= prev`); subtraction
    /// saturates rather than panicking if it is not.
    ///
    /// Bucket counts, `count` and `sum` are exact. `min`/`max` cannot
    /// be recovered from two snapshots, so they are approximated to
    /// the tightest bucket bounds the delta permits (lower bound of
    /// the lowest non-empty delta bucket, upper bound of the highest,
    /// clamped to the cumulative max) — deterministic, which is what
    /// the timeline's dense≡skip byte-equality needs.
    pub fn delta_since(&self, prev: &Hist) -> Hist {
        let mut d = Hist::new();
        let mut lo = None;
        let mut hi = 0usize;
        for i in 0..BUCKETS {
            let n = self.buckets[i].saturating_sub(prev.buckets[i]);
            d.buckets[i] = n;
            if n > 0 {
                lo.get_or_insert(i);
                hi = i;
            }
        }
        d.count = self.count.saturating_sub(prev.count);
        if d.count == 0 {
            return Hist::new();
        }
        d.sum = self.sum.saturating_sub(prev.sum);
        let lo = lo.unwrap_or(0);
        d.min = bucket_lo(lo);
        d.max = bucket_hi(hi).min(self.max);
        d
    }

    /// Render as a JSON object with integer fields only (deterministic).
    ///
    /// ```
    /// use wb_kernel::Hist;
    /// let mut h = Hist::new();
    /// h.record(4);
    /// assert_eq!(
    ///     h.to_json(),
    ///     r#"{"count":1,"sum":4,"min":4,"max":4,"p50":4,"p90":4,"p99":4}"#
    /// );
    /// ```
    pub fn to_json(&self) -> String {
        format!(
            r#"{{"count":{},"sum":{},"min":{},"max":{},"p50":{},"p90":{},"p99":{}}}"#,
            self.count,
            self.sum,
            self.min(),
            self.max,
            self.p50(),
            self.p90(),
            self.p99()
        )
    }
}

impl crate::snap::Snap for Hist {
    /// Raw-field serialization: the `min` sentinel (`u64::MAX` while
    /// empty) is captured as-is so a restored histogram keeps recording
    /// exactly where the original left off.
    fn snap(&self, w: &mut crate::snap::SnapWriter) {
        self.buckets.snap(w);
        w.u64(self.count);
        w.u64(self.sum);
        w.u64(self.min);
        w.u64(self.max);
    }

    fn unsnap(r: &mut crate::snap::SnapReader) -> crate::snap::SnapResult<Self> {
        Ok(Hist {
            buckets: <[u64; BUCKETS]>::unsnap(r)?,
            count: r.u64()?,
            sum: r.u64()?,
            min: r.u64()?,
            max: r.u64()?,
        })
    }
}

impl std::fmt::Display for Hist {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} p50={} p90={} p99={} max={}",
            self.count,
            self.p50(),
            self.p90(),
            self.p99(),
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::prelude::*;

    #[test]
    fn empty_is_all_zero() {
        let h = Hist::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.is_empty());
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_hi(0), 0);
        assert_eq!(bucket_hi(1), 1);
        assert_eq!(bucket_hi(2), 3);
        assert_eq!(bucket_hi(64), u64::MAX);
    }

    #[test]
    fn single_sample_percentiles_are_exact() {
        let mut h = Hist::new();
        h.record(37);
        assert_eq!(h.p50(), 37);
        assert_eq!(h.p90(), 37);
        assert_eq!(h.p99(), 37);
        assert_eq!(h.percentile(100.0), 37);
    }

    #[test]
    fn uniform_ramp_percentiles_are_bucket_accurate() {
        let mut h = Hist::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        // p50 of 1..=1000 is 500; the bucket [512, 1023] or [256, 511]
        // upper bound must bracket it within a factor of 2.
        let p50 = h.p50();
        assert!((250..=1000).contains(&p50), "p50 = {p50}");
        assert!(h.p99() >= h.p90() && h.p90() >= h.p50());
        assert_eq!(h.max(), 1000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
    }

    #[test]
    fn merge_empty_is_identity() {
        let mut a = Hist::new();
        a.record(9);
        let before = a.clone();
        a.merge(&Hist::new());
        assert_eq!(a, before);
        let mut e = Hist::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn delta_since_isolates_the_window() {
        let mut h = Hist::new();
        h.record(3);
        h.record(100);
        let snap = h.clone();
        h.record(7);
        h.record(9);
        let d = h.delta_since(&snap);
        assert_eq!(d.count(), 2);
        assert_eq!(d.sum(), 16);
        // min/max are bucket bounds: both 7 and 9 live in [4, 15].
        assert!(d.min() <= 7, "min bound {} too high", d.min());
        assert!(d.max() >= 9, "max bound {} too low", d.max());
        // No new samples → empty delta, not a zero-count husk.
        assert_eq!(h.delta_since(&h.clone()), Hist::new());
    }

    #[test]
    fn json_shape() {
        let mut h = Hist::new();
        h.record(4);
        h.record(100);
        let j = h.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"count\":2"));
        assert!(j.contains("\"min\":4"));
        assert!(j.contains("\"max\":100"));
    }

    #[test]
    fn snap_round_trip_preserves_raw_fields() {
        use crate::snap::{Snap, SnapReader, SnapWriter};
        for h in [Hist::new(), from_samples(&[0, 1, 7, 1 << 40])] {
            let mut w = SnapWriter::new();
            h.snap(&mut w);
            let bytes = w.into_bytes();
            let mut r = SnapReader::new(&bytes);
            let mut back = Hist::unsnap(&mut r).unwrap();
            r.finish().unwrap();
            assert_eq!(back, h);
            // The empty-min sentinel survives: recording after restore
            // behaves exactly like recording after construction.
            back.record(5);
            let mut direct = h.clone();
            direct.record(5);
            assert_eq!(back, direct);
        }
    }

    fn from_samples(xs: &[u64]) -> Hist {
        let mut h = Hist::new();
        for &x in xs {
            h.record(x);
        }
        h
    }

    wb_proptest! {
        #![cases = 64]

        #[test]
        fn count_conservation(xs in vec_of(0u64..1_000_000, 0..200)) {
            let h = from_samples(&xs);
            prop_assert_eq!(h.count(), xs.len() as u64);
            prop_assert_eq!(h.sum(), xs.iter().sum::<u64>());
            prop_assert_eq!(h.buckets.iter().sum::<u64>(), xs.len() as u64);
        }

        #[test]
        fn percentile_monotonicity(xs in vec_of(0u64..1_000_000, 1..200)) {
            let h = from_samples(&xs);
            let mut prev = 0u64;
            for p in [1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
                let v = h.percentile(p);
                prop_assert!(v >= prev, "p{} = {} < previous {}", p, v, prev);
                prop_assert!(v >= h.min() && v <= h.max());
                prev = v;
            }
        }

        #[test]
        fn merge_associativity(
            a in vec_of(0u64..1_000_000, 0..100),
            b in vec_of(0u64..1_000_000, 0..100),
            c in vec_of(0u64..1_000_000, 0..100),
        ) {
            let (ha, hb, hc) = (from_samples(&a), from_samples(&b), from_samples(&c));
            // (a + b) + c
            let mut left = ha.clone();
            left.merge(&hb);
            left.merge(&hc);
            // a + (b + c)
            let mut bc = hb.clone();
            bc.merge(&hc);
            let mut right = ha.clone();
            right.merge(&bc);
            prop_assert_eq!(&left, &right);
            // And both equal recording everything into one histogram.
            let mut all = a.clone();
            all.extend_from_slice(&b);
            all.extend_from_slice(&c);
            prop_assert_eq!(&left, &from_samples(&all));
        }

        #[test]
        fn delta_since_matches_fresh_histogram_of_the_window(
            xs in vec_of(0u64..1_000_000, 0..100),
            ys in vec_of(0u64..1_000_000, 0..100),
        ) {
            let snap = from_samples(&xs);
            let mut full = snap.clone();
            for &y in &ys {
                full.record(y);
            }
            let d = full.delta_since(&snap);
            let fresh = from_samples(&ys);
            prop_assert_eq!(d.count(), fresh.count());
            prop_assert_eq!(d.sum(), fresh.sum());
            prop_assert_eq!(d.buckets, fresh.buckets);
            // min/max are bucket-bound approximations that must still
            // bracket the window's true extremes.
            prop_assert!(d.min() <= fresh.min());
            prop_assert!(d.max() >= fresh.max());
        }

        #[test]
        fn percentile_within_factor_two_of_exact(xs in vec_of(1u64..1_000_000, 1..200)) {
            let h = from_samples(&xs);
            let mut sorted = xs.clone();
            sorted.sort_unstable();
            for p in [50.0, 90.0, 99.0] {
                let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
                let exact = sorted[rank - 1];
                let approx = h.percentile(p);
                // Bucket upper bound: never below the exact value, and at
                // most 2x above it (log-2 bucket width), modulo clamping.
                prop_assert!(approx >= exact, "p{}: approx {} < exact {}", p, approx, exact);
                // The rank-th sample's bucket has upper bound < 2x the
                // sample (and clamping to max only lowers it further).
                prop_assert!(
                    approx < exact.saturating_mul(2),
                    "p{}: approx {} not within 2x of exact {}", p, approx, exact
                );
            }
        }
    }
}
