//! Versioned binary snapshot codec for deterministic checkpoint/restore.
//!
//! Every stateful component exposes `snap(&self, &mut SnapWriter)` and a
//! matching restore path built on this module, so a whole [`System`]
//! (crate `writersblock`) can be checkpointed mid-run and resumed later
//! — in another process, after a crash — with the invariant
//! *restore(snapshot(S)) then run ≡ run straight through*, byte-identical
//! reports across all engine modes.
//!
//! Design rules (see DESIGN.md "Campaign farm & checkpointing"):
//!
//! - **Versioned header.** Every snapshot starts with [`MAGIC`] and
//!   [`FORMAT_VERSION`]; [`open`] rejects anything else. Bumping the
//!   layout means bumping the version — old snapshots fail loudly, they
//!   are never silently misread.
//! - **Byte-deterministic.** No wall-clock, no pointers, no hash-order
//!   iteration: callers serialize map-backed state in sorted key order.
//!   The same machine state always produces the same bytes.
//! - **Self-describing lengths.** Collections carry explicit `u64`
//!   lengths; [`SnapReader`] bounds-checks every read, so a truncated or
//!   corrupt snapshot surfaces as a [`SnapError`], never a panic in
//!   component code.
//! - **JSON envelope.** [`to_json`]/[`from_json`] wrap the binary image
//!   in a strict-JSON envelope with a hex payload (the in-tree parser
//!   keeps numbers as `f64`, so raw 64-bit values cannot ride as JSON
//!   numbers) and a FNV-1a checksum; the envelope self-validates through
//!   [`crate::json::parse`] before it is handed out.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Magic bytes opening every binary snapshot.
pub const MAGIC: &[u8; 6] = b"WBSNAP";

/// Current snapshot layout version. Bump on any layout change.
/// v2: soft-error layer (guard/tag words in cache lines and directory
/// entries, MSHR ECC shadows, `DirState::Poisoned`, the `AuditProbe`/
/// `AuditReply` messages, and the engine/auditor state in `System`).
pub const FORMAT_VERSION: u32 = 2;

/// Why a snapshot failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapError(pub String);

impl SnapError {
    /// Wrap a failure message.
    pub fn new(msg: impl Into<String>) -> Self {
        SnapError(msg.into())
    }
}

impl std::fmt::Display for SnapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "snapshot error: {}", self.0)
    }
}

/// Shorthand for decode results.
pub type SnapResult<T> = Result<T, SnapError>;

// ---------------------------------------------------------------------------
// Writer / reader
// ---------------------------------------------------------------------------

/// Append-only little-endian byte sink.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// An empty writer (no header — see [`snapshot`] for the framed form).
    pub fn new() -> Self {
        SnapWriter { buf: Vec::new() }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u16`, little-endian.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `usize` (as `u64` — snapshots are word-size independent).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Append a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Append raw bytes, length-prefixed.
    pub fn bytes(&mut self, b: &[u8]) {
        self.usize(b.len());
        self.buf.extend_from_slice(b);
    }

    /// Consume the writer, returning the raw bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked little-endian byte source.
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// Read from `buf` starting at byte 0 (no header — see [`open`]).
    pub fn new(buf: &'a [u8]) -> Self {
        SnapReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> SnapResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(SnapError::new(format!(
                "truncated: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> SnapResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a `u16`.
    pub fn u16(&mut self) -> SnapResult<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("sized")))
    }

    /// Read a `u32`.
    pub fn u32(&mut self) -> SnapResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("sized")))
    }

    /// Read a `u64`.
    pub fn u64(&mut self) -> SnapResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("sized")))
    }

    /// Read a `usize` (stored as `u64`), bounds-checked against the
    /// remaining input so a corrupt length cannot trigger an absurd
    /// allocation.
    pub fn usize(&mut self) -> SnapResult<usize> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| SnapError::new(format!("length {v} exceeds usize")))
    }

    /// Read a length that prefixes `elem_bytes`-wide elements, rejecting
    /// lengths that could not possibly fit in the remaining input.
    pub fn len_for(&mut self, elem_bytes: usize) -> SnapResult<usize> {
        let n = self.usize()?;
        if elem_bytes > 0 && n > self.remaining() / elem_bytes.max(1) + 1 {
            return Err(SnapError::new(format!(
                "implausible length {n} at offset {} ({} bytes left)",
                self.pos,
                self.remaining()
            )));
        }
        Ok(n)
    }

    /// Read a bool (strict: only 0 or 1).
    pub fn bool(&mut self) -> SnapResult<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(SnapError::new(format!("bad bool byte {b:#x}"))),
        }
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> SnapResult<String> {
        let n = self.len_for(1)?;
        let raw = self.take(n)?;
        String::from_utf8(raw.to_vec()).map_err(|_| SnapError::new("invalid UTF-8 in string"))
    }

    /// Read length-prefixed raw bytes.
    pub fn bytes(&mut self) -> SnapResult<Vec<u8>> {
        let n = self.len_for(1)?;
        Ok(self.take(n)?.to_vec())
    }

    /// Error unless every byte has been consumed (catches layout drift).
    pub fn finish(self) -> SnapResult<()> {
        if self.remaining() != 0 {
            return Err(SnapError::new(format!(
                "{} unread bytes at end of snapshot (layout mismatch?)",
                self.remaining()
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// The Snap trait and blanket impls
// ---------------------------------------------------------------------------

/// Value-level serialization into the snapshot byte stream.
///
/// Component types with private state implement this (or a bespoke
/// `snap`/`restore` pair) inside their own module; containers compose
/// through the blanket impls below.
pub trait Snap: Sized {
    /// Append this value to `w`.
    fn snap(&self, w: &mut SnapWriter);
    /// Decode one value from `r`.
    fn unsnap(r: &mut SnapReader) -> SnapResult<Self>;
}

macro_rules! impl_snap_prim {
    ($($t:ty => $m:ident),*) => {$(
        impl Snap for $t {
            fn snap(&self, w: &mut SnapWriter) {
                w.$m(*self);
            }
            fn unsnap(r: &mut SnapReader) -> SnapResult<Self> {
                r.$m()
            }
        }
    )*};
}
impl_snap_prim!(u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize, bool => bool);

impl Snap for () {
    fn snap(&self, _w: &mut SnapWriter) {}
    fn unsnap(_r: &mut SnapReader) -> SnapResult<Self> {
        Ok(())
    }
}

impl Snap for String {
    fn snap(&self, w: &mut SnapWriter) {
        w.str(self);
    }
    fn unsnap(r: &mut SnapReader) -> SnapResult<Self> {
        r.str()
    }
}

impl<T: Snap> Snap for Option<T> {
    fn snap(&self, w: &mut SnapWriter) {
        match self {
            None => w.u8(0),
            Some(v) => {
                w.u8(1);
                v.snap(w);
            }
        }
    }
    fn unsnap(r: &mut SnapReader) -> SnapResult<Self> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::unsnap(r)?)),
            b => Err(SnapError::new(format!("bad Option tag {b:#x}"))),
        }
    }
}

impl<T: Snap> Snap for Vec<T> {
    fn snap(&self, w: &mut SnapWriter) {
        w.usize(self.len());
        for v in self {
            v.snap(w);
        }
    }
    fn unsnap(r: &mut SnapReader) -> SnapResult<Self> {
        let n = r.len_for(1)?;
        let mut out = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            out.push(T::unsnap(r)?);
        }
        Ok(out)
    }
}

impl<T: Snap> Snap for VecDeque<T> {
    fn snap(&self, w: &mut SnapWriter) {
        w.usize(self.len());
        for v in self {
            v.snap(w);
        }
    }
    fn unsnap(r: &mut SnapReader) -> SnapResult<Self> {
        let n = r.len_for(1)?;
        let mut out = VecDeque::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            out.push_back(T::unsnap(r)?);
        }
        Ok(out)
    }
}

impl<T: Snap + Ord> Snap for BTreeSet<T> {
    fn snap(&self, w: &mut SnapWriter) {
        w.usize(self.len());
        for v in self {
            v.snap(w);
        }
    }
    fn unsnap(r: &mut SnapReader) -> SnapResult<Self> {
        let n = r.len_for(1)?;
        let mut out = BTreeSet::new();
        for _ in 0..n {
            out.insert(T::unsnap(r)?);
        }
        Ok(out)
    }
}

impl<K: Snap + Ord, V: Snap> Snap for BTreeMap<K, V> {
    fn snap(&self, w: &mut SnapWriter) {
        w.usize(self.len());
        for (k, v) in self {
            k.snap(w);
            v.snap(w);
        }
    }
    fn unsnap(r: &mut SnapReader) -> SnapResult<Self> {
        let n = r.len_for(2)?;
        let mut out = BTreeMap::new();
        for _ in 0..n {
            let k = K::unsnap(r)?;
            let v = V::unsnap(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<T: Snap, const N: usize> Snap for [T; N] {
    fn snap(&self, w: &mut SnapWriter) {
        for v in self {
            v.snap(w);
        }
    }
    fn unsnap(r: &mut SnapReader) -> SnapResult<Self> {
        // No allocation-free const-generic collect on stable without
        // MaybeUninit gymnastics; a Vec detour is fine off the hot path.
        let mut out = Vec::with_capacity(N);
        for _ in 0..N {
            out.push(T::unsnap(r)?);
        }
        out.try_into().map_err(|_| SnapError::new("array length mismatch"))
    }
}

impl<A: Snap, B: Snap> Snap for (A, B) {
    fn snap(&self, w: &mut SnapWriter) {
        self.0.snap(w);
        self.1.snap(w);
    }
    fn unsnap(r: &mut SnapReader) -> SnapResult<Self> {
        Ok((A::unsnap(r)?, B::unsnap(r)?))
    }
}

impl<A: Snap, B: Snap, C: Snap> Snap for (A, B, C) {
    fn snap(&self, w: &mut SnapWriter) {
        self.0.snap(w);
        self.1.snap(w);
        self.2.snap(w);
    }
    fn unsnap(r: &mut SnapReader) -> SnapResult<Self> {
        Ok((A::unsnap(r)?, B::unsnap(r)?, C::unsnap(r)?))
    }
}

// ---------------------------------------------------------------------------
// Framed snapshots
// ---------------------------------------------------------------------------

/// Produce a framed snapshot: header (magic + version), then whatever
/// `payload` writes.
pub fn snapshot(payload: impl FnOnce(&mut SnapWriter)) -> Vec<u8> {
    let mut w = SnapWriter::new();
    w.buf.extend_from_slice(MAGIC);
    w.u32(FORMAT_VERSION);
    payload(&mut w);
    w.into_bytes()
}

/// Open a framed snapshot: validate the header, return a reader
/// positioned at the payload.
pub fn open(bytes: &[u8]) -> SnapResult<SnapReader<'_>> {
    let mut r = SnapReader::new(bytes);
    let magic = r.take(MAGIC.len())?;
    if magic != MAGIC {
        return Err(SnapError::new("not a WBSNAP snapshot (bad magic)"));
    }
    let version = r.u32()?;
    if version != FORMAT_VERSION {
        return Err(SnapError::new(format!(
            "snapshot format version {version} unsupported (this build reads {FORMAT_VERSION})"
        )));
    }
    Ok(r)
}

// ---------------------------------------------------------------------------
// JSON envelope
// ---------------------------------------------------------------------------

/// FNV-1a over the snapshot bytes: the envelope's integrity check.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Wrap a framed snapshot in a strict-JSON envelope with a hex payload.
///
/// The in-tree parser stores numbers as `f64` (exact only to 2^53), so
/// the binary image travels hex-encoded; `bytes` and `check` let a
/// reader reject truncation before decoding a single component. The
/// envelope is self-validated through [`crate::json::parse`] before it
/// is returned.
///
/// # Panics
///
/// Panics if the emitted envelope fails to re-parse — that would mean
/// this function and the parser disagree about JSON, a bug to fix, not
/// an input error to report.
pub fn to_json(snapshot: &[u8]) -> String {
    let mut hex = String::with_capacity(snapshot.len() * 2);
    for &b in snapshot {
        hex.push_str(&format!("{b:02x}"));
    }
    let out = format!(
        "{{\"format\":\"wb-snap\",\"version\":{FORMAT_VERSION},\"bytes\":{},\"check\":\"{:016x}\",\"payload\":\"{hex}\"}}",
        snapshot.len(),
        fnv1a(snapshot),
    );
    crate::json::parse(&out)
        .unwrap_or_else(|e| panic!("emitted snapshot envelope is not valid JSON: {e}"));
    out
}

/// Decode a JSON envelope back into the framed snapshot bytes,
/// validating format, version, length and checksum.
pub fn from_json(src: &str) -> SnapResult<Vec<u8>> {
    let doc = crate::json::parse(src).map_err(|e| SnapError::new(format!("bad JSON: {e}")))?;
    if doc.get("format").and_then(crate::json::Json::as_str) != Some("wb-snap") {
        return Err(SnapError::new("envelope is not format \"wb-snap\""));
    }
    let version = doc
        .get("version")
        .and_then(crate::json::Json::as_u64)
        .ok_or_else(|| SnapError::new("envelope missing version"))?;
    if version != FORMAT_VERSION as u64 {
        return Err(SnapError::new(format!("envelope version {version} unsupported")));
    }
    let hex = doc
        .get("payload")
        .and_then(crate::json::Json::as_str)
        .ok_or_else(|| SnapError::new("envelope missing payload"))?;
    if hex.len() % 2 != 0 {
        return Err(SnapError::new("odd-length hex payload"));
    }
    let mut bytes = Vec::with_capacity(hex.len() / 2);
    let h = hex.as_bytes();
    for i in (0..h.len()).step_by(2) {
        let nib = |c: u8| -> SnapResult<u8> {
            match c {
                b'0'..=b'9' => Ok(c - b'0'),
                b'a'..=b'f' => Ok(c - b'a' + 10),
                _ => Err(SnapError::new(format!("bad hex byte {:#x}", c))),
            }
        };
        bytes.push(nib(h[i])? << 4 | nib(h[i + 1])?);
    }
    let declared = doc
        .get("bytes")
        .and_then(crate::json::Json::as_u64)
        .ok_or_else(|| SnapError::new("envelope missing bytes"))?;
    if declared != bytes.len() as u64 {
        return Err(SnapError::new(format!(
            "envelope declares {declared} bytes, payload has {}",
            bytes.len()
        )));
    }
    let check = doc
        .get("check")
        .and_then(crate::json::Json::as_str)
        .ok_or_else(|| SnapError::new("envelope missing check"))?;
    let want = format!("{:016x}", fnv1a(&bytes));
    if check != want {
        return Err(SnapError::new("envelope checksum mismatch (corrupt payload)"));
    }
    Ok(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = SnapWriter::new();
        w.u8(7);
        w.u16(0xbeef);
        w.u32(0xdead_beef);
        w.u64(u64::MAX - 3);
        w.bool(true);
        w.bool(false);
        w.str("héllo");
        w.bytes(&[1, 2, 3]);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 0xbeef);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.bytes().unwrap(), vec![1, 2, 3]);
        r.finish().unwrap();
    }

    #[test]
    fn containers_round_trip() {
        #[allow(clippy::type_complexity)]
        let value: (Vec<u64>, Option<String>, BTreeMap<u32, bool>, VecDeque<u16>, [u8; 4]) = (
            vec![1, 2, 3],
            Some("x".to_owned()),
            [(1u32, true), (9, false)].into_iter().collect(),
            VecDeque::from(vec![7u16, 8]),
            [4, 3, 2, 1],
        );
        let mut w = SnapWriter::new();
        value.0.snap(&mut w);
        value.1.snap(&mut w);
        value.2.snap(&mut w);
        value.3.snap(&mut w);
        value.4.snap(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(Vec::<u64>::unsnap(&mut r).unwrap(), value.0);
        assert_eq!(Option::<String>::unsnap(&mut r).unwrap(), value.1);
        assert_eq!(BTreeMap::<u32, bool>::unsnap(&mut r).unwrap(), value.2);
        assert_eq!(VecDeque::<u16>::unsnap(&mut r).unwrap(), value.3);
        assert_eq!(<[u8; 4]>::unsnap(&mut r).unwrap(), value.4);
        r.finish().unwrap();
    }

    #[test]
    fn framed_header_is_enforced() {
        let bytes = snapshot(|w| w.u64(42));
        let mut r = open(&bytes).expect("valid header");
        assert_eq!(r.u64().unwrap(), 42);
        r.finish().unwrap();

        assert!(open(b"not a snapshot").is_err());
        let mut wrong_version = bytes.clone();
        wrong_version[MAGIC.len()] ^= 0xff;
        assert!(open(&wrong_version).is_err());
    }

    #[test]
    fn truncation_and_leftovers_are_errors() {
        let bytes = snapshot(|w| w.u64(42));
        let mut r = open(&bytes[..bytes.len() - 1]).expect("header intact");
        assert!(r.u64().is_err(), "truncated payload must fail");

        let mut r = open(&bytes).unwrap();
        assert_eq!(r.u32().unwrap(), 42); // deliberately under-read
        assert!(r.finish().is_err(), "unread bytes must fail finish()");
    }

    #[test]
    fn implausible_lengths_are_rejected() {
        let mut w = SnapWriter::new();
        w.u64(u64::MAX); // absurd element count
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert!(Vec::<u64>::unsnap(&mut r).is_err());
    }

    #[test]
    fn json_envelope_round_trips_and_rejects_corruption() {
        let bytes = snapshot(|w| {
            w.str("campaign");
            w.u64(0xfeed_f00d_dead_beef);
        });
        let envelope = to_json(&bytes);
        // The envelope is strict JSON by the in-tree parser.
        crate::json::parse(&envelope).expect("valid JSON");
        assert_eq!(from_json(&envelope).expect("round trip"), bytes);

        // Grow the payload by two hex digits: still valid JSON and an
        // even-length hex string, but the declared byte count no longer
        // matches — the envelope must reject it.
        let corrupt = envelope.replacen("\"payload\":\"", "\"payload\":\"0000", 1);
        assert!(from_json(&corrupt).is_err());
        // Same length, different first byte: the checksum must catch it.
        let first_two = &envelope[envelope.find("\"payload\":\"").unwrap() + 11..][..2];
        let flipped = if first_two == "00" { "11" } else { "00" };
        let corrupt =
            envelope.replacen(&format!("\"payload\":\"{first_two}"), &format!("\"payload\":\"{flipped}"), 1);
        assert!(from_json(&corrupt).is_err());
        assert!(from_json("{\"format\":\"other\"}").is_err());
        assert!(from_json("not json").is_err());
    }
}
