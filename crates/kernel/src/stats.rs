//! A string-keyed statistics registry.
//!
//! Every counter the paper's figures need (blocked writes, uncacheable
//! reads, stall cycles by reason, flits by class, squashes, ...) is
//! accumulated in a [`Stats`] owned by each component and merged into a
//! run-level report at the end of simulation.
//!
//! Counters live in a flat `Vec<u64>` of slots with a name→slot index
//! on the side: name-based [`Stats::inc`]/[`Stats::add`] pay one map
//! probe, while hot paths pre-resolve a [`CounterHandle`] once (at
//! component construction) and bump the slot directly with
//! [`Stats::inc_h`]/[`Stats::add_h`] — no probe per event.

use crate::hist::Hist;
use std::collections::BTreeMap;

/// A pre-resolved counter slot: index into a specific [`Stats`]'
/// counter vector. Obtain one with [`Stats::handle`] and bump it with
/// [`Stats::inc_h`]/[`Stats::add_h`]. Handles are only meaningful for
/// the `Stats` that issued them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterHandle(usize);

/// Accumulating counters, keyed by a static name.
///
/// Besides flat counters, a `Stats` can carry [`Hist`] latency
/// histograms under their own (disjoint) key namespace — recorded with
/// [`Stats::record`], merged alongside the counters, and serialised
/// into the same JSON object as nested `{count,sum,min,max,p50,...}`
/// objects.
///
/// # Example
///
/// ```
/// use wb_kernel::Stats;
/// let mut s = Stats::new();
/// s.add("loads", 3);
/// s.inc("loads");
/// assert_eq!(s.get("loads"), 4);
/// assert_eq!(s.get("absent"), 0);
/// s.record("miss_cycles", 120);
/// assert_eq!(s.hist("miss_cycles").unwrap().count(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Stats {
    slots: Vec<u64>,
    index: BTreeMap<&'static str, usize>,
    hists: BTreeMap<&'static str, Hist>,
}

impl Stats {
    /// An empty registry.
    pub fn new() -> Self {
        Stats::default()
    }

    /// Resolve `key` to a reusable slot handle, materialising the
    /// counter at zero if absent. Resolve once, bump many times.
    pub fn handle(&mut self, key: &'static str) -> CounterHandle {
        if let Some(&i) = self.index.get(key) {
            return CounterHandle(i);
        }
        let i = self.slots.len();
        self.slots.push(0);
        self.index.insert(key, i);
        CounterHandle(i)
    }

    /// Add `n` to the counter behind a pre-resolved handle.
    #[inline]
    pub fn add_h(&mut self, h: CounterHandle, n: u64) {
        self.slots[h.0] += n;
    }

    /// Increment the counter behind a pre-resolved handle by one.
    #[inline]
    pub fn inc_h(&mut self, h: CounterHandle) {
        self.slots[h.0] += 1;
    }

    /// Add `n` to counter `key`, creating it at zero if absent.
    #[inline]
    pub fn add(&mut self, key: &'static str, n: u64) {
        let h = self.handle(key);
        self.slots[h.0] += n;
    }

    /// Increment counter `key` by one.
    #[inline]
    pub fn inc(&mut self, key: &'static str) {
        self.add(key, 1);
    }

    /// Current value of `key` (0 if never touched).
    pub fn get(&self, key: &str) -> u64 {
        self.index.get(key).map(|&i| self.slots[i]).unwrap_or(0)
    }

    /// Overwrite `key` with an absolute value (for gauges like "cycles").
    pub fn set(&mut self, key: &'static str, v: u64) {
        let h = self.handle(key);
        self.slots[h.0] = v;
    }

    /// Record a sample into histogram `key`, creating it if absent.
    #[inline]
    pub fn record(&mut self, key: &'static str, v: u64) {
        self.hists.entry(key).or_default().record(v);
    }

    /// The histogram under `key`, if any sample was ever recorded.
    pub fn hist(&self, key: &str) -> Option<&Hist> {
        self.hists.get(key)
    }

    /// Fold a whole histogram into `key`, creating it if absent. Lets a
    /// report re-key a component-local histogram (e.g. publish one
    /// directory bank's `dir_bank_occupancy` as `dir_bank7_occupancy`)
    /// without replaying its samples.
    pub fn merge_hist(&mut self, key: &'static str, h: &Hist) {
        self.hists.entry(key).or_default().merge(h);
    }

    /// Iterate over `(name, histogram)` pairs in name order.
    pub fn hists(&self) -> impl Iterator<Item = (&str, &Hist)> {
        self.hists.iter().map(|(k, v)| (*k, v))
    }

    /// Merge another registry into this one (summing matching counters,
    /// folding matching histograms).
    pub fn merge(&mut self, other: &Stats) {
        for (k, &i) in &other.index {
            self.add(k, other.slots[i]);
        }
        for (k, h) in &other.hists {
            self.hists.entry(k).or_default().merge(h);
        }
    }

    /// Iterate over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.index.iter().map(|(k, &i)| (*k, self.slots[i]))
    }

    /// The change since `prev` was snapshotted: counters subtract
    /// (saturating — gauges that moved backwards clamp to 0 rather
    /// than wrapping), histograms take [`Hist::delta_since`]. Keys
    /// whose delta is zero are omitted entirely, so a quiet window
    /// serialises small. This is what the timeline sampler records
    /// every `sample_every` cycles.
    pub fn delta_since(&self, prev: &Stats) -> Stats {
        let mut d = Stats::new();
        for (k, &i) in &self.index {
            let n = self.slots[i].saturating_sub(prev.get(k));
            if n > 0 {
                d.add(k, n);
            }
        }
        for (k, h) in &self.hists {
            let dh = match prev.hist(k) {
                Some(p) => h.delta_since(p),
                None => h.clone(),
            };
            if !dh.is_empty() {
                d.merge_hist(k, &dh);
            }
        }
        d
    }

    /// Ratio of two counters, `None` when the denominator is zero.
    pub fn ratio(&self, num: &str, den: &str) -> Option<f64> {
        let d = self.get(den);
        if d == 0 {
            None
        } else {
            Some(self.get(num) as f64 / d as f64)
        }
    }

    /// `num / den * 1000` — the "per kilo-X" rates the paper plots in
    /// Figure 8; `None` when the denominator is zero.
    pub fn per_kilo(&self, num: &str, den: &str) -> Option<f64> {
        self.ratio(num, den).map(|r| r * 1000.0)
    }

    /// Number of distinct counters.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when no counter has been touched.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Render counters and histograms as one JSON object, keys in name
    /// order. Counters serialise as plain integers, histograms as
    /// nested objects (see [`Hist::to_json`]); with no histograms the
    /// output is byte-identical to the counters-only format.
    ///
    /// Counter names are `&'static str` identifiers (no quotes or control
    /// characters), so plain escaping-free emission is sufficient; this
    /// is what `BENCH_*.json` files embed per run.
    ///
    /// # Example
    ///
    /// ```
    /// use wb_kernel::Stats;
    /// let s: Stats = [("loads", 3u64), ("stores", 1)].into_iter().collect();
    /// assert_eq!(s.to_json(), r#"{"loads":3,"stores":1}"#);
    /// ```
    pub fn to_json(&self) -> String {
        let mut fields: Vec<(&str, String)> = self
            .iter()
            .map(|(k, v)| (k, v.to_string()))
            .chain(self.hists.iter().map(|(k, h)| (*k, h.to_json())))
            .collect();
        fields.sort_by_key(|(k, _)| *k);
        let mut out = String::from("{");
        for (i, (k, v)) in fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(k);
            out.push_str("\":");
            out.push_str(v);
        }
        out.push('}');
        out
    }
}

/// Intern a counter name recovered from a snapshot into a `&'static
/// str`. Counter names form a small, bounded universe (every name is a
/// string literal somewhere in this workspace), so leaking each
/// distinct spelling once is bounded too; the table makes re-interning
/// the same name across many restores free of further leaks.
fn intern(name: &str) -> &'static str {
    use std::sync::Mutex;
    static TABLE: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());
    let mut table = TABLE.lock().expect("interner poisoned");
    if let Some(&s) = table.iter().find(|&&s| s == name) {
        return s;
    }
    let s: &'static str = Box::leak(name.to_owned().into_boxed_str());
    table.push(s);
    s
}

impl Stats {
    /// Overwrite this registry's *values* with `from`'s, keeping slot
    /// layout intact so [`CounterHandle`]s issued before the restore
    /// keep bumping the counters they named. Counters present here but
    /// absent in `from` are zeroed (they were zero when `from` was
    /// captured); counters absent here are materialised.
    pub fn load(&mut self, from: &Stats) {
        for s in &mut self.slots {
            *s = 0;
        }
        for (k, &i) in &from.index {
            self.set(intern(k), from.slots[i]);
        }
        self.hists.clear();
        for (k, h) in &from.hists {
            self.hists.insert(intern(k), h.clone());
        }
    }
}

impl crate::snap::Snap for Stats {
    /// Counters and histograms by name, in name order — deterministic
    /// regardless of the order handles were resolved in.
    fn snap(&self, w: &mut crate::snap::SnapWriter) {
        w.usize(self.index.len());
        for (k, &i) in &self.index {
            w.str(k);
            w.u64(self.slots[i]);
        }
        w.usize(self.hists.len());
        for (k, h) in &self.hists {
            w.str(k);
            h.snap(w);
        }
    }

    fn unsnap(r: &mut crate::snap::SnapReader) -> crate::snap::SnapResult<Self> {
        let mut s = Stats::new();
        let n = r.len_for(9)?;
        for _ in 0..n {
            let k = intern(&r.str()?);
            let v = r.u64()?;
            s.set(k, v);
        }
        let n = r.len_for(9)?;
        for _ in 0..n {
            let k = intern(&r.str()?);
            let h = <Hist as crate::snap::Snap>::unsnap(r)?;
            s.hists.insert(k, h);
        }
        Ok(s)
    }
}

/// Equality is logical: same name→value counter map (regardless of the
/// order handles were resolved in, i.e. of slot layout) and same
/// histograms.
impl PartialEq for Stats {
    fn eq(&self, other: &Self) -> bool {
        self.index.len() == other.index.len()
            && self.iter().eq(other.iter())
            && self.hists == other.hists
    }
}

impl Eq for Stats {}

impl std::fmt::Display for Stats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (k, v) in self.iter() {
            writeln!(f, "{k:<40} {v}")?;
        }
        for (k, h) in &self.hists {
            writeln!(f, "{k:<40} {h}")?;
        }
        Ok(())
    }
}

impl Extend<(&'static str, u64)> for Stats {
    fn extend<T: IntoIterator<Item = (&'static str, u64)>>(&mut self, iter: T) {
        for (k, v) in iter {
            self.add(k, v);
        }
    }
}

impl FromIterator<(&'static str, u64)> for Stats {
    fn from_iter<T: IntoIterator<Item = (&'static str, u64)>>(iter: T) -> Self {
        let mut s = Stats::new();
        s.extend(iter);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_inc() {
        let mut s = Stats::new();
        assert_eq!(s.get("x"), 0);
        s.add("x", 5);
        s.inc("x");
        assert_eq!(s.get("x"), 6);
    }

    #[test]
    fn add_zero_materializes_key() {
        let mut s = Stats::new();
        s.add("y", 0);
        assert_eq!(s.len(), 1);
        assert_eq!(s.get("y"), 0);
        assert!(s.is_empty() == false);
    }

    #[test]
    fn set_overwrites() {
        let mut s = Stats::new();
        s.add("c", 10);
        s.set("c", 3);
        assert_eq!(s.get("c"), 3);
    }

    #[test]
    fn handles_bump_the_named_counter() {
        let mut s = Stats::new();
        let h = s.handle("hot");
        assert_eq!(s.len(), 1, "handle materialises the counter at zero");
        s.inc_h(h);
        s.add_h(h, 4);
        assert_eq!(s.get("hot"), 5);
        // Re-resolving the same name yields the same slot.
        let h2 = s.handle("hot");
        assert_eq!(h, h2);
        s.inc("hot");
        assert_eq!(s.get("hot"), 6);
    }

    #[test]
    fn equality_ignores_slot_order() {
        let mut a = Stats::new();
        a.add("x", 1);
        a.add("y", 2);
        let mut b = Stats::new();
        b.add("y", 2);
        b.add("x", 1);
        assert_eq!(a, b);
        b.inc("x");
        assert_ne!(a, b);
    }

    #[test]
    fn merge_sums() {
        let mut a = Stats::new();
        a.add("k", 1);
        a.add("only_a", 2);
        let mut b = Stats::new();
        b.add("k", 10);
        b.add("only_b", 20);
        a.merge(&b);
        assert_eq!(a.get("k"), 11);
        assert_eq!(a.get("only_a"), 2);
        assert_eq!(a.get("only_b"), 20);
    }

    #[test]
    fn ratios() {
        let mut s = Stats::new();
        s.add("n", 3);
        s.add("d", 6);
        assert_eq!(s.ratio("n", "d"), Some(0.5));
        assert_eq!(s.per_kilo("n", "d"), Some(500.0));
        assert_eq!(s.ratio("n", "zero"), None);
    }

    #[test]
    fn collect_and_display() {
        let s: Stats = [("a", 1u64), ("b", 2)].into_iter().collect();
        let text = s.to_string();
        assert!(text.contains('a') && text.contains('2'));
        assert!(!s.is_empty());
    }

    #[test]
    fn to_json_shapes() {
        assert_eq!(Stats::new().to_json(), "{}");
        let s: Stats = [("b", 2u64), ("a", 1)].into_iter().collect();
        assert_eq!(s.to_json(), r#"{"a":1,"b":2}"#);
    }

    #[test]
    fn iter_ordered() {
        let s: Stats = [("b", 2u64), ("a", 1)].into_iter().collect();
        let keys: Vec<&str> = s.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a", "b"]);
    }

    #[test]
    fn record_and_hist_accessors() {
        let mut s = Stats::new();
        assert!(s.hist("lat").is_none());
        s.record("lat", 10);
        s.record("lat", 20);
        let h = s.hist("lat").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 30);
        assert_eq!(s.hists().count(), 1);
        // Hists don't leak into counter accessors.
        assert_eq!(s.get("lat"), 0);
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn merge_folds_hists() {
        let mut a = Stats::new();
        a.record("lat", 1);
        let mut b = Stats::new();
        b.record("lat", 100);
        b.record("other", 5);
        b.add("count", 2);
        a.merge(&b);
        assert_eq!(a.hist("lat").unwrap().count(), 2);
        assert_eq!(a.hist("lat").unwrap().max(), 100);
        assert_eq!(a.hist("other").unwrap().count(), 1);
        assert_eq!(a.get("count"), 2);
    }

    #[test]
    fn to_json_interleaves_hists_in_key_order() {
        let mut s: Stats = [("b", 2u64)].into_iter().collect();
        s.record("a_lat", 4);
        s.record("z_lat", 8);
        let j = s.to_json();
        let a = j.find("\"a_lat\"").unwrap();
        let b = j.find("\"b\"").unwrap();
        let z = j.find("\"z_lat\"").unwrap();
        assert!(a < b && b < z, "{j}");
    }

    #[test]
    fn delta_since_subtracts_and_drops_zeroes() {
        let mut s = Stats::new();
        s.add("a", 5);
        s.add("b", 2);
        s.record("lat", 10);
        let snap = s.clone();
        s.add("a", 3);
        s.add("c", 1);
        s.record("lat", 20);
        s.record("fresh", 7);
        let d = s.delta_since(&snap);
        assert_eq!(d.get("a"), 3);
        assert_eq!(d.get("b"), 0);
        assert!(d.iter().all(|(k, _)| k != "b"), "unchanged counter must be omitted");
        assert_eq!(d.get("c"), 1);
        assert_eq!(d.hist("lat").unwrap().count(), 1);
        assert_eq!(d.hist("lat").unwrap().sum(), 20);
        assert_eq!(d.hist("fresh").unwrap().count(), 1);
        // A no-change window is entirely empty.
        let quiet = s.delta_since(&s.clone());
        assert!(quiet.is_empty());
        assert_eq!(quiet.hists().count(), 0);
    }

    #[test]
    fn snap_round_trip_and_in_place_load_keep_handles_live() {
        use crate::snap::{Snap, SnapReader, SnapWriter};
        let mut s = Stats::new();
        s.add("loads", 7);
        s.add("stores", 2);
        s.record("lat", 31);
        let mut w = SnapWriter::new();
        s.snap(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let back = Stats::unsnap(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back, s);

        // In-place load: a registry with different slot layout and
        // stale values takes on the snapshot's values while its
        // previously issued handles keep addressing the right names.
        let mut live = Stats::new();
        let h_extra = live.handle("extra");
        let h_loads = live.handle("loads");
        live.add("extra", 99);
        live.add("loads", 1);
        live.load(&back);
        assert_eq!(live.get("loads"), 7);
        assert_eq!(live.get("stores"), 2);
        assert_eq!(live.get("extra"), 0, "counter absent from snapshot zeroes");
        assert_eq!(live.hist("lat").unwrap().count(), 1);
        live.inc_h(h_loads);
        live.inc_h(h_extra);
        assert_eq!(live.get("loads"), 8);
        assert_eq!(live.get("extra"), 1);
    }

    #[test]
    fn to_json_round_trips_through_parser() {
        let mut s: Stats = [("loads", 3u64), ("stores", 1)].into_iter().collect();
        for v in [1u64, 2, 3, 50, 1000] {
            s.record("miss_cycles", v);
        }
        let parsed = crate::json::parse(&s.to_json()).expect("well-formed JSON");
        assert_eq!(parsed.get("loads").unwrap().as_u64(), Some(3));
        assert_eq!(parsed.get("stores").unwrap().as_u64(), Some(1));
        let h = parsed.get("miss_cycles").unwrap();
        assert_eq!(h.get("count").unwrap().as_u64(), Some(5));
        assert_eq!(h.get("sum").unwrap().as_u64(), Some(1056));
        assert_eq!(h.get("min").unwrap().as_u64(), Some(1));
        assert_eq!(h.get("max").unwrap().as_u64(), Some(1000));
        let p50 = h.get("p50").unwrap().as_u64().unwrap();
        let p99 = h.get("p99").unwrap().as_u64().unwrap();
        assert!(p50 <= p99);
        // The counters-only serialisation is unchanged by the hist
        // extension (backward compatibility with existing BENCH JSON).
        let plain: Stats = [("a", 1u64)].into_iter().collect();
        assert_eq!(plain.to_json(), r#"{"a":1}"#);
    }
}
