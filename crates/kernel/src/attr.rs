//! Cycle attribution: a bounded heavy-hitters sketch.
//!
//! End-of-run totals say *how many* cycles were lost to blocked writes,
//! Nack retries or WritersBlock windows; they do not say *which lines*
//! caused them. Tracking an exact per-line map is out of the question on
//! the hot path — a chaos cell can touch an unbounded set of lines — so
//! attribution uses the **space-saving** sketch (Metwally, Agrawal &
//! El Abbadi, 2005): exactly `k` entries, O(k) memory forever, O(k)
//! update, with the classic guarantees
//!
//! * every key with true weight `> W / k` (total weight `W`) is present,
//! * for any tracked key, `count - err <= true weight <= count`.
//!
//! Determinism matters more here than in the usual streaming setting:
//! the sketch feeds `Report` leaderboards and wedge reports that the
//! engine-equivalence suite compares byte-for-byte across engines, so
//! every tie (minimum-entry eviction, leaderboard ordering) is broken by
//! key. `scripts/verify.sh` greps this file to keep unbounded maps out:
//! the entry table is a plain `Vec` scanned linearly — at the `k` this
//! repo uses (tens) that beats a heap on real workloads anyway.

/// One tracked key: its estimated weight and the overestimation bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HotEntry {
    /// The tracked key (a cache-line number or a bank index upstream).
    pub key: u64,
    /// Estimated total weight. Never underestimates the true weight.
    pub count: u64,
    /// Maximum overestimation: `count - err` is a guaranteed lower
    /// bound on the true weight. Zero while the key has never been
    /// evicted (exact tracking).
    pub err: u64,
}

/// A space-saving heavy-hitters sketch over `u64` keys.
///
/// # Example
///
/// ```
/// use wb_kernel::attr::HeavyHitters;
/// let mut hh = HeavyHitters::new(4);
/// hh.add(0x40, 100);
/// hh.add(0x80, 10);
/// hh.add(0x40, 5);
/// let top = hh.top(2);
/// assert_eq!(top[0].key, 0x40);
/// assert_eq!(top[0].count, 105);
/// assert_eq!(top[0].err, 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeavyHitters {
    cap: usize,
    entries: Vec<HotEntry>,
    /// Total weight ever added (survives evictions).
    total: u64,
}

impl HeavyHitters {
    /// A sketch tracking at most `cap` keys (`cap >= 1`).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        HeavyHitters { cap, entries: Vec::with_capacity(cap), total: 0 }
    }

    /// Maximum number of tracked keys.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Number of keys currently tracked (`<= capacity`).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been added.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total weight ever added, including weight attributed to since-
    /// evicted keys.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Index of the minimum entry, ties broken towards the smallest
    /// key so eviction is deterministic.
    fn min_index(&self) -> usize {
        let mut best = 0;
        for (i, e) in self.entries.iter().enumerate().skip(1) {
            let b = &self.entries[best];
            if (e.count, e.key) < (b.count, b.key) {
                best = i;
            }
        }
        best
    }

    /// Add `weight` to `key`. O(capacity), allocation-free once the
    /// entry table is full.
    pub fn add(&mut self, key: u64, weight: u64) {
        if weight == 0 {
            return;
        }
        self.total += weight;
        if let Some(e) = self.entries.iter_mut().find(|e| e.key == key) {
            e.count += weight;
            return;
        }
        if self.entries.len() < self.cap {
            self.entries.push(HotEntry { key, count: weight, err: 0 });
            return;
        }
        // Space-saving eviction: the new key inherits the minimum
        // entry's count as its overestimation bound.
        let i = self.min_index();
        let floor = self.entries[i].count;
        self.entries[i] = HotEntry { key, count: floor + weight, err: floor };
    }

    /// Estimated weight of `key` (`None` when untracked — its true
    /// weight is then at most the minimum tracked count).
    pub fn estimate(&self, key: u64) -> Option<HotEntry> {
        self.entries.iter().find(|e| e.key == key).copied()
    }

    /// The top `n` entries, heaviest first; ties broken by key so the
    /// order is deterministic.
    pub fn top(&self, n: usize) -> Vec<HotEntry> {
        let mut v = self.entries.clone();
        v.sort_by_key(|e| (std::cmp::Reverse(e.count), e.key));
        v.truncate(n);
        v
    }

    /// Fold `other` into this sketch. Matching keys sum their counts
    /// and error bounds; new keys enter whole while space remains, and
    /// evict the minimum entry (inheriting its count into their error
    /// bound) once the table is full. On streams whose combined
    /// distinct-key count fits the capacity this is exact and
    /// associative (property-tested); past that the space-saving
    /// guarantees still hold for the union stream.
    pub fn merge(&mut self, other: &HeavyHitters) {
        self.total += other.total;
        // Deterministic insertion order regardless of how `other` was
        // built: heaviest first, ties by key.
        for o in other.top(other.len()) {
            if let Some(e) = self.entries.iter_mut().find(|e| e.key == o.key) {
                e.count += o.count;
                e.err += o.err;
            } else if self.entries.len() < self.cap {
                self.entries.push(o);
            } else {
                let i = self.min_index();
                let floor = self.entries[i].count;
                self.entries[i] =
                    HotEntry { key: o.key, count: floor + o.count, err: floor + o.err };
            }
        }
    }
}

impl crate::snap::Snap for HotEntry {
    fn snap(&self, w: &mut crate::snap::SnapWriter) {
        w.u64(self.key);
        w.u64(self.count);
        w.u64(self.err);
    }

    fn unsnap(r: &mut crate::snap::SnapReader) -> crate::snap::SnapResult<Self> {
        Ok(HotEntry { key: r.u64()?, count: r.u64()?, err: r.u64()? })
    }
}

impl crate::snap::Snap for HeavyHitters {
    /// Entries serialize positionally (a plain `Vec` walk, keeping this
    /// file map-free): eviction picks the minimum by `(count, key)`,
    /// but the linear `find` in [`HeavyHitters::add`] touches entries
    /// in table order, so the table order itself is execution-visible
    /// state and must survive the round trip exactly.
    fn snap(&self, w: &mut crate::snap::SnapWriter) {
        w.usize(self.cap);
        self.entries.snap(w);
        w.u64(self.total);
    }

    fn unsnap(r: &mut crate::snap::SnapReader) -> crate::snap::SnapResult<Self> {
        Ok(HeavyHitters {
            cap: r.usize()?,
            entries: Vec::unsnap(r)?,
            total: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::prelude::*;
    use std::collections::BTreeMap;

    #[test]
    fn exact_while_it_fits() {
        let mut hh = HeavyHitters::new(3);
        hh.add(1, 10);
        hh.add(2, 20);
        hh.add(1, 5);
        assert_eq!(hh.len(), 2);
        assert_eq!(hh.estimate(1).unwrap().count, 15);
        assert_eq!(hh.estimate(1).unwrap().err, 0);
        assert_eq!(hh.total(), 35);
        assert_eq!(hh.estimate(99), None);
    }

    #[test]
    fn eviction_carries_error_bound() {
        let mut hh = HeavyHitters::new(2);
        hh.add(1, 10);
        hh.add(2, 3);
        hh.add(3, 4); // evicts key 2 (min count 3)
        let e = hh.estimate(3).unwrap();
        assert_eq!(e.count, 7);
        assert_eq!(e.err, 3);
        assert!(e.count - e.err <= 4 && 4 <= e.count);
        assert_eq!(hh.estimate(2), None);
        assert_eq!(hh.total(), 17);
    }

    #[test]
    fn zero_weight_is_a_noop() {
        let mut hh = HeavyHitters::new(2);
        hh.add(7, 0);
        assert!(hh.is_empty());
        assert_eq!(hh.total(), 0);
    }

    #[test]
    fn top_orders_deterministically() {
        let mut hh = HeavyHitters::new(4);
        hh.add(30, 5);
        hh.add(10, 5);
        hh.add(20, 9);
        let top = hh.top(3);
        assert_eq!(top.iter().map(|e| e.key).collect::<Vec<_>>(), vec![20, 10, 30]);
        assert_eq!(hh.top(1).len(), 1);
    }

    /// Replay a `(key, weight)` stream into both the sketch and an
    /// exact map.
    fn exact(stream: &[(u64, u64)]) -> BTreeMap<u64, u64> {
        let mut m = BTreeMap::new();
        for &(k, w) in stream {
            *m.entry(k).or_insert(0) += w;
        }
        m.retain(|_, w| *w > 0);
        m
    }

    fn sketch(cap: usize, stream: &[(u64, u64)]) -> HeavyHitters {
        let mut hh = HeavyHitters::new(cap);
        for &(k, w) in stream {
            hh.add(k, w);
        }
        hh
    }

    wb_proptest! {
        /// With at most `cap` distinct keys the sketch IS the exact map.
        #[test]
        fn equals_exact_map_at_small_universes(
            stream in vec_of((0u64..8, 0u64..100), 0..65)
        ) {
            let hh = sketch(8, &stream);
            let m = exact(&stream);
            prop_assert_eq!(hh.len(), m.len());
            for (&k, &w) in &m {
                let e = hh.estimate(k).expect("tracked");
                prop_assert_eq!(e.count, w);
                prop_assert_eq!(e.err, 0);
            }
            prop_assert_eq!(hh.total(), m.values().sum::<u64>());
        }

        /// Space-saving guarantees on streams that overflow the table:
        /// estimates never underestimate, the error bound is honest,
        /// and every key heavier than total/cap is tracked.
        #[test]
        fn overfull_guarantees_hold(
            stream in vec_of((0u64..32, 1u64..50), 0..129)
        ) {
            let cap = 6usize;
            let hh = sketch(cap, &stream);
            let m = exact(&stream);
            let total: u64 = m.values().sum();
            prop_assert_eq!(hh.total(), total);
            for e in hh.top(cap) {
                let truth = m.get(&e.key).copied().unwrap_or(0);
                prop_assert!(truth <= e.count, "underestimate for {}", e.key);
                prop_assert!(e.count - e.err <= truth,
                    "error bound violated for {}: {} - {} > {}", e.key, e.count, e.err, truth);
            }
            for (&k, &w) in &m {
                if w > total / cap as u64 {
                    prop_assert!(hh.estimate(k).is_some(),
                        "heavy key {k} (weight {w} of {total}) missing");
                }
            }
        }

        /// Merge is associative (and exact) while the union universe
        /// fits the capacity — the regime Report merging lives in.
        #[test]
        fn merge_is_associative_on_small_universes(
            a in vec_of((0u64..4, 0u64..50), 0..21),
            b in vec_of((4u64..8, 0u64..50), 0..21),
            c in vec_of((8u64..12, 0u64..50), 0..21)
        ) {
            let cap = 12;
            let (sa, sb, sc) = (sketch(cap, &a), sketch(cap, &b), sketch(cap, &c));
            let mut left = sa.clone();
            left.merge(&sb);
            left.merge(&sc);
            let mut bc = sb.clone();
            bc.merge(&sc);
            let mut right = sa.clone();
            right.merge(&bc);
            prop_assert_eq!(left.top(cap), right.top(cap));
            prop_assert_eq!(left.total(), right.total());
            // And both equal the exact union.
            let mut union = a.clone();
            union.extend(b.iter().copied());
            union.extend(c.iter().copied());
            let m = exact(&union);
            for (&k, &w) in &m {
                prop_assert_eq!(left.estimate(k).expect("tracked").count, w);
            }
        }

        /// Merging sketches of disjoint halves of one stream tracks the
        /// whole stream's total weight.
        #[test]
        fn merge_preserves_total(
            a in vec_of((0u64..64, 0u64..50), 0..41),
            b in vec_of((0u64..64, 0u64..50), 0..41)
        ) {
            let mut ha = sketch(4, &a);
            let hb = sketch(4, &b);
            ha.merge(&hb);
            let want: u64 = a.iter().chain(b.iter()).map(|&(_, w)| w).sum();
            prop_assert_eq!(ha.total(), want);
            prop_assert!(ha.len() <= 4);
        }
    }
}
