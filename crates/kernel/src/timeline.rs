//! Periodic interval sampling: counters and histograms *over time*.
//!
//! End-of-run [`Stats`] answer "how many cycles were lost in total";
//! they cannot say *when*. A [`Timeline`] turns the same registry into
//! a time series: every `sample_every` cycles the owner snapshots the
//! current totals, the timeline takes [`Stats::delta_since`] against
//! the previous snapshot, and the per-window delta lands in a bounded
//! ring of [`TimelineWindow`]s. Two exports:
//!
//! * [`Timeline::to_jsonl`] — one JSON object per window, validated by
//!   the in-tree [`json`](crate::json) parser in tests;
//! * [`Timeline::counter_tracks`] — flattened `(cycle, track, value)`
//!   samples that [`chrome_trace_json_ext`](crate::trace::chrome_trace_json_ext)
//!   renders as Perfetto counter tracks (`"ph":"C"`), so blocked-write
//!   cycles, lockdown windows and link retransmits plot as area charts
//!   next to the event swim lanes.
//!
//! # Interaction with the cycle-skipping engine
//!
//! Sampling must not disturb the dense≡skip byte-equality contract:
//! the owner exposes [`Timeline::next_sample_at`] as one more
//! `next_event` source, so `Skip` mode never jumps over a sample
//! deadline — both engines sample on exactly the same cycles with
//! exactly the same totals (PR 5 guarantees stats equality at every
//! cycle boundary), making the exported JSONL byte-identical. The
//! engine-equivalence suite pins this.

use crate::stats::Stats;
use crate::Cycle;
use std::collections::VecDeque;

/// Default ring capacity, in windows. At the default it takes a very
/// long run to wrap; when it does, the oldest windows are evicted and
/// counted in [`Timeline::dropped`] (the ring keeps the *recent* past,
/// which is what a wedge post-mortem wants).
pub const DEFAULT_WINDOW_CAPACITY: usize = 4096;

/// One sampling interval: the change in every counter and histogram
/// over the half-open cycle span `(start, end]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineWindow {
    /// Window index since the run began. Survives ring eviction, so a
    /// gap in `seq` across consecutive retained windows reveals drops.
    pub seq: u64,
    /// Cycle the previous sample was taken (exclusive).
    pub start: Cycle,
    /// Cycle this sample was taken (inclusive).
    pub end: Cycle,
    /// What changed during the window: counters whose delta is
    /// nonzero, histograms of just the window's samples.
    pub delta: Stats,
}

impl TimelineWindow {
    /// One deterministic JSON object (a JSONL line sans newline).
    pub fn to_json(&self) -> String {
        format!(
            r#"{{"seq":{},"start":{},"end":{},"delta":{}}}"#,
            self.seq,
            self.start,
            self.end,
            self.delta.to_json()
        )
    }
}

/// A bounded ring of per-interval [`Stats`] deltas.
///
/// # Example
///
/// ```
/// use wb_kernel::{Stats, Timeline};
/// let mut totals = Stats::new();
/// let mut tl = Timeline::new(100);
/// totals.add("loads", 7);
/// assert!(tl.due(100) && !tl.due(99));
/// tl.sample(100, &totals);
/// totals.add("loads", 3);
/// tl.sample(200, &totals);
/// let windows: Vec<_> = tl.windows().collect();
/// assert_eq!(windows[0].delta.get("loads"), 7);
/// assert_eq!(windows[1].delta.get("loads"), 3);
/// ```
#[derive(Debug, Clone)]
pub struct Timeline {
    sample_every: u64,
    cap: usize,
    /// Cycle of the next scheduled sample.
    next_at: Cycle,
    /// Cycle of the previous sample (start of the open window).
    last_at: Cycle,
    seq: u64,
    prev: Stats,
    windows: VecDeque<TimelineWindow>,
    dropped: u64,
}

impl Timeline {
    /// Sample every `sample_every` cycles (clamped to >= 1), first
    /// sample at cycle `sample_every`, default ring capacity.
    pub fn new(sample_every: u64) -> Self {
        Timeline::with_capacity(sample_every, DEFAULT_WINDOW_CAPACITY)
    }

    /// [`Timeline::new`] with an explicit ring capacity in windows.
    pub fn with_capacity(sample_every: u64, cap: usize) -> Self {
        let sample_every = sample_every.max(1);
        Timeline {
            sample_every,
            cap: cap.max(1),
            next_at: sample_every,
            last_at: 0,
            seq: 0,
            prev: Stats::new(),
            windows: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Re-origin a timeline enabled mid-run: windows start at `now`
    /// against the current `totals` instead of cycle 0 against empty.
    pub fn with_origin(mut self, now: Cycle, totals: &Stats) -> Self {
        self.last_at = now;
        self.next_at = now + self.sample_every;
        self.prev = totals.clone();
        self
    }

    /// The sampling interval in cycles.
    pub fn sample_every(&self) -> u64 {
        self.sample_every
    }

    /// Cycle of the next scheduled sample. The owner must expose this
    /// as a `next_event` source so a cycle-skipping engine lands on it.
    pub fn next_sample_at(&self) -> Cycle {
        self.next_at
    }

    /// True when `now` has reached the sample deadline.
    #[inline]
    pub fn due(&self, now: Cycle) -> bool {
        now >= self.next_at
    }

    /// Close the open window at `now` against the current `totals` and
    /// schedule the next deadline at `now + sample_every`. Call when
    /// [`Timeline::due`] fires; calling late (a deadline was jumped)
    /// simply yields one longer window — no windows are fabricated.
    pub fn sample(&mut self, now: Cycle, totals: &Stats) {
        let delta = totals.delta_since(&self.prev);
        let w = TimelineWindow { seq: self.seq, start: self.last_at, end: now, delta };
        self.seq += 1;
        if self.windows.len() == self.cap {
            self.windows.pop_front();
            self.dropped += 1;
        }
        self.windows.push_back(w);
        self.prev.clone_from(totals);
        self.last_at = now;
        self.next_at = now + self.sample_every;
    }

    /// Close a final partial window at end of run (no-op when the run
    /// ended exactly on a sample boundary). Keeps the tail of the run
    /// visible without waiting for a deadline that will never come.
    pub fn flush(&mut self, now: Cycle, totals: &Stats) {
        if now > self.last_at {
            self.sample(now, totals);
        }
    }

    /// Retained windows, oldest first.
    pub fn windows(&self) -> impl Iterator<Item = &TimelineWindow> {
        self.windows.iter()
    }

    /// Number of retained windows.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// True when no window has been sampled (or all were evicted).
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Windows evicted by ring wrap-around.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Every retained window as JSONL: one JSON object per line,
    /// oldest first, trailing newline when non-empty. Deterministic —
    /// integers only, keys in name order.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for w in &self.windows {
            out.push_str(&w.to_json());
            out.push('\n');
        }
        out
    }

    /// Flatten the ring into Perfetto counter-track samples: for every
    /// counter (and histogram, as `<key>.count`/`<key>.sum` tracks)
    /// that appears in *any* window, one `(end_cycle, track, value)`
    /// sample per window — explicit zeros included, so quiet windows
    /// pull the plotted track back to the baseline instead of holding
    /// the last value. Feed the result (borrowed) to
    /// [`chrome_trace_json_ext`](crate::trace::chrome_trace_json_ext).
    pub fn counter_tracks(&self) -> Vec<(Cycle, String, u64)> {
        use std::collections::BTreeSet;
        let mut tracks: BTreeSet<String> = BTreeSet::new();
        for w in &self.windows {
            for (k, _) in w.delta.iter() {
                tracks.insert(k.to_string());
            }
            for (k, _) in w.delta.hists() {
                tracks.insert(format!("{k}.count"));
                tracks.insert(format!("{k}.sum"));
            }
        }
        let mut out = Vec::with_capacity(tracks.len() * self.windows.len());
        for w in &self.windows {
            for t in &tracks {
                let v = match t.strip_suffix(".count") {
                    Some(base) if w.delta.hist(base).is_some() => {
                        w.delta.hist(base).map(|h| h.count()).unwrap_or(0)
                    }
                    _ => match t.strip_suffix(".sum") {
                        Some(base) if w.delta.hist(base).is_some() => {
                            w.delta.hist(base).map(|h| h.sum()).unwrap_or(0)
                        }
                        _ => w.delta.get(t),
                    },
                };
                out.push((w.end, t.clone(), v));
            }
        }
        out
    }
}

impl crate::snap::Snap for TimelineWindow {
    fn snap(&self, w: &mut crate::snap::SnapWriter) {
        w.u64(self.seq);
        w.u64(self.start);
        w.u64(self.end);
        self.delta.snap(w);
    }

    fn unsnap(r: &mut crate::snap::SnapReader) -> crate::snap::SnapResult<Self> {
        Ok(TimelineWindow {
            seq: r.u64()?,
            start: r.u64()?,
            end: r.u64()?,
            delta: Stats::unsnap(r)?,
        })
    }
}

impl crate::snap::Snap for Timeline {
    /// Whole-value serialization: cadence, deadlines, the previous-
    /// totals baseline and the retained ring all travel, so a restored
    /// run samples on exactly the cycles the original would have and
    /// exports byte-identical JSONL.
    fn snap(&self, w: &mut crate::snap::SnapWriter) {
        w.u64(self.sample_every);
        w.usize(self.cap);
        w.u64(self.next_at);
        w.u64(self.last_at);
        w.u64(self.seq);
        self.prev.snap(w);
        self.windows.snap(w);
        w.u64(self.dropped);
    }

    fn unsnap(r: &mut crate::snap::SnapReader) -> crate::snap::SnapResult<Self> {
        Ok(Timeline {
            sample_every: r.u64()?,
            cap: r.usize()?,
            next_at: r.u64()?,
            last_at: r.u64()?,
            seq: r.u64()?,
            prev: Stats::unsnap(r)?,
            windows: VecDeque::unsnap(r)?,
            dropped: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::prelude::*;
    use crate::trace::{chrome_trace_json_ext, CounterSample};

    fn totals(pairs: &[(&'static str, u64)]) -> Stats {
        pairs.iter().copied().collect()
    }

    #[test]
    fn windows_carry_deltas_not_totals() {
        let mut tl = Timeline::new(10);
        let mut s = Stats::new();
        s.add("x", 5);
        tl.sample(10, &s);
        s.add("x", 2);
        s.add("y", 1);
        tl.sample(20, &s);
        let w: Vec<_> = tl.windows().collect();
        assert_eq!(w.len(), 2);
        assert_eq!((w[0].start, w[0].end, w[0].delta.get("x")), (0, 10, 5));
        assert_eq!((w[1].start, w[1].end, w[1].delta.get("x")), (10, 20, 2));
        assert_eq!(w[1].delta.get("y"), 1);
        assert_eq!(w[0].seq, 0);
        assert_eq!(w[1].seq, 1);
    }

    #[test]
    fn deadlines_advance_from_the_actual_sample_cycle() {
        let mut tl = Timeline::new(100);
        assert_eq!(tl.next_sample_at(), 100);
        assert!(!tl.due(99));
        assert!(tl.due(100));
        tl.sample(100, &totals(&[]));
        assert_eq!(tl.next_sample_at(), 200);
        // A late sample (deadline jumped) yields one longer window.
        tl.sample(350, &totals(&[("x", 1)]));
        assert_eq!(tl.next_sample_at(), 450);
        let last = tl.windows().last().unwrap();
        assert_eq!((last.start, last.end), (100, 350));
    }

    #[test]
    fn ring_evicts_oldest_and_counts() {
        let mut tl = Timeline::with_capacity(1, 3);
        let s = Stats::new();
        for c in 1..=5u64 {
            tl.sample(c, &s);
        }
        assert_eq!(tl.len(), 3);
        assert_eq!(tl.dropped(), 2);
        let seqs: Vec<u64> = tl.windows().map(|w| w.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
    }

    #[test]
    fn flush_closes_a_partial_tail_window_once() {
        let mut tl = Timeline::new(100);
        tl.sample(100, &totals(&[("x", 1)]));
        tl.flush(130, &totals(&[("x", 3)]));
        let last = tl.windows().last().unwrap();
        assert_eq!((last.start, last.end, last.delta.get("x")), (100, 130, 2));
        // Flushing on a boundary (or twice) adds nothing.
        let n = tl.len();
        tl.flush(130, &totals(&[("x", 3)]));
        assert_eq!(tl.len(), n);
    }

    #[test]
    fn with_origin_starts_midrun() {
        let tl = Timeline::new(50).with_origin(1000, &totals(&[("x", 42)]));
        assert_eq!(tl.next_sample_at(), 1050);
        let mut tl = tl;
        tl.sample(1050, &totals(&[("x", 44)]));
        let w = tl.windows().next().unwrap();
        assert_eq!((w.start, w.end, w.delta.get("x")), (1000, 1050, 2));
    }

    #[test]
    fn jsonl_is_parseable_and_deterministic() {
        let mut tl = Timeline::new(10);
        let mut s = Stats::new();
        s.add("loads", 3);
        s.record("lat", 12);
        tl.sample(10, &s);
        s.add("loads", 1);
        tl.sample(20, &s);
        let jsonl = tl.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            let v = crate::json::parse(line).expect("valid JSONL line");
            assert!(v.get("seq").is_some() && v.get("delta").is_some());
        }
        assert_eq!(jsonl, tl.clone().to_jsonl(), "export is pure");
    }

    #[test]
    fn counter_tracks_emit_explicit_zeros() {
        let mut tl = Timeline::new(10);
        let mut s = Stats::new();
        s.add("x", 5);
        s.record("lat", 7);
        tl.sample(10, &s);
        tl.sample(20, &s); // quiet window
        let tracks = tl.counter_tracks();
        // 3 tracks (x, lat.count, lat.sum) × 2 windows.
        assert_eq!(tracks.len(), 6);
        assert!(tracks.contains(&(10, "x".to_string(), 5)));
        assert!(tracks.contains(&(20, "x".to_string(), 0)), "quiet window zeroes the track");
        assert!(tracks.contains(&(10, "lat.count".to_string(), 1)));
        assert!(tracks.contains(&(10, "lat.sum".to_string(), 7)));
        assert!(tracks.contains(&(20, "lat.sum".to_string(), 0)));
        // And the flattened samples render as valid Chrome JSON.
        let samples: Vec<CounterSample> = tracks
            .iter()
            .map(|(c, t, v)| CounterSample { cycle: *c, track: t, value: *v })
            .collect();
        let json = chrome_trace_json_ext(&[], &samples);
        crate::json::parse(&json).expect("well-formed");
    }

    wb_proptest! {
        /// Sampled deltas always reassemble into the totals: summing
        /// every window's delta for a key equals the final total, no
        /// matter how the increments land between sample points.
        #[test]
        fn window_deltas_sum_to_totals(
            incs in vec_of((0u64..6, 0u64..20), 0..60)
        ) {
            let keys = ["a", "b", "c", "d", "e", "f"];
            let mut s = Stats::new();
            let mut tl = Timeline::new(1);
            let mut cycle = 0u64;
            for &(k, w) in &incs {
                s.add(keys[k as usize], w);
                cycle += 1;
                tl.sample(cycle, &s);
            }
            tl.flush(cycle + 1, &s);
            for key in keys {
                let sum: u64 = tl.windows().map(|w| w.delta.get(key)).sum();
                prop_assert_eq!(sum, s.get(key), "key {}", key);
            }
        }
    }
}
