//! Calendar-wheel activity scheduler for the sparse engine.
//!
//! [`ActivitySched`] tracks, per simulated component ("unit"), the next
//! cycle at which that unit must be visited. The sparse engine
//! (`EngineMode::Sparse`) asks it each cycle for the set of *due* units
//! and ticks only those, so a 256-core machine pays O(active) per cycle
//! instead of O(cores + banks). The skip engine reuses the same wheel
//! as a cache for `System::quiescent_until`, replacing the linear
//! min-scan over every component's `next_event` hook.
//!
//! # Structure
//!
//! The per-unit `wake` table is the source of truth: `wake[u]` is the
//! absolute cycle the unit is scheduled for, or [`ASLEEP`] if it has no
//! schedule. Index structures make "pop everything due" and "earliest
//! wake" cheap:
//!
//! - a classic calendar wheel of [`WHEEL`] buckets covering the cycles
//!   `[cursor, cursor + WHEEL)` — bucket `c & (WHEEL-1)` holds the units
//!   scheduled for the unique in-window cycle `c`;
//! - a `far` overflow list for schedules at or beyond `cursor + WHEEL`,
//!   migrated into the wheel lazily when the window reaches them;
//! - an `overdue` list for wakes posted at already-drained cycles
//!   (wake-on-message marks land "at `now`" after the probe for `now`
//!   already ran).
//!
//! Index entries are *lazily invalidated*: rescheduling a unit just
//! overwrites `wake[u]` and posts a new entry; a stale entry is
//! recognized (its recorded cycle no longer matches `wake[u]`) and
//! dropped when the drain sweeps past it. Popping a due unit sets its
//! wake to [`ASLEEP`] — the caller is expected to re-`set` the unit
//! after visiting it — which also deduplicates multiply-posted units.
//!
//! # Contract with the engines
//!
//! [`ActivitySched::take_due`] never loses a unit: every finite
//! `wake[u]` is covered by at least one index entry, so a unit whose
//! wake is `<= now` is always in the due set. [`ActivitySched::earliest`]
//! may return a cycle *earlier* than the true minimum (stale `far`
//! entries keep `far_min` as a lower bound) but never later — a
//! premature wake costs one no-op probe, a late one would desynchronize
//! the engines, so the bound is one-sided by construction.

use crate::snap::{Snap, SnapReader, SnapResult, SnapWriter};
use crate::Cycle;

/// Sentinel wake value: the unit has no schedule and will only run
/// again once someone posts a wake for it (message delivery, audit).
pub const ASLEEP: Cycle = Cycle::MAX;

/// Number of near-future buckets (power of two). One simulated window
/// of this many cycles is indexed exactly; anything further sits in the
/// `far` overflow list until the window reaches it.
const WHEEL: usize = 512;
const MASK: u64 = WHEEL as u64 - 1;

/// Per-component wake-time index (see module docs).
#[derive(Debug, Clone, Default)]
pub struct ActivitySched {
    /// Source of truth: absolute wake cycle per unit, [`ASLEEP`] if none.
    wake: Vec<Cycle>,
    /// `buckets[c & MASK]` holds units scheduled for the unique cycle
    /// `c` in `[cursor, cursor + WHEEL)`; entries are lazily validated.
    buckets: Vec<Vec<u32>>,
    /// Schedules at or beyond `cursor + WHEEL`, as `(cycle, unit)`.
    far: Vec<(Cycle, u32)>,
    /// Lower bound on the earliest valid entry in `far` (`ASLEEP` when
    /// empty). Never above the true minimum, so migration can't be late.
    far_min: Cycle,
    /// Wakes posted at cycles the cursor has already drained past.
    overdue: Vec<u32>,
    /// All wheel cycles below this have been drained.
    cursor: Cycle,
}

impl ActivitySched {
    /// A wheel for `units` components, all asleep, window starting at 0.
    pub fn new(units: usize) -> Self {
        ActivitySched {
            wake: vec![ASLEEP; units],
            buckets: vec![Vec::new(); WHEEL],
            far: Vec::new(),
            far_min: ASLEEP,
            overdue: Vec::new(),
            cursor: 0,
        }
    }

    /// Number of registered units (0 for the dormant default).
    pub fn units(&self) -> usize {
        self.wake.len()
    }

    /// Start the window at `now`. Fresh wheels only (no schedule may
    /// have been posted yet) — used to build canonical snapshot tables
    /// whose cursor matches the system clock.
    pub fn advance_to(&mut self, now: Cycle) {
        debug_assert!(self.wake.iter().all(|&c| c == ASLEEP), "advance_to on a live wheel");
        self.cursor = now;
    }

    /// Current scheduled wake of `u` (`None` = asleep). Test/snapshot
    /// introspection; engines use [`ActivitySched::take_due`].
    pub fn wake_of(&self, u: usize) -> Option<Cycle> {
        match self.wake[u] {
            ASLEEP => None,
            c => Some(c),
        }
    }

    /// Post an index entry for `u` at `c`. `wake[u]` must already be `c`.
    fn post(&mut self, u: u32, c: Cycle) {
        if c < self.cursor {
            self.overdue.push(u);
        } else if c - self.cursor < WHEEL as u64 {
            self.buckets[(c & MASK) as usize].push(u);
        } else {
            self.far.push((c, u));
            self.far_min = self.far_min.min(c);
        }
    }

    /// Ensure `u` runs no later than cycle `c` (wake-on-message). Keeps
    /// an earlier existing schedule; moves a later one up.
    pub fn wake_at(&mut self, u: usize, c: Cycle) {
        if self.wake[u] <= c {
            return;
        }
        self.wake[u] = c;
        self.post(u as u32, c);
    }

    /// Replace `u`'s schedule with `at` (`None` = sleep until woken).
    /// This is what engines call after visiting a unit, feeding its
    /// `next_event` hook back into the wheel.
    pub fn set(&mut self, u: usize, at: Option<Cycle>) {
        let c = at.unwrap_or(ASLEEP);
        if self.wake[u] == c {
            return;
        }
        self.wake[u] = c;
        if c != ASLEEP {
            self.post(u as u32, c);
        }
    }

    /// Schedule every unit at `now` — the conservative reset used at
    /// construction, after a restore into a non-sparse engine, and after
    /// an audit (whose scrub may touch any component). Spurious wakes
    /// are harmless: a quiescent unit's visit is a no-op.
    pub fn wake_all(&mut self, now: Cycle) {
        for u in 0..self.wake.len() {
            self.wake_at(u, now);
        }
    }

    /// Pop every unit with `wake <= now` into `out` (appending), leaving
    /// each popped unit [`ASLEEP`] until the caller re-`set`s it, and
    /// advance the window cursor to `now + 1`. `now` must be monotonic
    /// across calls. Emission order is not specified — callers needing
    /// a deterministic visit order sort the (small) due set.
    pub fn take_due(&mut self, now: Cycle, out: &mut Vec<u32>) {
        // Overdue wakes: posted at already-drained cycles, all due by
        // construction (their cycles are below the cursor, hence <= now).
        let mut i = 0;
        while i < self.overdue.len() {
            let u = self.overdue[i] as usize;
            if self.wake[u] <= now {
                self.wake[u] = ASLEEP;
                out.push(u as u32);
            }
            // A non-due entry is stale (the unit was rescheduled into
            // the future and has a fresh entry elsewhere): drop it too.
            i += 1;
        }
        self.overdue.clear();
        // Window drain up to `now`.
        if now >= self.cursor {
            if now - self.cursor >= WHEEL as u64 {
                // The whole indexed window is in the past: drain every
                // bucket. Every valid entry's cycle is <= now, so the
                // wake value alone decides validity.
                for b in 0..WHEEL {
                    let mut k = 0;
                    while k < self.buckets[b].len() {
                        let u = self.buckets[b][k] as usize;
                        if self.wake[u] <= now {
                            self.wake[u] = ASLEEP;
                            out.push(u as u32);
                        }
                        k += 1;
                    }
                    self.buckets[b].clear();
                }
            } else {
                let mut c = self.cursor;
                while c <= now {
                    let b = (c & MASK) as usize;
                    let mut k = 0;
                    while k < self.buckets[b].len() {
                        let u = self.buckets[b][k] as usize;
                        // Entries in this bucket were posted for cycle
                        // `c` exactly; anything else is stale.
                        if self.wake[u] == c {
                            self.wake[u] = ASLEEP;
                            out.push(u as u32);
                        }
                        k += 1;
                    }
                    self.buckets[b].clear();
                    c += 1;
                }
            }
            self.cursor = now + 1;
        }
        // Migrate far entries the advanced window now covers (and pop
        // the ones that are already due — a jump can overshoot far_min).
        if self.far_min < self.cursor + WHEEL as u64 {
            let mut min = ASLEEP;
            let mut k = 0;
            while k < self.far.len() {
                let (c, u) = self.far[k];
                if self.wake[u as usize] != c {
                    // Stale: drop by swap-removal.
                    self.far.swap_remove(k);
                    continue;
                }
                if c <= now {
                    self.wake[u as usize] = ASLEEP;
                    out.push(u);
                    self.far.swap_remove(k);
                } else if c - self.cursor < WHEEL as u64 {
                    self.buckets[(c & MASK) as usize].push(u);
                    self.far.swap_remove(k);
                } else {
                    min = min.min(c);
                    k += 1;
                }
            }
            self.far_min = min;
        }
    }

    /// Earliest scheduled wake across all units, `None` when everything
    /// sleeps. May be a *lower bound* (never late — see module docs):
    /// the caller treats a premature value as a spurious probe point.
    pub fn earliest(&self) -> Option<Cycle> {
        let mut min = ASLEEP;
        let mut k = 0;
        while k < self.overdue.len() {
            let u = self.overdue[k] as usize;
            // Valid overdue entries still point below the cursor.
            if self.wake[u] < self.cursor {
                min = min.min(self.wake[u]);
            }
            k += 1;
        }
        if min == ASLEEP {
            // Ascending scan of the indexed window: the first bucket
            // with a valid entry holds the in-window minimum.
            let mut off = 0u64;
            'scan: while off < WHEEL as u64 {
                let c = self.cursor + off;
                let b = (c & MASK) as usize;
                let mut k = 0;
                while k < self.buckets[b].len() {
                    if self.wake[self.buckets[b][k] as usize] == c {
                        min = c;
                        break 'scan;
                    }
                    k += 1;
                }
                off += 1;
            }
        }
        if !self.far.is_empty() {
            min = min.min(self.far_min);
        }
        match min {
            ASLEEP => None,
            c => Some(c),
        }
    }
}

/// The serialized form is canonical: only `(cursor, wake table)` — the
/// derived index structures (buckets, far list, overdue list) are
/// rebuilt on restore, so two wheels with the same logical schedule
/// snapshot to identical bytes regardless of posting history.
impl Snap for ActivitySched {
    fn snap(&self, w: &mut SnapWriter) {
        w.u64(self.cursor);
        w.usize(self.wake.len());
        for &c in &self.wake {
            w.u64(c);
        }
    }

    fn unsnap(r: &mut SnapReader) -> SnapResult<Self> {
        let cursor = r.u64()?;
        let units = r.len_for(8)?;
        let mut s = ActivitySched::new(units);
        s.cursor = cursor;
        for u in 0..units {
            let c = r.u64()?;
            if c != ASLEEP {
                s.wake[u] = c;
                s.post(u as u32, c);
            }
        }
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::run as proprun;
    use crate::snap;
    use crate::SimRng;

    fn drain(s: &mut ActivitySched, now: Cycle) -> Vec<u32> {
        let mut v = Vec::new();
        s.take_due(now, &mut v);
        v.sort_unstable();
        v
    }

    #[test]
    fn due_units_pop_once_and_sleep() {
        let mut s = ActivitySched::new(4);
        s.set(0, Some(5));
        s.set(1, Some(5));
        s.set(2, Some(9));
        assert_eq!(s.earliest(), Some(5));
        assert_eq!(drain(&mut s, 4), Vec::<u32>::new());
        assert_eq!(drain(&mut s, 5), vec![0, 1]);
        assert_eq!(s.wake_of(0), None);
        assert_eq!(s.earliest(), Some(9));
        assert_eq!(drain(&mut s, 9), vec![2]);
        assert_eq!(s.earliest(), None);
    }

    #[test]
    fn wake_at_only_moves_schedules_earlier() {
        let mut s = ActivitySched::new(2);
        s.set(0, Some(100));
        s.wake_at(0, 200); // later: ignored
        assert_eq!(s.wake_of(0), Some(100));
        s.wake_at(0, 3); // earlier: wins
        assert_eq!(s.wake_of(0), Some(3));
        assert_eq!(drain(&mut s, 3), vec![0]);
        // The stale entry at 100 must not resurface.
        assert_eq!(drain(&mut s, 100), Vec::<u32>::new());
    }

    #[test]
    fn overdue_wakes_are_not_lost() {
        let mut s = ActivitySched::new(2);
        assert_eq!(drain(&mut s, 10), Vec::<u32>::new()); // cursor -> 11
        s.wake_at(0, 10); // posted behind the cursor
        assert_eq!(s.earliest(), Some(10));
        assert_eq!(drain(&mut s, 11), vec![0]);
    }

    #[test]
    fn far_schedules_survive_window_jumps() {
        let mut s = ActivitySched::new(3);
        s.set(0, Some(WHEEL as u64 * 10)); // far list
        s.set(1, Some(WHEEL as u64 * 10 + 7));
        assert_eq!(s.earliest(), Some(WHEEL as u64 * 10));
        // Jump straight past both (jump overshoot): both pop at once.
        assert_eq!(drain(&mut s, WHEEL as u64 * 11), vec![0, 1]);
        // Migration into the window without being due yet.
        s.set(2, Some(WHEEL as u64 * 12 + 3));
        assert_eq!(drain(&mut s, WHEEL as u64 * 12), Vec::<u32>::new());
        assert_eq!(s.earliest(), Some(WHEEL as u64 * 12 + 3));
        assert_eq!(drain(&mut s, WHEEL as u64 * 12 + 3), vec![2]);
    }

    #[test]
    fn reschedule_to_far_invalidates_window_entry() {
        let mut s = ActivitySched::new(1);
        s.set(0, Some(4));
        s.set(0, Some(WHEEL as u64 * 3)); // window entry at 4 now stale
        assert_eq!(drain(&mut s, 4), Vec::<u32>::new());
        assert_eq!(drain(&mut s, WHEEL as u64 * 3), vec![0]);
    }

    #[test]
    fn snapshot_is_canonical_and_roundtrips() {
        let mut a = ActivitySched::new(8);
        let mut b = ActivitySched::new(8);
        // Same logical schedule, different posting history.
        a.set(3, Some(700));
        a.set(3, Some(40));
        a.set(5, Some(9_000));
        b.set(5, Some(9_000));
        b.wake_at(3, 40);
        let bytes_a = snap::snapshot(|w| a.snap(w));
        let bytes_b = snap::snapshot(|w| b.snap(w));
        assert_eq!(bytes_a, bytes_b, "snapshot must not encode posting history");
        let mut r = snap::open(&bytes_a).unwrap();
        let mut c = ActivitySched::unsnap(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(c.earliest(), Some(40));
        assert_eq!(drain(&mut c, 40), vec![3]);
        assert_eq!(drain(&mut c, 9_000), vec![5]);
    }

    /// Oracle check: against a naive "scan the wake table" model, the
    /// wheel must pop exactly the due set and `earliest` must never be
    /// later than the true minimum, through random schedule churn and
    /// jumps of arbitrary width.
    #[test]
    fn wheel_matches_linear_scan_oracle() {
        proprun("sched_oracle", 64, |rng: &mut SimRng| {
            let units = 1 + rng.below(24) as usize;
            let mut s = ActivitySched::new(units);
            let mut now: Cycle = 0;
            for _ in 0..200 {
                match rng.below(4) {
                    0 => {
                        let u = rng.below(units as u64) as usize;
                        let c = now + rng.below(3 * WHEEL as u64);
                        s.wake_at(u, c);
                    }
                    1 => {
                        let u = rng.below(units as u64) as usize;
                        let at = if rng.below(4) == 0 {
                            None
                        } else {
                            Some(now + rng.below(3 * WHEEL as u64))
                        };
                        s.set(u, at);
                    }
                    _ => {
                        // Advance: short step or a window-sized jump.
                        now += if rng.below(3) == 0 {
                            rng.below(2 * WHEEL as u64)
                        } else {
                            rng.below(8)
                        };
                        if let Some(e) = s.earliest() {
                            let true_min =
                                (0..units).filter_map(|u| s.wake_of(u)).min();
                            assert!(
                                true_min.is_none_or(|m| e <= m),
                                "earliest() returned {e}, true min {true_min:?}"
                            );
                        } else {
                            assert!(
                                (0..units).all(|u| s.wake_of(u).is_none()),
                                "earliest() == None with live schedules"
                            );
                        }
                        let expect: Vec<u32> = (0..units as u32)
                            .filter(|&u| {
                                s.wake_of(u as usize).is_some_and(|c| c <= now)
                            })
                            .collect();
                        let mut got = Vec::new();
                        s.take_due(now, &mut got);
                        got.sort_unstable();
                        assert_eq!(got, expect, "due set diverged at {now}");
                        // Re-arm popped units like an engine would.
                        for &u in &got {
                            if rng.below(3) != 0 {
                                s.set(u as usize, Some(now + 1 + rng.below(64)));
                            }
                        }
                    }
                }
            }
            Ok(())
        });
    }
}
