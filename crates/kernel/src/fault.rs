//! Link-level fault injection: deterministic, seeded loss/duplication/
//! corruption schedules for the on-chip network.
//!
//! PR 3's chaos layer perturbs *timing* only; this module models the
//! failures real fabrics add on top: a [`FaultPlan`] is a set of
//! (flow-matcher, effect) clauses evaluated by a [`FaultEngine`] at
//! **hop granularity** inside `Mesh::tick`. Effects are probabilistic
//! per traversed link:
//!
//! - [`FaultEffect::Drop`] — the frame vanishes mid-flight;
//! - [`FaultEffect::Duplicate`] — a second copy continues alongside
//!   the original;
//! - [`FaultEffect::CorruptPayload`] — the frame's carried checksum is
//!   XORed with a non-zero value, modelling an arbitrary wire flip
//!   that the receiver-side checksum must catch.
//!
//! None of this is visible to the coherence protocol: the mesh's
//! reliable-delivery sublayer (`wb_mesh::reliable`) retransmits,
//! deduplicates and discards corrupt frames so the protocol still
//! observes exactly-once, per-flow-FIFO delivery. A plan is pure data
//! and appears verbatim in wedge-report reproducer lines, so its
//! `Display` must stay stable.
//!
//! Determinism: the engine's only randomness is a [`SimRng`] stream
//! (distinct from both the mesh jitter and chaos streams), drawn once
//! per (matching clause, hop). Same (seed, plan, workload) → identical
//! fault schedule → byte-identical runs.

use crate::chaos::FlowMatch;
use crate::rng::SimRng;
use std::fmt;

/// What happens to a matching frame at one hop. Probabilities are
/// exact rationals `num/den` so plans render without floats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEffect {
    /// With probability `num/den`, the frame is dropped at this hop.
    Drop { num: u64, den: u64 },
    /// With probability `num/den`, a duplicate copy of the frame is
    /// injected behind the original (both keep travelling).
    Duplicate { num: u64, den: u64 },
    /// With probability `num/den`, the frame's carried checksum is
    /// XORed with a random non-zero value — the wire-flip model. The
    /// receiver recomputes the checksum and must discard the frame.
    CorruptPayload { num: u64, den: u64 },
}

impl FaultEffect {
    fn prob(&self) -> (u64, u64) {
        match *self {
            FaultEffect::Drop { num, den }
            | FaultEffect::Duplicate { num, den }
            | FaultEffect::CorruptPayload { num, den } => (num, den),
        }
    }
}

impl fmt::Display for FaultEffect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultEffect::Drop { num, den } => write!(f, "drop{num}/{den}"),
            FaultEffect::Duplicate { num, den } => write!(f, "dup{num}/{den}"),
            FaultEffect::CorruptPayload { num, den } => write!(f, "corrupt{num}/{den}"),
        }
    }
}

/// One matcher × effect pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultClause {
    pub flow: FlowMatch,
    pub effect: FaultEffect,
}

impl fmt::Display for FaultClause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.flow, self.effect)
    }
}

/// A named, reproducible fault schedule. Appears verbatim in
/// reproducer lines, so `Display` must stay stable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    pub name: &'static str,
    pub clauses: Vec<FaultClause>,
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, c) in self.clauses.iter().enumerate() {
            if i > 0 {
                write!(f, ";")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

impl FaultPlan {
    /// A single-clause plan — the building block for custom scenarios.
    pub fn one(name: &'static str, flow: FlowMatch, effect: FaultEffect) -> Self {
        FaultPlan { name, clauses: vec![FaultClause { flow, effect }] }
    }

    /// Control row: the reliable layer runs but nothing is ever lost.
    /// Delivery must be byte-identical to an unprotected mesh.
    pub fn none() -> Self {
        FaultPlan { name: "fault_none", clauses: Vec::new() }
    }

    /// Uniform loss on every link: each hop of each frame drops with
    /// probability `num/den`.
    pub fn drop_everywhere(num: u64, den: u64) -> Self {
        FaultPlan::one("drop_everywhere", FlowMatch::ANY, FaultEffect::Drop { num, den })
    }

    /// Loss confined to the response vnet: Data, Nacks, LockdownAcks
    /// and Unblocks vanish — the messages the §3 argument leans on.
    pub fn drop_response() -> Self {
        FaultPlan::one("drop_response", FlowMatch::vnet(2), FaultEffect::Drop { num: 1, den: 10 })
    }

    /// Loss confined to the forward vnet (Inv / Fwd / Recall), so
    /// invalidations race their own retransmissions.
    pub fn drop_forward() -> Self {
        FaultPlan::one("drop_forward", FlowMatch::vnet(1), FaultEffect::Drop { num: 1, den: 10 })
    }

    /// Heavy duplication on every link: the dedup window does the work.
    pub fn duplicate_storm() -> Self {
        FaultPlan::one("duplicate_storm", FlowMatch::ANY, FaultEffect::Duplicate { num: 1, den: 5 })
    }

    /// Wire flips on every link: the checksum does the work.
    pub fn corrupt_everywhere() -> Self {
        FaultPlan::one(
            "corrupt_everywhere",
            FlowMatch::ANY,
            FaultEffect::CorruptPayload { num: 1, den: 10 },
        )
    }

    /// One very lossy directed link (20% per hop, any vnet).
    pub fn lossy_link(src: u16, dst: u16) -> Self {
        FaultPlan::one(
            "lossy_link",
            FlowMatch { src: Some(src), dst: Some(dst), touching: None, vnet: None },
            FaultEffect::Drop { num: 1, den: 5 },
        )
    }

    /// Everything at once: simultaneous loss, duplication and
    /// corruption on every link.
    pub fn mixed_misery() -> Self {
        FaultPlan {
            name: "mixed_misery",
            clauses: vec![
                FaultClause { flow: FlowMatch::ANY, effect: FaultEffect::Drop { num: 1, den: 15 } },
                FaultClause {
                    flow: FlowMatch::ANY,
                    effect: FaultEffect::Duplicate { num: 1, den: 15 },
                },
                FaultClause {
                    flow: FlowMatch::ANY,
                    effect: FaultEffect::CorruptPayload { num: 1, den: 15 },
                },
            ],
        }
    }

    /// The standard torture matrix (the issue asks for ≥ 6 lossy plans
    /// beside the `none` control).
    pub fn matrix() -> Vec<FaultPlan> {
        vec![
            FaultPlan::none(),
            FaultPlan::drop_everywhere(1, 10),
            FaultPlan::drop_response(),
            FaultPlan::drop_forward(),
            FaultPlan::duplicate_storm(),
            FaultPlan::corrupt_everywhere(),
            FaultPlan::lossy_link(0, 1),
            FaultPlan::mixed_misery(),
        ]
    }

    /// True when no clause can ever fire.
    pub fn is_none(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Panics if any clause carries a malformed probability.
    ///
    /// # Panics
    ///
    /// A zero denominator or `num > den` (probability above 1).
    pub fn validate(&self) {
        for c in &self.clauses {
            let (num, den) = c.effect.prob();
            assert!(den > 0, "fault plan {}: zero denominator in {c}", self.name);
            assert!(num <= den, "fault plan {}: probability above 1 in {c}", self.name);
        }
    }
}

/// The fate of one frame at one hop, as decided by [`FaultEngine::at_hop`].
/// `drop` preempts the other effects (a dropped frame cannot also be
/// duplicated or corrupted).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HopFate {
    pub drop: bool,
    pub duplicate: bool,
    /// Non-zero value to XOR into the frame's carried checksum.
    pub corrupt: Option<u64>,
}

impl HopFate {
    /// Nothing happens to the frame.
    pub const CLEAN: HopFate = HopFate { drop: false, duplicate: false, corrupt: None };
}

/// Evaluates a [`FaultPlan`] per (frame, hop). Owned by the mesh.
#[derive(Debug, Clone)]
pub struct FaultEngine {
    plan: FaultPlan,
    rng: SimRng,
    /// Frames dropped by the plan.
    pub dropped: u64,
    /// Duplicate copies injected by the plan.
    pub duplicated: u64,
    /// Frames whose checksum was flipped by the plan.
    pub corrupted: u64,
}

impl FaultEngine {
    pub fn new(plan: FaultPlan, seed: u64) -> Self {
        plan.validate();
        FaultEngine {
            plan,
            // Distinct stream from both the mesh jitter rng and the
            // chaos engine rng.
            rng: SimRng::new(seed ^ 0xfa_01_7b_ad_11_4c_70_55),
            dropped: 0,
            duplicated: 0,
            corrupted: 0,
        }
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Decide what happens to a frame of flow (`src`, `dst`, `vnet`)
    /// traversing one link. Exactly one Bernoulli draw per matching
    /// clause (plus one value draw per firing corruption), so the rng
    /// stream is a pure function of the frame/hop sequence.
    pub fn at_hop(&mut self, src: u16, dst: u16, vnet: u8) -> HopFate {
        let mut fate = HopFate::CLEAN;
        for clause in &self.plan.clauses {
            if !clause.flow.matches(src, dst, vnet) {
                continue;
            }
            match clause.effect {
                FaultEffect::Drop { num, den } => {
                    fate.drop |= self.rng.chance(num, den);
                }
                FaultEffect::Duplicate { num, den } => {
                    fate.duplicate |= self.rng.chance(num, den);
                }
                FaultEffect::CorruptPayload { num, den } => {
                    if self.rng.chance(num, den) {
                        // `| 1` keeps the XOR mask non-zero: a zero mask
                        // would be a corruption that corrupts nothing.
                        fate.corrupt = Some(self.rng.next_u64() | 1);
                    }
                }
            }
        }
        if fate.drop {
            fate.duplicate = false;
            fate.corrupt = None;
            self.dropped += 1;
        } else {
            if fate.duplicate {
                self.duplicated += 1;
            }
            if fate.corrupt.is_some() {
                self.corrupted += 1;
            }
        }
        fate
    }

    /// `(dropped, duplicated, corrupted)` so far.
    pub fn injected(&self) -> (u64, u64, u64) {
        (self.dropped, self.duplicated, self.corrupted)
    }

    /// Checkpoint the engine's mutable state (the plan is config,
    /// rebuilt on restore): rng cursor plus audit counters.
    pub fn snap(&self, w: &mut crate::snap::SnapWriter) {
        use crate::snap::Snap;
        self.rng.state().snap(w);
        w.u64(self.dropped);
        w.u64(self.duplicated);
        w.u64(self.corrupted);
    }

    /// Restore state captured by [`FaultEngine::snap`] into an engine
    /// built from the same plan/seed config.
    pub fn restore(&mut self, r: &mut crate::snap::SnapReader) -> crate::snap::SnapResult<()> {
        use crate::snap::Snap;
        self.rng = SimRng::from_state(<[u64; 4]>::unsnap(r)?);
        self.dropped = r.u64()?;
        self.duplicated = r.u64()?;
        self.corrupted = r.u64()?;
        Ok(())
    }

    /// Re-seed the rng stream (same salt as construction) and zero the
    /// audit counters, for warm-start forking.
    pub fn reseed(&mut self, seed: u64) {
        self.rng = SimRng::new(seed ^ 0xfa_01_7b_ad_11_4c_70_55);
        self.dropped = 0;
        self.duplicated = 0;
        self.corrupted = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_never_fires() {
        let mut e = FaultEngine::new(FaultPlan::none(), 7);
        for i in 0..1_000u16 {
            assert_eq!(e.at_hop(i % 16, (i * 3) % 16, (i % 3) as u8), HopFate::CLEAN);
        }
        assert_eq!(e.injected(), (0, 0, 0));
    }

    #[test]
    fn engine_is_deterministic() {
        let run = || {
            let mut e = FaultEngine::new(FaultPlan::mixed_misery(), 42);
            let mut fates = Vec::new();
            for i in 0..5_000u16 {
                fates.push(e.at_hop(i % 16, (i * 7) % 16, (i % 3) as u8));
            }
            (fates, e.injected())
        };
        let (a, ia) = run();
        let (b, ib) = run();
        assert_eq!(a, b);
        assert_eq!(ia, ib);
        assert!(ia.0 > 0 && ia.1 > 0 && ia.2 > 0, "mixed_misery never fired: {ia:?}");
    }

    #[test]
    fn drop_preempts_other_effects() {
        let mut e = FaultEngine::new(FaultPlan::mixed_misery(), 3);
        for i in 0..20_000u16 {
            let fate = e.at_hop(i % 16, i.wrapping_mul(5) % 16, (i % 3) as u8);
            if fate.drop {
                assert!(!fate.duplicate && fate.corrupt.is_none());
            }
        }
        assert!(e.dropped > 0);
    }

    #[test]
    fn matchers_confine_effects() {
        let mut e = FaultEngine::new(FaultPlan::drop_response(), 1);
        for i in 0..5_000u16 {
            // Request/forward vnets are never touched.
            assert_eq!(e.at_hop(i % 16, (i * 3) % 16, (i % 2) as u8), HopFate::CLEAN);
        }
        assert_eq!(e.dropped, 0);
        let mut hit = false;
        for i in 0..200u16 {
            hit |= e.at_hop(i % 16, (i * 3) % 16, 2).drop;
        }
        assert!(hit, "1/10 response drop never fired in 200 hops");
    }

    #[test]
    fn corruption_mask_is_nonzero() {
        let mut e = FaultEngine::new(
            FaultPlan::one("always", FlowMatch::ANY, FaultEffect::CorruptPayload { num: 1, den: 1 }),
            9,
        );
        for _ in 0..1_000 {
            let fate = e.at_hop(0, 1, 0);
            assert_ne!(fate.corrupt, Some(0));
            assert!(fate.corrupt.is_some());
        }
        assert_eq!(e.corrupted, 1_000);
    }

    #[test]
    #[should_panic(expected = "probability above 1")]
    fn validate_rejects_overfull_probability() {
        FaultPlan::one("bad", FlowMatch::ANY, FaultEffect::Drop { num: 3, den: 2 }).validate();
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn validate_rejects_zero_denominator() {
        FaultPlan::one("bad", FlowMatch::ANY, FaultEffect::Drop { num: 0, den: 0 }).validate();
    }

    #[test]
    fn plan_display_is_stable() {
        assert_eq!(FaultPlan::none().to_string(), "fault_none()");
        assert_eq!(
            FaultPlan::drop_everywhere(1, 10).to_string(),
            "drop_everywhere(*>*/vn*:drop1/10)"
        );
        assert_eq!(FaultPlan::drop_response().to_string(), "drop_response(*>*/vn2:drop1/10)");
        assert_eq!(FaultPlan::lossy_link(0, 1).to_string(), "lossy_link(0>1/vn*:drop1/5)");
        assert_eq!(
            FaultPlan::mixed_misery().to_string(),
            "mixed_misery(*>*/vn*:drop1/15;*>*/vn*:dup1/15;*>*/vn*:corrupt1/15)"
        );
        assert_eq!(FaultPlan::matrix().len(), 8);
        assert!(FaultPlan::matrix().iter().filter(|p| !p.is_none()).count() >= 6);
    }
}
