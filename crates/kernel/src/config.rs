//! System configuration, mirroring Table 6 of the paper.
//!
//! The paper evaluates three core classes — Silvermont-like (SLM),
//! Nehalem-like (NHM) and Haswell-like (HSW) — on a 16-core tiled multicore
//! with private L1/L2, a shared banked L3 with an embedded directory, and a
//! 4x4 2D-mesh interconnect.

/// The three simulated core classes of Table 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoreClass {
    /// Silvermont-class: IQ 16, ROB 32, LQ 10, SQ/SB 16.
    Slm,
    /// Nehalem-class: IQ 32, ROB 128, LQ 48, SQ/SB 36.
    Nhm,
    /// Haswell-class: IQ 60, ROB 192, LQ 72, SQ/SB 42.
    Hsw,
}

impl CoreClass {
    /// All classes, in the order the paper plots them.
    pub const ALL: [CoreClass; 3] = [CoreClass::Slm, CoreClass::Nhm, CoreClass::Hsw];

    /// Short label used in figure output ("SLM", "NHM", "HSW").
    pub fn label(self) -> &'static str {
        match self {
            CoreClass::Slm => "SLM",
            CoreClass::Nhm => "NHM",
            CoreClass::Hsw => "HSW",
        }
    }
}

impl std::fmt::Display for CoreClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// How instructions leave the reorder buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommitMode {
    /// Conventional in-order commit from the ROB head.
    InOrder,
    /// Safe out-of-order commit per Bell-Lipasti: all six conditions are
    /// enforced, including consistency (condition 6), so a load reordered
    /// with respect to an older non-performed load cannot commit.
    OutOfOrder,
    /// Out-of-order commit with the consistency condition relaxed for loads
    /// via lockdowns + the WritersBlock protocol (the paper's proposal).
    /// Requires [`ProtocolKind::WritersBlock`].
    OutOfOrderWb,
    /// In-order commit with *early commit of loads* (ECL): a load may
    /// retire from the ROB head before its data returns, as in the DEC
    /// Alpha 21164 (stall-on-use) and DeSC — the paper's other motivating
    /// use cases (Section 1). Requires [`ProtocolKind::WritersBlock`]:
    /// early-committed loads are irrevocably bound, so a reordering among
    /// them must be hidden, not squashed.
    InOrderEcl,
}

impl CommitMode {
    /// Label used in figure output.
    pub fn label(self) -> &'static str {
        match self {
            CommitMode::InOrder => "InOrder",
            CommitMode::OutOfOrder => "OoO",
            CommitMode::OutOfOrderWb => "OoO+WB",
            CommitMode::InOrderEcl => "ECL+WB",
        }
    }
}

impl std::fmt::Display for CommitMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Which coherence protocol the directory and private caches speak.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtocolKind {
    /// Base MESI directory protocol (GEMS-style): invalidations that hit
    /// M-speculative loads squash them.
    BaseMesi,
    /// MESI extended with the WritersBlock transient state: invalidations
    /// that hit lockdowns are Nacked and the write is delayed (Section 3).
    WritersBlock,
}

impl ProtocolKind {
    /// Label used in figure output.
    pub fn label(self) -> &'static str {
        match self {
            ProtocolKind::BaseMesi => "MESI",
            ProtocolKind::WritersBlock => "WritersBlock",
        }
    }
}

/// Out-of-order core parameters (Table 6, top block).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreConfig {
    /// Instructions dispatched and committed per cycle.
    pub width: usize,
    /// Instruction queue (scheduler) entries.
    pub iq_entries: usize,
    /// Reorder buffer entries. The ROB is collapsible when committing
    /// out of order.
    pub rob_entries: usize,
    /// Load queue entries (collapsible under out-of-order commit).
    pub lq_entries: usize,
    /// Store queue entries (FIFO).
    pub sq_entries: usize,
    /// Post-commit store buffer entries (FIFO).
    pub sb_entries: usize,
    /// Lockdown table entries for loads committed out of order (32 in the
    /// paper).
    pub ldt_entries: usize,
    /// How instructions leave the ROB.
    pub commit_mode: CommitMode,
    /// How far past the ROB head commit may search for committable
    /// instructions. The paper uses a commit depth equal to the ROB size.
    pub commit_depth: usize,
    /// Entries in the bimodal branch predictor table.
    pub predictor_entries: usize,
    /// Extra cycles of front-end refill after a squash (mispredict or
    /// memory-order violation) before fetch resumes.
    pub squash_penalty: u64,
    /// Request write permission as soon as a store *resolves its
    /// address* (Section 3.1.2: "as early as the store resolves its
    /// address"), instead of waiting for the store to commit into the
    /// store buffer. Speculative prefetches may invalidate other caches
    /// spuriously but never violate TSO.
    pub write_prefetch_at_resolve: bool,
    /// Collapsible load queue (the paper's choice, Section 4.2): loads
    /// committed out of order leave the LQ immediately, exporting their
    /// lockdowns to the LDT. With `false` the LQ is a FIFO: committed
    /// loads occupy their entry (holding their own lockdown, footnote 10)
    /// until they reach the head — the paper's footnote-8 alternative.
    pub collapsible_lq: bool,
}

impl CoreConfig {
    /// The configuration of Table 6 for a given class, with in-order commit.
    pub fn for_class(class: CoreClass) -> Self {
        let (iq, rob, lq, sq) = match class {
            CoreClass::Slm => (16, 32, 10, 16),
            CoreClass::Nhm => (32, 128, 48, 36),
            CoreClass::Hsw => (60, 192, 72, 42),
        };
        CoreConfig {
            width: 4,
            iq_entries: iq,
            rob_entries: rob,
            lq_entries: lq,
            sq_entries: sq,
            sb_entries: sq,
            ldt_entries: 32,
            commit_mode: CommitMode::InOrder,
            commit_depth: rob,
            predictor_entries: 512,
            squash_penalty: 5,
            write_prefetch_at_resolve: false,
            collapsible_lq: true,
        }
    }
}

/// Cache and memory hierarchy parameters (Table 6, middle block).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryConfig {
    /// Cache line size in bytes (64 throughout).
    pub line_bytes: usize,
    /// Private L1 data cache: total bytes, associativity, hit latency.
    pub l1_bytes: usize,
    pub l1_ways: usize,
    pub l1_hit_cycles: u64,
    /// Private L2: total bytes, associativity, hit latency.
    pub l2_bytes: usize,
    pub l2_ways: usize,
    pub l2_hit_cycles: u64,
    /// Shared L3: bytes *per bank*, associativity, hit latency.
    pub l3_bank_bytes: usize,
    pub l3_ways: usize,
    pub l3_hit_cycles: u64,
    /// Main memory access latency in cycles.
    pub mem_cycles: u64,
    /// MSHRs at the private cache. One is reserved for SoS loads
    /// (Section 3.5.2: resource partitioning).
    pub mshrs: usize,
    /// Entries in the directory eviction buffer that parks WritersBlock
    /// entries under eviction (Section 3.5.1).
    pub dir_evict_buffer: usize,
    /// Directory banks hosted per home node. Lines interleave across
    /// `num_cores * dir_banks_per_node` banks; each bank has its own
    /// request ports, occupancy queue and `next_event` hook, so
    /// directory bandwidth scales independently of core count.
    pub dir_banks_per_node: usize,
    /// Requests one directory bank accepts per cycle. Arrivals beyond
    /// this wait in the bank's occupancy queue — contention is modeled
    /// rather than infinite-bandwidth.
    pub dir_bank_ports: usize,
    /// Evict shared lines silently (the paper's chosen baseline, Section
    /// 3.8). When false, shared-line evictions notify the directory, and in
    /// the base protocol squash M-speculative loads.
    pub silent_shared_evictions: bool,
}

impl Default for MemoryConfig {
    fn default() -> Self {
        MemoryConfig {
            line_bytes: 64,
            l1_bytes: 32 * 1024,
            l1_ways: 8,
            l1_hit_cycles: 4,
            l2_bytes: 128 * 1024,
            l2_ways: 8,
            l2_hit_cycles: 12,
            l3_bank_bytes: 1024 * 1024,
            l3_ways: 8,
            l3_hit_cycles: 35,
            mem_cycles: 160,
            mshrs: 16,
            dir_evict_buffer: 8,
            dir_banks_per_node: 1,
            dir_bank_ports: 4,
            silent_shared_evictions: true,
        }
    }
}

/// Reliable-delivery (link-layer ARQ) parameters. Only consulted when a
/// fault plan is installed: a fault-free mesh never constructs the
/// reliable sublayer, keeping the fast path byte-identical.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkConfig {
    /// Maximum unacknowledged frames per (src, dst, vnet) flow. Further
    /// sends are parked in a pending queue (backpressure into `send`).
    pub window: usize,
    /// Initial retransmission timeout in cycles. Must exceed the worst
    /// fault-free round trip, or clean traffic retransmits spuriously.
    pub rto_min: u64,
    /// Backoff cap: the per-frame timeout doubles on every
    /// retransmission up to this bound.
    pub rto_max: u64,
    /// Cycles a received-but-unacknowledged flow may sit idle before
    /// the receiver emits a standalone cumulative ACK (no reverse
    /// traffic to piggyback on).
    pub ack_idle: u64,
}

impl Default for LinkConfig {
    fn default() -> Self {
        // rto_min comfortably above the worst fault-free RTT on a 4x4
        // mesh (6 hops x 6 cycles + serialization + jitter, both ways).
        LinkConfig { window: 32, rto_min: 256, rto_max: 4096, ack_idle: 64 }
    }
}

/// Interconnect parameters (Table 6, bottom block).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkConfig {
    /// Mesh dimensions; 4x4 for 16 nodes.
    pub mesh_width: usize,
    pub mesh_height: usize,
    /// Cycles for a flit to traverse one switch-to-switch hop.
    pub hop_cycles: u64,
    /// Flits in a data-carrying message.
    pub data_flits: u32,
    /// Flits in a control message.
    pub control_flits: u32,
    /// Extra, random, per-message delay in [0, jitter] cycles used by the
    /// litmus harness to widen the explored interleaving space. Zero for
    /// performance runs.
    pub jitter: u64,
    /// Reliable-delivery sublayer tuning (active only under a fault plan).
    pub link: LinkConfig,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            mesh_width: 4,
            mesh_height: 4,
            hop_cycles: 6,
            data_flits: 5,
            control_flits: 1,
            jitter: 0,
            link: LinkConfig::default(),
        }
    }
}

/// Wedge-watchdog thresholds. Scaled up automatically while a fault
/// plan is active, so loss-induced retransmission stalls are not
/// misclassified as deadlock/livelock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Cycles a core may go without retiring (or the drained memory
    /// system without going idle) before the watchdog trips.
    pub stall_window: u64,
    /// Retry-class events accumulating across one stall window that
    /// make the diagnosis Livelock rather than Deadlock/Starvation.
    pub livelock_retries: u64,
    /// Multiplier applied to both thresholds while a fault plan is
    /// installed: retransmission round trips (rto_min, doubled per
    /// retry) legitimately stretch every protocol interaction.
    pub fault_scale: u64,
    /// Scale both thresholds with the mesh diameter as well: the
    /// configured windows are tuned for a 4x4/6-cycle-hop machine, and
    /// every protocol interaction stretches with the diameter in hop
    /// cycles. Without this a legal 16x16 barrier run trips the
    /// watchdog. Disable only to pin the false-positive in a test.
    pub scale_with_topology: bool,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            stall_window: 200_000,
            livelock_retries: 16,
            fault_scale: 4,
            scale_with_topology: true,
        }
    }
}

/// Which simulation engine drives `System::run`.
///
/// All modes are cycle-exact with each other: `Skip` leaps `now` over
/// provably-inert windows (no component has an event due before the
/// target cycle) while applying the idle-cycle accounting dense ticking
/// would have produced, so `RunOutcome`, final `Stats` and the merged
/// trace are identical. `Sparse` goes further: each core+cache pair,
/// directory bank and mesh router is tracked individually in a
/// calendar-wheel scheduler ([`crate::sched::ActivitySched`]) keyed by
/// its `next_event` hook and woken eagerly on message delivery, so a
/// cycle visits only the components with work due — O(active) instead
/// of O(cores) — and the whole-machine jump falls out as the degenerate
/// case (empty wheel). `SkipVerify`/`SparseVerify` take every decision
/// their engine would take but then *densely tick anyway*, asserting
/// that nothing observable happened — the self-checking modes the
/// equivalence suite leans on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineMode {
    /// Tick every component on every cycle (the reference engine).
    #[default]
    Dense,
    /// Event-driven: jump `now` to the minimum next-event cycle when no
    /// component can make progress.
    Skip,
    /// Compute each skip, then cross-check it against dense ticking.
    SkipVerify,
    /// Per-component activity tracking: tick only the components whose
    /// calendar-wheel wake is due, sleep the rest individually.
    Sparse,
    /// Take every sparse scheduling decision, then tick *everything*
    /// densely, asserting each slept component did nothing.
    SparseVerify,
}

impl EngineMode {
    /// True for the modes that drive a live [`crate::sched::ActivitySched`]
    /// (everything but the dense reference engine).
    pub fn uses_wheel(self) -> bool {
        self != EngineMode::Dense
    }

    /// True for the per-component activity-tracked modes.
    pub fn is_sparse(self) -> bool {
        matches!(self, EngineMode::Sparse | EngineMode::SparseVerify)
    }
}

/// Full system configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemConfig {
    pub num_cores: usize,
    pub core: CoreConfig,
    pub memory: MemoryConfig,
    pub network: NetworkConfig,
    pub protocol: ProtocolKind,
    /// RNG seed for the run (drives jitter and any randomized workload).
    pub seed: u64,
    /// Ablation: serve cacheable copies from a WritersBlock directory entry
    /// and re-invalidate (the livelock-prone "Option 1" of Section 3.4).
    /// Only for the livelock demonstration; keep `false` otherwise.
    pub wb_cacheable_reads: bool,
    /// Record every committed memory instruction for the TSO checker.
    /// Litmus/torture runs need this; long benchmark runs turn it off
    /// (the log grows with every committed load).
    pub record_events: bool,
    /// Adversarial network schedule (delay storms, hotspots, bounded
    /// starvation, lockdown-directed stalls). `None` leaves the mesh
    /// byte-identical to a chaos-free build.
    pub chaos: Option<crate::chaos::ChaosPlan>,
    /// Link-level fault schedule (drops, duplicates, corruption).
    /// Installing a plan — even the empty [`crate::fault::FaultPlan::none`]
    /// — enables the reliable-delivery sublayer; `None` leaves the mesh
    /// byte-identical to a fault-free build.
    pub fault: Option<crate::fault::FaultPlan>,
    /// Soft-error schedule: seeded bit flips into stored protocol state
    /// (cache line state/tags, directory entries, sharer sets, MSHRs),
    /// detected by guard hashes and recovered via poison/re-fetch.
    /// `None` *and* the empty [`crate::soft::SoftPlan::none`] both leave
    /// runs byte-identical to a soft-error-free build.
    pub soft: Option<crate::soft::SoftPlan>,
    /// Wedge-watchdog thresholds (see [`WatchdogConfig`]).
    pub watchdog: WatchdogConfig,
    /// Simulation engine (dense reference, event-driven skip, or
    /// skip-with-dense-cross-check). Cycle-exact either way.
    pub engine: EngineMode,
}

impl SystemConfig {
    /// A 16-core system of the given class with the base MESI protocol and
    /// in-order commit — the paper's baseline.
    pub fn new(class: CoreClass) -> Self {
        SystemConfig {
            num_cores: 16,
            core: CoreConfig::for_class(class),
            memory: MemoryConfig::default(),
            network: NetworkConfig::default(),
            protocol: ProtocolKind::BaseMesi,
            seed: 0x5eed_cafe,
            wb_cacheable_reads: false,
            record_events: true,
            chaos: None,
            fault: None,
            soft: None,
            watchdog: WatchdogConfig::default(),
            engine: EngineMode::Dense,
        }
    }

    /// Builder-style: disable memory-event recording (benchmark runs).
    pub fn without_event_log(mut self) -> Self {
        self.record_events = false;
        self
    }

    /// Builder-style: set the number of cores. The mesh is resized to
    /// the most-square *exact* rectangle (`width * height == n`), so no
    /// mesh node is ever left without a core mapped to it — `validate`
    /// rejects over-provisioned meshes. Prime counts degrade to `n x 1`.
    pub fn with_cores(mut self, n: usize) -> Self {
        assert!(n > 0, "need at least one core");
        self.num_cores = n;
        let mut h = 1;
        let mut d = 1;
        while d * d <= n {
            if n % d == 0 {
                h = d;
            }
            d += 1;
        }
        self.network.mesh_width = n / h;
        self.network.mesh_height = h;
        self
    }

    /// Builder-style: set the commit mode (and switch the protocol to
    /// WritersBlock when the relaxed mode requires it).
    pub fn with_commit(mut self, mode: CommitMode) -> Self {
        self.core.commit_mode = mode;
        if matches!(mode, CommitMode::OutOfOrderWb | CommitMode::InOrderEcl) {
            self.protocol = ProtocolKind::WritersBlock;
        }
        self
    }

    /// Builder-style: set the coherence protocol.
    pub fn with_protocol(mut self, p: ProtocolKind) -> Self {
        self.protocol = p;
        self
    }

    /// Builder-style: set the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style: random message jitter for litmus exploration.
    pub fn with_jitter(mut self, jitter: u64) -> Self {
        self.network.jitter = jitter;
        self
    }

    /// Builder-style: install an adversarial network schedule.
    pub fn with_chaos(mut self, plan: crate::chaos::ChaosPlan) -> Self {
        self.chaos = Some(plan);
        self
    }

    /// Builder-style: install a link-level fault schedule (and thereby
    /// the reliable-delivery sublayer).
    pub fn with_fault(mut self, plan: crate::fault::FaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Builder-style: install a soft-error (stored-state bit-flip)
    /// schedule with guard-hash detection and poison/recovery.
    pub fn with_soft(mut self, plan: crate::soft::SoftPlan) -> Self {
        self.soft = Some(plan);
        self
    }

    /// Builder-style: select the simulation engine.
    pub fn with_engine(mut self, engine: EngineMode) -> Self {
        self.engine = engine;
        self
    }

    /// Watchdog multiplier derived from the mesh diameter in hop
    /// cycles, normalised to the 4x4/6-cycle machine the absolute
    /// windows were tuned on (diameter 6 hops x 6 cycles = 36). A
    /// 16x16 mesh at the same hop latency yields 5: serialized line
    /// transfers behind a hot barrier line legitimately take that much
    /// longer end to end.
    pub fn topology_scale(&self) -> u64 {
        if !self.watchdog.scale_with_topology {
            return 1;
        }
        const REF_DIAMETER_CYCLES: u64 = 36;
        let hops = (self.network.mesh_width - 1 + self.network.mesh_height - 1) as u64;
        (hops.saturating_mul(self.network.hop_cycles) / REF_DIAMETER_CYCLES).max(1)
    }

    /// The stall window the watchdog should actually use: the
    /// configured window, scaled by the mesh diameter (see
    /// [`SystemConfig::topology_scale`]) and by `fault_scale` while a
    /// fault plan is installed (retransmission round trips stretch
    /// every protocol interaction without anything being wedged).
    pub fn effective_stall_window(&self) -> u64 {
        let w = self.watchdog.stall_window.saturating_mul(self.topology_scale());
        if self.fault.is_some() {
            w.saturating_mul(self.watchdog.fault_scale)
        } else {
            w
        }
    }

    /// The livelock-classification threshold in force (scaled like the
    /// stall window: retransmissions and longer flight times inflate
    /// retry-shaped activity).
    pub fn effective_livelock_retries(&self) -> u64 {
        let r = self.watchdog.livelock_retries.saturating_mul(self.topology_scale());
        if self.fault.is_some() {
            r.saturating_mul(self.watchdog.fault_scale)
        } else {
            r
        }
    }

    /// Panics if the configuration is internally inconsistent.
    ///
    /// # Panics
    ///
    /// - commit mode `OutOfOrderWb` combined with the base MESI protocol
    ///   (irrevocably bound reordered loads would be unsound);
    /// - a mesh too small for the node count, or one with nodes left
    ///   unmapped (`mesh_width * mesh_height != num_cores`);
    /// - more than [`crate::MAX_NODES`] cores (sharer bitsets are
    ///   fixed-width);
    /// - zero directory banks per node or zero bank ports;
    /// - fewer than two MSHRs (one must stay reserved for SoS loads).
    pub fn validate(&self) {
        if matches!(self.core.commit_mode, CommitMode::OutOfOrderWb | CommitMode::InOrderEcl) {
            assert_eq!(
                self.protocol,
                ProtocolKind::WritersBlock,
                "relaxed consistency commit requires the WritersBlock protocol"
            );
        }
        assert!(
            self.network.mesh_width * self.network.mesh_height >= self.num_cores,
            "mesh {}x{} cannot host {} nodes",
            self.network.mesh_width,
            self.network.mesh_height,
            self.num_cores
        );
        assert!(
            self.network.mesh_width * self.network.mesh_height == self.num_cores,
            "mesh {}x{} leaves {} nodes unmapped (no home bank routes to them); \
             size the mesh exactly, e.g. via with_cores",
            self.network.mesh_width,
            self.network.mesh_height,
            self.network.mesh_width * self.network.mesh_height - self.num_cores
        );
        assert!(
            self.num_cores <= crate::MAX_NODES,
            "{} cores exceed MAX_NODES = {} (directory sharer bitsets are fixed-width)",
            self.num_cores,
            crate::MAX_NODES
        );
        assert!(self.memory.dir_banks_per_node >= 1, "need at least one directory bank per node");
        assert!(self.memory.dir_bank_ports >= 1, "a directory bank needs at least one port");
        assert!(self.memory.mshrs >= 2, "need at least 2 MSHRs (1 reserved for SoS loads)");
        assert!(self.core.width >= 1);
        assert!(self.memory.line_bytes.is_power_of_two());
        if let Some(p) = &self.fault {
            p.validate();
        }
        if let Some(p) = &self.soft {
            p.validate();
        }
        let link = &self.network.link;
        assert!(link.window >= 1, "reliable link needs a window of at least one frame");
        assert!(link.rto_min >= 1 && link.rto_max >= link.rto_min, "rto_min..rto_max malformed");
        assert!(self.watchdog.stall_window >= 1, "zero stall window would trip immediately");
        assert!(self.watchdog.fault_scale >= 1, "fault_scale shrinking the window is unsound");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table6_slm_values() {
        let c = CoreConfig::for_class(CoreClass::Slm);
        assert_eq!((c.iq_entries, c.rob_entries, c.lq_entries, c.sq_entries), (16, 32, 10, 16));
        assert_eq!(c.width, 4);
        assert_eq!(c.ldt_entries, 32);
    }

    #[test]
    fn table6_nhm_values() {
        let c = CoreConfig::for_class(CoreClass::Nhm);
        assert_eq!((c.iq_entries, c.rob_entries, c.lq_entries, c.sq_entries), (32, 128, 48, 36));
    }

    #[test]
    fn table6_hsw_values() {
        let c = CoreConfig::for_class(CoreClass::Hsw);
        assert_eq!((c.iq_entries, c.rob_entries, c.lq_entries, c.sq_entries), (60, 192, 72, 42));
    }

    #[test]
    fn table6_memory_values() {
        let m = MemoryConfig::default();
        assert_eq!(m.l1_bytes, 32 * 1024);
        assert_eq!(m.l1_hit_cycles, 4);
        assert_eq!(m.l2_hit_cycles, 12);
        assert_eq!(m.l3_hit_cycles, 35);
        assert_eq!(m.mem_cycles, 160);
    }

    #[test]
    fn table6_network_values() {
        let n = NetworkConfig::default();
        assert_eq!((n.mesh_width, n.mesh_height), (4, 4));
        assert_eq!(n.hop_cycles, 6);
        assert_eq!((n.data_flits, n.control_flits), (5, 1));
    }

    #[test]
    fn with_commit_switches_protocol() {
        let cfg = SystemConfig::new(CoreClass::Slm).with_commit(CommitMode::OutOfOrderWb);
        assert_eq!(cfg.protocol, ProtocolKind::WritersBlock);
        cfg.validate();
        let cfg = SystemConfig::new(CoreClass::Slm).with_commit(CommitMode::InOrderEcl);
        assert_eq!(cfg.protocol, ProtocolKind::WritersBlock);
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "WritersBlock")]
    fn validate_rejects_ecl_on_base_mesi() {
        let mut cfg = SystemConfig::new(CoreClass::Slm).with_commit(CommitMode::InOrderEcl);
        cfg.protocol = ProtocolKind::BaseMesi;
        cfg.validate();
    }

    #[test]
    fn new_knobs_default_off() {
        let c = CoreConfig::for_class(CoreClass::Slm);
        assert!(c.collapsible_lq, "the paper's choice is the default");
        assert!(!c.write_prefetch_at_resolve);
        assert_eq!(CommitMode::InOrderEcl.label(), "ECL+WB");
    }

    #[test]
    #[should_panic(expected = "WritersBlock")]
    fn validate_rejects_unsound_combo() {
        let mut cfg = SystemConfig::new(CoreClass::Slm).with_commit(CommitMode::OutOfOrderWb);
        cfg.protocol = ProtocolKind::BaseMesi;
        cfg.validate();
    }

    #[test]
    fn with_cores_resizes_mesh_exactly() {
        for n in [1, 2, 3, 4, 6, 12, 16, 64, 100, 256] {
            let cfg = SystemConfig::new(CoreClass::Slm).with_cores(n);
            assert_eq!(cfg.network.mesh_width * cfg.network.mesh_height, n, "exact for {n}");
            assert!(cfg.network.mesh_width >= cfg.network.mesh_height);
            cfg.validate();
        }
        let cfg = SystemConfig::new(CoreClass::Slm).with_cores(64);
        assert_eq!((cfg.network.mesh_width, cfg.network.mesh_height), (8, 8));
        let cfg = SystemConfig::new(CoreClass::Slm).with_cores(256);
        assert_eq!((cfg.network.mesh_width, cfg.network.mesh_height), (16, 16));
        // Primes degrade to a 1-high chain rather than wasting nodes.
        let cfg = SystemConfig::new(CoreClass::Slm).with_cores(7);
        assert_eq!((cfg.network.mesh_width, cfg.network.mesh_height), (7, 1));
    }

    #[test]
    #[should_panic(expected = "unmapped")]
    fn validate_rejects_unmapped_mesh_nodes() {
        let mut cfg = SystemConfig::new(CoreClass::Slm);
        cfg.num_cores = 14; // 4x4 mesh, 2 nodes without a home
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "MAX_NODES")]
    fn validate_rejects_oversized_machines() {
        let cfg = SystemConfig::new(CoreClass::Slm).with_cores(512);
        cfg.validate();
    }

    #[test]
    fn watchdog_scales_only_under_fault() {
        let cfg = SystemConfig::new(CoreClass::Slm);
        assert_eq!(cfg.effective_stall_window(), 200_000);
        assert_eq!(cfg.effective_livelock_retries(), 16);
        let cfg = cfg.with_fault(crate::fault::FaultPlan::drop_everywhere(1, 10));
        assert_eq!(cfg.effective_stall_window(), 800_000);
        assert_eq!(cfg.effective_livelock_retries(), 64);
        cfg.validate();
        // Chaos alone does not scale: delays are bounded by the plan.
        let cfg = SystemConfig::new(CoreClass::Slm).with_chaos(crate::chaos::ChaosPlan::quiet());
        assert_eq!(cfg.effective_stall_window(), 200_000);
    }

    #[test]
    fn watchdog_scales_with_mesh_diameter() {
        // The 4x4 tuning point is the identity.
        assert_eq!(SystemConfig::new(CoreClass::Slm).topology_scale(), 1);
        let cfg = SystemConfig::new(CoreClass::Slm).with_cores(64);
        assert_eq!(cfg.topology_scale(), 2); // 14 hops x 6 cycles / 36
        let cfg = SystemConfig::new(CoreClass::Slm).with_cores(256);
        assert_eq!(cfg.topology_scale(), 5); // 30 hops x 6 cycles / 36
        assert_eq!(cfg.effective_stall_window(), 1_000_000);
        assert_eq!(cfg.effective_livelock_retries(), 80);
        // Fault and topology scaling compose.
        let cfg = cfg.with_fault(crate::fault::FaultPlan::drop_everywhere(1, 10));
        assert_eq!(cfg.effective_stall_window(), 4_000_000);
        // The test escape hatch pins the unscaled window.
        let mut cfg = SystemConfig::new(CoreClass::Slm).with_cores(256);
        cfg.watchdog.scale_with_topology = false;
        assert_eq!(cfg.effective_stall_window(), 200_000);
    }

    #[test]
    fn bank_knobs_default_sane() {
        let m = MemoryConfig::default();
        assert_eq!(m.dir_banks_per_node, 1);
        assert!(m.dir_bank_ports >= 1);
    }

    #[test]
    fn link_defaults_are_sane() {
        let l = LinkConfig::default();
        assert!(l.rto_min > 70, "rto_min must exceed the worst fault-free RTT");
        assert!(l.rto_max >= l.rto_min);
        assert!(l.window >= 1);
    }

    #[test]
    #[should_panic(expected = "rto_min..rto_max")]
    fn validate_rejects_inverted_rto() {
        let mut cfg = SystemConfig::new(CoreClass::Slm);
        cfg.network.link.rto_max = 1;
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "probability above 1")]
    fn validate_checks_fault_plan() {
        let mut cfg = SystemConfig::new(CoreClass::Slm);
        cfg.fault = Some(crate::fault::FaultPlan::drop_everywhere(3, 2));
        cfg.validate();
    }

    #[test]
    fn labels() {
        assert_eq!(CoreClass::Slm.label(), "SLM");
        assert_eq!(CommitMode::OutOfOrderWb.label(), "OoO+WB");
        assert_eq!(ProtocolKind::WritersBlock.label(), "WritersBlock");
        assert_eq!(format!("{}", CoreClass::Hsw), "HSW");
        assert_eq!(format!("{}", CommitMode::InOrder), "InOrder");
    }
}
