//! Simulation kernel for the WritersBlock simulator.
//!
//! This crate holds the pieces every other crate builds on:
//!
//! - [`Cycle`] and related time-keeping newtypes,
//! - [`SimRng`], a deterministic seeded random-number generator,
//! - [`Stats`], a string-keyed statistics registry used for every counter a
//!   figure or table in the paper reports,
//! - [`config`], the machine configurations of Table 6 of the paper
//!   (SLM-class, NHM-class and HSW-class cores) plus protocol knobs,
//! - [`check`], the in-tree property-testing harness every crate's
//!   randomized test suite runs on (the workspace builds with an empty
//!   cargo registry, so there is no external `proptest`),
//! - [`hist`], log-2-bucketed latency histograms carried inside
//!   [`Stats`] (p50/p90/p99 for miss latency, blocked-write stalls,
//!   lockdown and mesh latency),
//! - [`trace`], the cycle-stamped event tracer: per-component ring
//!   buffers of typed [`trace::TraceEvent`]s with a human-readable dump
//!   and a Chrome trace-event (Perfetto) exporter,
//! - [`json`], a minimal JSON parser so emitted JSON (stats, benches,
//!   Chrome traces) can be validated in-tree,
//! - [`timeline`], the periodic interval sampler turning end-of-run
//!   [`Stats`] totals into per-window deltas (JSONL + Perfetto counter
//!   tracks),
//! - [`attr`], the bounded space-saving heavy-hitters sketch used for
//!   cycle attribution (top-K contended lines / directory banks),
//! - [`sched`], the calendar-wheel activity scheduler the sparse engine
//!   uses to visit only the components with work due each cycle,
//! - [`snap`], the versioned binary snapshot codec behind deterministic
//!   checkpoint/restore (with a strict-JSON hex envelope validated
//!   through [`json`]),
//! - [`soft`], seeded soft-error (bit-flip) injection into stored
//!   protocol state plus the guard-hash parity/ECC model that detects it,
//! - [`audit`], the typed violation reports of the online coherence
//!   invariant auditor (`System::run_audit`).
//!
//! # Example
//!
//! ```
//! use wb_kernel::config::{CoreClass, SystemConfig};
//!
//! let cfg = SystemConfig::new(CoreClass::Slm);
//! assert_eq!(cfg.core.rob_entries, 32);
//! assert_eq!(cfg.num_cores, 16);
//! ```

pub mod attr;
pub mod audit;
pub mod chaos;
pub mod check;
pub mod config;
pub mod fault;
pub mod hist;
pub mod json;
pub mod rng;
pub mod sched;
pub mod snap;
pub mod soft;
pub mod stats;
pub mod timeline;
pub mod trace;
pub mod wedge;

pub use attr::{HeavyHitters, HotEntry};
pub use audit::{AuditKind, AuditReport, AuditViolation};
pub use chaos::{ChaosClause, ChaosEffect, ChaosEngine, ChaosPlan, FlowMatch};
pub use config::{CommitMode, CoreClass, LinkConfig, ProtocolKind, SystemConfig, WatchdogConfig};
pub use fault::{FaultClause, FaultEffect, FaultEngine, FaultPlan, HopFate};
pub use soft::{SoftClause, SoftEngine, SoftPlan, SoftTarget};
pub use hist::Hist;
pub use rng::SimRng;
pub use sched::ActivitySched;
pub use snap::{Snap, SnapError, SnapReader, SnapResult, SnapWriter};
pub use stats::{CounterHandle, Stats};
pub use timeline::{Timeline, TimelineWindow};
pub use trace::{Category, CompId, Level, Record, TraceEvent, TraceFilter, TraceSink, Tracer};
pub use wedge::{WaitEdge, WaitParty, WedgeClass, WedgeReport};

/// A point in simulated time, measured in core clock cycles.
///
/// The whole system (cores, caches, directory, mesh) shares one clock
/// domain, as in the paper's GEMS-based setup.
pub type Cycle = u64;

/// Hard ceiling on the number of nodes a system may have. Sharer sets in
/// the directory are fixed-width bitsets sized from this constant (no
/// per-message heap allocation), so `SystemConfig::validate` rejects
/// larger machines instead of silently truncating sharer tracking.
pub const MAX_NODES: usize = 256;

/// Identifier of a node (tile) in the system: one core + private cache +
/// LLC/directory bank per tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u16);

impl NodeId {
    /// Index usable for `Vec` addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl Snap for NodeId {
    fn snap(&self, w: &mut SnapWriter) {
        w.u16(self.0);
    }
    fn unsnap(r: &mut SnapReader) -> snap::SnapResult<Self> {
        Ok(NodeId(r.u16()?))
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(v: usize) -> Self {
        NodeId(v as u16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let n = NodeId::from(7usize);
        assert_eq!(n.index(), 7);
        assert_eq!(n.to_string(), "n7");
    }

    #[test]
    fn node_id_ordering() {
        assert!(NodeId(1) < NodeId(2));
        assert_eq!(NodeId::default(), NodeId(0));
    }
}
