//! Chaos timing injection: deterministic, seeded adversarial schedules
//! for the on-chip network.
//!
//! The paper's correctness argument (§3.4, §3.5) must hold on an
//! *unordered* network, so the interesting schedules are exactly the
//! ones uniform jitter almost never produces: sustained delay storms on
//! one virtual network, hotspots around one node, bounded starvation of
//! a single flow, heavy-tailed reorder amplification, and directed
//! stalls timed to land while a lockdown is live.
//!
//! A [`ChaosPlan`] is pure data (it appears verbatim in wedge-report
//! reproducer lines); a [`ChaosEngine`] evaluates it per message inside
//! `Mesh::send`. All injected perturbation is *extra delay on the
//! injection timestamp only* — the mesh re-establishes per-flow FIFO at
//! delivery via sequence numbers, so no plan can drop, duplicate, or
//! reorder same-flow messages. Every plan is therefore legal unordered
//! network behaviour by construction.
//!
//! Determinism: the engine's only randomness is a [`SimRng`] stream
//! seeded from the system seed, drawn once per (matching probabilistic
//! clause, message). Same (seed, config, plan) → identical delays →
//! byte-identical runs.

use crate::rng::SimRng;
use crate::stats::Stats;
use crate::Cycle;
use std::fmt;

/// Which messages a clause applies to. `None` fields match anything;
/// `touching` matches messages with the given node as source *or*
/// destination (link hotspots).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlowMatch {
    pub src: Option<u16>,
    pub dst: Option<u16>,
    pub touching: Option<u16>,
    pub vnet: Option<u8>,
}

impl FlowMatch {
    pub const ANY: FlowMatch = FlowMatch {
        src: None,
        dst: None,
        touching: None,
        vnet: None,
    };

    pub fn vnet(v: u8) -> Self {
        FlowMatch {
            vnet: Some(v),
            ..FlowMatch::ANY
        }
    }

    pub fn touching(node: u16) -> Self {
        FlowMatch {
            touching: Some(node),
            ..FlowMatch::ANY
        }
    }

    pub fn flow(src: u16, dst: u16, vnet: u8) -> Self {
        FlowMatch {
            src: Some(src),
            dst: Some(dst),
            touching: None,
            vnet: Some(vnet),
        }
    }

    pub fn matches(&self, src: u16, dst: u16, vnet: u8) -> bool {
        self.src.map_or(true, |s| s == src)
            && self.dst.map_or(true, |d| d == dst)
            && self.touching.map_or(true, |t| t == src || t == dst)
            && self.vnet.map_or(true, |v| v == vnet)
    }
}

impl fmt::Display for FlowMatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let opt = |x: Option<u16>| x.map_or("*".to_string(), |v| v.to_string());
        if let Some(t) = self.touching {
            write!(f, "~{t}")?;
        } else {
            write!(f, "{}>{}", opt(self.src), opt(self.dst))?;
        }
        match self.vnet {
            Some(v) => write!(f, "/vn{v}"),
            None => write!(f, "/vn*"),
        }
    }
}

/// How matching messages are perturbed. All variants add delay only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosEffect {
    /// Fixed extra delay on every matching message.
    Delay { cycles: u64 },
    /// Periodic delay storm: during the first `burst` cycles of every
    /// `period`-cycle window, matching messages are held an extra
    /// `[min, max]` cycles. Models transient congestion.
    Storm {
        period: u64,
        burst: u64,
        min: u64,
        max: u64,
    },
    /// Heavy-tailed reorder amplification: with probability `num/den`
    /// a matching message is held `[min, max]` extra cycles. Stretches
    /// the §3.5 race windows (Nack in flight, WritersBlock entry,
    /// eviction-buffer occupancy) far beyond uniform jitter.
    Amplify {
        num: u64,
        den: u64,
        min: u64,
        max: u64,
    },
    /// Bounded per-flow starvation: matching flows freeze for the first
    /// `hold` cycles of every `hold + release` window (a message
    /// injected mid-freeze is held until the window opens). Bounded by
    /// construction — every window ends — so this is starvation
    /// *pressure*, not a livelock of the harness itself.
    Starve { hold: u64, release: u64 },
    /// Directed mode: extra delay only while the externally supplied
    /// signal is set (the system raises it while any private cache
    /// holds a live lockdown). This is the "stall a chosen vnet while a
    /// lockdown is in progress" schedule from the issue.
    StallWhileSignal { cycles: u64 },
}

impl fmt::Display for ChaosEffect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaosEffect::Delay { cycles } => write!(f, "delay{cycles}"),
            ChaosEffect::Storm {
                period,
                burst,
                min,
                max,
            } => write!(f, "storm{burst}/{period}x{min}-{max}"),
            ChaosEffect::Amplify { num, den, min, max } => {
                write!(f, "amp{num}/{den}x{min}-{max}")
            }
            ChaosEffect::Starve { hold, release } => write!(f, "starve{hold}+{release}"),
            ChaosEffect::StallWhileSignal { cycles } => write!(f, "lockstall{cycles}"),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosClause {
    pub flow: FlowMatch,
    pub effect: ChaosEffect,
}

impl fmt::Display for ChaosClause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.flow, self.effect)
    }
}

/// A named, reproducible adversarial schedule. Appears verbatim in
/// reproducer lines, so `Display` must stay stable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosPlan {
    pub name: &'static str,
    pub clauses: Vec<ChaosClause>,
}

impl fmt::Display for ChaosPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, c) in self.clauses.iter().enumerate() {
            if i > 0 {
                write!(f, ";")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

impl ChaosPlan {
    fn one(name: &'static str, flow: FlowMatch, effect: ChaosEffect) -> Self {
        ChaosPlan {
            name,
            clauses: vec![ChaosClause { flow, effect }],
        }
    }

    /// Control row: no perturbation at all.
    pub fn quiet() -> Self {
        ChaosPlan {
            name: "quiet",
            clauses: Vec::new(),
        }
    }

    /// Periodic congestion on every link.
    pub fn delay_storm() -> Self {
        Self::one(
            "delay_storm",
            FlowMatch::ANY,
            ChaosEffect::Storm {
                period: 2_000,
                burst: 400,
                min: 50,
                max: 400,
            },
        )
    }

    /// Storm confined to the request vnet (GetS/GetX/Put arrivals).
    pub fn request_storm() -> Self {
        Self::one(
            "request_storm",
            FlowMatch::vnet(0),
            ChaosEffect::Storm {
                period: 2_500,
                burst: 600,
                min: 80,
                max: 500,
            },
        )
    }

    /// Storm confined to the forward vnet — Inv / Fwd / Recall arrive
    /// late, stretching lockdown and WritersBlock entry windows.
    pub fn forward_storm() -> Self {
        Self::one(
            "forward_storm",
            FlowMatch::vnet(1),
            ChaosEffect::Storm {
                period: 2_500,
                burst: 600,
                min: 80,
                max: 500,
            },
        )
    }

    /// Storm confined to the response vnet — Nacks, Data and acks hang
    /// in flight (§3.5's "Nack in flight" window).
    pub fn response_storm() -> Self {
        Self::one(
            "response_storm",
            FlowMatch::vnet(2),
            ChaosEffect::Storm {
                period: 2_500,
                burst: 600,
                min: 80,
                max: 500,
            },
        )
    }

    /// Everything entering or leaving one node crawls.
    pub fn hotspot(node: u16) -> Self {
        Self::one(
            "hotspot",
            FlowMatch::touching(node),
            ChaosEffect::Delay { cycles: 150 },
        )
    }

    /// Bounded starvation of one (src, dst, vnet) flow.
    pub fn starve_flow(src: u16, dst: u16, vnet: u8) -> Self {
        Self::one(
            "starve_flow",
            FlowMatch::flow(src, dst, vnet),
            ChaosEffect::Starve {
                hold: 800,
                release: 200,
            },
        )
    }

    /// Heavy-tailed jitter on every message: 1-in-8 messages is held up
    /// to a thousand cycles, maximising cross-flow reorder.
    pub fn reorder_amplify() -> Self {
        Self::one(
            "reorder_amplify",
            FlowMatch::ANY,
            ChaosEffect::Amplify {
                num: 1,
                den: 8,
                min: 100,
                max: 1_000,
            },
        )
    }

    /// Squeeze the WritersBlock entry path: responses (Nack, acks,
    /// Data) get heavy-tailed delay while forwards lag a fixed amount,
    /// widening the gap between a Nack leaving the directory and the
    /// matching LockdownAck returning — the §3.5.1 eviction-buffer
    /// occupancy window.
    pub fn wb_entry_squeeze() -> Self {
        ChaosPlan {
            name: "wb_entry_squeeze",
            clauses: vec![
                ChaosClause {
                    flow: FlowMatch::vnet(2),
                    effect: ChaosEffect::Amplify {
                        num: 1,
                        den: 4,
                        min: 200,
                        max: 900,
                    },
                },
                ChaosClause {
                    flow: FlowMatch::vnet(1),
                    effect: ChaosEffect::Delay { cycles: 60 },
                },
            ],
        }
    }

    /// Directed §3.5 schedule: stall the chosen vnet whenever a
    /// lockdown is live anywhere.
    pub fn lockdown_vnet_stall(vnet: u8) -> Self {
        Self::one(
            "lockdown_vnet_stall",
            FlowMatch::vnet(vnet),
            ChaosEffect::StallWhileSignal { cycles: 300 },
        )
    }

    /// The standard torture matrix (issue asks for ≥ 8 plans).
    pub fn matrix() -> Vec<ChaosPlan> {
        vec![
            ChaosPlan::quiet(),
            ChaosPlan::delay_storm(),
            ChaosPlan::request_storm(),
            ChaosPlan::forward_storm(),
            ChaosPlan::response_storm(),
            ChaosPlan::hotspot(0),
            ChaosPlan::starve_flow(1, 0, 0),
            ChaosPlan::reorder_amplify(),
            ChaosPlan::wb_entry_squeeze(),
            ChaosPlan::lockdown_vnet_stall(1),
            ChaosPlan::lockdown_vnet_stall(2),
        ]
    }
}

/// Evaluates a [`ChaosPlan`] per injected message. Owned by the mesh;
/// the system pushes the lockdown-live signal in each tick when any
/// clause wants it.
#[derive(Debug, Clone)]
pub struct ChaosEngine {
    plan: ChaosPlan,
    rng: SimRng,
    signal: bool,
    /// Messages that received any extra delay.
    pub touched: u64,
    /// Total extra cycles injected.
    pub injected: u64,
}

impl ChaosEngine {
    pub fn new(plan: ChaosPlan, seed: u64) -> Self {
        ChaosEngine {
            plan,
            // Distinct stream from the mesh's own jitter rng.
            rng: SimRng::new(seed ^ 0xc4a0_5f1a_11ed_7707),
            signal: false,
            touched: 0,
            injected: 0,
        }
    }

    pub fn plan(&self) -> &ChaosPlan {
        &self.plan
    }

    /// True if any clause is gated on the lockdown-live signal; the
    /// system only bothers computing the signal when this holds.
    pub fn wants_signal(&self) -> bool {
        self.plan
            .clauses
            .iter()
            .any(|c| matches!(c.effect, ChaosEffect::StallWhileSignal { .. }))
    }

    pub fn set_signal(&mut self, live: bool) {
        self.signal = live;
    }

    /// Checkpoint the engine's mutable state. The plan itself is
    /// config, rebuilt from `SystemConfig` on restore — only the rng
    /// cursor, the signal latch and the audit counters travel.
    pub fn snap(&self, w: &mut crate::snap::SnapWriter) {
        use crate::snap::Snap;
        self.rng.state().snap(w);
        w.bool(self.signal);
        w.u64(self.touched);
        w.u64(self.injected);
    }

    /// Restore state captured by [`ChaosEngine::snap`] into an engine
    /// built from the same plan/seed config.
    pub fn restore(&mut self, r: &mut crate::snap::SnapReader) -> crate::snap::SnapResult<()> {
        use crate::snap::Snap;
        self.rng = SimRng::from_state(<[u64; 4]>::unsnap(r)?);
        self.signal = r.bool()?;
        self.touched = r.u64()?;
        self.injected = r.u64()?;
        Ok(())
    }

    /// Re-seed the rng stream (same salt as construction) and zero the
    /// audit counters — warm-start forking: one warmed snapshot, many
    /// divergent futures, each deterministic in its new seed.
    pub fn reseed(&mut self, seed: u64) {
        self.rng = SimRng::new(seed ^ 0xc4a0_5f1a_11ed_7707);
        self.touched = 0;
        self.injected = 0;
    }

    /// Extra injection delay for a message entering the mesh now.
    ///
    /// Besides the engine's own `touched`/`injected` counters, every
    /// perturbation is recorded into `stats` — the total under
    /// `mesh_chaos_msgs`/`mesh_chaos_cycles` and a per-effect
    /// breakdown under `mesh_chaos_<effect>_msgs` — so chaos runs are
    /// auditable from `BENCH_*.json` and wedge reports, not just via
    /// [`crate::chaos::ChaosEngine`] accessors.
    pub fn delay(&mut self, now: Cycle, src: u16, dst: u16, vnet: u8, stats: &mut Stats) -> u64 {
        let mut extra = 0u64;
        for clause in &self.plan.clauses {
            if !clause.flow.matches(src, dst, vnet) {
                continue;
            }
            let contribution = match clause.effect {
                ChaosEffect::Delay { cycles } => cycles,
                ChaosEffect::Storm {
                    period,
                    burst,
                    min,
                    max,
                } => {
                    if period > 0 && now % period < burst {
                        self.rng.range(min, max)
                    } else {
                        0
                    }
                }
                ChaosEffect::Amplify { num, den, min, max } => {
                    if self.rng.chance(num, den) {
                        self.rng.range(min, max)
                    } else {
                        0
                    }
                }
                ChaosEffect::Starve { hold, release } => {
                    let window = hold + release;
                    let pos = if window > 0 { now % window } else { 0 };
                    // Held until the freeze phase of this window ends.
                    if pos < hold {
                        hold - pos
                    } else {
                        0
                    }
                }
                ChaosEffect::StallWhileSignal { cycles } => {
                    if self.signal {
                        cycles
                    } else {
                        0
                    }
                }
            };
            if contribution > 0 {
                stats.inc(match clause.effect {
                    ChaosEffect::Delay { .. } => "mesh_chaos_delay_msgs",
                    ChaosEffect::Storm { .. } => "mesh_chaos_storm_msgs",
                    ChaosEffect::Amplify { .. } => "mesh_chaos_amplify_msgs",
                    ChaosEffect::Starve { .. } => "mesh_chaos_starve_msgs",
                    ChaosEffect::StallWhileSignal { .. } => "mesh_chaos_lockstall_msgs",
                });
            }
            extra += contribution;
        }
        if extra > 0 {
            self.touched += 1;
            self.injected += extra;
            stats.inc("mesh_chaos_msgs");
            stats.add("mesh_chaos_cycles", extra);
        }
        extra
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_match_filters() {
        let any = FlowMatch::ANY;
        assert!(any.matches(0, 5, 2));
        let v = FlowMatch::vnet(1);
        assert!(v.matches(3, 4, 1));
        assert!(!v.matches(3, 4, 2));
        let t = FlowMatch::touching(7);
        assert!(t.matches(7, 0, 0));
        assert!(t.matches(0, 7, 2));
        assert!(!t.matches(1, 2, 0));
        let fl = FlowMatch::flow(1, 0, 0);
        assert!(fl.matches(1, 0, 0));
        assert!(!fl.matches(0, 1, 0));
    }

    #[test]
    fn engine_is_deterministic() {
        let mk = || ChaosEngine::new(ChaosPlan::reorder_amplify(), 42);
        let mut a = mk();
        let mut b = mk();
        let (mut sa, mut sb) = (Stats::new(), Stats::new());
        for now in 0..2_000u64 {
            let d1 = a.delay(now, (now % 16) as u16, ((now * 7) % 16) as u16, (now % 3) as u8, &mut sa);
            let d2 = b.delay(now, (now % 16) as u16, ((now * 7) % 16) as u16, (now % 3) as u8, &mut sb);
            assert_eq!(d1, d2, "divergence at {now}");
        }
        assert_eq!(a.touched, b.touched);
        assert_eq!(a.injected, b.injected);
        assert_eq!(sa, sb);
        assert!(a.touched > 0, "amplify plan never fired in 2000 messages");
    }

    #[test]
    fn quiet_plan_injects_nothing() {
        let mut e = ChaosEngine::new(ChaosPlan::quiet(), 1);
        let mut s = Stats::new();
        for now in 0..500 {
            assert_eq!(e.delay(now, 0, 1, 0, &mut s), 0);
        }
        assert_eq!(e.touched, 0);
        assert!(s.is_empty(), "quiet plan must leave stats untouched");
    }

    #[test]
    fn starve_is_bounded() {
        let mut e = ChaosEngine::new(ChaosPlan::starve_flow(1, 0, 0), 9);
        let mut s = Stats::new();
        // Mid-freeze: held until the freeze (hold = 800) ends.
        assert_eq!(e.delay(100, 1, 0, 0, &mut s), 700);
        // Open phase: no delay.
        assert_eq!(e.delay(850, 1, 0, 0, &mut s), 0);
        // Other flows untouched even mid-freeze.
        assert_eq!(e.delay(100, 0, 1, 0, &mut s), 0);
        // Bound: delay never exceeds the hold phase.
        for now in 0..5_000 {
            assert!(e.delay(now, 1, 0, 0, &mut s) <= 800);
        }
        assert_eq!(s.get("mesh_chaos_starve_msgs"), s.get("mesh_chaos_msgs"));
    }

    #[test]
    fn stall_gated_on_signal() {
        let mut e = ChaosEngine::new(ChaosPlan::lockdown_vnet_stall(2), 3);
        let mut s = Stats::new();
        assert!(e.wants_signal());
        assert_eq!(e.delay(10, 0, 1, 2, &mut s), 0);
        e.set_signal(true);
        assert_eq!(e.delay(11, 0, 1, 2, &mut s), 300);
        assert_eq!(e.delay(11, 0, 1, 1, &mut s), 0, "other vnets unaffected");
        e.set_signal(false);
        assert_eq!(e.delay(12, 0, 1, 2, &mut s), 0);
        assert_eq!(s.get("mesh_chaos_lockstall_msgs"), 1);
    }

    #[test]
    fn storm_fires_only_in_burst() {
        let mut e = ChaosEngine::new(ChaosPlan::delay_storm(), 5);
        let mut s = Stats::new();
        // Outside the burst window (period 2000, burst 400).
        assert_eq!(e.delay(1_500, 0, 1, 0, &mut s), 0);
        // Inside it.
        let d = e.delay(2_100, 0, 1, 0, &mut s);
        assert!((50..=400).contains(&d), "storm delay {d} out of range");
        assert_eq!(s.get("mesh_chaos_storm_msgs"), 1);
        assert_eq!(s.get("mesh_chaos_msgs"), 1);
        assert_eq!(s.get("mesh_chaos_cycles"), d);
    }

    #[test]
    fn plan_display_is_stable() {
        assert_eq!(
            ChaosPlan::delay_storm().to_string(),
            "delay_storm(*>*/vn*:storm400/2000x50-400)"
        );
        assert_eq!(
            ChaosPlan::lockdown_vnet_stall(2).to_string(),
            "lockdown_vnet_stall(*>*/vn2:lockstall300)"
        );
        assert_eq!(
            ChaosPlan::starve_flow(1, 0, 0).to_string(),
            "starve_flow(1>0/vn0:starve800+200)"
        );
        assert_eq!(ChaosPlan::quiet().to_string(), "quiet()");
        assert_eq!(ChaosPlan::matrix().len(), 11);
    }
}
