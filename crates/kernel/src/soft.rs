//! Soft-error injection into *stored* protocol state.
//!
//! PR 4's fault layer attacks frames on the wire; this module attacks
//! the bytes at rest that every protocol action trusts: cache line
//! state/tags, directory entry state, sharer-set words and MSHR
//! bookkeeping fields. A [`SoftPlan`] is a set of (target, mean-gap)
//! clauses evaluated by a [`SoftEngine`] **between ticks** (the system
//! applies due flips at the top of `System::tick`), so a plan that
//! never fires leaves runs byte-identical.
//!
//! Detection is a parity/ECC model: protected structures carry a
//! [`guard_hash`] over their protected words, refreshed on every
//! legitimate write. A flip leaves the guard stale and is caught at the
//! next access; detected state is poisoned, requesters are refused, and
//! the owner of the structure recovers (caches re-fetch from the home,
//! directory banks rebuild the sharer set by probing every core).
//!
//! Determinism: the engine's only randomness is a [`SimRng`] stream
//! distinct from the mesh jitter, chaos and fault streams. The firing
//! *schedule* is a pure function of (seed, plan) — it never consults
//! machine state — so Dense, Skip and SkipVerify engines flip the same
//! bits on the same cycles. Victim selection draws from the same stream
//! at fire time, when all engines agree on machine state. A plan is
//! pure data and appears verbatim in wedge-report reproducer lines, so
//! its `Display` must stay stable.

use crate::rng::SimRng;
use crate::Cycle;
use std::fmt;

/// Which stored structure a clause flips bits in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SoftTarget {
    /// A private-cache L2 line's coherence state (scrambled to another
    /// stable state).
    CacheState,
    /// A private-cache L2 line's stored tag word (one bit flipped).
    CacheTag,
    /// A directory entry's stable state (scrambled to another stable
    /// state).
    DirState,
    /// One bit of a Shared directory entry's sharer set.
    Sharers,
    /// One bit of an outstanding MSHR's ack/flag bookkeeping.
    Mshr,
}

impl SoftTarget {
    /// Static name, used in plan rendering and per-target counters.
    pub fn label(self) -> &'static str {
        match self {
            SoftTarget::CacheState => "cstate",
            SoftTarget::CacheTag => "ctag",
            SoftTarget::DirState => "dstate",
            SoftTarget::Sharers => "sharers",
            SoftTarget::Mshr => "mshr",
        }
    }
}

impl fmt::Display for SoftTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One target × rate pair: a flip lands on `target` on average every
/// `mean_gap` cycles (each gap drawn uniformly from `1..=2*mean_gap`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SoftClause {
    pub target: SoftTarget,
    pub mean_gap: u64,
}

impl fmt::Display for SoftClause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}~{}", self.target, self.mean_gap)
    }
}

/// A named, reproducible soft-error schedule. Appears verbatim in
/// reproducer lines, so `Display` must stay stable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoftPlan {
    pub name: &'static str,
    pub clauses: Vec<SoftClause>,
}

impl fmt::Display for SoftPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, c) in self.clauses.iter().enumerate() {
            if i > 0 {
                write!(f, ";")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

impl SoftPlan {
    /// A single-clause plan — the building block for custom scenarios.
    pub fn one(name: &'static str, target: SoftTarget, mean_gap: u64) -> Self {
        SoftPlan { name, clauses: vec![SoftClause { target, mean_gap }] }
    }

    /// Control row: guards are maintained and checked but no flip ever
    /// lands. Runs must be byte-identical to `cfg.soft = None`.
    pub fn none() -> Self {
        SoftPlan { name: "soft_none", clauses: Vec::new() }
    }

    /// Frequent cache-state scrambles.
    pub fn cache_state_storm() -> Self {
        SoftPlan::one("cache_state_storm", SoftTarget::CacheState, 2_000)
    }

    /// Stored-tag bit flips in the private caches.
    pub fn tag_flips() -> Self {
        SoftPlan::one("tag_flips", SoftTarget::CacheTag, 3_000)
    }

    /// Frequent directory-state scrambles.
    pub fn dir_state_storm() -> Self {
        SoftPlan::one("dir_state_storm", SoftTarget::DirState, 2_000)
    }

    /// Sharer-set bit flips: the forgotten-sharer / phantom-sharer model.
    pub fn sharer_bits() -> Self {
        SoftPlan::one("sharer_bits", SoftTarget::Sharers, 2_000)
    }

    /// MSHR ack/flag bookkeeping flips.
    pub fn mshr_fields() -> Self {
        SoftPlan::one("mshr_fields", SoftTarget::Mshr, 1_500)
    }

    /// Every structure at a low background rate — the cosmic-ray soak.
    pub fn background_radiation() -> Self {
        SoftPlan {
            name: "background_radiation",
            clauses: vec![
                SoftClause { target: SoftTarget::CacheState, mean_gap: 8_000 },
                SoftClause { target: SoftTarget::CacheTag, mean_gap: 8_000 },
                SoftClause { target: SoftTarget::DirState, mean_gap: 8_000 },
                SoftClause { target: SoftTarget::Sharers, mean_gap: 8_000 },
                SoftClause { target: SoftTarget::Mshr, mean_gap: 8_000 },
            ],
        }
    }

    /// Both coherence books corrupted at once: cache state and
    /// directory state flipping on overlapping windows.
    pub fn double_entry() -> Self {
        SoftPlan {
            name: "double_entry",
            clauses: vec![
                SoftClause { target: SoftTarget::CacheState, mean_gap: 4_000 },
                SoftClause { target: SoftTarget::DirState, mean_gap: 4_000 },
            ],
        }
    }

    /// The standard torture matrix (the issue asks for ≥ 6 flipping
    /// plans beside the `none` control).
    pub fn matrix() -> Vec<SoftPlan> {
        vec![
            SoftPlan::none(),
            SoftPlan::cache_state_storm(),
            SoftPlan::tag_flips(),
            SoftPlan::dir_state_storm(),
            SoftPlan::sharer_bits(),
            SoftPlan::mshr_fields(),
            SoftPlan::background_radiation(),
            SoftPlan::double_entry(),
        ]
    }

    /// The same schedule with every rate accelerated `div`-fold (mean
    /// gaps divided, floored at 1 cycle). The matrix rates are tuned
    /// for long soaks; short torture runs accelerate them so every
    /// plan still lands strikes. The clause rates print in `Display`,
    /// so reproducer lines stay faithful.
    #[must_use]
    pub fn accelerated(mut self, div: u64) -> Self {
        assert!(div > 0, "soft plan {}: zero acceleration divisor", self.name);
        for c in &mut self.clauses {
            c.mean_gap = (c.mean_gap / div).max(1);
        }
        self
    }

    /// True when no clause can ever fire.
    pub fn is_none(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Panics if any clause carries a malformed rate.
    ///
    /// # Panics
    ///
    /// A zero mean gap (the schedule would fire every cycle forever).
    pub fn validate(&self) {
        for c in &self.clauses {
            assert!(c.mean_gap > 0, "soft plan {}: zero mean gap in {c}", self.name);
        }
    }
}

/// Deterministic guard hash over a structure's protected words — the
/// in-tree parity/ECC code. 64 output bits make accidental collisions
/// (a flip that leaves the guard valid) vanishingly unlikely, and let
/// the cache side *decode* the true pre-flip state by re-hashing each
/// candidate value against the stored guard.
pub fn guard_hash(words: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &w in words {
        h ^= w;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
        h ^= h >> 29;
        h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h ^= h >> 32;
    }
    h
}

/// Evaluates a [`SoftPlan`]: one independent renewal schedule per
/// clause. Owned by the system; flips are applied between ticks.
#[derive(Debug, Clone)]
pub struct SoftEngine {
    plan: SoftPlan,
    rng: SimRng,
    /// Next fire cycle of each clause (parallel to `plan.clauses`).
    next_at: Vec<Cycle>,
    /// Flips that landed on an eligible victim.
    pub injected: u64,
    /// Fires that found no eligible victim (structure empty or already
    /// wounded) and were skipped.
    pub missed: u64,
}

/// Salt keeping the soft stream distinct from the mesh jitter, chaos
/// and link-fault streams.
const SOFT_SALT: u64 = 0x50f7_e44a_12b1_7f1e;

impl SoftEngine {
    pub fn new(plan: SoftPlan, seed: u64) -> Self {
        plan.validate();
        let mut rng = SimRng::new(seed ^ SOFT_SALT);
        let next_at = plan.clauses.iter().map(|c| 1 + rng.below(2 * c.mean_gap)).collect();
        SoftEngine { plan, rng, next_at, injected: 0, missed: 0 }
    }

    pub fn plan(&self) -> &SoftPlan {
        &self.plan
    }

    /// The earliest cycle at which any clause fires — the system merges
    /// this into its `quiescent_until` so cycle skipping never jumps
    /// over a flip.
    pub fn next_fire(&self) -> Option<Cycle> {
        self.next_at.iter().copied().min()
    }

    /// Collect every clause due at `now` and reschedule each. The
    /// returned targets are applied by the caller (which owns the
    /// structures); call [`SoftEngine::note_applied`] /
    /// [`SoftEngine::note_missed`] per target with the outcome.
    pub fn fire(&mut self, now: Cycle) -> Vec<SoftTarget> {
        let mut due = Vec::new();
        for (i, c) in self.plan.clauses.iter().enumerate() {
            if self.next_at[i] <= now {
                due.push(c.target);
                self.next_at[i] = now + 1 + self.rng.below(2 * c.mean_gap);
            }
        }
        due
    }

    /// The victim-selection stream: drawn at fire time, after the
    /// schedule draws, so it stays a pure function of the fire sequence.
    pub fn rng_mut(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// A due flip landed on an eligible victim.
    pub fn note_applied(&mut self) {
        self.injected += 1;
    }

    /// A due flip found no eligible victim and was skipped.
    pub fn note_missed(&mut self) {
        self.missed += 1;
    }

    /// Checkpoint the engine's mutable state (the plan is config,
    /// rebuilt on restore): rng cursor, per-clause schedule, counters.
    pub fn snap(&self, w: &mut crate::snap::SnapWriter) {
        use crate::snap::Snap;
        self.rng.state().snap(w);
        self.next_at.snap(w);
        w.u64(self.injected);
        w.u64(self.missed);
    }

    /// Restore state captured by [`SoftEngine::snap`] into an engine
    /// built from the same plan/seed config.
    pub fn restore(&mut self, r: &mut crate::snap::SnapReader) -> crate::snap::SnapResult<()> {
        use crate::snap::Snap;
        self.rng = SimRng::from_state(<[u64; 4]>::unsnap(r)?);
        self.next_at = Vec::unsnap(r)?;
        self.injected = r.u64()?;
        self.missed = r.u64()?;
        Ok(())
    }

    /// Re-seed the stream (same salt as construction), re-roll the
    /// schedule from `now`, and zero the counters — warm-start forking.
    pub fn reseed(&mut self, seed: u64, now: Cycle) {
        self.rng = SimRng::new(seed ^ SOFT_SALT);
        let rng = &mut self.rng;
        self.next_at =
            self.plan.clauses.iter().map(|c| now + 1 + rng.below(2 * c.mean_gap)).collect();
        self.injected = 0;
        self.missed = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_never_fires() {
        let mut e = SoftEngine::new(SoftPlan::none(), 7);
        assert_eq!(e.next_fire(), None);
        for now in 0..10_000 {
            assert!(e.fire(now).is_empty());
        }
        assert_eq!((e.injected, e.missed), (0, 0));
    }

    #[test]
    fn engine_is_deterministic() {
        let run = || {
            let mut e = SoftEngine::new(SoftPlan::background_radiation(), 42);
            let mut fires = Vec::new();
            let mut now = 0;
            while now < 200_000 {
                let at = e.next_fire().expect("plan has clauses");
                now = at;
                for t in e.fire(now) {
                    fires.push((now, t, e.rng_mut().next_u64()));
                }
            }
            fires
        };
        let (a, b) = (run(), run());
        assert_eq!(a, b);
        assert!(a.len() > 50, "background radiation barely fired: {}", a.len());
    }

    #[test]
    fn schedule_is_engine_independent() {
        // A dense scan (fire probed at every cycle) and a skip scan
        // (jump straight to next_fire) must see the same schedule.
        let dense = {
            let mut e = SoftEngine::new(SoftPlan::double_entry(), 9);
            let mut fires = Vec::new();
            for now in 0..100_000 {
                for t in e.fire(now) {
                    fires.push((now, t));
                }
            }
            fires
        };
        let skip = {
            let mut e = SoftEngine::new(SoftPlan::double_entry(), 9);
            let mut fires = Vec::new();
            while let Some(at) = e.next_fire() {
                if at >= 100_000 {
                    break;
                }
                for t in e.fire(at) {
                    fires.push((at, t));
                }
            }
            fires
        };
        assert_eq!(dense, skip);
    }

    #[test]
    fn mean_gap_is_roughly_respected() {
        let mut e = SoftEngine::new(SoftPlan::one("t", SoftTarget::Sharers, 1_000), 3);
        let mut count = 0u64;
        for now in 0..1_000_000u64 {
            count += e.fire(now).len() as u64;
        }
        // Renewal with mean ~1000.5: expect ~999 fires; allow wide slack.
        assert!((600..1600).contains(&count), "fires={count}");
    }

    #[test]
    fn guard_hash_is_stable_and_sensitive() {
        let g = guard_hash(&[0x40, 2]);
        assert_eq!(g, guard_hash(&[0x40, 2]), "pure function");
        assert_ne!(g, guard_hash(&[0x41, 2]), "tag bit visible");
        assert_ne!(g, guard_hash(&[0x40, 3]), "state bit visible");
        assert_ne!(guard_hash(&[]), guard_hash(&[0]));
        // Every single-bit corruption of a word is visible.
        for bit in 0..64 {
            assert_ne!(g, guard_hash(&[0x40 ^ (1u64 << bit), 2]), "bit {bit}");
        }
    }

    #[test]
    #[should_panic(expected = "zero mean gap")]
    fn validate_rejects_zero_gap() {
        SoftPlan::one("bad", SoftTarget::Mshr, 0).validate();
    }

    #[test]
    fn plan_display_is_stable() {
        assert_eq!(SoftPlan::none().to_string(), "soft_none()");
        assert_eq!(SoftPlan::cache_state_storm().to_string(), "cache_state_storm(cstate~2000)");
        assert_eq!(SoftPlan::sharer_bits().to_string(), "sharer_bits(sharers~2000)");
        assert_eq!(SoftPlan::double_entry().to_string(), "double_entry(cstate~4000;dstate~4000)");
        assert_eq!(
            SoftPlan::background_radiation().to_string(),
            "background_radiation(cstate~8000;ctag~8000;dstate~8000;sharers~8000;mshr~8000)"
        );
        assert_eq!(SoftPlan::matrix().len(), 8);
        assert!(SoftPlan::matrix().iter().filter(|p| !p.is_none()).count() >= 6);
    }

    #[test]
    fn reseed_restarts_the_schedule() {
        let mut e = SoftEngine::new(SoftPlan::mshr_fields(), 5);
        let first = e.next_fire();
        while e.next_fire().is_some_and(|c| c < 50_000) {
            let at = e.next_fire().expect("checked");
            e.fire(at);
        }
        e.reseed(5, 0);
        assert_eq!(e.next_fire(), first, "same seed, same schedule");
        assert_eq!((e.injected, e.missed), (0, 0));
    }
}
