//! Typed reports from the online coherence invariant auditor.
//!
//! `System::run_audit` (crate `writersblock`) walks the live machine —
//! every private cache, every directory bank, the mesh and its reliable
//! sublayer — and checks the global invariants the protocol is supposed
//! to maintain: SWMR (at most one writer per line), directory–cache
//! agreement, MSHR/eviction-buffer leak bounds, and ARQ window sanity.
//! This module holds the *vocabulary*: a violation is typed so wedge
//! diagnosis and the campaign fuzzer can use the auditor as a
//! corruption oracle and dedup failures by kind, not by prose.

use std::fmt;

/// What invariant a violation breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AuditKind {
    /// More than one cache holds a line in an exclusive (writable) state.
    MultipleWriters,
    /// A quiet line's directory entry disagrees with the caches: a
    /// resident copy outside the sharer set, a dirty copy the home does
    /// not know about, or copies of a line the home thinks is uncached.
    DirCacheDisagree,
    /// An MSHR survived past the point it must have drained (end of
    /// run), or a file reports more entries than its capacity.
    MshrLeak,
    /// A cache or directory eviction buffer leaked an entry past its
    /// bound or past the end of the run.
    EvictBufLeak,
    /// The reliable-delivery sublayer's window/RTO bookkeeping is out of
    /// range (sequence gap beyond the window, timer in the past forever).
    ArqWindow,
    /// A guard mismatch the soft-error layer never detected in-band —
    /// found only by the audit scrub. Counted as repaired, but reported
    /// on the final audit when it should have been caught earlier.
    UnrepairedWound,
}

impl AuditKind {
    /// Stable label used in report text and campaign signatures.
    pub fn label(self) -> &'static str {
        match self {
            AuditKind::MultipleWriters => "multiple-writers",
            AuditKind::DirCacheDisagree => "dir-cache-disagree",
            AuditKind::MshrLeak => "mshr-leak",
            AuditKind::EvictBufLeak => "evict-buf-leak",
            AuditKind::ArqWindow => "arq-window",
            AuditKind::UnrepairedWound => "unrepaired-wound",
        }
    }
}

impl fmt::Display for AuditKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One invariant violation, with enough detail to chase it by hand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditViolation {
    pub kind: AuditKind,
    /// Free-form location/evidence ("line 0x40: dirty at n3, home says
    /// Shared{n1}"). Positions are normalised out by wedge signatures.
    pub detail: String,
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.kind, self.detail)
    }
}

/// The outcome of one auditor pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditReport {
    /// Cycle the audit ran at.
    pub at_cycle: u64,
    /// True for the end-of-run pass, which additionally requires every
    /// transient structure (MSHRs, eviction buffers, queues) to be empty.
    pub final_run: bool,
    /// Individual invariant checks evaluated (lines × invariants).
    pub checks: u64,
    /// Soft-error wounds found and repaired by the scrub phase. Repairs
    /// are not violations — they are the recovery path doing its job.
    pub scrub_repairs: u64,
    pub violations: Vec<AuditViolation>,
}

impl AuditReport {
    /// True when no invariant was violated (scrub repairs allowed).
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Panic with the full report unless clean — the assertion form the
    /// tier-1 suites use.
    ///
    /// # Panics
    ///
    /// When any violation was recorded.
    pub fn assert_clean(&self, context: &str) {
        assert!(self.clean(), "audit failed ({context}):\n{self}");
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "audit @{}: {} checks, {} scrub repairs, {} violations{}",
            self.at_cycle,
            self.checks,
            self.scrub_repairs,
            self.violations.len(),
            if self.final_run { " (final)" } else { "" },
        )?;
        for v in &self.violations {
            write!(f, "\n  {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_report_formats_one_line() {
        let r = AuditReport {
            at_cycle: 1000,
            final_run: true,
            checks: 42,
            scrub_repairs: 2,
            violations: Vec::new(),
        };
        assert!(r.clean());
        r.assert_clean("test");
        assert_eq!(r.to_string(), "audit @1000: 42 checks, 2 scrub repairs, 0 violations (final)");
    }

    #[test]
    fn violations_render_with_kind() {
        let r = AuditReport {
            at_cycle: 7,
            final_run: false,
            checks: 1,
            scrub_repairs: 0,
            violations: vec![AuditViolation {
                kind: AuditKind::MultipleWriters,
                detail: "line 0x40 exclusive at n1 and n2".into(),
            }],
        };
        assert!(!r.clean());
        assert!(r.to_string().contains("[multiple-writers] line 0x40"));
    }

    #[test]
    #[should_panic(expected = "audit failed")]
    fn assert_clean_panics_with_context() {
        let r = AuditReport {
            at_cycle: 0,
            final_run: false,
            checks: 0,
            scrub_repairs: 0,
            violations: vec![AuditViolation { kind: AuditKind::ArqWindow, detail: "x".into() }],
        };
        r.assert_clean("ctx");
    }

    #[test]
    fn kind_labels_are_stable() {
        assert_eq!(AuditKind::DirCacheDisagree.label(), "dir-cache-disagree");
        assert_eq!(AuditKind::MshrLeak.to_string(), "mshr-leak");
        assert_eq!(AuditKind::UnrepairedWound.label(), "unrepaired-wound");
    }
}
