//! TSO correctness machinery.
//!
//! The paper *argues* that lockdowns + WritersBlock preserve TSO; this
//! crate lets the simulator *verify* it mechanically on every run:
//!
//! - [`events`]: the memory-event log emitted by the core model — load
//!   binds, store performs, atomic read-modify-writes;
//! - [`checker`]: an axiomatic x86-TSO checker over a log with unique
//!   store values (uniproc / coherence, TSO global-happens-before
//!   acyclicity with the store→load order relaxed, RMW atomicity);
//! - [`oracle`]: an *operational* TSO reference (cores + FIFO store
//!   buffers + memory) that exhaustively enumerates all TSO-legal
//!   outcomes of small programs — used to generate Table 2 and to check
//!   that simulated litmus outcomes are TSO-legal;
//! - [`litmus`]: the litmus tests of the paper (Table 1 message passing,
//!   Table 3 transitivity) plus the classics (SB, LB, IRIW, CoRR).

pub mod checker;
pub mod events;
pub mod interleavings;
pub mod litmus;
pub mod oracle;

pub use checker::{CheckError, TsoChecker};
pub use events::{ExecutionLog, MemEvent, MemOp};
pub use litmus::LitmusTest;
pub use oracle::TsoOracle;
