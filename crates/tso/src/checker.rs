//! Axiomatic x86-TSO checker.
//!
//! Follows the axiomatic formulation of x86-TSO (Sewell et al., CACM
//! 2010; Sorin/Hill/Wood primer): an execution is TSO-consistent iff
//!
//! 1. **uniproc / coherence**: for every location, `po-loc ∪ rf ∪ co ∪ fr`
//!    is acyclic;
//! 2. **tso-ghb**: `ppo ∪ rfe ∪ co ∪ fr` is acyclic, where `ppo` is
//!    program order minus write→read pairs (the store→load relaxation
//!    that store buffers introduce), except that atomic RMWs order
//!    everything around them;
//! 3. **atomicity**: an RMW reads from the write immediately preceding
//!    its own write in coherence order.
//!
//! The coherence order `co` is recovered from the simulator directly:
//! writes to a location are serialized by the single-writer protocol, so
//! their perform cycles order them. The reads-from relation `rf` is
//! recovered by value matching, which requires *unique written values per
//! location* — the litmus and torture generators guarantee this.

use crate::events::{ExecutionLog, MemEvent, MemOp};
use std::collections::HashMap;
use wb_mem::Addr;

/// Why a log failed the TSO check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckError {
    /// A read observed a value never written to its location (coherence
    /// is broken, or store values were not unique).
    ValueNotFound { core: usize, seq: u64, addr: Addr, value: u64 },
    /// Two writes to one location wrote the same value; `rf` cannot be
    /// recovered.
    AmbiguousValue { addr: Addr, value: u64 },
    /// Two writes to one location performed at the same cycle on
    /// different cores — impossible under a single-writer protocol.
    CoherenceTie { addr: Addr },
    /// A cycle in `po-loc ∪ rf ∪ co ∪ fr` for one location.
    UniprocViolation { addr: Addr },
    /// A cycle in `ppo ∪ rfe ∪ co ∪ fr`: the execution is not TSO.
    TsoViolation,
    /// An RMW did not read the coherence-latest value before its write.
    AtomicityViolation { core: usize, seq: u64, addr: Addr },
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckError::ValueNotFound { core, seq, addr, value } => {
                write!(f, "core {core} seq {seq} read {value:#x} from {addr}, never written")
            }
            CheckError::AmbiguousValue { addr, value } => {
                write!(f, "value {value:#x} written more than once to {addr}; rf is ambiguous")
            }
            CheckError::CoherenceTie { addr } => write!(f, "two writes to {addr} performed at the same cycle"),
            CheckError::UniprocViolation { addr } => write!(f, "per-location coherence cycle at {addr}"),
            CheckError::TsoViolation => write!(f, "cycle in ppo ∪ rfe ∪ co ∪ fr: execution violates TSO"),
            CheckError::AtomicityViolation { core, seq, addr } => {
                write!(f, "RMW at core {core} seq {seq} on {addr} was not atomic")
            }
        }
    }
}

impl std::error::Error for CheckError {}

/// The source a read obtained its value from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReadFrom {
    /// The initial memory value.
    Init,
    /// The event at this index in the checker's event array.
    Write(usize),
}

/// The checker. Construct with [`TsoChecker::new`], then call
/// [`TsoChecker::check`].
///
/// # Example
///
/// ```
/// use wb_tso::{ExecutionLog, MemEvent, MemOp, TsoChecker};
/// use wb_mem::Addr;
///
/// let mut log = ExecutionLog::new();
/// log.push(MemEvent { core: 0, seq: 0, addr: Addr::new(0x40),
///                     op: MemOp::Store { value: 1, performed_at: 5 } });
/// log.push(MemEvent { core: 1, seq: 0, addr: Addr::new(0x40),
///                     op: MemOp::Load { value: 1 } });
/// assert!(TsoChecker::new(&log).check().is_ok());
/// ```
pub struct TsoChecker<'a> {
    log: &'a ExecutionLog,
    events: Vec<&'a MemEvent>,
}

impl<'a> TsoChecker<'a> {
    /// Wrap a log for checking.
    pub fn new(log: &'a ExecutionLog) -> Self {
        let mut events: Vec<&MemEvent> = log.events().iter().collect();
        // Canonical order: by core then seq (program order per core).
        events.sort_by_key(|e| (e.core, e.seq));
        TsoChecker { log, events }
    }

    /// Run all three axioms. `Ok(())` means the execution is TSO.
    ///
    /// # Errors
    ///
    /// Returns the first [`CheckError`] found; see its variants.
    pub fn check(&self) -> Result<(), CheckError> {
        let co = self.coherence_orders()?;
        let rf = self.reads_from(&co)?;
        self.check_atomicity(&co, &rf)?;
        self.check_uniproc(&co, &rf)?;
        self.check_tso(&co, &rf)
    }

    /// Per-location coherence order: event indices of writes, ordered.
    fn coherence_orders(&self) -> Result<HashMap<Addr, Vec<usize>>, CheckError> {
        let mut co: HashMap<Addr, Vec<usize>> = HashMap::new();
        for (i, e) in self.events.iter().enumerate() {
            if e.op.is_write() {
                co.entry(e.addr).or_default().push(i);
            }
        }
        for (addr, ws) in co.iter_mut() {
            ws.sort_by_key(|&i| {
                let e = self.events[i];
                (e.op.performed_at().expect("write has perform cycle"), e.core, e.seq)
            });
            // Different-core ties are a protocol impossibility.
            for w in ws.windows(2) {
                let (a, b) = (self.events[w[0]], self.events[w[1]]);
                if a.op.performed_at() == b.op.performed_at() && a.core != b.core {
                    return Err(CheckError::CoherenceTie { addr: *addr });
                }
            }
        }
        Ok(co)
    }

    /// For each reading event, which write produced its value.
    fn reads_from(&self, co: &HashMap<Addr, Vec<usize>>) -> Result<HashMap<usize, ReadFrom>, CheckError> {
        // value -> writer index, per address; detect duplicates.
        let mut by_value: HashMap<(Addr, u64), Vec<usize>> = HashMap::new();
        for (addr, ws) in co {
            for &w in ws {
                let v = self.events[w].op.written().expect("write");
                by_value.entry((*addr, v)).or_default().push(w);
            }
        }
        let mut rf = HashMap::new();
        for (i, e) in self.events.iter().enumerate() {
            let Some(v) = e.op.read() else { continue };
            match by_value.get(&(e.addr, v)) {
                Some(ws) if ws.len() == 1 => {
                    rf.insert(i, ReadFrom::Write(ws[0]));
                }
                Some(ws) if ws.len() > 1 => {
                    return Err(CheckError::AmbiguousValue { addr: e.addr, value: v });
                }
                _ => {
                    if v == self.log.init_value(e.addr) {
                        rf.insert(i, ReadFrom::Init);
                    } else {
                        return Err(CheckError::ValueNotFound {
                            core: e.core,
                            seq: e.seq,
                            addr: e.addr,
                            value: v,
                        });
                    }
                }
            }
        }
        Ok(rf)
    }

    /// from-read edges: read -> every write coherence-after its source.
    fn fr_targets(&self, co: &HashMap<Addr, Vec<usize>>, addr: Addr, src: ReadFrom) -> Vec<usize> {
        let Some(ws) = co.get(&addr) else { return Vec::new() };
        match src {
            ReadFrom::Init => ws.clone(),
            ReadFrom::Write(w) => {
                let pos = ws.iter().position(|&x| x == w).expect("write in co");
                ws[pos + 1..].to_vec()
            }
        }
    }

    fn check_atomicity(
        &self,
        co: &HashMap<Addr, Vec<usize>>,
        rf: &HashMap<usize, ReadFrom>,
    ) -> Result<(), CheckError> {
        for (i, e) in self.events.iter().enumerate() {
            if !matches!(e.op, MemOp::Rmw { .. }) {
                continue;
            }
            let ws = &co[&e.addr];
            let my_pos = ws.iter().position(|&x| x == i).expect("rmw is a write");
            let expected = if my_pos == 0 { ReadFrom::Init } else { ReadFrom::Write(ws[my_pos - 1]) };
            if rf.get(&i) != Some(&expected) {
                return Err(CheckError::AtomicityViolation { core: e.core, seq: e.seq, addr: e.addr });
            }
        }
        Ok(())
    }

    /// Generic cycle check over an edge list (Kahn's algorithm).
    fn acyclic(n: usize, edges: &[(usize, usize)]) -> bool {
        let mut indeg = vec![0usize; n];
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(a, b) in edges {
            adj[a].push(b);
            indeg[b] += 1;
        }
        let mut stack: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut seen = 0;
        while let Some(x) = stack.pop() {
            seen += 1;
            for &y in &adj[x] {
                indeg[y] -= 1;
                if indeg[y] == 0 {
                    stack.push(y);
                }
            }
        }
        seen == n
    }

    fn check_uniproc(
        &self,
        co: &HashMap<Addr, Vec<usize>>,
        rf: &HashMap<usize, ReadFrom>,
    ) -> Result<(), CheckError> {
        // Group events per address; po-loc ∪ rf ∪ co ∪ fr must be acyclic.
        let mut by_addr: HashMap<Addr, Vec<usize>> = HashMap::new();
        for (i, e) in self.events.iter().enumerate() {
            by_addr.entry(e.addr).or_default().push(i);
        }
        for (addr, idxs) in &by_addr {
            let mut edges: Vec<(usize, usize)> = Vec::new();
            // po-loc: consecutive same-core accesses to this address.
            let mut last_of_core: HashMap<usize, usize> = HashMap::new();
            for &i in idxs {
                let e = self.events[i];
                if let Some(&prev) = last_of_core.get(&e.core) {
                    edges.push((prev, i));
                }
                last_of_core.insert(e.core, i);
            }
            if let Some(ws) = co.get(addr) {
                for w in ws.windows(2) {
                    edges.push((w[0], w[1]));
                }
            }
            for &i in idxs {
                if let Some(&src) = rf.get(&i) {
                    if let ReadFrom::Write(w) = src {
                        if w != i {
                            edges.push((w, i));
                        }
                    }
                    for t in self.fr_targets(co, *addr, src) {
                        if t != i {
                            edges.push((i, t));
                        }
                    }
                }
            }
            if !Self::acyclic(self.events.len(), &edges) {
                return Err(CheckError::UniprocViolation { addr: *addr });
            }
        }
        Ok(())
    }

    /// Build the ppo edges (program order minus plain-store -> plain-load,
    /// with RMWs fencing both ways) as an O(n) chain encoding whose
    /// reachability equals the pairwise relation:
    ///
    /// - a *read* (or RMW) points to its immediate po successor and to
    ///   the next read — from a read, everything later is reachable;
    /// - a *write* (or RMW) points to the next write — from a plain
    ///   write, only later writes (and through them RMWs/their read
    ///   sides) are reachable, never a plain load directly.
    fn ppo_edges(&self) -> Vec<(usize, usize)> {
        let mut edges = Vec::new();
        let mut per_core: HashMap<usize, Vec<usize>> = HashMap::new();
        for (i, e) in self.events.iter().enumerate() {
            per_core.entry(e.core).or_default().push(i);
        }
        for idxs in per_core.values() {
            let k = idxs.len();
            // Backward passes: next read / next write after each position.
            let mut next_read = vec![None; k];
            let mut next_write = vec![None; k];
            let (mut nr, mut nw) = (None, None);
            for pos in (0..k).rev() {
                next_read[pos] = nr;
                next_write[pos] = nw;
                let e = self.events[idxs[pos]];
                if e.op.is_read() {
                    nr = Some(idxs[pos]);
                }
                if e.op.is_write() {
                    nw = Some(idxs[pos]);
                }
            }
            for (pos, &i) in idxs.iter().enumerate() {
                let e = self.events[i];
                if e.op.is_read() {
                    if let Some(&n) = idxs.get(pos + 1) {
                        edges.push((i, n));
                    }
                    if let Some(nr) = next_read[pos] {
                        if Some(nr) != idxs.get(pos + 1).copied() {
                            edges.push((i, nr));
                        }
                    }
                }
                if e.op.is_write() {
                    if let Some(nw) = next_write[pos] {
                        edges.push((i, nw));
                    }
                }
            }
        }
        edges
    }

    fn check_tso(
        &self,
        co: &HashMap<Addr, Vec<usize>>,
        rf: &HashMap<usize, ReadFrom>,
    ) -> Result<(), CheckError> {
        let n = self.events.len();
        let mut edges: Vec<(usize, usize)> = self.ppo_edges();
        // rfe (external reads-from only), co, fr.
        for (addr, ws) in co {
            for w in ws.windows(2) {
                edges.push((w[0], w[1]));
            }
            let _ = addr;
        }
        for (i, e) in self.events.iter().enumerate() {
            if let Some(&src) = rf.get(&i) {
                if let ReadFrom::Write(w) = src {
                    if self.events[w].core != e.core {
                        edges.push((w, i));
                    }
                }
                for t in self.fr_targets(co, e.addr, src) {
                    if t != i {
                        edges.push((i, t));
                    }
                }
            }
        }
        if Self::acyclic(n, &edges) {
            Ok(())
        } else {
            Err(CheckError::TsoViolation)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ld(core: usize, seq: u64, addr: u64, value: u64) -> MemEvent {
        MemEvent { core, seq, addr: Addr::new(addr), op: MemOp::Load { value } }
    }
    fn st(core: usize, seq: u64, addr: u64, value: u64, at: u64) -> MemEvent {
        MemEvent { core, seq, addr: Addr::new(addr), op: MemOp::Store { value, performed_at: at } }
    }

    const X: u64 = 0x100;
    const Y: u64 = 0x200;

    fn check(events: Vec<MemEvent>) -> Result<(), CheckError> {
        let mut log = ExecutionLog::new();
        for e in events {
            log.push(e);
        }
        TsoChecker::new(&log).check()
    }

    #[test]
    fn empty_log_is_fine() {
        assert!(check(vec![]).is_ok());
    }

    #[test]
    fn mp_legal_outcomes_pass() {
        // Writer: st x=1; st y=1. Reader: ld y; ld x.
        // {y=1, x=1} is legal.
        assert!(check(vec![
            st(1, 0, X, 1, 10),
            st(1, 1, Y, 1, 20),
            ld(0, 0, Y, 1),
            ld(0, 1, X, 1),
        ])
        .is_ok());
        // {y=0, x=0} and {y=0, x=1} are legal too.
        assert!(check(vec![st(1, 0, X, 1, 10), st(1, 1, Y, 1, 20), ld(0, 0, Y, 0), ld(0, 1, X, 0)]).is_ok());
        assert!(check(vec![st(1, 0, X, 1, 10), st(1, 1, Y, 1, 20), ld(0, 0, Y, 0), ld(0, 1, X, 1)]).is_ok());
    }

    #[test]
    fn mp_illegal_outcome_fails() {
        // Table 1 of the paper: ld y sees the new value but ld x sees the
        // old one — forbidden in TSO.
        let err = check(vec![
            st(1, 0, X, 1, 10),
            st(1, 1, Y, 1, 20),
            ld(0, 0, Y, 1),
            ld(0, 1, X, 0),
        ])
        .unwrap_err();
        assert_eq!(err, CheckError::TsoViolation);
    }

    #[test]
    fn store_buffering_outcome_allowed_in_tso() {
        // SB: core0: st x=1; ld y. core1: st y=1; ld x.
        // Both loads reading 0 is the classic TSO-allowed outcome (needs
        // the W->R relaxation; an SC checker would reject it).
        assert!(check(vec![
            st(0, 0, X, 1, 10),
            ld(0, 1, Y, 0),
            st(1, 0, Y, 1, 11),
            ld(1, 1, X, 0),
        ])
        .is_ok());
    }

    #[test]
    fn load_buffering_outcome_forbidden() {
        // LB: core0: ld x(=1); st y=1. core1: ld y(=1); st x=1.
        // Both loads observing the other's store is forbidden in TSO
        // (R->W is ordered).
        let err = check(vec![
            ld(0, 0, X, 1),
            st(0, 1, Y, 1, 10),
            ld(1, 0, Y, 1),
            st(1, 1, X, 1, 11),
        ])
        .unwrap_err();
        assert_eq!(err, CheckError::TsoViolation);
    }

    #[test]
    fn read_own_store_early_is_legal() {
        // Core 0 forwards its own store before it is globally visible,
        // while core 1's later store wins coherence order.
        assert!(check(vec![
            st(0, 0, X, 1, 100),
            ld(0, 1, X, 1), // rfi: fine even though x=2 performs first
            st(1, 0, X, 2, 50),
        ])
        .is_ok());
    }

    #[test]
    fn corr_violation_detected() {
        // Same core reads new then old value of one location: uniproc
        // violation.
        let err = check(vec![st(1, 0, X, 1, 10), ld(0, 0, X, 1), ld(0, 1, X, 0)]).unwrap_err();
        assert!(matches!(err, CheckError::UniprocViolation { .. } | CheckError::TsoViolation));
    }

    #[test]
    fn unknown_value_detected() {
        let err = check(vec![ld(0, 0, X, 99)]).unwrap_err();
        assert!(matches!(err, CheckError::ValueNotFound { value: 99, .. }));
    }

    #[test]
    fn init_values_respected() {
        let mut log = ExecutionLog::new();
        log.set_init(Addr::new(X), 42);
        log.push(ld(0, 0, X, 42));
        assert!(TsoChecker::new(&log).check().is_ok());
    }

    #[test]
    fn duplicate_written_values_rejected() {
        let err = check(vec![st(0, 0, X, 7, 10), st(1, 0, X, 7, 20), ld(2, 0, X, 7)]).unwrap_err();
        assert!(matches!(err, CheckError::AmbiguousValue { value: 7, .. }));
    }

    #[test]
    fn coherence_tie_rejected() {
        let err = check(vec![st(0, 0, X, 1, 10), st(1, 0, X, 2, 10), ld(2, 0, X, 2)]).unwrap_err();
        assert_eq!(err, CheckError::CoherenceTie { addr: Addr::new(X) });
    }

    #[test]
    fn rmw_atomicity_enforced() {
        // RMW read 0 but a store of 5 performed between init and the RMW's
        // write: not atomic.
        let bad = vec![
            st(1, 0, X, 5, 10),
            MemEvent {
                core: 0,
                seq: 0,
                addr: Addr::new(X),
                op: MemOp::Rmw { old: 0, new: 1, performed_at: 20 },
            },
        ];
        let err = check(bad).unwrap_err();
        assert!(matches!(err, CheckError::AtomicityViolation { .. }));
        // Reading the latest value is fine.
        let good = vec![
            st(1, 0, X, 5, 10),
            MemEvent {
                core: 0,
                seq: 0,
                addr: Addr::new(X),
                op: MemOp::Rmw { old: 5, new: 6, performed_at: 20 },
            },
        ];
        assert!(check(good).is_ok());
    }

    #[test]
    fn rmw_orders_like_a_fence() {
        // SB with atomic stores: core0: rmw x; ld y. core1: rmw y; ld x.
        // Both loads reading 0 would violate TSO because RMWs do not
        // relax into the store buffer.
        let err = check(vec![
            MemEvent { core: 0, seq: 0, addr: Addr::new(X), op: MemOp::Rmw { old: 0, new: 1, performed_at: 10 } },
            ld(0, 1, Y, 0),
            MemEvent { core: 1, seq: 0, addr: Addr::new(Y), op: MemOp::Rmw { old: 0, new: 1, performed_at: 11 } },
            ld(1, 1, X, 0),
        ])
        .unwrap_err();
        assert_eq!(err, CheckError::TsoViolation);
    }

    #[test]
    fn iriw_is_forbidden_in_tso() {
        // Writers: core2 st x=1, core3 st y=1. Readers disagree on the
        // order: forbidden (TSO is multi-copy atomic).
        let err = check(vec![
            st(2, 0, X, 1, 10),
            st(3, 0, Y, 1, 12),
            ld(0, 0, X, 1),
            ld(0, 1, Y, 0),
            ld(1, 0, Y, 1),
            ld(1, 1, X, 0),
        ])
        .unwrap_err();
        assert_eq!(err, CheckError::TsoViolation);
    }
}
