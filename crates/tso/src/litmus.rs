//! The litmus tests of the paper, plus the classics.
//!
//! Each test carries a program, the registers to observe at the end, the
//! outcomes TSO forbids, and whether the operational oracle can enumerate
//! its full outcome set (tests with unbounded spin loops cannot be
//! enumerated but still run on the simulator).

use wb_isa::{Cond, Program, Reg, Workload};
use wb_mem::Addr;

/// Shared variable addresses used by all litmus programs. They live on
/// different cache lines *and* map to different directory banks in a
/// 16-bank system, like the paper's examples assume.
pub const X: Addr = Addr(0x1000);
/// Second shared variable.
pub const Y: Addr = Addr(0x2040);
/// Third shared variable (IRIW etc.).
pub const Z: Addr = Addr(0x3080);

/// A ready-to-run litmus test.
#[derive(Debug, Clone)]
pub struct LitmusTest {
    /// Short name ("mp", "sb", ...).
    pub name: &'static str,
    /// What the paper/section says about it.
    pub description: &'static str,
    /// The program, one per core.
    pub workload: Workload,
    /// Registers to observe after all cores halt.
    pub observed: Vec<(usize, Reg)>,
    /// Outcomes (projected onto `observed`) that must never occur.
    pub forbidden: Vec<Vec<u64>>,
    /// Whether [`crate::TsoOracle`] can enumerate the outcome set.
    pub enumerable: bool,
}

impl LitmusTest {
    /// Is `outcome` in the forbidden set?
    pub fn is_forbidden(&self, outcome: &[u64]) -> bool {
        self.forbidden.iter().any(|f| f == outcome)
    }
}

const RA: Reg = Reg(1);
const RB: Reg = Reg(2);
const RX: Reg = Reg(10); // holds &x
const RY: Reg = Reg(11); // holds &y
const RZ: Reg = Reg(12); // holds &z
const ONE: Reg = Reg(13);

fn prologue(p: &mut wb_isa::ProgramBuilder) {
    p.imm(RX, X.0).imm(RY, Y.0).imm(RZ, Z.0).imm(ONE, 1);
}

/// Table 1 / message passing: writer `st x; st y`, reader `ld y; ld x`.
/// Forbidden: `ra == 1 && rb == 0` (interleaving ⑥ of Table 2).
pub fn mp() -> LitmusTest {
    let mut p0 = Program::builder();
    prologue(&mut p0);
    p0.load(RA, RY, 0).load(RB, RX, 0).halt();
    let mut p1 = Program::builder();
    prologue(&mut p1);
    p1.store(ONE, RX, 0).store(ONE, RY, 0).halt();
    LitmusTest {
        name: "mp",
        description: "Table 1: TSO forbids ra==1 && rb==0",
        workload: Workload::new("mp", vec![p0.build(), p1.build()]),
        observed: vec![(0, RA), (0, RB)],
        forbidden: vec![vec![1, 0]],
        enumerable: true,
    }
}

/// Message passing with `x` pre-warmed in the reader's cache — the
/// hit-under-miss setup of Section 2 that makes the dangerous reordering
/// *likely* (the younger `ld x` hits while the older `ld y` misses).
pub fn mp_warm() -> LitmusTest {
    let mut p0 = Program::builder();
    prologue(&mut p0);
    p0.load(Reg(5), RX, 0); // warm x into the cache
    p0.nops(8); // give the line time to settle
    p0.load(RA, RY, 0).load(RB, RX, 0).halt();
    let mut p1 = Program::builder();
    prologue(&mut p1);
    p1.nops(4);
    p1.store(ONE, RX, 0).store(ONE, RY, 0).halt();
    LitmusTest {
        name: "mp_warm",
        description: "Section 2 hit-under-miss variant of Table 1",
        workload: Workload::new("mp_warm", vec![p0.build(), p1.build()]),
        observed: vec![(0, RA), (0, RB)],
        forbidden: vec![vec![1, 0]],
        enumerable: true,
    }
}

/// Store buffering: both loads reading 0 is *allowed* in TSO (the
/// relaxation store buffers introduce). No forbidden outcome.
pub fn sb() -> LitmusTest {
    let mut p0 = Program::builder();
    prologue(&mut p0);
    p0.store(ONE, RX, 0).load(RA, RY, 0).halt();
    let mut p1 = Program::builder();
    prologue(&mut p1);
    p1.store(ONE, RY, 0).load(RA, RX, 0).halt();
    LitmusTest {
        name: "sb",
        description: "store buffering: {0,0} allowed in TSO",
        workload: Workload::new("sb", vec![p0.build(), p1.build()]),
        observed: vec![(0, RA), (1, RA)],
        forbidden: vec![],
        enumerable: true,
    }
}

/// Load buffering: both loads observing the other core's store is
/// forbidden (TSO keeps load→store order).
pub fn lb() -> LitmusTest {
    let mut p0 = Program::builder();
    prologue(&mut p0);
    p0.load(RA, RX, 0).store(ONE, RY, 0).halt();
    let mut p1 = Program::builder();
    prologue(&mut p1);
    p1.load(RA, RY, 0).store(ONE, RX, 0).halt();
    LitmusTest {
        name: "lb",
        description: "load buffering: {1,1} forbidden in TSO",
        workload: Workload::new("lb", vec![p0.build(), p1.build()]),
        observed: vec![(0, RA), (1, RA)],
        forbidden: vec![vec![1, 1]],
        enumerable: true,
    }
}

/// Coherent read-read: one core may not see a location go "backwards".
pub fn corr() -> LitmusTest {
    let mut p0 = Program::builder();
    prologue(&mut p0);
    p0.store(ONE, RX, 0).halt();
    let mut p1 = Program::builder();
    prologue(&mut p1);
    p1.load(RA, RX, 0).load(RB, RX, 0).halt();
    LitmusTest {
        name: "corr",
        description: "coherence: reading 1 then 0 from x is forbidden",
        workload: Workload::new("corr", vec![p0.build(), p1.build()]),
        observed: vec![(1, RA), (1, RB)],
        forbidden: vec![vec![1, 0]],
        enumerable: true,
    }
}

/// Independent reads of independent writes: TSO is multi-copy atomic, so
/// the two readers may not disagree on the order of the writes.
pub fn iriw() -> LitmusTest {
    let mut w0 = Program::builder();
    prologue(&mut w0);
    w0.store(ONE, RX, 0).halt();
    let mut w1 = Program::builder();
    prologue(&mut w1);
    w1.store(ONE, RY, 0).halt();
    let mut r0 = Program::builder();
    prologue(&mut r0);
    r0.load(RA, RX, 0).load(RB, RY, 0).halt();
    let mut r1 = Program::builder();
    prologue(&mut r1);
    r1.load(RA, RY, 0).load(RB, RX, 0).halt();
    LitmusTest {
        name: "iriw",
        description: "IRIW: readers disagreeing on write order is forbidden",
        workload: Workload::new("iriw", vec![w0.build(), w1.build(), r0.build(), r1.build()]),
        observed: vec![(2, RA), (2, RB), (3, RA), (3, RB)],
        forbidden: vec![vec![1, 0, 1, 0]],
        enumerable: true,
    }
}

/// Table 3: the writes of `x` and `y` are on *different* cores but
/// ordered by a transitive happens-before (core 2 spins on `x` before
/// writing `y`). Forbidden: `ra == 1 && rb == 0`, exactly as in Table 1.
/// Not enumerable (the spin loop is unbounded).
pub fn mp_transitive() -> LitmusTest {
    let mut p0 = Program::builder();
    prologue(&mut p0);
    p0.load(Reg(5), RX, 0); // warm x (creates the cached copy of Table 3)
    p0.nops(8);
    p0.load(RA, RY, 0).load(RB, RX, 0).halt();
    let mut p1 = Program::builder();
    prologue(&mut p1);
    p1.nops(4);
    p1.store(ONE, RX, 0).halt();
    let mut p2 = Program::builder();
    prologue(&mut p2);
    let spin = p2.here();
    p2.load(RA, RX, 0);
    p2.branch(Cond::Eq, RA, Reg::ZERO, spin);
    p2.store(ONE, RY, 0).halt();
    LitmusTest {
        name: "mp_transitive",
        description: "Table 3: transitive happens-before across three cores",
        workload: Workload::new("mp_transitive", vec![p0.build(), p1.build(), p2.build()]),
        observed: vec![(0, RA), (0, RB)],
        forbidden: vec![vec![1, 0]],
        enumerable: false,
    }
}

/// Spinlock mutual exclusion: two cores each increment a shared counter
/// `n` times inside a test-and-set lock; the final value must be `2n`.
/// Exercises atomics, SB drains and the lockdown restrictions of
/// Section 3.7. Not enumerable.
pub fn spinlock(n: u64) -> LitmusTest {
    let lock = Z;
    let counter = X;
    let mk = || {
        let (rl, rc, ri, rn, rt) = (Reg(20), Reg(21), Reg(22), Reg(23), Reg(24));
        let mut p = Program::builder();
        p.imm(rl, lock.0).imm(rc, counter.0).imm(ri, 0).imm(rn, n).imm(ONE, 1);
        let loop_top = p.here();
        // acquire: spin on amo_swap(lock, 1) == 0
        let acquire = p.here();
        p.amo_swap(rt, rl, 0, ONE);
        p.branch(Cond::Ne, rt, Reg::ZERO, acquire);
        // critical section: counter += 1
        p.load(rt, rc, 0);
        p.alui(wb_isa::AluOp::Add, rt, rt, 1);
        p.store(rt, rc, 0);
        // release: lock = 0
        p.store(Reg::ZERO, rl, 0);
        // loop
        p.alui(wb_isa::AluOp::Add, ri, ri, 1);
        p.branch(Cond::Lt, ri, rn, loop_top);
        // read back the counter for observation
        p.load(RA, rc, 0);
        p.halt();
        p.build()
    };
    LitmusTest {
        name: "spinlock",
        description: "two cores increment under a test-and-set lock",
        workload: Workload::new("spinlock", vec![mk(), mk()]),
        observed: vec![(0, RA), (1, RA)],
        // The *final* counter value must be 2n; individual observations
        // are at least n. Forbidden outcomes are checked separately by
        // the harness (needs max, not equality) — kept empty here.
        forbidden: vec![],
        enumerable: false,
    }
}

/// 2+2W: both cores write both locations in opposite orders; the final
/// state may not interleave inconsistently with coherence order.
pub fn two_plus_two_w() -> LitmusTest {
    let mut p0 = Program::builder();
    prologue(&mut p0);
    p0.imm(Reg(5), 1).imm(Reg(6), 4);
    p0.store(Reg(5), RX, 0).store(Reg(6), RY, 0); // x=1; y=4
    p0.load(RA, RX, 0).load(RB, RY, 0);
    p0.halt();
    let mut p1 = Program::builder();
    prologue(&mut p1);
    p1.imm(Reg(5), 2).imm(Reg(6), 3);
    p1.store(Reg(6), RY, 0).store(Reg(5), RX, 0); // y=3; x=2
    p1.load(RA, RX, 0).load(RB, RY, 0);
    p1.halt();
    LitmusTest {
        name: "2+2w",
        description: "2+2W: writes to two locations in opposite orders",
        workload: Workload::new("2+2w", vec![p0.build(), p1.build()]),
        observed: vec![(0, RA), (0, RB), (1, RA), (1, RB)],
        // The forbidden shapes are cyclic co orders; the oracle supplies
        // the exact legal set, which the harness compares against.
        forbidden: vec![],
        enumerable: true,
    }
}

/// S: `st x=2; st y=1` vs `ld y; st x=1`. TSO forbids observing y==1
/// while x finally holds 2 with the read ordered in between — the
/// classic S shape reduces to: r1==1 && final x==2 is forbidden... we
/// observe both loads instead (x read back on core 1).
pub fn s_shape() -> LitmusTest {
    let mut p0 = Program::builder();
    prologue(&mut p0);
    p0.imm(Reg(5), 2);
    p0.store(Reg(5), RX, 0).store(ONE, RY, 0);
    p0.halt();
    let mut p1 = Program::builder();
    prologue(&mut p1);
    p1.load(RA, RY, 0); // =1 implies x=2 already performed
    p1.store(ONE, RX, 0); // x=1 must coherence-follow x=2
    p1.load(RB, RX, 0); // reads own store: must be 1
    p1.halt();
    LitmusTest {
        name: "s",
        description: "S shape: R->W ordering against a prior store pair",
        workload: Workload::new("s", vec![p0.build(), p1.build()]),
        observed: vec![(1, RA), (1, RB)],
        // If core 1 saw y==1, its own store x=1 is coherence-after x=2,
        // so reading back x must give 1 (it always does via po-loc); the
        // interesting guarantee is checked by the oracle subset relation.
        forbidden: vec![],
        enumerable: true,
    }
}

/// WRC: write-to-read causality across three cores. Core 0 writes x;
/// core 1 reads it and writes y; core 2 reads y then x. Seeing y==1 but
/// the old x is forbidden (TSO is causal).
pub fn wrc() -> LitmusTest {
    let mut p0 = Program::builder();
    prologue(&mut p0);
    p0.store(ONE, RX, 0).halt();
    let mut p1 = Program::builder();
    prologue(&mut p1);
    p1.load(RA, RX, 0);
    let skip = p1.new_label();
    p1.branch(Cond::Eq, RA, Reg::ZERO, skip);
    p1.store(ONE, RY, 0);
    p1.bind(skip);
    p1.halt();
    let mut p2 = Program::builder();
    prologue(&mut p2);
    p2.load(RA, RY, 0).load(RB, RX, 0).halt();
    LitmusTest {
        name: "wrc",
        description: "WRC: causality through an intermediate core",
        workload: Workload::new("wrc", vec![p0.build(), p1.build(), p2.build()]),
        observed: vec![(2, RA), (2, RB)],
        forbidden: vec![vec![1, 0]],
        enumerable: true,
    }
}

/// SB with atomic RMWs instead of plain stores: the store-buffer
/// relaxation disappears (locked operations drain the buffer), so both
/// loads reading 0 becomes forbidden.
pub fn sb_rmw() -> LitmusTest {
    let mut p0 = Program::builder();
    prologue(&mut p0);
    p0.amo_swap(Reg(6), RX, 0, ONE);
    p0.load(RA, RY, 0);
    p0.halt();
    let mut p1 = Program::builder();
    prologue(&mut p1);
    p1.amo_swap(Reg(6), RY, 0, ONE);
    p1.load(RA, RX, 0);
    p1.halt();
    LitmusTest {
        name: "sb_rmw",
        description: "SB with locked RMWs: {0,0} becomes forbidden",
        workload: Workload::new("sb_rmw", vec![p0.build(), p1.build()]),
        observed: vec![(0, RA), (1, RA)],
        forbidden: vec![vec![0, 0]],
        enumerable: true,
    }
}

/// CoWR: a core must read its own uncommitted store (store-to-load
/// forwarding) and never an older value afterwards.
pub fn cowr() -> LitmusTest {
    let mut p0 = Program::builder();
    prologue(&mut p0);
    p0.imm(Reg(5), 7);
    p0.store(Reg(5), RX, 0);
    p0.load(RA, RX, 0); // must be 7 or a later external value... with one
    p0.halt(); // writer, exactly 7
    let mut p1 = Program::builder();
    prologue(&mut p1);
    p1.load(RB, RX, 0).halt();
    LitmusTest {
        name: "cowr",
        description: "CoWR: read-own-write",
        workload: Workload::new("cowr", vec![p0.build(), p1.build()]),
        observed: vec![(0, RA)],
        forbidden: vec![vec![0]],
        enumerable: true,
    }
}

/// All enumerable litmus tests (usable with the oracle).
pub fn enumerable_suite() -> Vec<LitmusTest> {
    vec![
        mp(),
        mp_warm(),
        sb(),
        lb(),
        corr(),
        iriw(),
        two_plus_two_w(),
        s_shape(),
        wrc(),
        sb_rmw(),
        cowr(),
    ]
}

/// The full suite, including spin-loop tests.
pub fn full_suite() -> Vec<LitmusTest> {
    let mut v = enumerable_suite();
    v.push(mp_transitive());
    v.push(spinlock(8));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::tso_outcomes;

    #[test]
    fn oracle_confirms_forbidden_sets() {
        for t in enumerable_suite() {
            let outcomes = tso_outcomes(&t.workload, &t.observed)
                .unwrap_or_else(|e| panic!("{}: {e}", t.name));
            for f in &t.forbidden {
                assert!(
                    !outcomes.contains(f),
                    "{}: oracle says {f:?} is TSO-legal but the test forbids it",
                    t.name
                );
            }
            assert!(!outcomes.is_empty(), "{}: no outcome at all", t.name);
        }
    }

    #[test]
    fn mp_oracle_outcomes_are_exactly_table2() {
        let t = mp();
        let outcomes = tso_outcomes(&t.workload, &t.observed).unwrap();
        let expect: std::collections::BTreeSet<Vec<u64>> =
            [vec![0, 0], vec![0, 1], vec![1, 1]].into_iter().collect();
        assert_eq!(outcomes, expect);
    }

    #[test]
    fn sb_relaxation_is_legal() {
        let t = sb();
        let outcomes = tso_outcomes(&t.workload, &t.observed).unwrap();
        assert!(outcomes.contains(&vec![0, 0]));
    }

    #[test]
    fn is_forbidden_works() {
        let t = mp();
        assert!(t.is_forbidden(&[1, 0]));
        assert!(!t.is_forbidden(&[1, 1]));
    }

    #[test]
    fn litmus_variables_on_distinct_lines_and_banks() {
        assert_ne!(X.line(), Y.line());
        assert_ne!(Y.line(), Z.line());
        assert_ne!(X.line().bank(16), Y.line().bank(16));
    }

    #[test]
    fn full_suite_is_wellformed() {
        for t in full_suite() {
            assert!(t.workload.cores() >= 2 || t.name == "spin");
            assert!(!t.observed.is_empty());
            assert!(!t.description.is_empty());
        }
    }
}
