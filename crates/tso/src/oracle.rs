//! An operational TSO reference model.
//!
//! The canonical x86-TSO abstract machine (Sewell et al.): each hart owns
//! a FIFO store buffer; loads read the youngest matching entry of their
//! own buffer, else memory; stores enqueue; the buffer drains to memory
//! nondeterministically; atomic RMWs execute only with an empty own
//! buffer and touch memory directly.
//!
//! [`TsoOracle::enumerate`] explores *every* reachable interleaving of a
//! small multi-core program by depth-first search over machine states and
//! returns the set of all TSO-legal outcomes. This is the ground truth
//! the simulator's litmus results are compared against, and the generator
//! behind Table 2 of the paper.

use std::collections::{BTreeMap, BTreeSet, HashSet, VecDeque};
use std::hash::{Hash, Hasher};
use wb_isa::{AmoOp, Inst, Reg, Workload};


/// Errors from outcome enumeration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OracleError {
    /// The state space exceeded the configured budget (e.g. an unbounded
    /// spin loop).
    StateSpaceTooLarge { limit: usize },
}

impl std::fmt::Display for OracleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OracleError::StateSpaceTooLarge { limit } => {
                write!(f, "state space exceeded {limit} states (unbounded loop?)")
            }
        }
    }
}

impl std::error::Error for OracleError {}

#[derive(Clone, PartialEq, Eq)]
struct HartState {
    regs: [u64; Reg::COUNT],
    pc: u32,
    halted: bool,
    sb: VecDeque<(u64, u64)>, // (byte address, value)
}

impl Hash for HartState {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.regs.hash(state);
        self.pc.hash(state);
        self.halted.hash(state);
        for e in &self.sb {
            e.hash(state);
        }
        self.sb.len().hash(state);
    }
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct MachineState {
    harts: Vec<HartState>,
    memory: BTreeMap<u64, u64>,
}

impl MachineState {
    fn read_mem(&self, a: u64) -> u64 {
        self.memory.get(&a).copied().unwrap_or(0)
    }
}

/// Exhaustive TSO outcome enumerator.
#[derive(Debug, Clone)]
pub struct TsoOracle {
    max_states: usize,
}

impl Default for TsoOracle {
    fn default() -> Self {
        TsoOracle::new()
    }
}

impl TsoOracle {
    /// An oracle with the default state budget (1M states).
    pub fn new() -> Self {
        TsoOracle { max_states: 1_000_000 }
    }

    /// Override the state budget.
    pub fn with_max_states(mut self, n: usize) -> Self {
        self.max_states = n;
        self
    }

    /// Enumerate every TSO-legal outcome of `workload`, projected onto
    /// the `observed` `(core, register)` pairs. Outcomes are only taken
    /// from final states (all harts halted, all store buffers drained).
    ///
    /// # Errors
    ///
    /// [`OracleError::StateSpaceTooLarge`] if exploration exceeds the
    /// budget.
    pub fn enumerate(
        &self,
        workload: &Workload,
        observed: &[(usize, Reg)],
    ) -> Result<BTreeSet<Vec<u64>>, OracleError> {
        let mut init = MachineState {
            harts: workload
                .programs
                .iter()
                .map(|_| HartState { regs: [0; Reg::COUNT], pc: 0, halted: false, sb: VecDeque::new() })
                .collect(),
            memory: BTreeMap::new(),
        };
        for (a, v) in &workload.init_mem {
            init.memory.insert(a.0, *v);
        }
        let mut outcomes = BTreeSet::new();
        let mut visited: HashSet<MachineState> = HashSet::new();
        let mut stack = vec![init];
        while let Some(st) = stack.pop() {
            if visited.contains(&st) {
                continue;
            }
            if visited.len() >= self.max_states {
                return Err(OracleError::StateSpaceTooLarge { limit: self.max_states });
            }
            visited.insert(st.clone());
            let mut terminal = true;
            for i in 0..st.harts.len() {
                // Transition (a): drain the oldest store-buffer entry.
                if !st.harts[i].sb.is_empty() {
                    terminal = false;
                    let mut next = st.clone();
                    let (a, v) = next.harts[i].sb.pop_front().expect("non-empty");
                    next.memory.insert(a, v);
                    stack.push(next);
                }
                // Transition (b): execute the next instruction. A hart
                // blocked on an RMW with a non-empty SB cannot step now,
                // but its own drain transition above keeps the state
                // non-terminal.
                if !st.harts[i].halted {
                    if let Some(next) = Self::step(&st, i, workload) {
                        terminal = false;
                        stack.push(next);
                    }
                }
            }
            if terminal {
                outcomes.insert(observed.iter().map(|&(c, r)| st.harts[c].regs[r.index()]).collect());
            }
        }
        Ok(outcomes)
    }

    /// Execute one instruction of hart `i`, returning the successor state
    /// (or `None` when the hart cannot step right now, e.g. an RMW with a
    /// non-empty store buffer).
    fn step(st: &MachineState, i: usize, workload: &Workload) -> Option<MachineState> {
        let hart = &st.harts[i];
        let prog = &workload.programs[i];
        let Some(inst) = prog.fetch(hart.pc) else {
            let mut next = st.clone();
            next.harts[i].halted = true;
            return Some(next);
        };
        let reg = |r: Reg| if r.is_zero() { 0 } else { hart.regs[r.index()] };
        let ea = |base: Reg, off: i64| reg(base).wrapping_add(off as u64);
        let mut next = st.clone();
        let mut pc = hart.pc + 1;
        {
            let set = |next: &mut MachineState, r: Reg, v: u64| {
                if !r.is_zero() {
                    next.harts[i].regs[r.index()] = v;
                }
            };
            match inst {
                Inst::Imm { rd, value } => set(&mut next, rd, value),
                Inst::Alu { op, rd, rs1, rs2 } => set(&mut next, rd, op.apply(reg(rs1), reg(rs2))),
                Inst::AluImm { op, rd, rs1, imm } => set(&mut next, rd, op.apply(reg(rs1), imm)),
                Inst::Load { rd, base, offset } => {
                    let a = ea(base, offset);
                    // Youngest matching own-store-buffer entry, else memory.
                    let v = hart
                        .sb
                        .iter()
                        .rev()
                        .find(|(sa, _)| *sa == a)
                        .map(|(_, sv)| *sv)
                        .unwrap_or_else(|| st.read_mem(a));
                    set(&mut next, rd, v);
                }
                Inst::Store { src, base, offset } => {
                    let a = ea(base, offset);
                    next.harts[i].sb.push_back((a, reg(src)));
                }
                Inst::Amo { op, rd, base, offset, src, cmp } => {
                    if !hart.sb.is_empty() {
                        return None; // x86 locked ops drain the buffer first
                    }
                    let a = ea(base, offset);
                    let old = st.read_mem(a);
                    let new = match op {
                        AmoOp::Swap => Some(reg(src)),
                        AmoOp::Add => Some(old.wrapping_add(reg(src))),
                        AmoOp::Cas => (old == reg(cmp)).then(|| reg(src)),
                    };
                    if let Some(n) = new {
                        next.memory.insert(a, n);
                    }
                    set(&mut next, rd, old);
                }
                Inst::Branch { cond, rs1, rs2, target } => {
                    if cond.eval(reg(rs1), reg(rs2)) {
                        pc = target;
                    }
                }
                Inst::Jump { target } => pc = target,
                Inst::Nop => {}
                Inst::Halt => {
                    next.harts[i].halted = true;
                    return Some(next);
                }
            }
        }
        next.harts[i].pc = pc;
        Some(next)
    }
}

/// Convenience: enumerate outcomes with the default oracle.
///
/// # Errors
///
/// See [`TsoOracle::enumerate`].
pub fn tso_outcomes(
    workload: &Workload,
    observed: &[(usize, Reg)],
) -> Result<BTreeSet<Vec<u64>>, OracleError> {
    TsoOracle::new().enumerate(workload, observed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wb_isa::Program;

    fn addr(a: u64) -> wb_mem::Addr {
        wb_mem::Addr::new(a)
    }

    /// Table 1: core0 `ld ra,y; ld rb,x`; core1 `st x,1; st y,1`.
    fn mp() -> (Workload, Vec<(usize, Reg)>) {
        let (ra, rb, rx, ry) = (Reg(1), Reg(2), Reg(3), Reg(4));
        let mut p0 = Program::builder();
        p0.imm(ry, 0x200).imm(rx, 0x100).load(ra, ry, 0).load(rb, rx, 0).halt();
        let mut p1 = Program::builder();
        p1.imm(rx, 0x100).imm(ry, 0x200).imm(Reg(5), 1).store(Reg(5), rx, 0).store(Reg(5), ry, 0).halt();
        let w = Workload::new("mp", vec![p0.build(), p1.build()]);
        (w, vec![(0, ra), (0, rb)])
    }

    #[test]
    fn mp_outcomes_match_table2() {
        let (w, obs) = mp();
        let outcomes = tso_outcomes(&w, &obs).unwrap();
        // Table 2: {old,old}, {old,new}, {new,new} — never {new,old}.
        let expect: BTreeSet<Vec<u64>> =
            [vec![0, 0], vec![0, 1], vec![1, 1]].into_iter().collect();
        assert_eq!(outcomes, expect);
    }

    #[test]
    fn sb_allows_both_zero() {
        // core0: st x,1; ld ra,y.   core1: st y,1; ld rb,x.
        let (ra, rb, rx, ry, one) = (Reg(1), Reg(2), Reg(3), Reg(4), Reg(5));
        let mut p0 = Program::builder();
        p0.imm(rx, 0x100).imm(ry, 0x200).imm(one, 1).store(one, rx, 0).load(ra, ry, 0).halt();
        let mut p1 = Program::builder();
        p1.imm(rx, 0x100).imm(ry, 0x200).imm(one, 1).store(one, ry, 0).load(rb, rx, 0).halt();
        let w = Workload::new("sb", vec![p0.build(), p1.build()]);
        let outcomes = tso_outcomes(&w, &[(0, ra), (1, rb)]).unwrap();
        assert!(outcomes.contains(&vec![0, 0]), "store buffering must be visible in TSO");
        assert_eq!(outcomes.len(), 4, "all four combinations are legal in SB");
    }

    #[test]
    fn lb_forbids_both_one() {
        // core0: ld ra,x; st y,1.   core1: ld rb,y; st x,1.
        let (ra, rb, rx, ry, one) = (Reg(1), Reg(2), Reg(3), Reg(4), Reg(5));
        let mut p0 = Program::builder();
        p0.imm(rx, 0x100).imm(ry, 0x200).imm(one, 1).load(ra, rx, 0).store(one, ry, 0).halt();
        let mut p1 = Program::builder();
        p1.imm(rx, 0x100).imm(ry, 0x200).imm(one, 1).load(rb, ry, 0).store(one, rx, 0).halt();
        let w = Workload::new("lb", vec![p0.build(), p1.build()]);
        let outcomes = tso_outcomes(&w, &[(0, ra), (1, rb)]).unwrap();
        assert!(!outcomes.contains(&vec![1, 1]), "LB outcome {{1,1}} is forbidden in TSO");
    }

    #[test]
    fn rmw_drains_store_buffer() {
        // core0: st x,1; amo_swap y <- 2; core1 reads y==2 implies x==1.
        let (ra, rb, rx, ry, v) = (Reg(1), Reg(2), Reg(3), Reg(4), Reg(5));
        let mut p0 = Program::builder();
        p0.imm(rx, 0x100).imm(ry, 0x200).imm(v, 1).store(v, rx, 0);
        p0.imm(Reg(6), 2).amo_swap(Reg(7), ry, 0, Reg(6)).halt();
        let mut p1 = Program::builder();
        p1.imm(rx, 0x100).imm(ry, 0x200).load(ra, ry, 0).load(rb, rx, 0).halt();
        let w = Workload::new("rmw-mp", vec![p0.build(), p1.build()]);
        let outcomes = tso_outcomes(&w, &[(1, ra), (1, rb)]).unwrap();
        assert!(!outcomes.contains(&vec![2, 0]), "seeing the RMW but not the prior store is forbidden");
    }

    #[test]
    fn cas_is_atomic() {
        // Two cores CAS 0->their id on the same location; exactly one wins.
        let mk = |my: u64| {
            let (rd, rx, rv) = (Reg(1), Reg(2), Reg(3));
            let mut p = Program::builder();
            p.imm(rx, 0x100).imm(rv, my).amo_cas(rd, rx, 0, Reg::ZERO, rv).halt();
            p.build()
        };
        let w = Workload::new("cas", vec![mk(1), mk(2)]);
        let outcomes = tso_outcomes(&w, &[(0, Reg(1)), (1, Reg(1))]).unwrap();
        // Old values: (0, 1) or (0, 2)-ordering — never both zero.
        assert!(!outcomes.contains(&vec![0, 0]), "both CAS cannot win");
        let _ = addr(0);
    }

    #[test]
    fn spin_loop_exceeds_budget_gracefully() {
        // A counting loop has unboundedly many distinct states.
        let mut p = Program::builder();
        let top = p.here();
        p.addi(Reg(1), Reg(1), 1);
        p.jump(top);
        let w = Workload::new("count", vec![p.build()]);
        let err = TsoOracle::new().with_max_states(100).enumerate(&w, &[]).unwrap_err();
        assert!(matches!(err, OracleError::StateSpaceTooLarge { .. }));
    }

    #[test]
    fn init_memory_respected() {
        let (ra, rx) = (Reg(1), Reg(2));
        let mut p = Program::builder();
        p.imm(rx, 0x100).load(ra, rx, 0).halt();
        let w = Workload::new("init", vec![p.build()]).with_init(addr(0x100), 33);
        let outcomes = tso_outcomes(&w, &[(0, ra)]).unwrap();
        assert_eq!(outcomes, [vec![33]].into_iter().collect());
    }
}
