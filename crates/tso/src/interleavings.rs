//! The six interleavings of Table 2, enumerated explicitly.
//!
//! For the Table 1 example — reader `ld y; ld x` racing writer
//! `st x; st y` — there are C(4,2) = 6 ways to merge the two program
//! orders. Each interleaving determines which values the loads observe;
//! five are legal TSO outcomes and one (⑥, `{new, old}`) requires a
//! cycle through program order and is illegal. This module reproduces
//! the table mechanically.

/// One of the four operations of the Table 1 example.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `ld y` (the reader's older load).
    LdY,
    /// `ld x` (the reader's younger load).
    LdX,
    /// `st x` (the writer's older store).
    StX,
    /// `st y` (the writer's younger store).
    StY,
}

impl std::fmt::Display for Op {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Op::LdY => "ld y",
            Op::LdX => "ld x",
            Op::StX => "st x",
            Op::StY => "st y",
        })
    }
}

/// One interleaving and the outcome it produces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Interleaving {
    /// Paper's numbering ①-⑥ (1..=6).
    pub index: usize,
    /// The merge order.
    pub order: [Op; 4],
    /// Value observed by `ld y` (false = old, true = new).
    pub y_new: bool,
    /// Value observed by `ld x`.
    pub x_new: bool,
    /// Whether the interleaving respects both program orders (the five
    /// legal rows of Table 2). The `{new, old}` combination appears only
    /// in the row that *violates* the loads' program order — row ⑥.
    pub legal: bool,
}

impl Interleaving {
    /// The paper's value-pair label, e.g. `"old, new"`.
    pub fn label(&self) -> String {
        format!(
            "{}, {}",
            if self.y_new { "new" } else { "old" },
            if self.x_new { "new" } else { "old" }
        )
    }
}

/// Evaluate a merge order: which values do the loads see?
fn outcome(order: &[Op; 4]) -> (bool, bool) {
    let (mut x, mut y) = (false, false);
    let (mut y_new, mut x_new) = (false, false);
    for op in order {
        match op {
            Op::StX => x = true,
            Op::StY => y = true,
            Op::LdY => y_new = y,
            Op::LdX => x_new = x,
        }
    }
    (y_new, x_new)
}

/// Enumerate Table 2: the five legal interleavings (program orders
/// respected on both sides) plus the illegal row ⑥ where the loads are
/// observed out of program order.
pub fn table2() -> Vec<Interleaving> {
    use Op::*;
    // The paper's rows ①-⑤: all merges with ld y before ld x and
    // st x before st y.
    let legal_orders: [[Op; 4]; 5] = [
        [LdY, LdX, StX, StY], // ①
        [LdY, StX, LdX, StY], // ②
        [LdY, StX, StY, LdX], // ③
        [StX, LdY, StY, LdX], // ④
        [StX, StY, LdY, LdX], // ⑤
    ];
    let mut rows: Vec<Interleaving> = legal_orders
        .iter()
        .enumerate()
        .map(|(i, order)| {
            let (y_new, x_new) = outcome(order);
            Interleaving { index: i + 1, order: *order, y_new, x_new, legal: true }
        })
        .collect();
    // Row ⑥: interleaving ③ with the loads swapped — the observation
    // order that binds x to the old value *after* y bound the new one.
    let illegal = [LdX, StX, StY, LdY];
    let (y_new, x_new) = outcome(&illegal);
    rows.push(Interleaving { index: 6, order: illegal, y_new, x_new, legal: false });
    rows
}

/// The set of value pairs `(y, x)` reachable by legal interleavings —
/// Table 2's conclusion: {old,old}, {old,new}, {new,new}.
pub fn legal_outcomes() -> Vec<(bool, bool)> {
    let mut v: Vec<(bool, bool)> =
        table2().iter().filter(|r| r.legal).map(|r| (r.y_new, r.x_new)).collect();
    v.sort_unstable();
    v.dedup();
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_rows_total() {
        let rows = table2();
        assert_eq!(rows.len(), 6);
        assert_eq!(rows.iter().filter(|r| r.legal).count(), 5);
    }

    #[test]
    fn legal_outcomes_match_paper() {
        // {old,old}, {old,new}, {new,new} and nothing else.
        assert_eq!(legal_outcomes(), vec![(false, false), (false, true), (true, true)]);
    }

    #[test]
    fn row6_is_the_forbidden_combination() {
        let rows = table2();
        let illegal = &rows[5];
        assert!(!illegal.legal);
        assert!(illegal.y_new && !illegal.x_new, "row 6 must be {{new, old}}");
        assert_eq!(illegal.label(), "new, old");
    }

    #[test]
    fn row_values_match_the_paper_table() {
        let rows = table2();
        let labels: Vec<String> = rows.iter().map(|r| r.label()).collect();
        assert_eq!(
            labels,
            vec!["old, old", "old, new", "old, new", "old, new", "new, new", "new, old"]
        );
    }

    #[test]
    fn legal_set_agrees_with_the_operational_oracle() {
        let t = crate::litmus::mp();
        let oracle = crate::oracle::tso_outcomes(&t.workload, &t.observed).expect("oracle");
        let from_table: std::collections::BTreeSet<Vec<u64>> = legal_outcomes()
            .into_iter()
            .map(|(y, x)| vec![u64::from(y), u64::from(x)])
            .collect();
        assert_eq!(oracle, from_table);
    }

    #[test]
    fn display_ops() {
        assert_eq!(Op::LdY.to_string(), "ld y");
        assert_eq!(Op::StX.to_string(), "st x");
    }
}
