//! The memory-event log.
//!
//! The core model appends one event per *committed* memory instruction:
//! loads record the value they irrevocably bound; stores and atomics
//! record the cycle at which they became globally visible (wrote the
//! cache in M state). Per-location write serialization is guaranteed by
//! the coherence protocol (a single M copy at a time), so `(perform
//! cycle, core)` totally orders the writes of each location.

use wb_kernel::Cycle;
use wb_mem::Addr;

/// What a memory instruction did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemOp {
    /// A load that bound `value`.
    Load { value: u64 },
    /// A store of `value`, globally visible at `performed_at`.
    Store { value: u64, performed_at: Cycle },
    /// An atomic read-modify-write: read `old`, wrote `new`, atomically
    /// at `performed_at`.
    Rmw { old: u64, new: u64, performed_at: Cycle },
}

impl MemOp {
    /// Does this event write memory?
    pub fn is_write(&self) -> bool {
        matches!(self, MemOp::Store { .. } | MemOp::Rmw { .. })
    }

    /// Does this event read memory?
    pub fn is_read(&self) -> bool {
        matches!(self, MemOp::Load { .. } | MemOp::Rmw { .. })
    }

    /// The value written, if any.
    pub fn written(&self) -> Option<u64> {
        match *self {
            MemOp::Store { value, .. } => Some(value),
            MemOp::Rmw { new, .. } => Some(new),
            MemOp::Load { .. } => None,
        }
    }

    /// The value read, if any.
    pub fn read(&self) -> Option<u64> {
        match *self {
            MemOp::Load { value } => Some(value),
            MemOp::Rmw { old, .. } => Some(old),
            MemOp::Store { .. } => None,
        }
    }

    /// The global-visibility cycle, for writes.
    pub fn performed_at(&self) -> Option<Cycle> {
        match *self {
            MemOp::Store { performed_at, .. } | MemOp::Rmw { performed_at, .. } => Some(performed_at),
            MemOp::Load { .. } => None,
        }
    }
}

/// One committed memory instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemEvent {
    /// Core that executed the instruction.
    pub core: usize,
    /// Program-order sequence number within the core (strictly
    /// increasing; gaps allowed).
    pub seq: u64,
    /// Word address accessed.
    pub addr: Addr,
    /// What happened.
    pub op: MemOp,
}

/// A whole execution's worth of events, plus initial memory values.
#[derive(Debug, Clone, Default)]
pub struct ExecutionLog {
    events: Vec<MemEvent>,
    init: Vec<(Addr, u64)>,
}

impl ExecutionLog {
    /// An empty log.
    pub fn new() -> Self {
        ExecutionLog::default()
    }

    /// Record an initial memory value (everything else reads as 0).
    pub fn set_init(&mut self, addr: Addr, value: u64) {
        self.init.push((addr, value));
    }

    /// Append an event.
    pub fn push(&mut self, e: MemEvent) {
        self.events.push(e);
    }

    /// All events, unsorted.
    pub fn events(&self) -> &[MemEvent] {
        &self.events
    }

    /// Initial values.
    pub fn init(&self) -> &[(Addr, u64)] {
        &self.init
    }

    /// The initial value of `addr` (0 if never set).
    pub fn init_value(&self, addr: Addr) -> u64 {
        self.init.iter().rev().find(|(a, _)| *a == addr).map(|(_, v)| *v).unwrap_or(0)
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no event has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Merge another log (e.g. from another core) into this one.
    pub fn merge(&mut self, other: ExecutionLog) {
        self.events.extend(other.events);
        self.init.extend(other.init);
    }
}

impl Extend<MemEvent> for ExecutionLog {
    fn extend<T: IntoIterator<Item = MemEvent>>(&mut self, iter: T) {
        self.events.extend(iter);
    }
}

impl wb_kernel::Snap for MemOp {
    fn snap(&self, w: &mut wb_kernel::SnapWriter) {
        match *self {
            MemOp::Load { value } => {
                w.u8(0);
                w.u64(value);
            }
            MemOp::Store { value, performed_at } => {
                w.u8(1);
                w.u64(value);
                w.u64(performed_at);
            }
            MemOp::Rmw { old, new, performed_at } => {
                w.u8(2);
                w.u64(old);
                w.u64(new);
                w.u64(performed_at);
            }
        }
    }
    fn unsnap(r: &mut wb_kernel::SnapReader) -> wb_kernel::SnapResult<Self> {
        Ok(match r.u8()? {
            0 => MemOp::Load { value: r.u64()? },
            1 => MemOp::Store { value: r.u64()?, performed_at: r.u64()? },
            2 => MemOp::Rmw { old: r.u64()?, new: r.u64()?, performed_at: r.u64()? },
            t => return Err(wb_kernel::SnapError::new(format!("unknown MemOp tag {t}"))),
        })
    }
}

impl wb_kernel::Snap for MemEvent {
    fn snap(&self, w: &mut wb_kernel::SnapWriter) {
        w.usize(self.core);
        w.u64(self.seq);
        self.addr.snap(w);
        self.op.snap(w);
    }
    fn unsnap(r: &mut wb_kernel::SnapReader) -> wb_kernel::SnapResult<Self> {
        Ok(MemEvent {
            core: r.usize()?,
            seq: r.u64()?,
            addr: Addr::unsnap(r)?,
            op: MemOp::unsnap(r)?,
        })
    }
}

impl wb_kernel::Snap for ExecutionLog {
    fn snap(&self, w: &mut wb_kernel::SnapWriter) {
        self.events.snap(w);
        self.init.snap(w);
    }
    fn unsnap(r: &mut wb_kernel::SnapReader) -> wb_kernel::SnapResult<Self> {
        Ok(ExecutionLog { events: Vec::unsnap(r)?, init: Vec::unsnap(r)? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_classification() {
        let l = MemOp::Load { value: 1 };
        let s = MemOp::Store { value: 2, performed_at: 10 };
        let r = MemOp::Rmw { old: 0, new: 1, performed_at: 11 };
        assert!(l.is_read() && !l.is_write());
        assert!(s.is_write() && !s.is_read());
        assert!(r.is_read() && r.is_write());
        assert_eq!(l.read(), Some(1));
        assert_eq!(s.written(), Some(2));
        assert_eq!(r.read(), Some(0));
        assert_eq!(r.written(), Some(1));
        assert_eq!(s.performed_at(), Some(10));
        assert_eq!(l.performed_at(), None);
    }

    #[test]
    fn log_init_values() {
        let mut log = ExecutionLog::new();
        log.set_init(Addr::new(0x40), 7);
        assert_eq!(log.init_value(Addr::new(0x40)), 7);
        assert_eq!(log.init_value(Addr::new(0x48)), 0);
        log.set_init(Addr::new(0x40), 9);
        assert_eq!(log.init_value(Addr::new(0x40)), 9, "latest init wins");
    }

    #[test]
    fn log_push_and_merge() {
        let mut a = ExecutionLog::new();
        a.push(MemEvent { core: 0, seq: 1, addr: Addr::new(0), op: MemOp::Load { value: 0 } });
        let mut b = ExecutionLog::new();
        b.push(MemEvent { core: 1, seq: 1, addr: Addr::new(8), op: MemOp::Store { value: 1, performed_at: 5 } });
        a.merge(b);
        assert_eq!(a.len(), 2);
        assert!(!a.is_empty());
    }
}
