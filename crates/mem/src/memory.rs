//! Backing main memory.
//!
//! A sparse map from line address to [`LineData`]. Untouched memory reads
//! as zero, like a freshly mapped page.

use crate::addr::{Addr, LineAddr};
use crate::line::LineData;
use std::collections::HashMap;

/// Sparse main memory, the home of every line not cached anywhere.
///
/// # Example
///
/// ```
/// use wb_mem::{Addr, MainMemory};
/// let mut m = MainMemory::new();
/// m.write_word(Addr::new(0x40), 9);
/// assert_eq!(m.read_word(Addr::new(0x40)), 9);
/// assert_eq!(m.read_word(Addr::new(0x48)), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MainMemory {
    lines: HashMap<LineAddr, LineData>,
}

impl MainMemory {
    /// Empty (all-zero) memory.
    pub fn new() -> Self {
        MainMemory::default()
    }

    /// Read a whole line (zero if never written).
    pub fn read_line(&self, line: LineAddr) -> LineData {
        self.lines.get(&line).copied().unwrap_or_default()
    }

    /// Overwrite a whole line (e.g. a dirty writeback).
    pub fn write_line(&mut self, line: LineAddr, data: LineData) {
        self.lines.insert(line, data);
    }

    /// Read one word.
    pub fn read_word(&self, addr: Addr) -> u64 {
        self.read_line(addr.line()).word(addr.word_index())
    }

    /// Write one word (read-modify-write of the containing line).
    pub fn write_word(&mut self, addr: Addr, value: u64) {
        let entry = self.lines.entry(addr.line()).or_default();
        entry.set_word(addr.word_index(), value);
    }

    /// Number of lines ever written.
    pub fn touched_lines(&self) -> usize {
        self.lines.len()
    }
}

impl wb_kernel::Snap for MainMemory {
    /// The sparse map serializes in sorted line order — `HashMap`
    /// iteration order must never leak into snapshot bytes.
    fn snap(&self, w: &mut wb_kernel::SnapWriter) {
        let mut lines: Vec<(&LineAddr, &LineData)> = self.lines.iter().collect();
        lines.sort_by_key(|(l, _)| **l);
        w.usize(lines.len());
        for (l, d) in lines {
            l.snap(w);
            d.snap(w);
        }
    }

    fn unsnap(r: &mut wb_kernel::SnapReader) -> wb_kernel::SnapResult<Self> {
        let n = r.len_for(8 + 64)?;
        let mut lines = HashMap::with_capacity(n);
        for _ in 0..n {
            let l = LineAddr::unsnap(r)?;
            let d = LineData::unsnap(r)?;
            lines.insert(l, d);
        }
        Ok(MainMemory { lines })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_default_to_zero() {
        let m = MainMemory::new();
        assert_eq!(m.read_word(Addr::new(0)), 0);
        assert_eq!(m.read_line(LineAddr(99)), LineData::new());
    }

    #[test]
    fn word_write_preserves_neighbours() {
        let mut m = MainMemory::new();
        m.write_word(Addr::new(0x100), 1);
        m.write_word(Addr::new(0x108), 2);
        assert_eq!(m.read_word(Addr::new(0x100)), 1);
        assert_eq!(m.read_word(Addr::new(0x108)), 2);
        assert_eq!(m.touched_lines(), 1);
    }

    #[test]
    fn line_write_replaces_all() {
        let mut m = MainMemory::new();
        m.write_word(Addr::new(0x40), 5);
        m.write_line(LineAddr(1), LineData::splat(7));
        assert_eq!(m.read_word(Addr::new(0x40)), 7);
    }
}
