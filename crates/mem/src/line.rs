//! Cache-line data payloads.
//!
//! Data travels through the simulated protocol exactly like in hardware:
//! `Data` messages carry a [`LineData`], stores mutate the owning cache's
//! copy, and loads read whatever the coherence protocol delivered. This is
//! what lets the TSO checker validate real values rather than a timing
//! abstraction.

use crate::addr::WORDS_PER_LINE;

/// The 64 bytes of a cache line, stored as 8 words.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct LineData {
    words: [u64; WORDS_PER_LINE],
}

impl LineData {
    /// A zero-filled line.
    pub fn new() -> Self {
        LineData::default()
    }

    /// A line with all words set to `v` (handy in tests).
    pub fn splat(v: u64) -> Self {
        LineData { words: [v; WORDS_PER_LINE] }
    }

    /// Read word `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 8`.
    #[inline]
    pub fn word(&self, i: usize) -> u64 {
        self.words[i]
    }

    /// Write word `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 8`.
    #[inline]
    pub fn set_word(&mut self, i: usize, v: u64) {
        self.words[i] = v;
    }

    /// View of all 8 words.
    pub fn words(&self) -> &[u64; WORDS_PER_LINE] {
        &self.words
    }
}

impl wb_kernel::Snap for LineData {
    fn snap(&self, w: &mut wb_kernel::SnapWriter) {
        self.words.snap(w);
    }
    fn unsnap(r: &mut wb_kernel::SnapReader) -> wb_kernel::SnapResult<Self> {
        Ok(LineData { words: <[u64; WORDS_PER_LINE]>::unsnap(r)? })
    }
}

impl From<[u64; WORDS_PER_LINE]> for LineData {
    fn from(words: [u64; WORDS_PER_LINE]) -> Self {
        LineData { words }
    }
}

impl std::fmt::Display for LineData {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, w) in self.words.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{w:#x}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_by_default() {
        let l = LineData::new();
        for i in 0..WORDS_PER_LINE {
            assert_eq!(l.word(i), 0);
        }
    }

    #[test]
    fn set_and_get() {
        let mut l = LineData::new();
        l.set_word(3, 0xdead);
        assert_eq!(l.word(3), 0xdead);
        assert_eq!(l.word(2), 0);
    }

    #[test]
    fn splat_and_from() {
        let l = LineData::splat(7);
        assert_eq!(l.words(), &[7; 8]);
        let l2 = LineData::from([1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(l2.word(7), 8);
    }

    #[test]
    fn display_nonempty() {
        assert!(!LineData::new().to_string().is_empty());
    }
}
