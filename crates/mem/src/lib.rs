//! Addresses, cache-line data and backing memory.
//!
//! All memory operations in the simulator are 8-byte, word-aligned accesses;
//! a cache line is 64 bytes = 8 words. This matches the granularity
//! distinction the paper makes in Section 3.1: *loads and stores* operate on
//! words while coherence *reads and writes* operate on cache lines.

pub mod addr;
pub mod home;
pub mod line;
pub mod memory;

pub use addr::{Addr, LineAddr, WORDS_PER_LINE, WORD_BYTES};
pub use home::HomeMap;
pub use line::LineData;
pub use memory::MainMemory;
