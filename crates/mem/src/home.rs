//! Home mapping: which directory bank, hosted at which node, owns a line.
//!
//! Up to PR 5 the machine had exactly one directory bank per tile, so
//! "home bank" and "home node" were the same number and
//! [`LineAddr::bank`] answered both questions. Scaling the machine up
//! decouples them: a node may host several address-interleaved banks
//! (`dir_banks_per_node` in `MemoryConfig`), and protocol messages
//! still route by *node* while the receiving tile dispatches by
//! *bank*. [`HomeMap`] is the one place that arithmetic lives.
//!
//! Banks are numbered globally in `0..total_banks()` and distributed
//! round-robin across nodes: bank `b` lives at node `b % nodes`, so
//! node `i` hosts banks `i, i + nodes, i + 2*nodes, ...`. With one
//! bank per node this degenerates to the identity map the 4x4 machine
//! always used.

use crate::addr::LineAddr;

/// The line-to-bank-to-node home mapping of a tiled system.
///
/// # Example
///
/// ```
/// use wb_mem::{HomeMap, LineAddr};
/// let map = HomeMap::new(16, 2);
/// assert_eq!(map.total_banks(), 32);
/// let line = LineAddr(0x11);
/// let bank = map.bank_of(line);
/// assert_eq!(map.node_of(bank), map.home_node(line));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HomeMap {
    nodes: usize,
    banks_per_node: usize,
}

impl HomeMap {
    /// A map for `nodes` tiles, each hosting `banks_per_node` banks.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero.
    pub fn new(nodes: usize, banks_per_node: usize) -> Self {
        assert!(nodes > 0, "need at least one node");
        assert!(banks_per_node > 0, "need at least one bank per node");
        HomeMap { nodes, banks_per_node }
    }

    /// Number of tiles in the system.
    #[inline]
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Banks hosted per tile.
    #[inline]
    pub fn banks_per_node(&self) -> usize {
        self.banks_per_node
    }

    /// Total directory banks in the system.
    #[inline]
    pub fn total_banks(&self) -> usize {
        self.nodes * self.banks_per_node
    }

    /// Global index of the bank owning `line`.
    #[inline]
    pub fn bank_of(&self, line: LineAddr) -> usize {
        line.bank(self.total_banks())
    }

    /// The node hosting global bank `bank`.
    #[inline]
    pub fn node_of(&self, bank: usize) -> usize {
        debug_assert!(bank < self.total_banks(), "bank {bank} out of range");
        bank % self.nodes
    }

    /// The node hosting the bank owning `line` — the routing target of
    /// a directory-bound protocol message.
    #[inline]
    pub fn home_node(&self, line: LineAddr) -> usize {
        self.node_of(self.bank_of(line))
    }

    /// Global indices of the banks hosted at `node`, ascending.
    pub fn banks_at(&self, node: usize) -> impl Iterator<Item = usize> + use<> {
        debug_assert!(node < self.nodes, "node {node} out of range");
        (node..self.total_banks()).step_by(self.nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wb_kernel::check::prelude::*;

    #[test]
    fn single_bank_per_node_is_the_identity_map() {
        // The 4x4 machine's historical behavior: bank index == node
        // index == line.bank(16).
        let map = HomeMap::new(16, 1);
        assert_eq!(map.total_banks(), 16);
        for line in 0..200u64 {
            let l = LineAddr(line);
            assert_eq!(map.bank_of(l), l.bank(16));
            assert_eq!(map.home_node(l), map.bank_of(l));
        }
    }

    #[test]
    fn banks_at_partitions_all_banks() {
        let map = HomeMap::new(6, 3);
        let mut seen = vec![false; map.total_banks()];
        for node in 0..map.nodes() {
            for bank in map.banks_at(node) {
                assert_eq!(map.node_of(bank), node);
                assert!(!seen[bank], "bank {bank} hosted twice");
                seen[bank] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every bank is hosted somewhere");
    }

    #[test]
    fn sharded_map_keeps_pow2_interleave_per_node() {
        // 16 nodes x 2 banks: 32 banks, pow-2, so bank_of is plain
        // line interleave and consecutive lines round-robin the nodes.
        let map = HomeMap::new(16, 2);
        assert_eq!(map.bank_of(LineAddr(0)), 0);
        assert_eq!(map.bank_of(LineAddr(17)), 17);
        assert_eq!(map.node_of(17), 1);
        assert_eq!(map.home_node(LineAddr(16)), 0);
    }

    wb_proptest! {
        #[test]
        fn home_node_consistent(line in 0u64..1_000_000, nodes in 1usize..64, bpn in 1usize..4) {
            let map = HomeMap::new(nodes, bpn);
            let bank = map.bank_of(LineAddr(line));
            prop_assert!(bank < map.total_banks());
            prop_assert_eq!(map.node_of(bank), map.home_node(LineAddr(line)));
            prop_assert!(map.home_node(LineAddr(line)) < nodes);
        }
    }
}
