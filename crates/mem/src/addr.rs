//! Word and line addresses.

/// Bytes per word: all loads/stores are 8-byte aligned accesses.
pub const WORD_BYTES: u64 = 8;
/// Words per 64-byte cache line.
pub const WORDS_PER_LINE: usize = 8;
const LINE_BYTES: u64 = WORD_BYTES * WORDS_PER_LINE as u64;

/// A byte address of a word-aligned memory location.
///
/// # Example
///
/// ```
/// use wb_mem::Addr;
/// let a = Addr::new(0x1008);
/// assert_eq!(a.line().base().0, 0x1000);
/// assert_eq!(a.word_index(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// Create a word address.
    ///
    /// # Panics
    ///
    /// Panics if the address is not 8-byte aligned.
    pub fn new(byte: u64) -> Self {
        assert!(byte.is_multiple_of(WORD_BYTES), "address {byte:#x} is not word aligned");
        Addr(byte)
    }

    /// The cache line containing this word.
    #[inline]
    pub fn line(self) -> LineAddr {
        LineAddr(self.0 / LINE_BYTES)
    }

    /// Index of this word within its cache line (0..8).
    #[inline]
    pub fn word_index(self) -> usize {
        ((self.0 / WORD_BYTES) % WORDS_PER_LINE as u64) as usize
    }
}

impl std::fmt::Display for Addr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// A cache-line number (byte address divided by the 64-byte line size).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// The byte address of the first word in the line.
    #[inline]
    pub fn base(self) -> Addr {
        Addr(self.0 * LINE_BYTES)
    }

    /// The word address of word `i` in this line.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 8`.
    pub fn word(self, i: usize) -> Addr {
        assert!(i < WORDS_PER_LINE);
        Addr(self.0 * LINE_BYTES + i as u64 * WORD_BYTES)
    }

    /// Which LLC/directory bank this line maps to, for `banks` banks
    /// (line-interleaved, as in the paper's tiled system).
    #[inline]
    pub fn bank(self, banks: usize) -> usize {
        (self.0 % banks as u64) as usize
    }
}

impl std::fmt::Display for LineAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wb_kernel::check::prelude::*;

    #[test]
    fn line_and_word_index() {
        let a = Addr::new(64 * 3 + 8 * 5);
        assert_eq!(a.line(), LineAddr(3));
        assert_eq!(a.word_index(), 5);
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn unaligned_rejected() {
        let _ = Addr::new(7);
    }

    #[test]
    fn line_base_and_word() {
        let l = LineAddr(2);
        assert_eq!(l.base(), Addr(128));
        assert_eq!(l.word(7), Addr(128 + 56));
    }

    #[test]
    #[should_panic]
    fn word_out_of_range() {
        let _ = LineAddr(0).word(8);
    }

    #[test]
    fn banking_is_modular() {
        assert_eq!(LineAddr(17).bank(16), 1);
        assert_eq!(LineAddr(16).bank(16), 0);
    }

    wb_proptest! {
        #[test]
        fn word_roundtrip(line in 0u64..1_000_000, idx in 0usize..8) {
            let l = LineAddr(line);
            let a = l.word(idx);
            prop_assert_eq!(a.line(), l);
            prop_assert_eq!(a.word_index(), idx);
        }

        #[test]
        fn same_line_same_bank(line in 0u64..100_000, i in 0usize..8, j in 0usize..8) {
            let l = LineAddr(line);
            prop_assert_eq!(l.word(i).line().bank(16), l.word(j).line().bank(16));
        }
    }
}
