//! Word and line addresses.

/// Bytes per word: all loads/stores are 8-byte aligned accesses.
pub const WORD_BYTES: u64 = 8;
/// Words per 64-byte cache line.
pub const WORDS_PER_LINE: usize = 8;
const LINE_BYTES: u64 = WORD_BYTES * WORDS_PER_LINE as u64;

/// A byte address of a word-aligned memory location.
///
/// # Example
///
/// ```
/// use wb_mem::Addr;
/// let a = Addr::new(0x1008);
/// assert_eq!(a.line().base().0, 0x1000);
/// assert_eq!(a.word_index(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// Create a word address.
    ///
    /// # Panics
    ///
    /// Panics if the address is not 8-byte aligned.
    pub fn new(byte: u64) -> Self {
        assert!(byte.is_multiple_of(WORD_BYTES), "address {byte:#x} is not word aligned");
        Addr(byte)
    }

    /// The cache line containing this word.
    #[inline]
    pub fn line(self) -> LineAddr {
        LineAddr(self.0 / LINE_BYTES)
    }

    /// Index of this word within its cache line (0..8).
    #[inline]
    pub fn word_index(self) -> usize {
        ((self.0 / WORD_BYTES) % WORDS_PER_LINE as u64) as usize
    }
}

impl wb_kernel::Snap for Addr {
    fn snap(&self, w: &mut wb_kernel::SnapWriter) {
        w.u64(self.0);
    }
    fn unsnap(r: &mut wb_kernel::SnapReader) -> wb_kernel::SnapResult<Self> {
        Ok(Addr(r.u64()?))
    }
}

impl std::fmt::Display for Addr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// A cache-line number (byte address divided by the 64-byte line size).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// The byte address of the first word in the line.
    #[inline]
    pub fn base(self) -> Addr {
        Addr(self.0 * LINE_BYTES)
    }

    /// The word address of word `i` in this line.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 8`.
    pub fn word(self, i: usize) -> Addr {
        assert!(i < WORDS_PER_LINE);
        Addr(self.0 * LINE_BYTES + i as u64 * WORD_BYTES)
    }

    /// Which LLC/directory bank this line maps to, for `banks` banks.
    ///
    /// Power-of-two bank counts use plain line interleaving (low line
    /// bits), as in the paper's tiled system. Non-power-of-two counts
    /// would suffer modulo bias under the strided address patterns the
    /// workload generators emit (e.g. one-lock-per-line arrays stride
    /// the line number by 1, per-core private regions by 0x400), so
    /// those first diffuse the line number through a multiplicative
    /// mix and then range-reduce with a widening multiply instead of
    /// `%`.
    #[inline]
    pub fn bank(self, banks: usize) -> usize {
        debug_assert!(banks > 0, "bank count must be positive");
        if banks.is_power_of_two() {
            (self.0 & (banks as u64 - 1)) as usize
        } else {
            let mix = self.0.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(31);
            ((mix as u128 * banks as u128) >> 64) as usize
        }
    }
}

impl wb_kernel::Snap for LineAddr {
    fn snap(&self, w: &mut wb_kernel::SnapWriter) {
        w.u64(self.0);
    }
    fn unsnap(r: &mut wb_kernel::SnapReader) -> wb_kernel::SnapResult<Self> {
        Ok(LineAddr(r.u64()?))
    }
}

impl std::fmt::Display for LineAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wb_kernel::check::prelude::*;

    #[test]
    fn line_and_word_index() {
        let a = Addr::new(64 * 3 + 8 * 5);
        assert_eq!(a.line(), LineAddr(3));
        assert_eq!(a.word_index(), 5);
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn unaligned_rejected() {
        let _ = Addr::new(7);
    }

    #[test]
    fn line_base_and_word() {
        let l = LineAddr(2);
        assert_eq!(l.base(), Addr(128));
        assert_eq!(l.word(7), Addr(128 + 56));
    }

    #[test]
    #[should_panic]
    fn word_out_of_range() {
        let _ = LineAddr(0).word(8);
    }

    #[test]
    fn banking_is_modular_for_pow2_counts() {
        // Power-of-two counts keep plain line interleaving: these pins
        // freeze home placement for every 16/64/256-bank topology.
        assert_eq!(LineAddr(17).bank(16), 1);
        assert_eq!(LineAddr(16).bank(16), 0);
        assert_eq!(LineAddr(0x123).bank(64), 0x23);
        assert_eq!(LineAddr(0x1ff).bank(256), 0xff);
    }

    #[test]
    fn banking_spreads_strided_lines_over_non_pow2_counts() {
        // A plain `line % banks` map sends stride-`banks` sequences
        // (lock arrays, per-core private regions) all to one bank. The
        // mixed map must keep every bank's share of such a sequence
        // within 2x of fair for a handful of adversarial strides.
        for banks in [3usize, 6, 12, 24, 48] {
            for stride in [1u64, banks as u64, 2 * banks as u64, 0x400] {
                let mut load = vec![0u32; banks];
                let n = 4096u64;
                for i in 0..n {
                    load[LineAddr(i * stride).bank(banks)] += 1;
                }
                let fair = n as u32 / banks as u32;
                for (b, &c) in load.iter().enumerate() {
                    assert!(
                        c < 2 * fair,
                        "bank {b} of {banks} got {c}/{n} lines at stride {stride:#x} (fair {fair})"
                    );
                }
            }
        }
    }

    wb_proptest! {
        #[test]
        fn word_roundtrip(line in 0u64..1_000_000, idx in 0usize..8) {
            let l = LineAddr(line);
            let a = l.word(idx);
            prop_assert_eq!(a.line(), l);
            prop_assert_eq!(a.word_index(), idx);
        }

        #[test]
        fn same_line_same_bank(line in 0u64..100_000, i in 0usize..8, j in 0usize..8, banks in 1usize..40) {
            let l = LineAddr(line);
            prop_assert_eq!(l.word(i).line().bank(banks), l.word(j).line().bank(banks));
        }

        #[test]
        fn bank_always_in_range(line in 0u64..u64::MAX, banks in 1usize..400) {
            prop_assert!(LineAddr(line).bank(banks) < banks);
        }
    }
}
