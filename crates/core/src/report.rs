//! Run-level statistics report.

use wb_kernel::{Cycle, HotEntry, Stats};

/// Aggregated counters of one simulation run, with helpers for the
/// metrics the paper's figures plot.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Workload name.
    pub name: String,
    /// Total execution time in cycles.
    pub cycles: Cycle,
    /// Merged counters from cores, caches, directory banks and the mesh.
    pub stats: Stats,
    /// Cycles the engine fast-forwarded instead of ticking (0 in dense
    /// mode). Carried *outside* [`Report::stats`] deliberately: the
    /// merged stats must stay byte-identical across engine modes (the
    /// engine-equivalence contract), while these two are engine
    /// diagnostics that differ by construction. Bench emitters publish
    /// them as `engine_skipped_cycles`/`engine_skip_windows`.
    pub skipped_cycles: u64,
    /// Quiescent windows the engine jumped over (see
    /// [`Report::skipped_cycles`]).
    pub skip_windows: u64,
    /// Hot-lines leaderboard: top contended cache lines by attributed
    /// stall cycles (WritersBlock windows, Nack-retry requeues,
    /// blocked-write stalls, lockdown holds), merged across every
    /// directory bank and private cache. `key` is the line number;
    /// estimates carry the space-saving error bound (see
    /// [`wb_kernel::attr`]).
    pub hot_lines: Vec<HotEntry>,
    /// Top directory banks by the same attributed weight; `key` is the
    /// global bank index.
    pub hot_banks: Vec<HotEntry>,
}

impl Report {
    /// An empty report for `name` at `cycles`.
    pub fn new(name: &str, cycles: Cycle) -> Self {
        Report { name: name.to_owned(), cycles, stats: Stats::new(), ..Report::default() }
    }

    /// Committed instructions per cycle, across all cores.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.stats.get("core_dispatched") as f64 / self.cycles as f64
    }

    /// Figure 8 (top): write transactions blocked in WritersBlock per
    /// thousand committed stores.
    pub fn blocked_writes_per_kilostore(&self) -> f64 {
        let stores = self.stats.get("core_stores_committed") + self.stats.get("core_amos_committed");
        if stores == 0 {
            return 0.0;
        }
        self.stats.get("dir_writes_blocked") as f64 * 1000.0 / stores as f64
    }

    /// Figure 8 (bottom): uncacheable tear-off data responses per
    /// thousand committed loads.
    pub fn uncacheable_reads_per_kiloload(&self) -> f64 {
        let loads = self.stats.get("core_loads_committed");
        if loads == 0 {
            return 0.0;
        }
        self.stats.get("dir_tearoff_replies") as f64 * 1000.0 / loads as f64
    }

    /// Figure 9 (bottom): total network traffic in flits.
    pub fn network_flits(&self) -> u64 {
        self.stats.get("mesh_flits")
    }

    /// Figure 10 (top): stall-cycle fractions `(rob, lq, sq)` relative to
    /// total core cycles.
    pub fn stall_fractions(&self) -> (f64, f64, f64) {
        let cycles = self.stats.get("core_cycles").max(1) as f64;
        (
            self.stats.get("core_stall_rob") as f64 / cycles,
            self.stats.get("core_stall_lq") as f64 / cycles,
            self.stats.get("core_stall_sq") as f64 / cycles,
        )
    }

    /// Loads committed out of order while M-speculative (the relaxed
    /// commits only WritersBlock enables).
    pub fn ooo_load_commits(&self) -> u64 {
        self.stats.get("core_loads_ooo_committed")
    }

    /// Squashes triggered by invalidations (zero under WritersBlock by
    /// construction, except for loads past atomics).
    pub fn inval_squashes(&self) -> u64 {
        self.stats.get("core_squash_inval")
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "=== {} : {} cycles ===", self.name, self.cycles)?;
        writeln!(f, "ipc                     {:>10.3}", self.ipc())?;
        writeln!(f, "blocked writes /kstore  {:>10.3}", self.blocked_writes_per_kilostore())?;
        writeln!(f, "tear-off reads /kload   {:>10.3}", self.uncacheable_reads_per_kiloload())?;
        writeln!(f, "network flits           {:>10}", self.network_flits())?;
        let (rob, lq, sq) = self.stall_fractions();
        writeln!(f, "stall rob/lq/sq         {rob:>9.1}% {lq:>9.1}% {sq:>9.1}%", rob = rob * 100.0, lq = lq * 100.0, sq = sq * 100.0)?;
        if self.skip_windows > 0 {
            writeln!(
                f,
                "engine skipped          {:>10} cycles in {} windows",
                self.skipped_cycles, self.skip_windows
            )?;
        }
        if !self.hot_lines.is_empty() {
            writeln!(f, "hot lines (attributed stall cycles, ±err):")?;
            for e in self.hot_lines.iter().take(8) {
                writeln!(f, "  line {:#8x}  {:>10} (±{})", e.key, e.count, e.err)?;
            }
        }
        if self.hot_banks.len() > 1 {
            writeln!(f, "hot directory banks:")?;
            for e in self.hot_banks.iter().take(4) {
                writeln!(f, "  bank {:>4}  {:>10}", e.key, e.count)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_from_counters() {
        let mut r = Report::new("t", 100);
        r.stats.add("core_stores_committed", 2000);
        r.stats.add("dir_writes_blocked", 1);
        r.stats.add("core_loads_committed", 1000);
        r.stats.add("dir_tearoff_replies", 2);
        r.stats.add("mesh_flits", 55);
        r.stats.add("core_cycles", 200);
        r.stats.add("core_stall_rob", 50);
        assert!((r.blocked_writes_per_kilostore() - 0.5).abs() < 1e-9);
        assert!((r.uncacheable_reads_per_kiloload() - 2.0).abs() < 1e-9);
        assert_eq!(r.network_flits(), 55);
        let (rob, _, _) = r.stall_fractions();
        assert!((rob - 0.25).abs() < 1e-9);
    }

    #[test]
    fn zero_denominators_are_safe() {
        let r = Report::new("empty", 0);
        assert_eq!(r.ipc(), 0.0);
        assert_eq!(r.blocked_writes_per_kilostore(), 0.0);
        assert_eq!(r.uncacheable_reads_per_kiloload(), 0.0);
    }

    #[test]
    fn display_contains_name() {
        let r = Report::new("fft", 10);
        assert!(r.to_string().contains("fft"));
    }
}
