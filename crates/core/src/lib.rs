//! # writersblock
//!
//! A full-system, cycle-level simulator reproducing **"Non-Speculative
//! Load-Load Reordering in TSO"** (Ros, Carlson, Alipour, Kaxiras — ISCA
//! 2017).
//!
//! The paper shows that speculatively reordered loads in TSO never need
//! to be squashed when another core "sees" the reordering: the coherence
//! protocol can *hide* it instead. A core whose reordered load receives
//! an invalidation withholds the acknowledgement (a **lockdown**); the
//! directory parks the offending write in a new transient state
//! (**WritersBlock**) that blocks all writes but serves reads uncacheable
//! tear-off copies of the pre-write data. When the reordering resolves
//! (the older load performs), the deferred acknowledgement is released
//! and the write proceeds. Reordered loads can therefore be *irrevocably
//! bound* — e.g. committed out of order — without checkpoints.
//!
//! This crate wires the substrates into a 16-core tiled system:
//!
//! - out-of-order cores (`wb-cpu`) with in-order, Bell-Lipasti
//!   out-of-order, and WritersBlock-relaxed commit;
//! - private L1+L2 caches and LLC/directory banks speaking base MESI or
//!   the WritersBlock protocol (`wb-protocol`);
//! - a 4x4 mesh interconnect (`wb-mesh`);
//! - TSO verification machinery (`wb-tso`).
//!
//! # Quickstart
//!
//! ```
//! use writersblock::prelude::*;
//!
//! // Table 1's message-passing litmus on a WritersBlock system with
//! // out-of-order commit: the forbidden outcome can never appear.
//! let litmus = wb_tso::litmus::mp();
//! let cfg = SystemConfig::new(CoreClass::Slm)
//!     .with_cores(2)
//!     .with_commit(CommitMode::OutOfOrderWb);
//! let mut sys = System::new(cfg, &litmus.workload);
//! let outcome = sys.run(200_000);
//! assert_eq!(outcome, RunOutcome::Done);
//! let observed: Vec<u64> =
//!     litmus.observed.iter().map(|&(c, r)| sys.arch_reg(c, r)).collect();
//! assert!(!litmus.is_forbidden(&observed));
//! ```

pub mod litmus_runner;
pub mod report;
pub mod system;

pub use litmus_runner::{run_litmus, LitmusFailure, LitmusReport};
pub use report::Report;
pub use system::{RunOutcome, System};

/// Commonly used items, re-exported for examples and benches.
pub mod prelude {
    pub use crate::{Report, RunOutcome, System};
    pub use wb_isa::{AluOp, AmoOp, Cond, Inst, Program, ProgramBuilder, Reg, Workload};
    pub use wb_kernel::chaos::{ChaosClause, ChaosEffect, ChaosPlan, FlowMatch};
    pub use wb_kernel::config::{CommitMode, CoreClass, LinkConfig, ProtocolKind, SystemConfig, WatchdogConfig};
    pub use wb_kernel::audit::{AuditKind, AuditReport, AuditViolation};
    pub use wb_kernel::fault::{FaultClause, FaultEffect, FaultPlan};
    pub use wb_kernel::soft::{SoftClause, SoftPlan, SoftTarget};
    pub use wb_kernel::trace::{Category, Level, TraceFilter, TraceSink};
    pub use wb_kernel::wedge::{WaitParty, WedgeClass, WedgeReport};
    pub use wb_mem::{Addr, LineAddr};
}
