//! Run litmus tests on the simulator across many seeds.
//!
//! Each seed perturbs message timing (network jitter), steering the
//! execution into different interleavings. Every run is validated three
//! ways: it must finish (deadlock freedom — Section 3.5), its observed
//! outcome must not be in the test's forbidden set, and its memory-event
//! log must pass the axiomatic TSO checker.

use crate::system::{RunOutcome, System};
use std::collections::BTreeMap;
use wb_kernel::config::SystemConfig;
use wb_tso::{CheckError, LitmusTest};

/// Aggregated result of a litmus campaign.
#[derive(Debug, Clone, Default)]
pub struct LitmusReport {
    /// Observed outcome -> number of seeds that produced it.
    pub outcomes: BTreeMap<Vec<u64>, usize>,
    /// Total runs.
    pub runs: usize,
}

impl LitmusReport {
    /// Was `outcome` observed at least once?
    pub fn observed(&self, outcome: &[u64]) -> bool {
        self.outcomes.contains_key(outcome)
    }
}

/// Why a litmus campaign failed.
#[derive(Debug, Clone)]
pub enum LitmusFailure {
    /// A forbidden outcome was observed — the consistency model broke.
    Forbidden { seed: u64, outcome: Vec<u64> },
    /// The TSO checker rejected an execution.
    Tso { seed: u64, error: CheckError },
    /// A run deadlocked or exceeded its budget.
    NotDone { seed: u64, outcome: RunOutcome },
}

impl std::fmt::Display for LitmusFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LitmusFailure::Forbidden { seed, outcome } => {
                write!(f, "seed {seed}: forbidden outcome {outcome:?} observed")
            }
            LitmusFailure::Tso { seed, error } => write!(f, "seed {seed}: TSO check failed: {error}"),
            LitmusFailure::NotDone { seed, outcome } => {
                write!(f, "seed {seed}: run ended with {outcome:?}")
            }
        }
    }
}

impl std::error::Error for LitmusFailure {}

/// Run `test` once per seed on systems configured from `base` (the seed
/// and a litmus-friendly jitter are applied per run).
///
/// # Errors
///
/// The first [`LitmusFailure`] encountered.
pub fn run_litmus(
    test: &LitmusTest,
    base: &SystemConfig,
    seeds: impl IntoIterator<Item = u64>,
    max_cycles: u64,
) -> Result<LitmusReport, LitmusFailure> {
    let mut report = LitmusReport::default();
    for seed in seeds {
        let cfg = base.clone().with_seed(seed).with_jitter(30);
        let mut sys = System::new(cfg, &test.workload);
        match sys.run(max_cycles) {
            RunOutcome::Done => {}
            other => return Err(LitmusFailure::NotDone { seed, outcome: other }),
        }
        let outcome: Vec<u64> =
            test.observed.iter().map(|&(c, r)| sys.arch_reg(c, r)).collect();
        if test.is_forbidden(&outcome) {
            return Err(LitmusFailure::Forbidden { seed, outcome });
        }
        if let Err(error) = sys.check_tso() {
            return Err(LitmusFailure::Tso { seed, error });
        }
        *report.outcomes.entry(outcome).or_insert(0) += 1;
        report.runs += 1;
    }
    Ok(report)
}
